#!/usr/bin/env python
"""Quickstart: reconstruct one synthetic DIII-D-like time slice.

This is EFIT's between-shot workflow in miniature: take one time slice of
magnetics data, run the ``fit_`` Picard loop until the flux residual drops
below 1e-5 (the paper's epsilon), and write the equilibrium as a standard
g-EQDSK file.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.efit import EfitSolver, QProfile, synthetic_shot_186610
from repro.efit.eqdsk import GEqdsk, write_geqdsk
from repro.profiling.regions import RegionProfiler


def main() -> None:
    # --- the workload: our stand-in for DIII-D shot #186610 @ 2.4 s -------
    shot = synthetic_shot_186610(65)
    print(f"workload: {shot.label}")
    print(
        f"  {len(shot.diagnostics.flux_loops)} flux loops, "
        f"{len(shot.diagnostics.probes)} probes, 1 Rogowski; "
        f"Ip = {shot.measurements.ip / 1e6:.3f} MA"
    )

    # --- reconstruct -------------------------------------------------------
    profiler = RegionProfiler()
    solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid, profiler=profiler)
    result = solver.fit(shot.measurements)

    print(f"\nconverged in {result.iterations} fit_ invocations "
          f"(residual {result.residual:.2e}, chi^2 {result.chi2:.1f})")
    b = result.boundary
    print(f"magnetic axis: R = {b.r_axis:.3f} m, Z = {b.z_axis:+.3f} m "
          f"({b.boundary_type}-bounded plasma)")
    print(f"reconstructed Ip: {result.ip / 1e6:.3f} MA")

    err = np.abs(result.psi - shot.truth.psi).max() / np.ptp(shot.truth.psi)
    print(f"flux-map error vs ground truth: {err:.2e} (relative)")

    rep = profiler.report()
    print("\nper-subroutine time (measured, this Python build):")
    for name, pct in sorted(rep.percentages().items(), key=lambda kv: -kv[1]):
        print(f"  {name:10s} {pct:5.1f}%")

    # --- derived physics: q profile from traced flux surfaces --------------
    g = shot.grid
    x = np.linspace(0.0, 1.0, g.nw)
    psi_axis, psi_bnd = b.psi_axis, b.psi_boundary
    f_b = shot.machine.f_vacuum
    qprof = QProfile.compute(g, result.psi, b, lambda s: f_b, n_levels=24)
    lcfs = qprof.surfaces[-1]
    print(f"q0 ~ {qprof.q[0]:.2f}, q95 = {qprof.q95:.2f} "
          f"(from {len(qprof.surfaces)} traced flux surfaces)")

    # --- write the standard EFIT output ------------------------------------
    eq = GEqdsk(
        description="repro synthetic 186610 2400ms",
        nw=g.nw,
        nh=g.nh,
        rdim=g.rmax - g.rmin,
        zdim=g.zmax - g.zmin,
        rcentr=1.6955,
        rleft=g.rmin,
        zmid=0.5 * (g.zmin + g.zmax),
        rmaxis=b.r_axis,
        zmaxis=b.z_axis,
        simag=psi_axis,
        sibry=psi_bnd,
        bcentr=f_b / 1.6955,
        current=result.ip,
        fpol=np.sqrt(result.profiles.f_squared(x, psi_axis, psi_bnd, f_b)),
        pres=result.profiles.pressure(x, psi_axis, psi_bnd),
        ffprim=result.profiles.ffprime(x),
        pprime=result.profiles.pprime(x),
        psirz=result.psi,
        qpsi=qprof.on_uniform_grid(g.nw),
        rbbbs=lcfs.r,
        zbbbs=lcfs.z,
        rlim=shot.machine.limiter.r,
        zlim=shot.machine.limiter.z,
    )
    out = "g186610.02400"
    write_geqdsk(eq, out)
    print(f"\nwrote {out} (g-EQDSK)")


if __name__ == "__main__":
    main()
