#!/usr/bin/env python
"""Why real-time EFIT wants fast high-resolution fits (the paper's intro).

Reconstructs the same synthetic discharge at increasing grid resolution
and shows how the control-relevant quantities (q95, elongation, beta_p)
and the flux map converge — then asks the performance model what each
resolution costs per time slice on CPU vs GPU, closing the loop with the
paper's motivation: "high-resolution grids (257x257, 513x513) are
required to get more accurate information for plasma control", and only
GPU acceleration makes them affordable between shots.

Run:  python examples/resolution_convergence.py
"""

from __future__ import annotations

from repro.core.study import PortabilityStudy, cpu_fit_seconds
from repro.efit.resolution import resolution_sweep
from repro.machines.site import perlmutter
from repro.utils.tables import Table, format_seconds


def main() -> None:
    sizes = (33, 65, 129)
    print(f"Reconstructing the synthetic shot at {', '.join(map(str, sizes))} ...")
    points = resolution_sweep(sizes)

    t = Table(
        ["grid", "fit_ calls", "chi^2", "q95", "kappa", "beta_p", "psi RMS err"],
        title="Reconstruction accuracy vs grid resolution",
    )
    for p in points:
        t.add_row(
            [
                p.label,
                p.iterations,
                f"{p.chi2:.1f}",
                f"{p.q95:.3f}",
                f"{p.kappa:.3f}",
                f"{p.beta_poloidal:.4f}",
                f"{p.psi_rms_vs_truth:.2e}",
            ]
        )
    print(t.render())
    dq = abs(points[0].q95 - points[-1].q95)
    print(
        f"\nq95 moves by {dq:.3f} between {points[0].label} and "
        f"{points[-1].label} — resolution-limited error a control system"
        "\nwould act on. Now the cost side (per fit_ invocation, modeled):\n"
    )

    site = perlmutter()
    study = PortabilityStudy((site,))
    t2 = Table(
        ["grid", "CPU core", "A100 (OpenMP pflux_)", "GPU gain"],
        title="Time per fit_ invocation on Perlmutter",
    )
    for n in (65, 129, 257, 513):
        cpu = cpu_fit_seconds(site, n)
        gpu = study.gpu_fit_seconds(site, "openmp", n)
        t2.add_row([f"{n}x{n}", format_seconds(cpu), format_seconds(gpu), f"{cpu / gpu:.1f}x"])
    print(t2.render())
    print(
        "\nAt 513x513 the GPU build turns a ~1.2 s fit_ invocation into"
        "\n~90 ms — the difference between high-resolution control being"
        "\noffline-only and being usable between shots."
    )


if __name__ == "__main__":
    main()
