#!/usr/bin/env python
"""Vessel eddy-current fitting: reconstructing a transient time slice.

During current ramps the vacuum vessel carries induced currents that
pollute every magnetic diagnostic.  A magnetics-only fit of such a slice
fails loudly; enabling EFIT's vessel-current option adds one unknown per
wall segment to the linear fit and recovers both the equilibrium and the
eddy-current distribution.

Run:  python examples/eddy_currents.py
"""

from __future__ import annotations

import numpy as np

from repro.efit import EfitSolver, synthetic_shot_186610
from repro.utils.tables import Table


def main() -> None:
    shot = synthetic_shot_186610(33, eddy_ka=15.0)
    truth_iv = shot.truth.vessel_currents
    print(f"workload: {shot.label} during a transient")
    print(
        f"  {shot.machine.n_vessel} vessel segments carrying up to "
        f"{np.abs(truth_iv).max() / 1e3:.1f} kA of eddy current\n"
    )

    # --- magnetics-only fit: poisoned --------------------------------------
    plain = EfitSolver(shot.machine, shot.diagnostics, shot.grid, max_iters=100)
    try:
        res_plain = plain.fit(shot.measurements, require_convergence=False)
        err = np.abs(res_plain.psi - shot.truth.psi).max() / np.ptp(shot.truth.psi)
        print(
            f"without vessel fitting: converged={res_plain.converged}, "
            f"chi^2={res_plain.chi2:.0f} "
            f"({shot.measurements.n_measurements} measurements), "
            f"flux error {err:.1%}"
        )
    except Exception as exc:  # BoundaryError etc.
        print(f"without vessel fitting: FAILED ({type(exc).__name__}: {exc})")

    # --- with the vessel option ----------------------------------------------
    solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid, fit_vessel=True)
    res = solver.fit(shot.measurements)
    err = np.abs(res.psi - shot.truth.psi).max() / np.ptp(shot.truth.psi)
    print(
        f"with vessel fitting:    converged={res.converged}, "
        f"chi^2={res.chi2:.0f}, flux error {err:.2%}\n"
    )

    t = Table(
        ["segment", "true I [kA]", "fitted I [kA]", "error"],
        title="Eddy-current recovery (every 4th segment)",
    )
    for k in range(0, shot.machine.n_vessel, 4):
        seg = shot.machine.vessel[k]
        t.add_row(
            [
                seg.name,
                f"{truth_iv[k] / 1e3:6.2f}",
                f"{res.vessel_currents[k] / 1e3:6.2f}",
                f"{abs(res.vessel_currents[k] - truth_iv[k]) / 1e3:5.2f}",
            ]
        )
    print(t.render())
    total_err = np.abs(res.vessel_currents - truth_iv).max() / np.abs(truth_iv).max()
    print(f"\nworst-segment recovery error: {total_err:.1%} of the eddy scale")


if __name__ == "__main__":
    main()
