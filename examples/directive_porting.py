#!/usr/bin/env python
"""The directive-porting workflow: annotate once, translate, census, lower.

Walks through the paper's Section 5 methodology as a library user would:

1. inspect the offloaded ``pflux_`` kernel registry and its pragmas
   (Figures 2/3);
2. translate the OpenACC annotation to OpenMP automatically (the
   Table 4 <-> Table 5 mapping);
3. produce the directive census — the "8 lines, ~2% of the routine"
   productivity claim;
4. lower one kernel with each facility compiler and compare the plans —
   where the performance-portability differences are born.

Run:  python examples/directive_porting.py
"""

from __future__ import annotations

from repro.core.offload import PFLUX_SOURCE_LINES, build_pflux_registry
from repro.directives.translate import acc_to_omp
from repro.machines.site import ALL_SITES
from repro.utils.tables import Table


def main() -> None:
    registry = build_pflux_registry(513, vector_length=32)

    # --- 1. the annotated kernels ------------------------------------------
    print("Offloaded pflux_ kernels and their OpenACC annotations:\n")
    for kernel in registry:
        nest = kernel.nest
        print(f"  {kernel.name:12s} [{kernel.complexity:7s}] "
              f"{nest.total_iterations:>12,d} iterations, "
              f"{nest.total_flops / 1e6:10.1f} MFLOP")
        for d in kernel.acc_directives:
            print(f"      {d.to_pragma()}")
    print()

    # --- 2. automatic ACC -> OMP translation --------------------------------
    print("OpenACC -> OpenMP translation of the O(N^3) kernel:\n")
    for d in registry.get("boundary_lr").acc_directives:
        omp = acc_to_omp(d)
        print(f"  {d.to_pragma()}")
        print(f"    -> {omp.to_pragma() if omp else '(no counterpart needed)'}")
    print()

    # --- 3. the census -------------------------------------------------------
    for model, label in (("openacc", "Table 4"), ("openmp", "Table 5")):
        total = registry.directive_line_count(model)
        print(f"{label}: {total} {model} directive lines "
              f"({100 * total / PFLUX_SOURCE_LINES:.1f}% of the {PFLUX_SOURCE_LINES}-line routine)")
        for pragma, count, pct in registry.census_table(model):
            print(f"    {count} x {pragma}")
    print()

    # --- 4. lowering by each facility compiler -------------------------------
    kernel = registry.get("boundary_lr")
    t = Table(
        ["site", "model", "teams", "threads/team", "traffic", "bw eff", "occupancy-aware"],
        title="How each compiler lowers the Figure 2/3 kernel (513x513)",
    )
    for site in ALL_SITES():
        for model in site.models:
            plan = site.compiler.lower(kernel, model, site.gpu)
            t.add_row(
                [
                    site.name,
                    model,
                    plan.teams,
                    plan.threads_per_team,
                    f"{plan.traffic_factor:.2f}x",
                    f"{plan.bandwidth_efficiency:.2f}",
                    "yes" if plan.occupancy_sensitive else "NO (serialised)",
                ]
            )
    print(t.render())
    print(
        "\nThe CCE OpenACC row is the whole story of Table 6: 3.9x the\n"
        "traffic and a lowering that cannot convert parallelism into\n"
        "bandwidth -> saturation at 257x257 while everyone else scales."
    )


if __name__ == "__main__":
    main()
