#!/usr/bin/env python
"""Batched between-shot reconstruction with the real Python solver.

`examples/realtime_throughput.py` *simulates* the between-shot task farm
with the paper's calibrated cost model; this example *runs* it.  A
synthetic shot provides a sequence of time slices (same machine, same
grid, independently resampled measurement noise) and the
`repro.batch.BatchFitEngine` reconstructs them concurrently: one Green
table, one precomputed edge operator and one solver factorisation are
shared across the batch, the boundary Green sums of all slices collapse
into a single GEMM, and every interior Dirichlet solve runs through one
multi-RHS sweep.  A serial loop of `EfitSolver.fit` calls over the same
slices gives the baseline.

Run:  python examples/batch_throughput.py [n_slices] [grid]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.efit.fitting import EfitSolver
from repro.efit.measurements import synthetic_shot_186610


def main() -> None:
    n_slices = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    grid_n = int(sys.argv[2]) if len(sys.argv) > 2 else 65
    shot = synthetic_shot_186610(grid_n)
    slices = synthetic_slice_sequence(shot, n_slices, seed=11)
    print(f"{n_slices} slices of a synthetic shot at {grid_n}x{grid_n}\n")

    serial = EfitSolver(shot.machine, shot.diagnostics, shot.grid)
    serial.fit(slices[0])  # warm the Green-table cache
    t0 = time.perf_counter()
    serial_results = [serial.fit(m) for m in slices]
    t_serial = time.perf_counter() - t0
    print(f"serial loop : {t_serial:6.2f} s  ({n_slices / t_serial:5.1f} slices/s)")

    for batch_size in (1, 4, 8):
        engine = BatchFitEngine(
            shot.machine, shot.diagnostics, shot.grid, batch_size=batch_size
        )
        engine.fit_many(slices)  # warm the workspaces
        t0 = time.perf_counter()
        batch = engine.fit_many(slices)
        t_batch = time.perf_counter() - t0
        print(
            f"engine B={batch_size:<2d}: {t_batch:6.2f} s  "
            f"({batch.stats.slices_per_second:5.1f} slices/s, "
            f"{t_serial / t_batch:4.2f}x, "
            f"p95 latency {1e3 * batch.stats.latency_p95:6.1f} ms)"
        )
        if batch_size == 8:
            max_err = max(
                float(np.max(np.abs(s.psi - b.psi)) / np.max(np.abs(s.psi)))
                for s, b in zip(serial_results, batch.results)
            )
            counters = engine.workspace_counters()
            print(
                f"\nB=8 vs serial: max relative psi deviation {max_err:.2e}; "
                f"workspace {counters.allocations} allocations / "
                f"{counters.reuses} reuses "
                f"({100 * counters.reuse_fraction:.1f}% reused)"
            )


if __name__ == "__main__":
    main()
