#!/usr/bin/env python
"""Reproduce the paper's full performance-portability study.

Sweeps OpenACC and OpenMP builds of the offloaded ``pflux_`` over
65^2 ... 513^2 grids on modeled Perlmutter (A100/NVHPC), Frontier
(MI250X GCD/CCE) and Sunspot (PVC stack/oneAPI) nodes, and prints every
table and figure of the evaluation section with the paper's published
numbers alongside.

Run:  python examples/portability_study.py
"""

from __future__ import annotations

from repro.core.report import (
    fig1_report,
    fig4_report,
    fig5_report,
    fig6_report,
    fig7_report,
    table1_report,
    table2_report,
    table4_5_report,
    table6_report,
    table7_report,
)
from repro.core.study import PortabilityStudy
from repro.machines.site import ALL_SITES


def main() -> None:
    study = PortabilityStudy(ALL_SITES())
    print("Machines under study:")
    for site in study.sites:
        print(
            f"  {site.name:10s}: {site.cpu.name} + {site.devices_per_node} x "
            f"{site.gpu.name} ({site.compiler.name} {site.compiler.version}); "
            f"break-even {site.acceleration_threshold:.1f}x"
        )
    print()

    t4, t5 = table4_5_report()
    for table in (
        table1_report(study),
        table2_report(study),
        t4,
        t5,
        table6_report(study),
        table7_report(study),
        fig1_report(study),
        fig4_report(study_fast=None),
        fig5_report(study),
        fig6_report(study),
        fig7_report(study),
    ):
        print(table.render())
        print()

    print("Legend: '*' in Figure 7 marks configurations clearing the node")
    print("throughput break-even threshold of Section 4 (16x / 8x / 8.7x).")


if __name__ == "__main__":
    main()
