#!/usr/bin/env python
"""Between-shot analysis throughput: should this machine use its GPUs?

EFIT's production pattern is embarrassingly parallel over time slices: a
shot yields hundreds of slices and a node reconstructs them concurrently,
one per core (or one per GPU in the accelerated build).  The paper's
Section 4 observation is that a GPU build therefore only pays off when one
device beats ``cores/devices`` CPU cores — 16x on Perlmutter, 8x on
Frontier, 8.7x on Sunspot.

This example simulates a 250-slice between-shot analysis at each grid size
and reports wall-clock per node for the CPU-only and GPU builds, plus the
highest-resolution grid each node can turn around inside a 10-minute
between-shot window.  (For the *real-execution* counterpart — actually
reconstructing a slice sequence through the batched Python solver — see
``examples/batch_throughput.py``.)

Run:  python examples/realtime_throughput.py
"""

from __future__ import annotations

from repro.core import paper
from repro.core.study import PortabilityStudy, cpu_fit_seconds
from repro.machines.site import ALL_SITES
from repro.utils.tables import Table, format_seconds

N_SLICES = 250
WINDOW_SECONDS = 600.0

#: Heterogeneous per-slice iteration counts ("ten or hundreds", Section 2),
#: dispatched by the greedy task farm in repro.core.timeslices.
from repro.core.timeslices import schedule_slices, synthetic_slice_counts

SLICES = synthetic_slice_counts(N_SLICES)


def node_seconds_cpu(site, n: int) -> float:
    return schedule_slices(SLICES, site.cpu.cores_per_node, cpu_fit_seconds(site, n)).makespan_seconds


def node_seconds_gpu(study, site, n: int) -> float:
    per_iter = study.gpu_fit_seconds(site, "openmp", n)
    return schedule_slices(SLICES, site.devices_per_node, per_iter).makespan_seconds


def main() -> None:
    study = PortabilityStudy(ALL_SITES())
    total_iters = sum(s.iterations for s in SLICES)
    t = Table(
        ["node", "grid", "CPU node (s)", "GPU node (s)", "GPU/CPU", "GPU wins?"],
        title=f"Between-shot analysis: {N_SLICES} slices, {total_iters} fit_ iterations total "
        "(heterogeneous, greedy task farm)",
    )
    best: dict[str, int] = {}
    for site in study.sites:
        for n in paper.GRID_SIZES:
            cpu = node_seconds_cpu(site, n)
            gpu = node_seconds_gpu(study, site, n)
            t.add_row(
                [
                    site.name,
                    f"{n}x{n}",
                    format_seconds(cpu),
                    format_seconds(gpu),
                    f"{gpu / cpu:.2f}",
                    "yes" if gpu < cpu else "no",
                ]
            )
            if min(cpu, gpu) < WINDOW_SECONDS:
                best[site.name] = n
    print(t.render())
    print(f"\nHighest resolution fitting inside a {WINDOW_SECONDS:.0f}s window:")
    for name, n in best.items():
        print(f"  {name:10s}: {n}x{n}")
    print(
        "\nWith ONLY pflux_ offloaded, whole-fit_ node throughput already\n"
        "flips to the GPUs on Frontier at 257x257+ (8 GCDs vs 64 cores);\n"
        "Perlmutter and Sunspot stay Amdahl-limited by the host-resident\n"
        "routines — exactly the paper's conclusion that 'further GPU\n"
        "acceleration of EFIT will require similar optimization of the\n"
        "other routines in fit_'."
    )


if __name__ == "__main__":
    main()
