#!/usr/bin/env python
"""Verification: the Grad-Shafranov machinery against analytic equilibria.

Exercises the numerical substrate the performance study stands on:

1. all three interior solvers reproduce a Solov'ev equilibrium to
   round-off (the conservative stencil is exact on its polynomials);
2. the Delta* operator shows clean second-order convergence on a
   non-polynomial manufactured solution;
3. the pflux_ boundary-sum + interior-solve pipeline matches direct
   Green-function superposition for a compact current blob.

Run:  python examples/solovev_verification.py
"""

from __future__ import annotations

import numpy as np

from repro.efit.greens import greens_psi
from repro.efit.grid import RZGrid
from repro.efit.operators import GradShafranovOperator
from repro.efit.pflux import PfluxVectorized
from repro.efit.solovev import SolovevEquilibrium
from repro.efit.solvers import SOLVER_NAMES, make_solver
from repro.efit.tables import cached_boundary_tables
from repro.utils.tables import Table


def solovev_exactness() -> None:
    print("1. Solov'ev exactness of the interior solvers")
    eq = SolovevEquilibrium.shaped()
    t = Table(["solver", "33x33", "65x65"], title="max |psi - psi_exact|")
    for name in SOLVER_NAMES:
        row = [name]
        for n in (33, 65):
            g = RZGrid(n, n)
            psi_exact = eq.psi(g.rr, g.zz)
            psi = make_solver(name, g).solve(eq.delta_star(g.rr, g.zz), psi_exact)
            row.append(f"{np.abs(psi - psi_exact).max():.2e}")
        t.add_row(row)
    print(t.render(), "\n")


def operator_convergence() -> None:
    print("2. Second-order convergence of the Delta* stencil")
    t = Table(["grid", "max error", "ratio"], title="Delta* on sin(2R)cos(1.5Z)")
    prev = None
    for n in (17, 33, 65, 129):
        g = RZGrid(n, n)
        op = GradShafranovOperator(g)
        psi = np.sin(2 * g.rr) * np.cos(1.5 * g.zz)
        exact = (
            -4 * np.sin(2 * g.rr) - 2 * np.cos(2 * g.rr) / g.rr - 2.25 * np.sin(2 * g.rr)
        ) * np.cos(1.5 * g.zz)
        err = np.abs(op.apply(psi) - exact)[1:-1, 1:-1].max()
        t.add_row([f"{n}x{n}", f"{err:.3e}", f"{prev / err:.2f}" if prev else "-"])
        prev = err
    print(t.render())
    print("   (ratio -> 4.0 = second order)\n")


def pflux_superposition() -> None:
    print("3. pflux_ vs direct Green-function superposition")
    g = RZGrid(41, 41)
    pflux = PfluxVectorized(g, cached_boundary_tables(g), make_solver("dst", g))
    pcurr = np.zeros(g.shape)
    pcurr[19:22, 19:22] = 1e4
    psi = pflux.compute(pcurr)
    src = np.argwhere(pcurr > 0)
    t = Table(["probe (R, Z)", "pflux_", "direct sum", "rel err"])
    for i, j in [(5, 33), (35, 6), (8, 8), (33, 35)]:
        direct = sum(
            pcurr[a, b] * greens_psi(g.r[i], g.z[j], g.r[a], g.z[b]) for a, b in src
        )
        t.add_row(
            [
                f"({g.r[i]:.2f}, {g.z[j]:+.2f})",
                f"{psi[i, j]:.6e}",
                f"{direct:.6e}",
                f"{abs(psi[i, j] - direct) / abs(direct):.1e}",
            ]
        )
    print(t.render())


def main() -> None:
    solovev_exactness()
    operator_convergence()
    pflux_superposition()


if __name__ == "__main__":
    main()
