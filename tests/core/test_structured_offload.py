"""Offload cost model under compressed boundary representations."""

from __future__ import annotations

import pytest

from repro.core.offload import (
    LOWRANK_RANK_FRACTION,
    build_pflux_registry,
    pflux_device_arrays,
)
from repro.errors import AnalysisError

STRUCTURED = ("toeplitz", "lowrank", "toeplitz-fp32", "lowrank-fp32")


def _boundary_read_bytes(registry):
    total = 0.0
    for name in ("boundary_lr", "boundary_tb"):
        nest = registry.get(name).nest
        total += sum(a.footprint_bytes for a in nest.arrays if a.name != "psi")
    return total


class TestStructuredRegistry:
    def test_nest_names_stable_across_methods(self):
        """Baseline fingerprints key on kernel names; the structured
        swap must not rename the boundary pair."""
        dense = {k.nest.name for k in build_pflux_registry(65)}
        for method in STRUCTURED:
            reg = build_pflux_registry(65, boundary_method=method)
            assert {k.nest.name for k in reg} == dense

    def test_dense_registry_unchanged_by_default(self):
        reg = build_pflux_registry(65)
        assert reg.get("boundary_lr").complexity == "O(N^3)"
        arrays = {a.name for a in reg.get("boundary_tb").nest.arrays}
        assert "gridpc" in arrays

    @pytest.mark.parametrize("method", STRUCTURED)
    def test_structured_boundary_is_grid_class(self, method):
        reg = build_pflux_registry(65, boundary_method=method)
        assert reg.get("boundary_lr").complexity == "O(N^2)"
        assert reg.get("boundary_tb").complexity == "O(N^2)"

    def test_compressed_footprints_shrink(self):
        dense = _boundary_read_bytes(build_pflux_registry(257))
        lowrank = _boundary_read_bytes(
            build_pflux_registry(257, boundary_method="lowrank")
        )
        lowrank32 = _boundary_read_bytes(
            build_pflux_registry(257, boundary_method="lowrank-fp32")
        )
        toeplitz = _boundary_read_bytes(
            build_pflux_registry(257, boundary_method="toeplitz")
        )
        assert lowrank < toeplitz < dense
        assert lowrank32 < lowrank

    def test_modeled_rank_matches_measured_calibration(self):
        """The count-only model prices r̄ = max(4, 0.12*(nw-2)); pin the
        constant so a silent recalibration shows up in review."""
        assert LOWRANK_RANK_FRACTION == pytest.approx(0.12)

    def test_unknown_method_raises(self):
        with pytest.raises(AnalysisError, match="butterfly"):
            build_pflux_registry(65, boundary_method="butterfly")


class TestStructuredDeviceArrays:
    @pytest.mark.parametrize("method", STRUCTURED)
    def test_names_cover_nest_arrays(self, method):
        """Every array a boundary nest touches must exist in the device
        environment, or the implicit-transfer rule fires on our own
        model."""
        env = {a.name for a in pflux_device_arrays(65, boundary_method=method)}
        reg = build_pflux_registry(65, boundary_method=method)
        for name in ("boundary_lr", "boundary_tb"):
            refs = {a.name for a in reg.get(name).nest.arrays}
            assert refs <= env, f"{method}/{name}: {refs - env} not staged"

    def test_green_table_replaced_not_duplicated(self):
        env = {a.name for a in pflux_device_arrays(65, boundary_method="lowrank")}
        assert "gridpc" not in env
        assert {"edge_spectra", "pcurr_hat", "edge_u", "edge_w"} <= env

    def test_resident_bytes_shrink_with_compression(self):
        def resident(method):
            return sum(
                a.nbytes
                for a in pflux_device_arrays(257, boundary_method=method)
                if a.persistent
            )

        assert resident("lowrank") < resident("dense")
        assert resident("lowrank-fp32") < resident("lowrank")


class TestAnalyzerThreading:
    @pytest.mark.parametrize("method", ("dense", "lowrank", "toeplitz-fp32"))
    def test_full_analysis_clean_under_committed_baseline(self, method):
        """The committed-baseline CI job runs dense; the structured
        variants must be equally clean under the same suppressions (no
        new implicit transfers, no new traffic blowups) or the
        boundary_method knob is a trap."""
        from repro.analysis.baseline import Baseline
        from repro.analysis.engine import AnalysisConfig, analyze_repo

        baseline = Baseline.load("analysis-baseline.json")
        report = analyze_repo(AnalysisConfig(boundary_method=method))
        fresh = [f for f in report.findings if not baseline.is_suppressed(f)]
        assert fresh == []

    def test_config_field_reaches_registry(self):
        from repro.analysis.engine import AnalysisConfig

        config = AnalysisConfig(boundary_method="lowrank")
        assert config.boundary_method == "lowrank"
        with pytest.raises(AnalysisError):
            build_pflux_registry(
                config.grid, boundary_method="not-" + config.boundary_method
            )
