"""Tests of the full-offload projection (paper future work)."""

import pytest

from repro.core.extension import project_full_offload
from repro.core.report import extension_report
from repro.core.study import PortabilityStudy
from repro.errors import CalibrationError
from repro.machines.site import ALL_SITES


@pytest.fixture(scope="module")
def study():
    return PortabilityStudy(ALL_SITES())


class TestProjection:
    def test_full_offload_always_faster(self, study):
        for name in ("perlmutter", "frontier", "sunspot"):
            p = project_full_offload(study, study.site(name), "openmp", 513)
            assert p.fit_seconds_full < p.fit_seconds_pflux_only
            assert p.fit_speedup_full > p.fit_speedup_pflux_only

    def test_perlmutter_clears_bar_only_after_full_offload(self, study):
        """The punchline: pflux_-only offload leaves Perlmutter's *fit_*
        below its 16x break-even (Amdahl); offloading the rest clears it."""
        site = study.site("perlmutter")
        p = project_full_offload(study, site, "openmp", 513)
        assert p.fit_speedup_pflux_only < site.acceleration_threshold
        assert p.fit_speedup_full > site.acceleration_threshold
        assert p.clears_threshold

    def test_amdahl_consistency(self, study):
        """The projected full-offload speedup must respect the Amdahl cap
        set by the remaining host fraction."""
        from repro.core.speedup import amdahl_limit
        from repro.core.study import cpu_fit_seconds

        site = study.site("frontier")
        p = project_full_offload(study, site, "openmp", 513)
        baseline = cpu_fit_seconds(site, 513)
        host_fraction_acc = 1.0 - p.host_remainder_seconds / baseline
        assert p.fit_speedup_full < amdahl_limit(host_fraction_acc)

    def test_host_remainder_positive(self, study):
        """The serial slice of steps_ + LSQ never disappears."""
        p = project_full_offload(study, study.site("sunspot"), "openmp", 257)
        assert p.other_device_seconds > 0
        assert p.host_remainder_seconds > 0

    def test_unbuildable_model_rejected(self, study):
        with pytest.raises(CalibrationError):
            project_full_offload(study, study.site("sunspot"), "openacc", 257)

    def test_report_renders(self, study):
        text = extension_report(study, n=257).render()
        assert "full offload" in text and "clears node bar?" in text
