"""Tests of the offloaded pflux_: numerics identical, model charged."""

import numpy as np
import pytest

from repro.compilers.flags import parse_flags
from repro.core.offload import (
    OffloadedPflux,
    PfluxOffloadModel,
    build_pflux_registry,
    pflux_device_arrays,
)
from repro.efit.fitting import EfitSolver
from repro.efit.pflux import PfluxVectorized
from repro.efit.solvers import make_solver
from repro.efit.tables import cached_boundary_tables
from repro.machines.site import frontier, perlmutter, sunspot
from repro.runtime.memory import Direction


def build_for(site, model="openmp"):
    return site.compiler.configure(parse_flags(site.flags(model)), site.env, site.gpu)


class TestDeviceArrays:
    def test_array_population(self):
        arrays = pflux_device_arrays(65)
        names = [a.name for a in arrays]
        assert "gridpc" in names and "pcurr" in names and "psi" in names
        scratch = [a for a in arrays if a.direction is Direction.SCRATCH]
        from repro.calibration import TEMP_WORK_ARRAYS

        assert len(scratch) == TEMP_WORK_ARRAYS
        assert all(not a.persistent for a in scratch)

    def test_gridpc_is_the_big_one(self):
        arrays = {a.name: a for a in pflux_device_arrays(513)}
        assert arrays["gridpc"].nbytes == pytest.approx(513**3 * 8)
        assert arrays["gridpc"].nbytes > 1e9  # the unified-memory stressor


class TestOffloadModel:
    def test_steady_state_cheaper_than_first_call(self):
        model = PfluxOffloadModel(129, 129, build_for(perlmutter()))
        first = model.invoke()["__total__"]
        second = model.invoke()["__total__"]
        assert second < first  # Green tables staged once

    def test_per_kernel_times_positive_and_sum(self):
        model = PfluxOffloadModel(65, 65, build_for(frontier()))
        per = model.invoke()
        total = per.pop("__total__")
        assert all(v > 0 for v in per.values())
        assert sum(per.values()) <= total + 1e-12

    def test_all_registry_kernels_launched(self):
        model = PfluxOffloadModel(65, 65, build_for(perlmutter()))
        per = model.invoke()
        for kernel in build_pflux_registry(65):
            assert kernel.name in per

    def test_amd_uses_wavefront_vector_length(self):
        model = PfluxOffloadModel(65, 65, build_for(frontier(), "openacc"))
        acc = model.registry.get("boundary_lr").acc_directives[0]
        assert acc.vector_length == 64
        nvidia = PfluxOffloadModel(65, 65, build_for(perlmutter(), "openacc"))
        assert nvidia.registry.get("boundary_lr").acc_directives[0].vector_length == 32

    def test_intel_counts_host_transfers(self):
        model = PfluxOffloadModel(65, 65, build_for(sunspot()))
        model.invoke()
        model.invoke()
        assert model.executor.counters.h2d_bytes > 0
        assert model.executor.counters.d2h_bytes > 0


class TestOffloadedPfluxNumerics:
    @pytest.fixture(scope="class")
    def pieces(self):
        from repro.efit.grid import RZGrid

        g = RZGrid(17, 19)
        tables = cached_boundary_tables(g)
        solver = make_solver("direct", g)
        return g, tables, solver

    def test_bitwise_match_with_cpu_path(self, pieces, rng):
        g, tables, solver = pieces
        cpu = PfluxVectorized(g, tables, solver)
        gpu = OffloadedPflux(g, tables, solver, build_for(perlmutter()))
        pcurr = rng.normal(size=g.shape) * 1e3
        ext = rng.normal(size=g.shape)
        assert np.array_equal(cpu.compute(pcurr, ext), gpu.compute(pcurr, ext))

    def test_virtual_time_accumulates(self, pieces, rng):
        g, tables, solver = pieces
        gpu = OffloadedPflux(g, tables, solver, build_for(frontier()))
        pcurr = rng.normal(size=g.shape)
        gpu.compute(pcurr)
        t1 = gpu.modeled_seconds
        gpu.compute(pcurr)
        assert gpu.modeled_seconds > t1
        assert gpu.last_invocation["__total__"] > 0

    def test_full_reconstruction_through_offloaded_pflux(self, shot33):
        """EfitSolver with the GPU pflux_ converges to the same answer as
        the CPU build — the end-to-end 'same physics on the device' check."""
        g = shot33.grid
        tables = cached_boundary_tables(g)
        solver = make_solver("dst", g)
        gpu_pflux = OffloadedPflux(g, tables, solver, build_for(perlmutter()))
        cpu_fit = EfitSolver(shot33.machine, shot33.diagnostics, g).fit(shot33.measurements)
        gpu_fit = EfitSolver(
            shot33.machine, shot33.diagnostics, g, pflux_impl=gpu_pflux
        ).fit(shot33.measurements)
        assert gpu_fit.iterations == cpu_fit.iterations
        assert np.allclose(gpu_fit.psi, cpu_fit.psi, rtol=1e-12, atol=1e-14)
        # and the device model charged one invocation per Picard iterate
        assert gpu_pflux.model.executor.counters.kernel("boundary_lr").launches == gpu_fit.iterations


class TestCapacity:
    def test_paper_grids_fit_everywhere(self):
        for site in (perlmutter(), frontier(), sunspot()):
            b = build_for(site, site.models[0])
            for n in (65, 513):
                PfluxOffloadModel(n, n, b)

    def test_oversized_grid_rejected(self):
        """2049^2 needs a 68 GB Green table: over the A100's 40 GiB."""
        from repro.errors import RuntimeModelError

        with pytest.raises(RuntimeModelError):
            PfluxOffloadModel(2049, 2049, build_for(perlmutter()))

    def test_1025_fits_on_mi250x_but_not_a100_with_headroom(self):
        """1025^2 Green tables are 8.6 GB: fine on every paper device."""
        PfluxOffloadModel(1025, 1025, build_for(frontier()))
        PfluxOffloadModel(1025, 1025, build_for(perlmutter()))
