"""Tests of the time-slice scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeslices import (
    ScheduleResult,
    TimeSlice,
    schedule_slices,
    synthetic_slice_counts,
)
from repro.errors import ReproError


class TestSliceGeneration:
    def test_deterministic(self):
        a = synthetic_slice_counts(50)
        b = synthetic_slice_counts(50)
        assert a == b

    def test_paper_iteration_range(self):
        """'ten or hundreds of iterations' (Section 2)."""
        slices = synthetic_slice_counts(500)
        counts = np.array([s.iterations for s in slices])
        assert counts.min() >= 10
        assert counts.max() <= 400
        assert counts.max() / counts.min() > 3  # genuinely heterogeneous

    def test_validation(self):
        with pytest.raises(ReproError):
            synthetic_slice_counts(0)
        with pytest.raises(ReproError):
            synthetic_slice_counts(5, spread=2.5)
        with pytest.raises(ReproError):
            TimeSlice(0, 0)


class TestScheduling:
    def test_single_worker_is_serial(self):
        slices = synthetic_slice_counts(20)
        res = schedule_slices(slices, 1, 0.01)
        total = sum(s.iterations for s in slices) * 0.01
        assert res.makespan_seconds == pytest.approx(total)
        assert res.utilisation == pytest.approx(1.0)

    def test_all_slices_assigned_once(self):
        slices = synthetic_slice_counts(37)
        res = schedule_slices(slices, 8, 0.01)
        assigned = sorted(i for a in res.assignments for i in a)
        assert assigned == list(range(37))

    def test_lower_and_upper_makespan_bounds(self):
        """Greedy scheduling: total/P <= makespan <= total/P + max."""
        slices = synthetic_slice_counts(100)
        total = sum(s.iterations for s in slices) * 0.01
        longest = max(s.iterations for s in slices) * 0.01
        for p in (2, 8, 64):
            res = schedule_slices(slices, p, 0.01)
            assert res.makespan_seconds >= total / p - 1e-9
            assert res.makespan_seconds <= total / p + longest + 1e-9

    def test_lpt_no_worse_than_fifo(self):
        slices = synthetic_slice_counts(100)
        lpt = schedule_slices(slices, 8, 0.01, sort_longest_first=True)
        fifo = schedule_slices(slices, 8, 0.01, sort_longest_first=False)
        assert lpt.makespan_seconds <= fifo.makespan_seconds * 1.001

    def test_more_workers_never_slower(self):
        slices = synthetic_slice_counts(64)
        spans = [
            schedule_slices(slices, p, 0.01).makespan_seconds for p in (1, 4, 16, 64)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(spans, spans[1:]))

    def test_validation(self):
        slices = synthetic_slice_counts(4)
        with pytest.raises(ReproError):
            schedule_slices(slices, 0, 0.01)
        with pytest.raises(ReproError):
            schedule_slices(slices, 2, 0.0)
        with pytest.raises(ReproError):
            schedule_slices((), 2, 0.01)

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, n, p):
        slices = synthetic_slice_counts(n, seed=n)
        res = schedule_slices(slices, p, 0.001)
        total = sum(s.iterations for s in slices) * 0.001
        assert res.worker_seconds.sum() == pytest.approx(total)


class TestNodeComparison:
    def test_gpu_node_beats_cpu_node_at_high_resolution(self):
        """The paper's throughput argument with heterogeneous slices:
        at 513^2, 8 Frontier GCDs beat 64 host cores."""
        from repro.core.study import PortabilityStudy, cpu_fit_seconds
        from repro.machines.site import frontier

        site = frontier()
        study = PortabilityStudy((site,))
        slices = synthetic_slice_counts(200)
        cpu = schedule_slices(slices, site.cpu.cores_per_node, cpu_fit_seconds(site, 513))
        gpu = schedule_slices(
            slices,
            site.devices_per_node,
            study.gpu_fit_seconds(site, "openmp", 513),
        )
        assert gpu.makespan_seconds < cpu.makespan_seconds

    def test_cpu_node_wins_at_low_resolution(self):
        from repro.core.study import PortabilityStudy, cpu_fit_seconds
        from repro.machines.site import frontier

        site = frontier()
        study = PortabilityStudy((site,))
        slices = synthetic_slice_counts(200)
        cpu = schedule_slices(slices, site.cpu.cores_per_node, cpu_fit_seconds(site, 65))
        gpu = schedule_slices(
            slices, site.devices_per_node, study.gpu_fit_seconds(site, "openmp", 65)
        )
        assert cpu.makespan_seconds < gpu.makespan_seconds
