"""Cross-configuration invariants of the whole performance model.

Sweeps every buildable (site, model, grid) combination and checks the
internal consistency the individual calibration tests take for granted:
times positive and additive, counters consistent with repeat invocations,
speedups consistent with the CPU model, determinism across rebuilds.
"""

import pytest

from repro.core.study import PortabilityStudy, cpu_fit_seconds, cpu_pflux_seconds
from repro.machines.site import ALL_SITES

GRIDS = (65, 129)


def _configs():
    for site in ALL_SITES():
        for model in site.models:
            for n in GRIDS:
                yield pytest.param(site, model, n, id=f"{site.name}-{model}-{n}")


@pytest.fixture(scope="module")
def study():
    return PortabilityStudy(ALL_SITES(), grid_sizes=GRIDS)


@pytest.mark.parametrize("site,model,n", list(_configs()))
class TestEveryConfiguration:
    def test_time_positive_and_kernels_add_up(self, study, site, model, n):
        r = study.gpu_pflux(study.site(site.name), model, n)
        assert r.seconds > 0
        assert sum(r.per_kernel.values()) <= r.seconds * (1 + 1e-9)
        assert r.boundary_seconds > 0

    def test_speedup_definition(self, study, site, model, n):
        s = study.site(site.name)
        r = study.gpu_pflux(s, model, n)
        assert r.speedup == pytest.approx(cpu_pflux_seconds(s, n) / r.seconds)

    def test_counters_positive(self, study, site, model, n):
        r = study.gpu_pflux(study.site(site.name), model, n)
        assert r.boundary_dram_bytes > 0
        # Unified-memory sites move pcurr/psi per call; Intel maps them.
        assert r.h2d_bytes > 0
        assert r.d2h_bytes > 0

    def test_fit_bounds(self, study, site, model, n):
        """GPU fit_ is bounded below by its pflux_ and above by CPU fit_
        at the sizes where offload pays (here acceleration may be < 1 at
        65^2; only check the lower bound and internal ordering)."""
        s = study.site(site.name)
        fit = study.gpu_fit_seconds(s, model, n)
        pflux = study.gpu_pflux(s, model, n).seconds
        assert fit > pflux
        shares = study.fit_breakdown_gpu(s, model, n)
        assert shares["pflux_"] == pytest.approx(pflux / fit)


class TestMonotonicity:
    def test_gpu_time_grows_with_grid(self, study):
        for site in study.sites:
            for model in site.models:
                t65 = study.gpu_pflux(site, model, 65).seconds
                t129 = study.gpu_pflux(site, model, 129).seconds
                assert t129 > t65

    def test_cpu_models_grow_with_grid(self, study):
        for site in study.sites:
            assert cpu_pflux_seconds(site, 129) > cpu_pflux_seconds(site, 65)
            assert cpu_fit_seconds(site, 129) > cpu_fit_seconds(site, 65)

    def test_optimized_cpu_faster(self, study):
        for site in study.sites:
            for n in GRIDS:
                assert cpu_pflux_seconds(site, n, optimized=True) < cpu_pflux_seconds(site, n)


class TestDeterminism:
    def test_identical_across_fresh_studies(self):
        a = PortabilityStudy(ALL_SITES(), grid_sizes=(65,))
        b = PortabilityStudy(ALL_SITES(), grid_sizes=(65,))
        for site_a, site_b in zip(a.sites, b.sites):
            for model in site_a.models:
                ra = a.gpu_pflux(site_a, model, 65)
                rb = b.gpu_pflux(site_b, model, 65)
                assert ra.seconds == rb.seconds
                assert ra.per_kernel == rb.per_kernel
                assert ra.page_faults == rb.page_faults


class TestNonPaperGrids:
    """The model is a smooth function of N, not a lookup of the four
    paper sizes: intermediate grids interpolate sensibly."""

    def test_intermediate_grid_times_bracketed(self):
        study = PortabilityStudy(ALL_SITES(), grid_sizes=(65, 97, 129))
        for site in study.sites:
            for model in site.models:
                t65 = study.gpu_pflux(site, model, 65).seconds
                t97 = study.gpu_pflux(site, model, 97).seconds
                t129 = study.gpu_pflux(site, model, 129).seconds
                assert t65 < t97 < t129

    def test_rectangular_grid_supported(self):
        from repro.compilers.flags import parse_flags
        from repro.core.offload import PfluxOffloadModel

        site = ALL_SITES()[0]
        build = site.compiler.configure(
            parse_flags(site.flags("openmp")), site.env, site.gpu
        )
        model = PfluxOffloadModel(65, 129, build)
        per = model.invoke()
        assert per["__total__"] > 0

    def test_cpu_model_smooth(self):
        site = ALL_SITES()[2]  # Sunspot has the cache crossover
        times = [cpu_pflux_seconds(site, n) for n in (65, 97, 129, 193, 257)]
        assert all(a < b for a, b in zip(times, times[1:]))
