"""Tests of the study driver, speedup accounting and report rendering."""

import pytest

from repro.core import paper
from repro.core.report import (
    fig1_report,
    fig4_report,
    fig5_report,
    fig6_report,
    fig7_report,
    table1_report,
    table2_report,
    table4_5_report,
    table6_report,
    table7_report,
)
from repro.core.speedup import (
    amdahl_limit,
    amdahl_speedup,
    meets_threshold,
    node_throughput_ratio,
)
from repro.core.study import PortabilityStudy, cpu_nonpflux_seconds
from repro.errors import CalibrationError
from repro.machines.site import ALL_SITES, perlmutter


@pytest.fixture(scope="module")
def study():
    return PortabilityStudy(ALL_SITES(), grid_sizes=(65, 129))


class TestStudy:
    def test_site_lookup(self, study):
        assert study.site("frontier").name == "frontier"
        with pytest.raises(CalibrationError):
            study.site("summit")

    def test_results_cached(self, study):
        a = study.gpu_pflux(study.site("perlmutter"), "openmp", 65)
        b = study.gpu_pflux(study.site("perlmutter"), "openmp", 65)
        assert a is b

    def test_deterministic_across_instances(self):
        s1 = PortabilityStudy(ALL_SITES(), grid_sizes=(65,))
        s2 = PortabilityStudy(ALL_SITES(), grid_sizes=(65,))
        r1 = s1.gpu_pflux(s1.site("frontier"), "openmp", 65)
        r2 = s2.gpu_pflux(s2.site("frontier"), "openmp", 65)
        assert r1.seconds == r2.seconds
        assert r1.boundary_dram_bytes == r2.boundary_dram_bytes

    def test_sweep_models_skips_unbuildable(self, study):
        out = study.sweep_models(study.site("sunspot"))
        assert set(out) == {"openmp"}  # no OpenACC on Intel
        out = study.sweep_models(study.site("perlmutter"))
        assert set(out) == {"openacc", "openmp"}

    def test_gpu_fit_exceeds_pflux(self, study):
        site = study.site("perlmutter")
        pflux = study.gpu_pflux(site, "openmp", 129).seconds
        fit = study.gpu_fit_seconds(site, "openmp", 129)
        assert fit > pflux
        assert fit - pflux < cpu_nonpflux_seconds(site, 129)

    def test_breakdown_shares_sum_to_one(self, study):
        shares = study.fit_breakdown_gpu(study.site("frontier"), "openmp", 129)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_speedup_summary_keys(self, study):
        series = study.speedup_summary(study.site("perlmutter"))
        assert {"cpu_optimized", "openacc", "openmp"} <= set(series)

    def test_nonpflux_unknown_site(self):
        from repro.machines.site import MachineSite
        import dataclasses

        site = dataclasses.replace(perlmutter(), name="summit")
        with pytest.raises(CalibrationError):
            cpu_nonpflux_seconds(site, 65)

    def test_result_boundary_seconds_subset(self, study):
        r = study.gpu_pflux(study.site("frontier"), "openmp", 129)
        assert 0 < r.boundary_seconds < r.seconds


class TestSpeedupMath:
    def test_amdahl_limit_ninety_percent(self):
        """Figure 1 discussion: 90% pflux_ caps fit_ speedup near 10x;
        the paper quotes 16x for its Perlmutter share."""
        assert amdahl_limit(0.9) == pytest.approx(10.0)

    def test_amdahl_speedup_bounds(self):
        s = amdahl_speedup(0.9, 70.0)
        assert 1.0 < s < amdahl_limit(0.9)

    def test_amdahl_validation(self):
        with pytest.raises(CalibrationError):
            amdahl_limit(1.0)
        with pytest.raises(CalibrationError):
            amdahl_speedup(0.5, 0.0)
        with pytest.raises(CalibrationError):
            amdahl_speedup(1.5, 2.0)

    def test_threshold_semantics(self):
        site = perlmutter()
        assert not meets_threshold(site, 15.9)
        assert meets_threshold(site, 16.0)

    def test_node_throughput_ratio(self):
        site = perlmutter()  # 64 cores, 4 devices
        assert node_throughput_ratio(site, 16.0) == pytest.approx(1.0)
        assert node_throughput_ratio(site, 32.0) == pytest.approx(2.0)
        with pytest.raises(CalibrationError):
            node_throughput_ratio(site, -1.0)


class TestReports:
    """Reports must render and contain both model and paper rows."""

    def test_table1(self, study):
        text = table1_report(study).render()
        assert "model" in text and "paper" in text and "perlmutter" in text

    def test_table2(self, study):
        text = table2_report(study).render()
        assert "% fit_" in text

    def test_table4_5_counts(self):
        t4, t5 = table4_5_report()
        assert "!$acc kernel" in t4.render()
        assert "!$omp target teams distribute reduction" in t5.render()

    def test_table6_and_7(self, study):
        assert "NVIDIA" in table6_report(study).render()
        t7 = table7_report(study).render()
        assert "Intel" in t7 and "AMD" in t7

    def test_fig_reports_render(self, study):
        assert "pflux_" in fig1_report(study, n=129).render()
        assert "gain" in fig4_report().render()
        assert "1.60x" in fig5_report(study, n=129).render() or "x" in fig5_report(study, n=129).render()
        assert "paper" in fig6_report(study, n=129).render().lower()
        assert "cpu optimized" in fig7_report(study).render()

    def test_fig5_ratio_columns(self, study):
        text = fig5_report(study, n=129).render()
        assert "AMD openacc" in text


class TestRooflineReport:
    def test_renders_all_kernels(self, study):
        from repro.core.report import roofline_report

        text = roofline_report(study, "perlmutter", "openmp", n=129).render()
        for name in ("boundary_lr", "boundary_tb", "solver_fast", "assemble"):
            assert name in text

    def test_achieved_below_attainable(self, study):
        """No kernel may exceed its roofline bound — a consistency check
        on the whole cost model."""
        from repro.core.offload import build_pflux_registry
        from repro.hardware.roofline import attainable_gflops

        site = study.site("frontier")
        result = study.gpu_pflux(site, "openmp", 129)
        for kernel in build_pflux_registry(129):
            seconds = result.per_kernel[kernel.name]
            achieved = kernel.nest.total_flops / seconds / 1e9
            ai = kernel.nest.total_flops / max(kernel.nest.streaming_bytes, 1.0)
            assert achieved <= attainable_gflops(site.gpu, ai) * 1.001

    def test_amd_acc_boundary_far_below_nvidia_omp(self, study):
        """The roofline view of the portability story."""
        from repro.core.offload import build_pflux_registry

        reg = build_pflux_registry(129)
        k = reg.get("boundary_lr")
        nv = study.gpu_pflux(study.site("perlmutter"), "openmp", 129)
        amd = study.gpu_pflux(study.site("frontier"), "openacc", 129)
        gf_nv = k.nest.total_flops / nv.per_kernel["boundary_lr"]
        gf_amd = k.nest.total_flops / amd.per_kernel["boundary_lr"]
        # The gap widens with N (4x+ at 513^2); at 129^2 NVIDIA is still
        # occupancy-limited, so require a modest factor only.
        assert gf_nv > 1.5 * gf_amd
