"""Paper-reproduction assertions: every table and figure, model vs paper.

These are the acceptance tests of the whole reproduction (DESIGN.md
"success criteria"): absolute times within a factor, and — more
importantly — every qualitative claim of the paper (orderings, crossover
points, saturation, traffic ratios) reproduced exactly.
"""

import pytest

from repro.core import paper
from repro.core.speedup import meets_threshold
from repro.core.study import (
    PortabilityStudy,
    cpu_fit_seconds,
    cpu_pflux_seconds,
    fit_breakdown_cpu,
)
from repro.machines.site import ALL_SITES, frontier
from repro.utils.stats import within_factor


@pytest.fixture(scope="module")
def study():
    return PortabilityStudy(ALL_SITES())


class TestTable1:
    @pytest.mark.parametrize("site_name", ["perlmutter", "frontier", "sunspot"])
    @pytest.mark.parametrize("n", paper.GRID_SIZES)
    def test_cpu_fit_times(self, study, site_name, n):
        model = cpu_fit_seconds(study.site(site_name), n)
        assert within_factor(model, paper.TABLE1_FIT_CPU[site_name][n], 1.45)


class TestTable2:
    @pytest.mark.parametrize("site_name", ["perlmutter", "frontier", "sunspot"])
    @pytest.mark.parametrize("n", paper.GRID_SIZES)
    def test_cpu_pflux_times(self, study, site_name, n):
        model = cpu_pflux_seconds(study.site(site_name), n)
        assert within_factor(model, paper.TABLE2_PFLUX_CPU[site_name][n], 1.35)

    @pytest.mark.parametrize("site_name", ["perlmutter", "frontier", "sunspot"])
    def test_pflux_share_grows_with_grid(self, study, site_name):
        site = study.site(site_name)
        shares = [
            cpu_pflux_seconds(site, n) / cpu_fit_seconds(site, n) for n in paper.GRID_SIZES
        ]
        assert all(a < b for a, b in zip(shares, shares[1:]))
        assert shares[-1] > 0.85  # ~90% at 513^2

    @pytest.mark.parametrize("site_name", ["perlmutter", "frontier", "sunspot"])
    @pytest.mark.parametrize("n", paper.GRID_SIZES)
    def test_pflux_share_values(self, study, site_name, n):
        site = study.site(site_name)
        share = cpu_pflux_seconds(site, n) / cpu_fit_seconds(site, n)
        assert share == pytest.approx(paper.TABLE2_PFLUX_SHARE[site_name][n], abs=0.10)


class TestTable6OpenACC:
    @pytest.mark.parametrize("site_name", ["perlmutter", "frontier"])
    @pytest.mark.parametrize("n", paper.GRID_SIZES)
    def test_times(self, study, site_name, n):
        r = study.gpu_pflux(study.site(site_name), "openacc", n)
        assert within_factor(r.seconds, paper.TABLE6_ACC_TIME[site_name][n], 1.5)

    def test_amd_saturates_nvidia_does_not(self, study):
        """'AMD sees acceleration saturate around 257x257 grids, whereas
        NVIDIA continues to see increased acceleration.'"""
        amd = [study.gpu_pflux(study.site("frontier"), "openacc", n).speedup for n in paper.GRID_SIZES]
        nv = [study.gpu_pflux(study.site("perlmutter"), "openacc", n).speedup for n in paper.GRID_SIZES]
        assert amd[3] / amd[2] < 1.35  # saturated
        assert nv[3] / nv[2] > 1.6  # still climbing

    def test_amd_underperforms_nvidia(self, study):
        for n in paper.GRID_SIZES[1:]:
            amd = study.gpu_pflux(study.site("frontier"), "openacc", n)
            nv = study.gpu_pflux(study.site("perlmutter"), "openacc", n)
            assert amd.seconds > nv.seconds

    def test_amd_runtime_grows_cubically(self, study):
        """'nearly 8x increase in run times when doubling the grid
        dimension suggests ... AMD is dominated by the O(N^3) loop nests'."""
        t257 = study.gpu_pflux(study.site("frontier"), "openacc", 257).seconds
        t513 = study.gpu_pflux(study.site("frontier"), "openacc", 513).seconds
        assert t513 / t257 > 5.5


class TestTable7OpenMP:
    @pytest.mark.parametrize("site_name", ["perlmutter", "frontier", "sunspot"])
    @pytest.mark.parametrize("n", paper.GRID_SIZES)
    def test_times(self, study, site_name, n):
        r = study.gpu_pflux(study.site(site_name), "openmp", n)
        assert within_factor(r.seconds, paper.TABLE7_OMP_TIME[site_name][n], 1.5)

    def test_headline_speedups(self, study):
        """~70x NVIDIA, ~56x AMD, ~13x Intel at 513^2."""
        nv = study.gpu_pflux(study.site("perlmutter"), "openmp", 513).speedup
        amd = study.gpu_pflux(study.site("frontier"), "openmp", 513).speedup
        intel = study.gpu_pflux(study.site("sunspot"), "openmp", 513).speedup
        assert within_factor(nv, 70.0, 1.3)
        assert within_factor(amd, 56.0, 1.3)
        assert within_factor(intel, 13.0, 1.3)

    def test_intel_below_breakeven_at_65(self, study):
        """Table 7: 0.35x at 65x65 — the GPU is slower than one core."""
        assert study.gpu_pflux(study.site("sunspot"), "openmp", 65).speedup < 1.0

    def test_amd_openmp_beats_openacc_4x_at_513(self, study):
        """'AMD OpenMP performance is substantially faster than AMD OpenACC
        — nearly 4x for the largest grid.'"""
        site = study.site("frontier")
        acc = study.gpu_pflux(site, "openacc", 513).seconds
        omp = study.gpu_pflux(site, "openmp", 513).seconds
        assert 3.0 < acc / omp < 6.0

    def test_nvidia_openmp_tracks_openacc(self, study):
        """'NVIDIA OpenMP run time nearly perfectly matches NVIDIA OpenACC.'"""
        site = study.site("perlmutter")
        for n in paper.GRID_SIZES:
            acc = study.gpu_pflux(site, "openacc", n).seconds
            omp = study.gpu_pflux(site, "openmp", n).seconds
            # the paper's own numbers differ by up to 1.3x at 129^2
            assert within_factor(acc, omp, 1.40)

    def test_amd_attains_70pct_of_nvidia(self, study):
        """Table 7 caption: AMD OpenMP attains over 70% of NVIDIA perf."""
        nv = study.gpu_pflux(study.site("perlmutter"), "openmp", 513).seconds
        amd = study.gpu_pflux(study.site("frontier"), "openmp", 513).seconds
        assert nv / amd > 0.60

    def test_speedup_increases_with_grid_everywhere(self, study):
        for name in ("perlmutter", "frontier", "sunspot"):
            s = [study.gpu_pflux(study.site(name), "openmp", n).speedup for n in paper.GRID_SIZES]
            assert all(a < b for a, b in zip(s, s[1:]))


class TestFigure4:
    def test_system_alloc_gains(self):
        """'run-time for small size problems got between 10x to 2x faster'."""
        fast = PortabilityStudy((frontier(),))
        slow = PortabilityStudy((frontier(system_alloc=False),))
        gains = {}
        for n in paper.GRID_SIZES:
            f = fast.gpu_pflux(fast.sites[0], "openmp", n).seconds
            s = slow.gpu_pflux(slow.sites[0], "openmp", n).seconds
            gains[n] = s / f
        assert gains[65] > 5.0
        assert gains[257] > 1.7
        assert gains[513] < 2.0
        assert gains[65] > gains[129] > gains[257] > gains[513]

    def test_gain_applies_to_both_models(self):
        fast = PortabilityStudy((frontier(),))
        slow = PortabilityStudy((frontier(system_alloc=False),))
        for model in ("openacc", "openmp"):
            f = fast.gpu_pflux(fast.sites[0], model, 65).seconds
            s = slow.gpu_pflux(slow.sites[0], model, 65).seconds
            assert s / f > 1.5


class TestFigure5:
    def test_traffic_ratios(self, study):
        nv_omp = study.gpu_pflux(study.site("perlmutter"), "openmp", 513).boundary_dram_bytes
        nv_acc = study.gpu_pflux(study.site("perlmutter"), "openacc", 513).boundary_dram_bytes
        amd_omp = study.gpu_pflux(study.site("frontier"), "openmp", 513).boundary_dram_bytes
        amd_acc = study.gpu_pflux(study.site("frontier"), "openacc", 513).boundary_dram_bytes
        assert nv_acc / nv_omp == pytest.approx(paper.FIG5_ACC_OVER_OMP["perlmutter"], rel=0.05)
        assert amd_acc / amd_omp == pytest.approx(paper.FIG5_ACC_OVER_OMP["frontier"], rel=0.05)

    def test_openmp_traffic_comparable_across_vendors(self, study):
        """'OpenMP is moving a similar amount of data from HBM on NVIDIA,
        AMD and Intel.'"""
        vals = [
            study.gpu_pflux(study.site(name), "openmp", 513).boundary_dram_bytes
            for name in ("perlmutter", "frontier", "sunspot")
        ]
        assert max(vals) / min(vals) < 1.25


class TestFigure6:
    @pytest.mark.parametrize("site_name", ["perlmutter", "frontier", "sunspot"])
    def test_pflux_share_after_offload(self, study, site_name):
        shares = study.fit_breakdown_gpu(study.site(site_name), "openmp", 513)
        assert shares["pflux_"] == pytest.approx(
            paper.FIG6_PFLUX_SHARE_GPU[site_name], abs=0.05
        )

    def test_share_reduced_below_half_everywhere(self, study):
        """'reducing its contribution from 90% to under 50% on all
        architectures.'"""
        for site in study.sites:
            assert study.fit_breakdown_gpu(site, "openmp", 513)["pflux_"] < 0.5


class TestFigure1:
    def test_cpu_breakdown_pflux_dominates(self, study):
        for site in study.sites:
            shares = fit_breakdown_cpu(site, 513)
            assert shares["pflux_"] > 0.85
            assert sum(shares.values()) == pytest.approx(1.0)


class TestThresholds:
    def test_breakeven_grids_match_section62(self, study):
        """OpenMP clears the node break-even bar at 257+ on Perlmutter and
        Sunspot, and already at 129+ on Frontier."""
        table = {
            "perlmutter": {65: False, 129: False, 257: True, 513: True},
            "frontier": {65: False, 129: True, 257: True, 513: True},
            "sunspot": {65: False, 129: False, 257: True, 513: True},
        }
        for name, expect in table.items():
            site = study.site(name)
            for n, ok in expect.items():
                s = study.gpu_pflux(site, "openmp", n).speedup
                assert meets_threshold(site, s) is ok, (name, n, s)

    def test_frontier_node_throughput_highest(self, study):
        """'the overall throughput of a Frontier node is higher than that
        of a Perlmutter or a Sunspot node.'"""
        from repro.core.speedup import node_throughput_ratio

        ratios = {
            name: node_throughput_ratio(
                study.site(name), study.gpu_pflux(study.site(name), "openmp", 513).speedup
            )
            for name in ("perlmutter", "frontier", "sunspot")
        }
        assert ratios["frontier"] > ratios["perlmutter"]
        assert ratios["frontier"] > ratios["sunspot"]
