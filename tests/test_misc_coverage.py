"""Coverage of the small supporting modules: config, calibration, paper data."""

import numpy as np
import pytest

from repro import calibration
from repro.config import Environment, frontier_env, perlmutter_env, sunspot_env
from repro.core import paper
from repro.errors import CalibrationError
from repro.utils.tables import Table


class TestEnvironment:
    def test_presets(self):
        assert perlmutter_env().variables == {}
        assert frontier_env().unified_memory_requested
        assert not frontier_env(system_alloc=False).cray_mallopt_off
        assert sunspot_env().get("ZE_AFFINITY_MASK") == "0.0"

    def test_truthy_variants(self):
        for v in ("1", "true", "YES", "On"):
            assert Environment({"X": v}).flag("X")
        for v in ("0", "false", "", "off"):
            assert not Environment({"X": v}).flag("X")

    def test_with_without_roundtrip(self):
        env = Environment({})
        assert env.with_var("A", "1").without_var("A").variables == {}

    def test_get_default(self):
        assert Environment({}).get("MISSING", "fallback") == "fallback"


class TestCalibrationTable:
    def test_all_paper_combinations_present(self):
        combos = [
            ("nvhpc", "openacc", "NVIDIA"),
            ("nvhpc", "openmp", "NVIDIA"),
            ("cce", "openacc", "AMD"),
            ("cce", "openmp", "AMD"),
            ("oneapi", "openmp", "Intel"),
        ]
        for compiler, model, vendor in combos:
            for kc in calibration.KernelClass:
                q = calibration.lowering_quality(compiler, model, vendor, kc)
                assert q.traffic_factor > 0
                assert 0 < q.bandwidth_efficiency <= 1
                assert 0 < q.compute_efficiency <= 1

    def test_unknown_combination_raises(self):
        with pytest.raises(CalibrationError):
            calibration.lowering_quality("gcc", "openmp", "NVIDIA", calibration.KernelClass.SOLVER)

    def test_figure5_ratios_encoded(self):
        """The traffic-factor ratios must encode the Figure 5 claims."""
        kc = calibration.KernelClass.BOUNDARY_N3
        nv = calibration.lowering_quality("nvhpc", "openacc", "NVIDIA", kc).traffic_factor
        nv_omp = calibration.lowering_quality("nvhpc", "openmp", "NVIDIA", kc).traffic_factor
        amd = calibration.lowering_quality("cce", "openacc", "AMD", kc).traffic_factor
        amd_omp = calibration.lowering_quality("cce", "openmp", "AMD", kc).traffic_factor
        assert nv / nv_omp == pytest.approx(1.6, rel=0.05)
        assert amd / amd_omp == pytest.approx(3.7, rel=0.05)

    def test_nonpflux_split_sums_to_one(self):
        assert sum(calibration.NONPFLUX_SPLIT.values()) == pytest.approx(1.0)

    def test_flop_count_anchors_table2(self):
        """8 N^3 FLOPs at ~1 GF/s reproduces the Perlmutter Table 2 row."""
        for n, t in paper.TABLE2_PFLUX_CPU["perlmutter"].items():
            rate = 8.0 * n**3 / t / 1e9
            assert 0.85 < rate < 1.15


class TestPaperData:
    def test_speedups_consistent_with_times(self):
        """Table 6/7 speedups must equal Table 2 baseline / GPU time,
        within the paper's own rounding."""
        for site, times in paper.TABLE7_OMP_TIME.items():
            for n, t in times.items():
                implied = paper.TABLE2_PFLUX_CPU[site][n] / t
                stated = paper.TABLE7_OMP_SPEEDUP[site][n]
                assert implied == pytest.approx(stated, rel=0.25)

    def test_grid_sizes_cover_all_tables(self):
        for table in (paper.TABLE1_FIT_CPU, paper.TABLE2_PFLUX_CPU, paper.TABLE7_OMP_TIME):
            for per_site in table.values():
                assert set(per_site) == set(paper.GRID_SIZES)

    def test_census_totals(self):
        assert sum(paper.TABLE4_ACC_CENSUS.values()) == 12
        assert sum(paper.TABLE5_OMP_CENSUS.values()) == 8  # "eight lines"


class TestTableEdgeCases:
    def test_empty_table_renders(self):
        t = Table(["a", "b"])
        out = t.render()
        assert "| a" in out and out.count("\n") >= 2

    def test_wide_cells_expand_columns(self):
        t = Table(["x"])
        t.add_row(["a" * 50])
        assert "a" * 50 in t.render()
