"""Tests of the allocator model and unified-memory simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MapError, MemoryModelError
from repro.hardware.amd import mi250x_gcd
from repro.hardware.intel import pvc_stack
from repro.hardware.nvidia import a100
from repro.profiling.timer import VirtualClock
from repro.runtime.allocator import AllocationPolicy, AllocatorModel
from repro.runtime.counters import CounterSet
from repro.runtime.memory import (
    DeviceArray,
    Direction,
    ExplicitDataEnvironment,
    UnifiedMemory,
)


class TestAllocator:
    def test_arena_reuse_keeps_generation(self):
        alloc = AllocatorModel(AllocationPolicy.ARENA_REUSE)
        a1 = alloc.allocate("work", 1024)
        alloc.free("work")
        a2 = alloc.allocate("work", 1024)
        assert a1.generation == a2.generation == 0

    def test_trim_on_free_bumps_generation(self):
        alloc = AllocatorModel(AllocationPolicy.TRIM_ON_FREE)
        gens = []
        for _ in range(3):
            a = alloc.allocate("work", 1024)
            gens.append(a.generation)
            alloc.free("work")
        assert gens == [0, 1, 2]

    def test_double_allocate_rejected(self):
        alloc = AllocatorModel(AllocationPolicy.ARENA_REUSE)
        alloc.allocate("x", 8)
        with pytest.raises(MemoryModelError):
            alloc.allocate("x", 8)

    def test_free_unallocated_rejected(self):
        with pytest.raises(MemoryModelError):
            AllocatorModel(AllocationPolicy.ARENA_REUSE).free("x")

    def test_zero_bytes_rejected(self):
        with pytest.raises(MemoryModelError):
            AllocatorModel(AllocationPolicy.ARENA_REUSE).allocate("x", 0)

    def test_live_lookup(self):
        alloc = AllocatorModel(AllocationPolicy.ARENA_REUSE)
        a = alloc.allocate("x", 8)
        assert alloc.live("x") == a
        alloc.free("x")
        assert not alloc.is_live("x")
        with pytest.raises(MemoryModelError):
            alloc.live("x")

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_generation_counts_frees(self, n):
        alloc = AllocatorModel(AllocationPolicy.TRIM_ON_FREE)
        for _ in range(n):
            alloc.allocate("w", 64)
            alloc.free("w")
        assert alloc.allocate("w", 64).generation == n


def make_um(arch=None, policy=AllocationPolicy.ARENA_REUSE):
    arch = arch if arch is not None else a100()
    clock = VirtualClock()
    counters = CounterSet()
    allocator = AllocatorModel(policy)
    return UnifiedMemory(arch, allocator, clock, counters), allocator, clock, counters


class TestUnifiedMemory:
    def test_requires_um_capable_device(self):
        alloc = AllocatorModel(AllocationPolicy.ARENA_REUSE)
        with pytest.raises(MemoryModelError):
            UnifiedMemory(pvc_stack(), alloc, VirtualClock(), CounterSet())

    def test_first_touch_migrates_then_cached(self):
        um, alloc, clock, counters = make_um()
        a = alloc.allocate("pcurr", 1 << 20)
        um.device_touch([(a, Direction.IN)])
        t1 = clock.now()
        assert t1 > 0 and counters.h2d_bytes == 1 << 20
        um.device_touch([(a, Direction.IN)])
        assert clock.now() == t1  # resident: no cost

    def test_out_arrays_fault_without_transfer(self):
        um, alloc, clock, counters = make_um()
        a = alloc.allocate("psi", 1 << 20)
        um.device_touch([(a, Direction.OUT)])
        assert counters.h2d_bytes == 0
        assert counters.page_faults > 0

    def test_host_read_of_output_migrates_back(self):
        um, alloc, clock, counters = make_um()
        a = alloc.allocate("psi", 1 << 20)
        um.device_touch([(a, Direction.OUT)])
        um.host_touch([(a, Direction.OUT)])
        assert counters.d2h_bytes == 1 << 20
        assert not um.is_resident(a)

    def test_host_touch_skips_resident_and_scratch(self):
        um, alloc, clock, counters = make_um()
        g = alloc.allocate("gridpc", 1 << 24)
        w = alloc.allocate("work", 1 << 16)
        um.device_touch([(g, Direction.RESIDENT), (w, Direction.SCRATCH)])
        before = clock.now()
        um.host_touch([(g, Direction.RESIDENT), (w, Direction.SCRATCH)])
        assert clock.now() == before
        assert um.is_resident(g) and um.is_resident(w)

    def test_fault_cost_paid_once_per_generation(self):
        """Re-migration of known pages is transfer-only — the reason
        ARENA_REUSE steady state is cheap."""
        um, alloc, clock, counters = make_um()
        a = alloc.allocate("pcurr", 10 << 20)
        um.device_touch([(a, Direction.IN)])
        faults_first = counters.page_faults
        um.host_touch([(a, Direction.IN)])  # invalidates residency
        um.device_touch([(a, Direction.IN)])
        assert counters.page_faults == faults_first  # no new faults

    def test_trim_policy_refaults_every_cycle(self):
        um, alloc, clock, counters = make_um(policy=AllocationPolicy.TRIM_ON_FREE)
        for cycle in range(3):
            a = alloc.allocate("work", 1 << 20)
            um.device_touch([(a, Direction.SCRATCH)])
            alloc.free("work")
        assert counters.migrations == 3
        assert counters.page_faults >= 3

    def test_fault_batching_caps_pages(self):
        arch = mi250x_gcd()
        um, alloc, clock, counters = make_um(arch=arch)
        a = alloc.allocate("big", int(1e9))  # far more pages than the cap
        um.device_touch([(a, Direction.SCRATCH)])
        assert counters.page_faults <= arch.fault_batch_pages


class TestExplicitEnvironment:
    def make_env(self):
        clock = VirtualClock()
        counters = CounterSet()
        return ExplicitDataEnvironment(pvc_stack(), clock, counters), clock, counters

    def test_enter_transfers_inputs_only(self):
        env, clock, counters = self.make_env()
        arrays = [
            DeviceArray("pcurr", 1 << 20, Direction.IN),
            DeviceArray("psi", 1 << 20, Direction.OUT),
        ]
        env.enter(arrays)
        assert counters.h2d_bytes == 1 << 20
        assert counters.d2h_bytes == 0

    def test_exit_transfers_outputs(self):
        env, clock, counters = self.make_env()
        arrays = [DeviceArray("psi", 1 << 20, Direction.OUT)]
        env.enter(arrays)
        env.exit(arrays)
        assert counters.d2h_bytes == 1 << 20

    def test_double_map_rejected(self):
        env, *_ = self.make_env()
        a = [DeviceArray("x", 8, Direction.IN)]
        env.enter(a)
        with pytest.raises(MapError):
            env.enter(a)

    def test_exit_unmapped_rejected(self):
        env, *_ = self.make_env()
        with pytest.raises(MapError):
            env.exit([DeviceArray("x", 8, Direction.OUT)])

    def test_implicit_maps_copy_both_ways(self):
        """Without target data, an INOUT operand moves twice per kernel —
        Section 6.2's 'continue copies' failure mode."""
        env, clock, counters = self.make_env()
        a = [DeviceArray("x", 1 << 20, Direction.INOUT)]
        env.implicit_kernel_maps(a)
        env.implicit_kernel_maps(a)
        assert counters.h2d_bytes == 2 << 20
        assert counters.d2h_bytes == 2 << 20

    def test_implicit_maps_skip_staged(self):
        env, clock, counters = self.make_env()
        a = [DeviceArray("x", 1 << 20, Direction.INOUT)]
        env.enter(a)
        h2d = counters.h2d_bytes
        env.implicit_kernel_maps(a)
        assert counters.h2d_bytes == h2d  # staged: no extra copies

    def test_device_array_validation(self):
        with pytest.raises(MemoryModelError):
            DeviceArray("x", 0.0)
