"""Validation coverage for execution plans and executor bookkeeping."""

import pytest

from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.errors import LaunchError
from repro.hardware.nvidia import a100
from repro.runtime.executor import OffloadExecutor
from repro.runtime.kernel import ExecutionPlan


def make_plan(**kw):
    base = dict(
        kernel_name="k",
        teams=4,
        threads_per_team=32,
        traffic_factor=1.0,
        compute_efficiency=0.5,
        bandwidth_efficiency=0.5,
    )
    base.update(kw)
    return ExecutionPlan(**base)


class TestPlanValidation:
    def test_empty_launch_rejected(self):
        with pytest.raises(LaunchError):
            make_plan(teams=0)
        with pytest.raises(LaunchError):
            make_plan(threads_per_team=0)

    def test_nonpositive_traffic_rejected(self):
        with pytest.raises(LaunchError):
            make_plan(traffic_factor=0.0)

    def test_efficiency_bounds(self):
        with pytest.raises(LaunchError):
            make_plan(compute_efficiency=1.5)
        with pytest.raises(LaunchError):
            make_plan(bandwidth_efficiency=0.0)

    def test_launch_count(self):
        with pytest.raises(LaunchError):
            make_plan(launches=0)

    def test_exposed_threads(self):
        assert make_plan(teams=10, threads_per_team=64).exposed_threads == 640


class TestWriteFractionSplit:
    def _fraction(self, arrays):
        nest = LoopNest("k", (Loop("i", 8),), 1.0, arrays=tuple(arrays))
        return OffloadExecutor._write_fraction(nest)

    def test_pure_read(self):
        assert self._fraction([ArrayRef("a", 8, AccessMode.READ, 2.0)]) == 0.0

    def test_pure_write(self):
        assert self._fraction([ArrayRef("a", 8, AccessMode.WRITE, 1.0)]) == 1.0

    def test_readwrite_splits_evenly(self):
        assert self._fraction([ArrayRef("a", 8, AccessMode.READWRITE, 2.0)]) == 0.5

    def test_mixed_weighted_by_volume(self):
        frac = self._fraction(
            [
                ArrayRef("r", 8, AccessMode.READ, 3.0),
                ArrayRef("w", 8, AccessMode.WRITE, 1.0),
            ]
        )
        assert frac == pytest.approx(0.25)

    def test_no_arrays_is_zero(self):
        assert self._fraction([]) == 0.0


class TestCounterSplitEndToEnd:
    def test_read_write_counters_follow_declaration(self):
        ex = OffloadExecutor(arch=a100())
        nest = LoopNest(
            "k",
            (Loop("i", 1024),),
            1.0,
            arrays=(
                ArrayRef("in", 1024, AccessMode.READ, 3.0),
                ArrayRef("out", 1024, AccessMode.WRITE, 1.0),
            ),
        )
        ex.begin_invocation([])
        ex.launch(nest, make_plan(teams=1024, threads_per_team=1))
        k = ex.counters.kernel("k")
        assert k.dram_write_bytes == pytest.approx(0.25 * k.dram_bytes)
        assert k.dram_read_bytes == pytest.approx(0.75 * k.dram_bytes)
