"""Stateful property testing of the unified-memory + allocator models.

A random interleaving of allocate / device-touch / host-touch / free must
never violate the model's invariants:

* residency implies a live (or once-live) generation;
* the clock is monotone;
* counters only grow;
* fault cost is paid at most once per (name, generation);
* ARENA_REUSE never re-faults a reused allocation, TRIM_ON_FREE always
  faults fresh generations.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.hardware.amd import mi250x_gcd
from repro.profiling.timer import VirtualClock
from repro.runtime.allocator import AllocationPolicy, AllocatorModel
from repro.runtime.counters import CounterSet
from repro.runtime.memory import Direction, UnifiedMemory

NAMES = ["a", "b", "c", "work"]
DIRECTIONS = [Direction.IN, Direction.OUT, Direction.INOUT, Direction.SCRATCH]


class UnifiedMemoryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = VirtualClock()
        self.counters = CounterSet()
        self.allocator = AllocatorModel(AllocationPolicy.TRIM_ON_FREE)
        self.um = UnifiedMemory(mi250x_gcd(), self.allocator, self.clock, self.counters)
        self.live: dict[str, object] = {}
        self.faulted_keys: set = set()
        self.last_clock = 0.0
        self.last_faults = 0

    @rule(name=st.sampled_from(NAMES), kib=st.integers(min_value=1, max_value=4096))
    def allocate(self, name, kib):
        if name in self.live:
            return
        self.live[name] = self.allocator.allocate(name, kib * 1024.0)

    @precondition(lambda self: bool(self.live))
    @rule(direction=st.sampled_from(DIRECTIONS), data=st.data())
    def device_touch(self, direction, data):
        name = data.draw(st.sampled_from(sorted(self.live)))
        alloc = self.live[name]
        before = self.counters.page_faults
        self.um.device_touch([(alloc, direction)])
        if self.counters.page_faults > before:
            # fault cost must be first-touch of this generation only
            assert alloc.key not in self.faulted_keys
            self.faulted_keys.add(alloc.key)
        assert self.um.is_resident(alloc)

    @precondition(lambda self: bool(self.live))
    @rule(direction=st.sampled_from(DIRECTIONS), data=st.data())
    def host_touch(self, direction, data):
        name = data.draw(st.sampled_from(sorted(self.live)))
        alloc = self.live[name]
        self.um.host_touch([(alloc, direction)])
        if direction in (Direction.IN, Direction.OUT, Direction.INOUT):
            assert not self.um.is_resident(alloc)
        else:
            # RESIDENT/SCRATCH arrays are never invalidated by the host.
            pass

    @precondition(lambda self: bool(self.live))
    @rule(data=st.data())
    def free(self, data):
        name = data.draw(st.sampled_from(sorted(self.live)))
        self.allocator.free(name)
        del self.live[name]

    @invariant()
    def clock_monotone(self):
        now = self.clock.now()
        assert now >= self.last_clock
        self.last_clock = now

    @invariant()
    def counters_monotone(self):
        assert self.counters.page_faults >= self.last_faults
        self.last_faults = self.counters.page_faults
        assert self.counters.h2d_bytes >= 0 and self.counters.d2h_bytes >= 0


TestUnifiedMemoryMachine = UnifiedMemoryMachine.TestCase
TestUnifiedMemoryMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class TestArenaNeverRefaults:
    def test_reuse_cycle(self):
        clock = VirtualClock()
        counters = CounterSet()
        allocator = AllocatorModel(AllocationPolicy.ARENA_REUSE)
        um = UnifiedMemory(mi250x_gcd(), allocator, clock, counters)
        for cycle in range(5):
            alloc = allocator.allocate("w", 1 << 20)
            um.device_touch([(alloc, Direction.SCRATCH)])
            allocator.free("w")
        # One generation -> exactly one fault burst.
        assert counters.migrations == 1
