"""Tests of counters and the offload executor."""

import pytest

from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.errors import LaunchError, RuntimeModelError
from repro.hardware.amd import mi250x_gcd
from repro.hardware.intel import pvc_stack
from repro.hardware.nvidia import a100
from repro.runtime.allocator import AllocationPolicy
from repro.runtime.counters import CounterSet
from repro.runtime.executor import OffloadExecutor
from repro.runtime.kernel import ExecutionPlan
from repro.runtime.memory import DeviceArray, Direction


def nest(n=64):
    return LoopNest(
        name="k",
        loops=(Loop("i", n), Loop("j", n)),
        flops_per_iteration=2.0,
        arrays=(
            ArrayRef("a", n * n, AccessMode.READ, 1.0),
            ArrayRef("b", n * n, AccessMode.WRITE, 1.0),
        ),
        n_outer=1,
    )


def plan(**kw):
    defaults = dict(
        kernel_name="k",
        teams=64,
        threads_per_team=64,
        traffic_factor=1.0,
        compute_efficiency=0.5,
        bandwidth_efficiency=0.5,
    )
    defaults.update(kw)
    return ExecutionPlan(**defaults)


def arrays(n=64):
    return [
        DeviceArray("a", n * n * 8, Direction.IN),
        DeviceArray("b", n * n * 8, Direction.OUT),
    ]


class TestCounters:
    def test_record_and_totals(self):
        c = CounterSet()
        c.record_launch("k", flops=10.0, read_bytes=100.0, write_bytes=50.0, seconds=1e-3)
        c.record_launch("k", flops=10.0, read_bytes=100.0, write_bytes=50.0, seconds=1e-3)
        assert c.kernel("k").launches == 2
        assert c.total_dram_bytes == 300.0
        assert c.total_device_seconds == pytest.approx(2e-3)

    def test_negative_rejected(self):
        with pytest.raises(RuntimeModelError):
            CounterSet().record_launch("k", flops=-1, read_bytes=0, write_bytes=0, seconds=0)

    def test_nsight_report_fields(self):
        c = CounterSet()
        c.record_launch("k", flops=1.0, read_bytes=64.0, write_bytes=64.0, seconds=1e-6)
        rep = c.nsight_report("k")
        assert rep["dram__bytes.sum"] == 128.0

    def test_rocprof_roundtrip_via_appendix_formula(self):
        """Appendix A: bytes = 64*WR64 + 32*(WR-WR64) + 32*RD32 + 64*(RD-RD32)
        must reconstruct the recorded byte count."""
        c = CounterSet()
        c.record_launch("k", flops=1.0, read_bytes=6400.0, write_bytes=1280.0, seconds=1e-6)
        rep = c.rocprof_report("k")
        assert CounterSet.rocprof_bytes_moved(rep) == pytest.approx(7680.0)

    def test_advisor_report(self):
        c = CounterSet()
        c.record_launch("k", flops=42.0, read_bytes=10.0, write_bytes=0.0, seconds=1e-6)
        assert c.advisor_report("k")["gpu_compute_flop"] == 42.0

    def test_reset(self):
        c = CounterSet()
        c.record_launch("k", flops=1.0, read_bytes=1.0, write_bytes=1.0, seconds=1.0)
        c.h2d_bytes = 5.0
        c.reset()
        assert c.total_launches == 0 and c.h2d_bytes == 0.0


class TestExecutorLifecycle:
    def test_launch_outside_invocation_rejected(self):
        ex = OffloadExecutor(arch=a100())
        with pytest.raises(LaunchError):
            ex.launch(nest(), plan())

    def test_nested_invocations_rejected(self):
        ex = OffloadExecutor(arch=a100())
        ex.begin_invocation(arrays())
        with pytest.raises(RuntimeModelError):
            ex.begin_invocation(arrays())

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeModelError):
            OffloadExecutor(arch=a100()).end_invocation()

    def test_full_invocation_advances_clock_and_counters(self):
        ex = OffloadExecutor(arch=a100())
        ex.begin_invocation(arrays())
        t = ex.launch(nest(), plan())
        ex.end_invocation()
        assert t > 0
        assert ex.clock.now() >= t
        assert ex.counters.kernel("k").launches == 1
        assert ex.counters.h2d_bytes > 0  # input staged
        assert ex.counters.d2h_bytes > 0  # output returned

    def test_launch_overhead_floor(self):
        """A tiny kernel costs at least the launch latency (the paper's
        '10us of latency will impede acceleration of the smaller loops')."""
        ex = OffloadExecutor(arch=a100())
        tiny = LoopNest("t", (Loop("i", 2),), 1.0)
        ex.begin_invocation([])
        t = ex.launch(tiny, plan(kernel_name="t", teams=2, threads_per_team=1))
        assert t >= a100().kernel_launch_us * 1e-6

    def test_multi_launch_regions_pay_multiple_latencies(self):
        ex = OffloadExecutor(arch=a100())
        tiny = LoopNest("t", (Loop("i", 2),), 1.0)
        ex.begin_invocation([])
        t1 = ex.launch(tiny, plan(kernel_name="t", teams=2, threads_per_team=1, launches=1))
        t24 = ex.launch(tiny, plan(kernel_name="t", teams=2, threads_per_team=1, launches=24))
        assert t24 == pytest.approx(t1 + 23 * a100().kernel_launch_us * 1e-6, rel=1e-6)

    def test_occupancy_insensitive_plans_ignore_thread_count(self):
        ex = OffloadExecutor(arch=mi250x_gcd())
        big = nest(256)
        ex.begin_invocation([])
        t_few = ex.launch(big, plan(teams=4, threads_per_team=4, occupancy_sensitive=False))
        t_many = ex.launch(big, plan(teams=4096, threads_per_team=256, occupancy_sensitive=False))
        assert t_few == pytest.approx(t_many)

    def test_occupancy_sensitive_plans_speed_up_with_threads(self):
        ex = OffloadExecutor(arch=mi250x_gcd())
        big = nest(256)
        ex.begin_invocation([])
        t_few = ex.launch(big, plan(teams=16, threads_per_team=64))
        t_many = ex.launch(big, plan(teams=4096, threads_per_team=256))
        assert t_many < t_few

    def test_dram_counters_reflect_traffic_factor(self):
        n1 = nest()
        ex = OffloadExecutor(arch=a100())
        ex.begin_invocation([])
        ex.launch(n1, plan(traffic_factor=1.0))
        first = ex.counters.kernel("k").dram_bytes
        ex.launch(n1, plan(traffic_factor=2.0))
        second = ex.counters.kernel("k").dram_bytes - first
        assert second == pytest.approx(2.0 * first)


class TestIntelPaths:
    def test_target_data_much_faster_than_implicit(self):
        """The Section 6.2 optimisation: explicit data regions vs per-kernel
        implicit maps."""
        def run(use_target_data):
            ex = OffloadExecutor(arch=pvc_stack(), use_target_data=use_target_data)
            arrs = arrays(1024)
            for _ in range(5):
                ex.begin_invocation(arrs)
                for _ in range(10):
                    ex.launch(nest(1024), plan(teams=1024, threads_per_team=256))
                ex.end_invocation()
            return ex.clock.now()

        assert run(False) > 2.0 * run(True)

    def test_trim_policy_costs_more_on_amd(self):
        def run(policy):
            ex = OffloadExecutor(arch=mi250x_gcd(), allocation_policy=policy)
            arrs = arrays(64) + [
                DeviceArray(f"w{k}", 64 * 64 * 8, Direction.SCRATCH, persistent=False)
                for k in range(8)
            ]
            for _ in range(4):
                ex.begin_invocation(arrs)
                ex.launch(nest(), plan())
                ex.end_invocation()
            return ex.clock.now()

        assert run(AllocationPolicy.TRIM_ON_FREE) > run(AllocationPolicy.ARENA_REUSE)
