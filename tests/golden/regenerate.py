"""Regenerate — or verify — the committed golden-equilibrium artifacts.

Run after an *intentional* physics change, review the diff, and commit:

    PYTHONPATH=src python tests/golden/regenerate.py

The test suite compares fresh reconstructions against these files with
loose-but-meaningful tolerances, so only real behaviour changes — not
BLAS jitter — require regeneration.

``--check`` regenerates in memory and *compares* instead of writing,
with exactly the tolerances ``test_golden_equilibria.py`` applies
(iterations within 3, psi checksums to 1e-4 relative, axis to 2e-3 m,
chi^2 to 5 %, Ip to 0.1 %, plasma volume within 5 cells, topology
exact).  Exit status 1 on drift in *any* scenario, with a per-field
diff — the nightly workflow runs this to catch slow divergence that
per-PR test noise thresholds would absorb.  A case that fails to
reconstruct at all (solver exception) is reported as drift, not a
crash, so one broken scenario cannot mask drift reports for the others.

``--case`` restricts either mode to a subset of scenarios.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from golden.snapshot import CASES, GOLDEN_DIR, equilibrium_snapshot, reconstruct

#: field -> (kind, tolerance); mirrors test_golden_equilibria.py exactly.
_TOLERANCES = {
    "converged": ("exact", None),
    "boundary_type": ("exact", None),
    "xpoints_in_limiter": ("exact", None),
    "iterations": ("abs", 3),
    "plasma_volume_cells": ("abs", 5),
    "psi_sum": ("rel", 1e-4),
    "psi_l1": ("rel", 1e-4),
    "psi_l2": ("rel", 1e-4),
    "psi_axis": ("rel", 1e-4),
    "psi_boundary": ("rel", 1e-3),
    "r_axis": ("abs", 2e-3),
    "z_axis": ("abs", 2e-3),
    "chi2": ("rel", 0.05),
    "ip": ("rel", 1e-3),
}


def _drifted(kind: str, tol, golden, fresh) -> bool:
    if kind == "exact":
        return fresh != golden
    if kind == "abs":
        return abs(fresh - golden) > tol
    return not math.isclose(fresh, golden, rel_tol=tol, abs_tol=1e-6)


def check_case(case: str) -> list[str]:
    """Field-level drift report for one golden case (empty = clean)."""
    path = GOLDEN_DIR / CASES[case]
    if not path.exists():
        return [f"missing artifact {path.name}"]
    golden = json.loads(path.read_text())
    try:
        fresh = equilibrium_snapshot(case, reconstruct(case))
    except Exception as exc:  # noqa: BLE001 - a broken case IS drift
        return [f"reconstruction failed: {type(exc).__name__}: {exc}"]
    drift = []
    for field, (kind, tol) in _TOLERANCES.items():
        if field not in golden:
            drift.append(
                f"{field}: absent from committed artifact (schema "
                f"{golden.get('schema_version')}) — regenerate"
            )
            continue
        if _drifted(kind, tol, golden[field], fresh[field]):
            drift.append(
                f"{field}: golden={golden[field]!r} fresh={fresh[field]!r} "
                f"({kind} tolerance {tol})"
            )
    return drift


def _select(cases: list[str] | None) -> list[str]:
    if not cases:
        return list(CASES)
    unknown = [c for c in cases if c not in CASES]
    if unknown:
        raise SystemExit(
            f"unknown golden case(s): {', '.join(unknown)}; "
            f"known: {', '.join(CASES)}"
        )
    return cases


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare fresh reconstructions against the committed artifacts "
        "instead of overwriting them; exit 1 on drift in any scenario",
    )
    parser.add_argument(
        "--case",
        action="append",
        metavar="NAME",
        default=None,
        help="restrict to this golden case (repeatable; default: all)",
    )
    args = parser.parse_args(argv)
    selected = _select(args.case)

    if args.check:
        clean = True
        for case in selected:
            drift = check_case(case)
            if drift:
                clean = False
                print(f"{case}: DRIFT")
                for line in drift:
                    print(f"  {line}")
            else:
                print(f"{case}: ok")
        if not clean:
            print(
                "golden drift detected — if intentional, regenerate with "
                "`PYTHONPATH=src python tests/golden/regenerate.py` and "
                "commit the diff"
            )
        return 0 if clean else 1

    for case in selected:
        filename = CASES[case]
        result = reconstruct(case)
        snap = equilibrium_snapshot(case, result)
        path = GOLDEN_DIR / filename
        path.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
        print(
            f"{case}: wrote {path.name} "
            f"(iterations={snap['iterations']}, chi2={snap['chi2']:.2f}, "
            f"axis=({snap['r_axis']:.4f}, {snap['z_axis']:.4f}), "
            f"{snap['boundary_type']}/{snap['xpoints_in_limiter']} X-point(s))"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
