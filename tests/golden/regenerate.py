"""Regenerate the committed golden-equilibrium artifacts.

Run after an *intentional* physics change, review the diff, and commit:

    PYTHONPATH=src python tests/golden/regenerate.py

The test suite compares fresh reconstructions against these files with
loose-but-meaningful tolerances, so only real behaviour changes — not
BLAS jitter — require regeneration.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from golden.snapshot import CASES, GOLDEN_DIR, equilibrium_snapshot, reconstruct


def main() -> int:
    for case, filename in CASES.items():
        result = reconstruct(case)
        snap = equilibrium_snapshot(case, result)
        path = GOLDEN_DIR / filename
        path.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
        print(
            f"{case}: wrote {path.name} "
            f"(iterations={snap['iterations']}, chi2={snap['chi2']:.2f}, "
            f"axis=({snap['r_axis']:.4f}, {snap['z_axis']:.4f}))"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
