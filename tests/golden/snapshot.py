"""Shared snapshot schema for the golden-equilibrium regression tests.

``equilibrium_snapshot`` reduces a :class:`~repro.efit.fitting.FitResult`
to a small JSON-friendly dict of physics scalars, psi checksums and the
magnetic topology; the regeneration script (``python
tests/golden/regenerate.py``) writes them and
``test_golden_equilibria.py`` compares fresh reconstructions against the
committed artifacts.

The case list comes from the scenario registry: every scenario with
``golden=True`` owns one committed artifact, so adding a scenario to
:mod:`repro.scenarios.definitions` automatically enrols it here.

Schema history:

* v1 — physics scalars + psi checksums of the two DIII-D-like cases.
* v2 — adds ``scenario`` and ``xpoints_in_limiter`` (the diverted
  scenarios pin their X-point count, not just the boundary type).
"""

from __future__ import annotations

import math
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent
GOLDEN_SCHEMA_VERSION = 2


def golden_cases() -> dict[str, str]:
    """case name -> artifact filename, from the scenario registry."""
    from repro.scenarios import all_scenarios

    return {sc.name: sc.golden_artifact for sc in all_scenarios() if sc.golden}


#: case name -> artifact file for every golden-tracked scenario.
CASES = golden_cases()


def make_shot(case: str, n: int = 65):
    """Build the synthetic shot for a golden case name."""
    from repro.scenarios import get_scenario

    return get_scenario(case).make_shot(n)


def reconstruct(case: str, n: int = 65):
    """Run the full reconstruction a golden case snapshots."""
    from repro.efit.fitting import EfitSolver
    from repro.scenarios import get_scenario

    sc = get_scenario(case)
    shot = sc.make_shot(n)
    solver = EfitSolver.for_scenario(sc, shot=shot)
    return solver.fit(shot.measurements)


def count_xpoints(case: str, result, n: int = 65) -> int:
    """X-points of the converged flux map inside the machine limiter."""
    from repro.efit.boundary import find_xpoints
    from repro.scenarios import get_scenario

    sc = get_scenario(case)
    shot = sc.make_shot(n)
    return sum(
        1
        for rx, zx, _ in find_xpoints(shot.grid, result.psi, max_points=6)
        if bool(shot.machine.limiter.contains(rx, zx))
    )


def equilibrium_snapshot(case: str, result, n: int = 65) -> dict:
    """The golden record: psi checksums plus the physics scalars."""
    psi = result.psi
    boundary = result.boundary
    return {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "case": case,
        "scenario": case,
        "grid": [n, n],
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "chi2": float(result.chi2),
        "residual": float(result.residual),
        "ip": float(result.ip),
        "psi_sum": float(psi.sum()),
        "psi_l1": float(abs(psi).sum()),
        "psi_l2": float(math.sqrt((psi * psi).sum())),
        "psi_axis": float(boundary.psi_axis),
        "psi_boundary": float(boundary.psi_boundary),
        "r_axis": float(boundary.r_axis),
        "z_axis": float(boundary.z_axis),
        "boundary_type": boundary.boundary_type,
        "plasma_volume_cells": int(boundary.plasma_volume_cells),
        "xpoints_in_limiter": count_xpoints(case, result, n),
    }
