"""Shared snapshot schema for the golden-equilibrium regression tests.

``equilibrium_snapshot`` reduces a :class:`~repro.efit.fitting.FitResult`
to a small JSON-friendly dict of physics scalars and psi checksums; the
regeneration script (``python tests/golden/regenerate.py``) writes them
and ``test_golden_equilibria.py`` compares fresh reconstructions against
the committed artifacts.
"""

from __future__ import annotations

import math
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent
GOLDEN_SCHEMA_VERSION = 1

#: (case name, artifact file, shot factory kwargs) for both golden cases.
CASES = {
    "g186610": "golden_g186610_65.json",
    "solovev": "golden_solovev_65.json",
}


def make_shot(case: str, n: int = 65):
    """Build the synthetic shot for a golden case name."""
    from repro.efit.measurements import synthetic_shot_186610, synthetic_solovev_shot

    if case == "g186610":
        return synthetic_shot_186610(n)
    if case == "solovev":
        return synthetic_solovev_shot(n)
    raise ValueError(f"unknown golden case {case!r}")


def reconstruct(case: str, n: int = 65):
    """Run the full reconstruction a golden case snapshots."""
    from repro.efit.fitting import EfitSolver

    shot = make_shot(case, n)
    solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid)
    return solver.fit(shot.measurements)


def equilibrium_snapshot(case: str, result, n: int = 65) -> dict:
    """The golden record: psi checksums plus the physics scalars."""
    psi = result.psi
    boundary = result.boundary
    return {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "case": case,
        "grid": [n, n],
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "chi2": float(result.chi2),
        "residual": float(result.residual),
        "ip": float(result.ip),
        "psi_sum": float(psi.sum()),
        "psi_l1": float(abs(psi).sum()),
        "psi_l2": float(math.sqrt((psi * psi).sum())),
        "psi_axis": float(boundary.psi_axis),
        "psi_boundary": float(boundary.psi_boundary),
        "r_axis": float(boundary.r_axis),
        "z_axis": float(boundary.z_axis),
        "boundary_type": boundary.boundary_type,
        "plasma_volume_cells": int(boundary.plasma_volume_cells),
    }
