"""Golden-equilibrium regression tests over the scenario zoo.

Fresh 65^2 reconstructions of every golden-tracked scenario (DIII-D-like
baseline, Solov'ev, spherical torus, double-null, single-null, MSE) are
compared against committed snapshots of their psi checksums,
magnetic-axis location, chi^2, iteration count and magnetic topology.
A drifting result means the physics changed; if the change is
intentional, regenerate with ``PYTHONPATH=src python
tests/golden/regenerate.py`` and commit the diff.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import get_scenario

from .snapshot import CASES, GOLDEN_DIR, GOLDEN_SCHEMA_VERSION, equilibrium_snapshot, reconstruct


@pytest.fixture(scope="module", params=sorted(CASES))
def golden_pair(request):
    case = request.param
    golden = json.loads((GOLDEN_DIR / CASES[case]).read_text())
    fresh = equilibrium_snapshot(case, reconstruct(case))
    return case, golden, fresh


class TestGoldenEquilibria:
    def test_artifact_schema(self, golden_pair):
        case, golden, _ = golden_pair
        assert golden["schema_version"] == GOLDEN_SCHEMA_VERSION
        assert golden["case"] == case
        assert golden["scenario"] == case
        assert golden["grid"] == [65, 65]
        assert golden["converged"] is True

    def test_convergence_and_iterations(self, golden_pair):
        _, golden, fresh = golden_pair
        assert fresh["converged"]
        assert abs(fresh["iterations"] - golden["iterations"]) <= 3

    def test_convergence_envelope(self, golden_pair):
        """The scenario's declared envelope bounds the fresh fit."""
        case, _, fresh = golden_pair
        sc = get_scenario(case)
        assert fresh["iterations"] <= sc.max_iterations
        assert fresh["chi2"] <= sc.max_chi2

    def test_psi_checksums(self, golden_pair):
        _, golden, fresh = golden_pair
        for key in ("psi_sum", "psi_l1", "psi_l2"):
            assert fresh[key] == pytest.approx(golden[key], rel=1e-4), key

    def test_axis_location(self, golden_pair):
        _, golden, fresh = golden_pair
        assert fresh["r_axis"] == pytest.approx(golden["r_axis"], abs=2e-3)
        assert fresh["z_axis"] == pytest.approx(golden["z_axis"], abs=2e-3)
        assert fresh["psi_axis"] == pytest.approx(golden["psi_axis"], rel=1e-4)
        assert fresh["psi_boundary"] == pytest.approx(
            golden["psi_boundary"], rel=1e-3, abs=1e-6
        )

    def test_fit_quality(self, golden_pair):
        _, golden, fresh = golden_pair
        assert fresh["chi2"] == pytest.approx(golden["chi2"], rel=0.05)
        assert fresh["ip"] == pytest.approx(golden["ip"], rel=1e-3)
        assert abs(
            fresh["plasma_volume_cells"] - golden["plasma_volume_cells"]
        ) <= 5

    def test_topology(self, golden_pair):
        """Boundary type and X-point count: exact, and as the scenario declares."""
        case, golden, fresh = golden_pair
        sc = get_scenario(case)
        assert fresh["boundary_type"] == golden["boundary_type"] == sc.boundary_type
        assert (
            fresh["xpoints_in_limiter"]
            == golden["xpoints_in_limiter"]
            == sc.n_xpoints
        )
