"""Tests of clocks, the region profiler, and utility helpers."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.regions import RegionProfiler
from repro.profiling.timer import VirtualClock, WallClock
from repro.utils.stats import geomean, relative_error, within_factor
from repro.utils.tables import Table, format_bytes, format_seconds, format_speedup


class TestClocks:
    def test_wall_clock_advances(self):
        c = WallClock()
        t0 = c.now()
        time.sleep(0.002)
        assert c.now() > t0

    def test_wall_clock_not_advanceable(self):
        with pytest.raises(NotImplementedError):
            WallClock().advance(1.0)

    def test_virtual_clock(self):
        c = VirtualClock()
        assert c.now() == 0.0
        c.advance(1.5)
        c.advance(0.5)
        assert c.now() == 2.0
        c.reset()
        assert c.now() == 0.0

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestRegionProfiler:
    def test_exclusive_nesting(self):
        clock = VirtualClock()
        prof = RegionProfiler(clock)
        with prof.region("fit_"):
            clock.advance(1.0)
            with prof.region("pflux_"):
                clock.advance(9.0)
        rep = prof.report()
        assert rep.totals["pflux_"] == pytest.approx(9.0)
        assert rep.totals["fit_"] == pytest.approx(1.0)  # exclusive
        assert rep.fraction("pflux_") == pytest.approx(0.9)

    def test_repeated_regions_accumulate(self):
        clock = VirtualClock()
        prof = RegionProfiler(clock)
        for _ in range(3):
            with prof.region("green_"):
                clock.advance(2.0)
        rep = prof.report()
        assert rep.totals["green_"] == pytest.approx(6.0)
        assert rep.calls["green_"] == 3
        assert rep.time_per_call("green_") == pytest.approx(2.0)

    def test_percentages_sum_to_100(self):
        clock = VirtualClock()
        prof = RegionProfiler(clock)
        for name, dt in [("a", 1.0), ("b", 3.0), ("c", 6.0)]:
            with prof.region(name):
                clock.advance(dt)
        assert sum(prof.report().percentages().values()) == pytest.approx(100.0)

    def test_direct_add(self):
        prof = RegionProfiler(VirtualClock())
        prof.add("pflux_", 1.5, calls=3)
        rep = prof.report()
        assert rep.totals["pflux_"] == 1.5 and rep.calls["pflux_"] == 3
        with pytest.raises(ValueError):
            prof.add("x", -1.0)

    def test_empty_report(self):
        rep = RegionProfiler(VirtualClock()).report()
        assert rep.grand_total == 0.0
        assert rep.fraction("anything") == 0.0
        assert rep.time_per_call("anything") == 0.0

    def test_reset(self):
        clock = VirtualClock()
        prof = RegionProfiler(clock)
        with prof.region("a"):
            clock.advance(1.0)
        prof.reset()
        assert prof.report().grand_total == 0.0

    def test_exception_still_records(self):
        clock = VirtualClock()
        prof = RegionProfiler(clock)
        with pytest.raises(RuntimeError):
            with prof.region("a"):
                clock.advance(2.0)
                raise RuntimeError("boom")
        assert prof.report().totals["a"] == pytest.approx(2.0)


class TestStats:
    def test_geomean_basics(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_within_factor(self):
        assert within_factor(2.0, 1.0, 2.0)
        assert within_factor(0.5, 1.0, 2.0)
        assert not within_factor(2.1, 1.0, 2.0)
        with pytest.raises(ValueError):
            within_factor(-1.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)

    @given(st.floats(min_value=1e-6, max_value=1e6), st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_within_factor_symmetric(self, x, f):
        assert within_factor(x, x, f)
        assert within_factor(x * f, x, f) == within_factor(x, x * f, f)


class TestFormatting:
    def test_format_seconds_paper_style(self):
        assert format_seconds(1.48e-2) == "1.48e-02"
        assert format_seconds(1.15) == "1.15"
        assert format_seconds(0.0) == "0"

    def test_format_bytes(self):
        assert format_bytes(6.48e9) == "6.48 GB"
        assert format_bytes(2048) == "2.05 KB"
        assert format_bytes(12) == "12 B"

    def test_format_speedup(self):
        assert format_speedup(70.4) == "70x"
        assert format_speedup(2.4) == "2.4x"
        assert format_speedup(0.35) == "0.35x"

    def test_table_rendering(self):
        t = Table(["a", "b"], title="demo")
        t.add_row([1, "xx"])
        out = t.render()
        assert "demo" in out and "| 1" in out and "xx" in out

    def test_table_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])
