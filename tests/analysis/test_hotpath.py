"""Tests of the AST hot-path checkers (one per rule id)."""

import pytest

from repro.analysis.findings import Severity
from repro.analysis.hotpath import (
    RULE_ALIAS,
    RULE_ALLOC,
    RULE_COPY,
    RULE_UFUNC,
    scan_paths,
    scan_source,
)
from repro.analysis.markers import hot_path, is_hot_path
from repro.errors import AnalysisError


def _scan(body: str):
    """Wrap ``body`` (the statements of a hot function) and scan it."""
    source = "import numpy as np\n\n@hot_path\ndef kernel(ws, x, out):\n"
    source += "".join(f"    {line}\n" for line in body.splitlines())
    return scan_source(source, "fixture.module")


class TestMarkers:
    def test_decorator_is_transparent(self):
        @hot_path
        def f(x):
            return x + 1

        assert f(2) == 3
        assert is_hot_path(f)

    def test_unmarked_function_is_not_hot(self):
        def g():
            pass

        assert not is_hot_path(g)


class TestAllocRule:
    def test_np_zeros_is_flagged(self):
        scan = _scan("return np.zeros(4)")
        assert [f.rule_id for f in scan.findings] == [RULE_ALLOC]
        f = scan.findings[0]
        assert f.location.ident == "fixture.module::kernel"
        assert f.detail == "np.zeros"
        assert "FitWorkspace" in f.fix_hint

    def test_line_number_points_at_the_call(self):
        scan = _scan("y = x\nz = np.empty(3)\nreturn z")
        assert scan.findings[0].location.line == 6  # line 2 of the body

    def test_ascontiguousarray_is_not_an_allocator(self):
        """Deliberate: it is a no-op passthrough on contiguous input."""
        assert _scan("return np.ascontiguousarray(x)").findings == []

    def test_cold_function_is_not_scanned(self):
        source = "import numpy as np\ndef cold():\n    return np.zeros(4)\n"
        scan = scan_source(source, "m")
        assert scan.findings == [] and scan.hot_functions == []

    def test_nested_function_body_is_not_charged(self):
        scan = _scan("def helper():\n    return np.zeros(4)\nreturn helper()")
        assert scan.findings == []


class TestCopyAndUfuncRules:
    def test_method_copy_is_flagged(self):
        scan = _scan("return x.copy()")
        assert [f.rule_id for f in scan.findings] == [RULE_COPY]

    def test_ufunc_without_out_is_flagged(self):
        scan = _scan("return np.abs(x)")
        assert [f.rule_id for f in scan.findings] == [RULE_UFUNC]
        assert "out=" in scan.findings[0].fix_hint

    def test_ufunc_with_out_is_clean(self):
        assert _scan("np.multiply(x, 2.0, out=out)\nreturn out").findings == []

    def test_reduction_helpers_are_not_ufunc_temps(self):
        """np.max/np.sum return scalars; they are not flagged."""
        assert _scan("return float(np.max(x)) + float(np.sum(x))").findings == []


class TestAliasRule:
    def test_duplicate_workspace_name_is_an_error(self):
        scan = _scan('a = ws.array("buf", (4,))\nb = ws.array("buf", (8,))\nreturn a, b')
        assert [f.rule_id for f in scan.findings] == [RULE_ALIAS]
        f = scan.findings[0]
        assert f.severity is Severity.ERROR
        assert "buf" in f.message
        assert "distinct name" in f.fix_hint

    def test_distinct_names_are_clean(self):
        scan = _scan('a = ws.array("rhs", (4,))\nb = ws.array("psi", (4,))\nreturn a, b')
        assert scan.findings == []

    def test_repeated_request_of_same_name_same_line_ok(self):
        """One textual request reused in a loop is one logical buffer."""
        scan = _scan('for _ in range(3):\n    a = ws.array("buf", (4,))\nreturn a')
        assert scan.findings == []

    def test_np_array_is_not_a_workspace_request(self):
        scan = _scan('return np.array("x")')
        assert [f.rule_id for f in scan.findings] == [RULE_ALLOC]


class TestCertification:
    def test_clean_hot_function_is_certified(self):
        scan = _scan("np.add(x, x, out=out)\nreturn out")
        assert scan.hot_functions == ["fixture.module::kernel"]
        assert scan.certified == ("fixture.module::kernel",)

    def test_dirty_hot_function_is_not_certified(self):
        scan = _scan("return np.zeros(4)")
        assert scan.certified == ()

    def test_method_qualname_includes_class(self):
        source = (
            "import numpy as np\n"
            "class Engine:\n"
            "    @hot_path\n"
            "    def step(self):\n"
            "        return np.zeros(2)\n"
        )
        scan = scan_source(source, "m")
        assert scan.hot_functions == ["m::Engine.step"]
        assert scan.findings[0].location.qualname == "Engine.step"


class TestScanPaths:
    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError):
            scan_source("def broken(:\n    pass", "m")

    def test_scan_paths_over_tmp_tree(self, tmp_path):
        pkg = tmp_path / "hot"
        pkg.mkdir()
        (pkg / "a.py").write_text(
            "import numpy as np\n\n@hot_path\ndef f():\n    return np.zeros(1)\n"
        )
        (pkg / "b.py").write_text("def g():\n    return 1\n")
        scan = scan_paths([pkg], package_root=tmp_path)
        assert scan.hot_functions == ["repro.hot.a::f"]
        assert len(scan.findings) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            scan_paths([tmp_path / "gone.py"], package_root=tmp_path)
