"""Tests of the SARIF 2.1.0 export.

The container has no network, so the official schema cannot be fetched;
``SARIF_SUBSET_SCHEMA`` below is a faithful offline subset of
``sarif-schema-2.1.0.json`` covering every construct this exporter
emits (required properties, the ``level`` enumeration, the shapes of
locations, fingerprints and suppressions), with ``additionalProperties``
left open exactly as the real schema does.
"""

import json

import jsonschema
import pytest

from repro.analysis.engine import AnalysisReport, analyze_repo
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    sarif_payload,
    write_sarif,
)

SARIF_SUBSET_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "helpUri": {"type": "string"},
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type": "string"}
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            },
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "fullyQualifiedName": {
                                                            "type": "string"
                                                        },
                                                        "kind": {"type": "string"},
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {"type": "string"},
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": ["inSource", "external"]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _finding(rule="hot-alloc", severity=Severity.WARNING, module="repro.efit.pflux"):
    return Finding(
        rule_id=rule,
        severity=severity,
        location=Location(module=module, qualname="f", line=12),
        message="msg",
        fix_hint="do the thing",
        detail="d",
    )


@pytest.fixture(scope="module")
def repo_payload():
    report = analyze_repo()
    return sarif_payload(report)


class TestSarifPayload:
    def test_repo_run_validates_against_the_2_1_0_schema(self, repo_payload):
        """Acceptance criterion: the real tree's log is schema-valid."""
        jsonschema.validate(repo_payload, SARIF_SUBSET_SCHEMA)

    def test_version_and_schema_uri(self, repo_payload):
        assert repo_payload["version"] == SARIF_VERSION == "2.1.0"
        assert repo_payload["$schema"] == SARIF_SCHEMA_URI

    def test_every_result_has_a_rules_table_entry(self, repo_payload):
        run = repo_payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {r["ruleId"] for r in run["results"]}
        for rule in run["tool"]["driver"]["rules"]:
            assert rule["shortDescription"]["text"]

    def test_severity_level_mapping(self):
        report = AnalysisReport(
            findings=[
                _finding(severity=Severity.ERROR),
                _finding(severity=Severity.WARNING),
                _finding(severity=Severity.INFO),
            ]
        )
        levels = [r["level"] for r in sarif_payload(report)["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_module_location_maps_to_repo_relative_uri(self):
        report = AnalysisReport(findings=[_finding()])
        result = sarif_payload(report)["runs"][0]["results"][0]
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/repro/efit/pflux.py"
        assert physical["region"]["startLine"] == 12
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "repro.efit.pflux::f"

    def test_kernel_location_has_no_physical_location(self):
        finding = Finding(
            rule_id="precision-mixed-gemm",
            severity=Severity.ERROR,
            location=Location(subroutine="pflux_", kernel="boundary_lr"),
            message="msg",
        )
        result = sarif_payload(AnalysisReport(findings=[finding]))["runs"][0][
            "results"
        ][0]
        assert "physicalLocation" not in result["locations"][0]
        assert (
            result["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
            == "pflux_::boundary_lr"
        )

    def test_suppressed_findings_are_marked_not_dropped(self):
        report = AnalysisReport(
            findings=[_finding(rule="hot-copy")],
            suppressed=[_finding(rule="excess-traffic")],
        )
        payload = sarif_payload(report)
        jsonschema.validate(payload, SARIF_SUBSET_SCHEMA)
        results = {r["ruleId"]: r for r in payload["runs"][0]["results"]}
        assert "suppressions" not in results["hot-copy"]
        assert results["excess-traffic"]["suppressions"] == [{"kind": "external"}]

    def test_fingerprint_travels_in_partial_fingerprints(self):
        finding = _finding()
        payload = sarif_payload(AnalysisReport(findings=[finding]))
        result = payload["runs"][0]["results"][0]
        assert result["partialFingerprints"] == {
            "reproFingerprint/v1": finding.fingerprint
        }

    def test_fix_hint_is_appended_to_the_message(self):
        payload = sarif_payload(AnalysisReport(findings=[_finding()]))
        text = payload["runs"][0]["results"][0]["message"]["text"]
        assert "msg" in text and "do the thing" in text


class TestWriteSarif:
    def test_roundtrip_through_disk(self, tmp_path, repo_payload):
        path = tmp_path / "out.sarif"
        write_sarif(analyze_repo(), path)
        loaded = json.loads(path.read_text())
        jsonschema.validate(loaded, SARIF_SUBSET_SCHEMA)
        assert loaded["version"] == "2.1.0"
