"""Unit tests of the shared dataflow core (set lattice + interpreter)."""

import ast

from repro.analysis.dataflow import (
    BOTTOM,
    AbstractInterpreter,
    dotted_name,
    join,
    join_env,
)


def _expr(src: str) -> ast.expr:
    return ast.parse(src, mode="eval").body


class TestLattice:
    def test_join_is_union(self):
        assert join(frozenset({"a"}), frozenset({"b"})) == frozenset({"a", "b"})
        assert join(BOTTOM, frozenset({"a"})) == frozenset({"a"})

    def test_join_env_missing_keys_are_bottom(self):
        a = {"x": frozenset({"live"})}
        b = {"y": frozenset({"closed"})}
        merged = join_env(a, b)
        assert merged == {"x": frozenset({"live"}), "y": frozenset({"closed"})}

    def test_join_env_pointwise(self):
        a = {"x": frozenset({"live"})}
        b = {"x": frozenset({"closed"})}
        assert join_env(a, b)["x"] == frozenset({"live", "closed"})


class TestDottedName:
    def test_name_and_attribute_chain(self):
        assert dotted_name(_expr("result_q")) == "result_q"
        assert dotted_name(_expr("self._manager.arena")) == "self._manager.arena"

    def test_call_or_subscript_breaks_the_chain(self):
        assert dotted_name(_expr("cache().entry")) is None
        assert dotted_name(_expr("arenas[0].spec")) is None


class _Recorder(AbstractInterpreter):
    """Records hook invocations; assigns bind the literal token 'set'."""

    def __init__(self):
        super().__init__()
        self.calls: list[str] = []
        self.loop_depths: list[int] = []
        self.finally_depths: list[int] = []
        self.nested: list[str] = []

    def on_assign(self, target, value, node):
        self.env[target] = frozenset({"set"})

    def on_call(self, node):
        name = dotted_name(node.func) or "?"
        self.calls.append(name)
        self.loop_depths.append(self.loop_depth)
        self.finally_depths.append(self.finally_depth)

    def on_nested_def(self, node):
        self.nested.append(node.name)


def _run(src: str) -> _Recorder:
    interp = _Recorder()
    interp.run(ast.parse(src).body)
    return interp


class TestControlFlow:
    def test_branches_join(self):
        interp = _run("if c:\n    x = 1\nelse:\n    y = 2\n")
        assert interp.env["x"] == frozenset({"set"})
        assert interp.env["y"] == frozenset({"set"})

    def test_loop_joins_zero_iteration_path(self):
        """A binding inside the loop body is a may-fact, not a must-fact,
        so facts established before the loop must survive the join."""

        class Killer(_Recorder):
            def on_assign(self, target, value, node):
                self.env[target] = frozenset({"inner"})

        interp = Killer()
        interp.env["x"] = frozenset({"outer"})
        interp.run(ast.parse("for i in it:\n    x = 1\n").body)
        assert interp.env["x"] == frozenset({"outer", "inner"})

    def test_loop_depth_seen_by_call_hook(self):
        interp = _run("f()\nfor i in it:\n    g()\n")
        assert interp.calls == ["f", "g"]
        assert interp.loop_depths == [0, 1]

    def test_try_handler_starts_from_mid_body_state(self):
        """The handler may run with the body partially executed: its
        entry env is the join of pre-state and normal exit."""

        class Tracker(_Recorder):
            def __init__(self):
                super().__init__()
                self.handler_env = None

            def on_call(self, node):
                super().on_call(node)
                if (dotted_name(node.func) or "") == "handler":
                    self.handler_env = dict(self.env)

        interp = Tracker()
        interp.env["x"] = frozenset({"pre"})
        interp.run(
            ast.parse(
                "try:\n    x = 1\nexcept Exception:\n    handler()\n"
            ).body
        )
        # inside the handler, x may be either the pre value or the body's
        assert interp.handler_env["x"] == frozenset({"pre", "set"})

    def test_finally_depth(self):
        interp = _run(
            "try:\n    f()\nfinally:\n    cleanup()\n"
        )
        assert dict(zip(interp.calls, interp.finally_depths)) == {
            "f": 0,
            "cleanup": 1,
        }

    def test_with_as_binds_target(self):
        interp = _run("with open(p) as fh:\n    pass\n")
        assert interp.env["fh"] == frozenset({"set"})

    def test_delete_clears_fact(self):
        interp = _run("x = 1\ndel x\n")
        assert "x" not in interp.env

    def test_nested_defs_are_reported_not_walked(self):
        interp = _run("def inner():\n    poison()\ninner()\n")
        assert interp.nested == ["inner"]
        assert "poison" not in interp.calls  # body not charged to parent
