"""Tests of the concurrency-lifecycle rules.

The central regression test reintroduces the PR 4 use-after-unmap —
``ParallelFitEngine.close()`` releasing the arena while the seeded table
cache still holds views — and pins that the checker reports
``lifecycle-use-after-unlink`` with a stable fingerprint.
"""

import pytest

from repro.analysis.engine import analyze_lifecycle
from repro.analysis.findings import Severity
from repro.analysis.lifecycle import (
    RULE_ATTACH_BEFORE_SEED,
    RULE_EXIT_FLUSH,
    RULE_FORK_CAPTURE,
    RULE_MISSING_DROP,
    RULE_USE_AFTER_UNLINK,
    scan_lifecycle_source,
)

#: The PR 4 engine, minimised: the worker initialiser seeds the
#: process-global cache with arena views, and close() releases the arena
#: WITHOUT dropping the cache first — the seeded views outlive the
#: mapping and the next table lookup reads unmapped pages.
PR4_ENGINE = """
from repro.efit.tables import boundary_table_cache
from repro.parallel.arena import arena_manager


def _init_fit_worker(spec):
    arena = attach_arena(spec)
    boundary_table_cache().seed(arena.tables())
    return {"arena": arena, "engine": BatchFitEngine(spec.grid())}


class ParallelFitEngine:
    def close(self):
        self._manager.release(self.grid)
"""

#: The same engine with the fix PR 4 shipped after the segfault: drop
#: the cache entry before releasing the mapping.
PR4_ENGINE_FIXED = """
from repro.efit.tables import boundary_table_cache
from repro.parallel.arena import arena_manager


def _init_fit_worker(spec):
    arena = attach_arena(spec)
    boundary_table_cache().seed(arena.tables())
    return {"arena": arena, "engine": BatchFitEngine(spec.grid())}


class ParallelFitEngine:
    def close(self):
        boundary_table_cache().drop(self.grid)
        self._manager.release(self.grid)
"""


class TestPr4Regression:
    def test_reintroduced_use_after_unmap_is_detected(self):
        """Acceptance criterion: the PR 4 segfault, caught statically."""
        findings = scan_lifecycle_source(PR4_ENGINE, "repro.parallel.engine")
        by_rule = {f.rule_id: f for f in findings}
        assert RULE_USE_AFTER_UNLINK in by_rule
        f = by_rule[RULE_USE_AFTER_UNLINK]
        assert f.severity is Severity.ERROR
        assert f.location.ident == "repro.parallel.engine::ParallelFitEngine.close"
        assert f.fingerprint == (
            "lifecycle-use-after-unlink@"
            "repro.parallel.engine::ParallelFitEngine.close#release:self._manager"
        )
        assert "drop" in f.fix_hint

    def test_shipped_fix_is_clean(self):
        findings = scan_lifecycle_source(PR4_ENGINE_FIXED, "repro.parallel.engine")
        assert [f.rule_id for f in findings] == []

    def test_release_in_a_non_seeding_module_is_fine(self):
        """Without a seeded cache there is nothing to outlive the
        mapping: release alone is the normal teardown."""
        src = (
            "class Engine:\n"
            "    def close(self):\n"
            "        self._manager.release(self.grid)\n"
        )
        assert scan_lifecycle_source(src, "m") == []


def _scan_fn(body: str, *, module="m") -> list:
    lines = "\n".join("    " + ln for ln in body.strip("\n").splitlines())
    return scan_lifecycle_source(f"def f(ctx, spec, work_q):\n{lines}\n", module)


class TestUseAfterUnlink:
    def test_view_after_unlink(self):
        findings = _scan_fn(
            """
arena = TableArena.build(grid)
arena.unlink()
return arena.tables()
"""
        )
        assert [f.rule_id for f in findings] == [RULE_USE_AFTER_UNLINK]
        assert "unlinked" in findings[0].message

    def test_view_after_close(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
arena.close()
return arena.edge_operator()
"""
        )
        assert [f.rule_id for f in findings] == [RULE_USE_AFTER_UNLINK]

    def test_view_on_a_conditionally_dead_handle(self):
        """May-analysis: unlink on one branch poisons the join."""
        findings = _scan_fn(
            """
arena = TableArena.build(grid)
if spec:
    arena.unlink()
return arena.tables()
"""
        )
        assert RULE_USE_AFTER_UNLINK in {f.rule_id for f in findings}

    def test_view_before_teardown_is_clean(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
tables = arena.tables()
arena.close()
return tables
"""
        )
        assert findings == []

    def test_unlink_after_close_is_the_legal_order(self):
        findings = _scan_fn(
            """
arena = TableArena.build(grid)
tables = arena.tables()
arena.close()
arena.unlink()
return tables
"""
        )
        assert findings == []


class TestAttachBeforeSeed:
    def test_engine_before_seed_is_flagged(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
engine = BatchFitEngine(spec.grid())
cache.seed(arena.tables())
return {"arena": arena, "engine": engine}
"""
        )
        assert RULE_ATTACH_BEFORE_SEED in {f.rule_id for f in findings}

    def test_seed_then_engine_is_clean(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
cache.seed(arena.tables())
return {"arena": arena, "engine": BatchFitEngine(spec.grid())}
"""
        )
        assert findings == []


class TestMissingDrop:
    def test_unreleased_local_handle_is_flagged(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
x = arena.tables()
return x.gpc.sum()
"""
        )
        assert [f.rule_id for f in findings] == [RULE_MISSING_DROP]
        assert findings[0].detail == "leak:arena"

    def test_conditional_teardown_is_flagged_as_conditional(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
total = compute(arena.tables())
if spec.early:
    arena.close()
return total
"""
        )
        leaks = [f for f in findings if f.rule_id == RULE_MISSING_DROP]
        assert len(leaks) == 1
        assert "conditionally" in leaks[0].message

    def test_finally_teardown_is_clean(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
try:
    use(arena.tables())
finally:
    arena.close()
"""
        )
        assert findings == []

    def test_escaping_handle_transfers_ownership(self):
        findings = _scan_fn(
            """
arena = attach_arena(spec)
return arena
"""
        )
        assert findings == []

    def test_stored_handle_transfers_ownership(self):
        src = (
            "class M:\n"
            "    def acquire(self, spec):\n"
            "        arena = attach_arena(spec)\n"
            "        self._arenas[spec.shm_name] = arena\n"
            "        return arena.spec\n"
        )
        assert scan_lifecycle_source(src, "m") == []


class TestForkUnsafeCapture:
    def test_lambda_worker_arg(self):
        findings = _scan_fn(
            """
return ProcessScheduler(lambda spec: None, n_workers=2)
"""
        )
        assert [f.rule_id for f in findings] == [RULE_FORK_CAPTURE]
        assert findings[0].detail == "ProcessScheduler:lambda"

    def test_nested_function_worker_arg(self):
        findings = _scan_fn(
            """
def init(spec):
    return None
return ProcessScheduler(init, n_workers=2)
"""
        )
        assert [f.rule_id for f in findings] == [RULE_FORK_CAPTURE]
        assert "init" in findings[0].message

    def test_live_arena_handle_in_process_args(self):
        findings = _scan_fn(
            """
arena = manager.acquire(grid)
p = ctx.Process(target=work, args=(arena,))
return arena, p
"""
        )
        capture = [f for f in findings if f.rule_id == RULE_FORK_CAPTURE]
        assert len(capture) == 1
        assert "arena.spec" in capture[0].fix_hint

    def test_passing_the_spec_is_the_blessed_idiom(self):
        findings = _scan_fn(
            """
arena = manager.acquire(grid)
p = ctx.Process(target=work, args=(arena.spec,))
return arena, p
"""
        )
        assert [f.rule_id for f in findings] == []


class TestExitBeforeFlush:
    def test_exit_with_unflushed_queue(self):
        findings = _scan_fn(
            """
work_q.put(result)
os._exit(9)
"""
        )
        assert [f.rule_id for f in findings] == [RULE_EXIT_FLUSH]
        assert findings[0].detail == "exit:work_q"

    def test_close_alone_is_not_enough(self):
        findings = _scan_fn(
            """
work_q.put(result)
work_q.close()
os._exit(9)
"""
        )
        assert [f.rule_id for f in findings] == [RULE_EXIT_FLUSH]

    def test_the_worker_main_sequence_is_clean(self):
        """The fault-injection path in _worker_main, minimised."""
        findings = _scan_fn(
            """
work_q.put(result)
work_q.close()
work_q.join_thread()
os._exit(9)
"""
        )
        assert findings == []


class TestCleanTree:
    def test_repo_lifecycle_pass_is_clean(self):
        """Acceptance criterion: the real parallel layer (with the PR 4
        fix shipped) produces zero lifecycle findings."""
        assert analyze_lifecycle() == []

    def test_syntax_error_raises_analysis_error(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            scan_lifecycle_source("def f(:\n", "m")
