"""Tests of family selection, schema stamping and baseline staleness —
the engine policy and the ``repro analyze`` flags that expose it."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    ALL_FAMILIES,
    ANALYSIS_SCHEMA_VERSION,
    AnalysisConfig,
    AnalysisReport,
    analyze_repo,
)
from repro.analysis.findings import Finding, Location, Severity
from repro.cli import main
from repro.errors import AnalysisError

REPO_BASELINE = Path(__file__).parents[2] / "analysis-baseline.json"


def _finding(rule="hot-alloc", detail="d"):
    return Finding(
        rule_id=rule,
        severity=Severity.WARNING,
        location=Location(module="m", qualname="f"),
        message="msg",
        detail=detail,
    )


class TestFamilySelection:
    def test_unknown_family_raises(self):
        with pytest.raises(AnalysisError, match="unknown analysis families"):
            AnalysisConfig(families=("precision", "vibes"))

    def test_empty_selection_raises(self):
        with pytest.raises(AnalysisError, match="at least one"):
            AnalysisConfig(families=())

    def test_partial_run_skips_other_families(self):
        report = analyze_repo(AnalysisConfig(families=("lifecycle",)))
        assert report.families == ("lifecycle",)
        assert report.findings == []  # clean tree
        assert report.hot_functions == ()  # hotpath pass did not run

    def test_full_run_is_complete(self):
        assert AnalysisConfig().families == ALL_FAMILIES
        report = analyze_repo(AnalysisConfig(families=ALL_FAMILIES))
        assert report.complete

    def test_legacy_report_construction_counts_as_complete(self):
        assert AnalysisReport().complete
        assert not AnalysisReport(families=("directives",)).complete


class TestStaleness:
    def test_stale_entries_and_pruned(self):
        live = _finding()
        baseline = Baseline(
            {live.fingerprint: "still real", "ghost@x::y#z": "long gone"}
        )
        assert baseline.stale_entries([live]) == {"ghost@x::y#z": "long gone"}
        pruned = baseline.pruned([live])
        assert pruned.suppressions == {live.fingerprint: "still real"}

    def test_from_findings_preserves_curated_reasons(self):
        old_f, new_f = _finding(detail="old"), _finding(detail="new")
        previous = Baseline(
            {old_f.fingerprint: "Figure 5", "ghost@x::y#z": "long gone"}
        )
        rebuilt = Baseline.from_findings([old_f, new_f], previous=previous)
        assert rebuilt.suppressions[old_f.fingerprint] == "Figure 5"
        assert (
            rebuilt.suppressions[new_f.fingerprint]
            == "accepted at baseline creation"
        )
        assert "ghost@x::y#z" not in rebuilt.suppressions

    def test_apply_baseline_records_stale_suppressions(self):
        report = AnalysisReport(findings=[_finding()])
        report.apply_baseline(Baseline({"ghost@x::y#z": "long gone"}))
        assert report.stale_suppressions == {"ghost@x::y#z": "long gone"}

    def test_exit_code_policy_for_stale_entries(self):
        stale = {"ghost@x::y#z": ""}
        complete = AnalysisReport(stale_suppressions=dict(stale))
        assert complete.exit_code() == 0  # non-strict: warn only
        assert complete.exit_code(strict=True) == 1
        partial = AnalysisReport(
            families=("directives",), stale_suppressions=dict(stale)
        )
        assert partial.exit_code(strict=True) == 0  # didn't look everywhere

    def test_render_lists_stale_entries_on_complete_runs(self):
        report = AnalysisReport(stale_suppressions={"ghost@x::y#z": ""})
        assert "ghost@x::y#z" in report.render()
        partial = AnalysisReport(
            families=("directives",), stale_suppressions={"ghost@x::y#z": ""}
        )
        assert "ghost" not in partial.render()


class TestSchemaStamp:
    def test_to_dict_leads_with_schema_version(self):
        payload = AnalysisReport(families=("precision",)).to_dict()
        assert payload["schema_version"] == ANALYSIS_SCHEMA_VERSION == 2
        assert payload["summary"]["families"] == ["precision"]
        assert payload["summary"]["stale_suppressions"] == {}

    def test_cli_json_carries_the_stamp(self, capsys):
        rc = main(["analyze", "--json", "--baseline", str(REPO_BASELINE)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["summary"]["families"] == list(ALL_FAMILIES)


@pytest.fixture()
def stale_baseline(tmp_path):
    """The committed baseline plus one fingerprint matching nothing."""
    payload = json.loads(REPO_BASELINE.read_text())
    payload["suppressions"]["ghost-rule@x::y#z"] = "long gone"
    path = tmp_path / "stale.json"
    path.write_text(json.dumps(payload))
    return path


class TestCliFamilies:
    def test_family_filtered_run_is_clean(self, capsys):
        rc = main(["analyze", "--family", "precision", "--family", "lifecycle"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out
        assert "0/0 hot-path" in out  # the hotpath pass did not run

    def test_repeated_family_flags_deduplicate(self, capsys):
        rc = main(["analyze", "--family", "lifecycle", "--family", "lifecycle"])
        assert rc == 0
        capsys.readouterr()

    def test_unknown_family_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--family", "vibes"])
        capsys.readouterr()


class TestCliStaleness:
    def test_default_mode_warns_on_stderr(self, stale_baseline, capsys):
        rc = main(["analyze", "--baseline", str(stale_baseline)])
        assert rc == 0
        err = capsys.readouterr().err
        assert "stale baseline suppression" in err
        assert "ghost-rule@x::y#z" in err and "long gone" in err

    def test_strict_mode_fails(self, stale_baseline, capsys):
        rc = main(["analyze", "--strict", "--baseline", str(stale_baseline)])
        assert rc == 1
        capsys.readouterr()

    def test_partial_run_cannot_judge_staleness(self, stale_baseline, capsys):
        rc = main(
            [
                "analyze",
                "--strict",
                "--family",
                "directives",
                "--baseline",
                str(stale_baseline),
            ]
        )
        assert rc == 0
        assert "stale" not in capsys.readouterr().err

    def test_write_baseline_prunes_and_keeps_reasons(self, stale_baseline, capsys):
        rc = main(
            ["analyze", "--write-baseline", "--baseline", str(stale_baseline)]
        )
        assert rc == 0
        capsys.readouterr()
        rebuilt = json.loads(stale_baseline.read_text())["suppressions"]
        committed = json.loads(REPO_BASELINE.read_text())["suppressions"]
        assert "ghost-rule@x::y#z" not in rebuilt
        assert rebuilt == committed  # same live set, curated reasons intact


class TestCliSarif:
    def test_sarif_flag_writes_a_valid_log(self, tmp_path, capsys):
        path = tmp_path / "analysis.sarif"
        rc = main(
            ["analyze", "--baseline", str(REPO_BASELINE), "--sarif", str(path)]
        )
        assert rc == 0
        assert "wrote SARIF log" in capsys.readouterr().err
        payload = json.loads(path.read_text())
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        # the whole accepted set is present, marked suppressed
        assert len(results) == len(
            json.loads(REPO_BASELINE.read_text())["suppressions"]
        )
        assert all(r["suppressions"] == [{"kind": "external"}] for r in results)

    def test_unwritable_sarif_path_exits_2(self, tmp_path, capsys):
        rc = main(
            [
                "analyze",
                "--no-baseline",
                "--sarif",
                str(tmp_path / "nope" / "analysis.sarif"),
            ]
        )
        assert rc == 2
        capsys.readouterr()
