"""Tests of the analysis engine, the ``repro analyze`` CLI and the
shared ``--json`` emitters."""

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline
from repro.analysis.engine import AnalysisConfig, AnalysisReport, analyze_repo
from repro.analysis.findings import Finding, Location, Severity
from repro.cli import main

REPO_ROOT = Path(__file__).parents[2]
REPO_BASELINE = REPO_ROOT / "analysis-baseline.json"


@pytest.fixture(scope="module")
def repo_report():
    return analyze_repo()


class TestAnalyzeRepo:
    def test_repo_has_no_errors(self, repo_report):
        assert repo_report.count(Severity.ERROR) == 0

    def test_known_findings_are_the_figure5_and_hot_path_set(self, repo_report):
        rules = {f.rule_id for f in repo_report.findings}
        assert rules == {"excess-traffic", "hot-alloc", "hot-copy", "hot-ufunc-temp"}

    def test_certified_set_contains_the_batched_kernels(self, repo_report):
        assert "repro.batch.engine::BatchFitEngine._fit_batch" in repo_report.certified_allocation_free
        assert "repro.efit.pflux::boundary_flux_operator" in repo_report.certified_allocation_free

    def test_iterate_pre_is_hot_but_not_certified(self, repo_report):
        assert "repro.efit.fitting::EfitSolver.iterate_pre" in repo_report.hot_functions
        assert (
            "repro.efit.fitting::EfitSolver.iterate_pre"
            not in repo_report.certified_allocation_free
        )

    def test_committed_baseline_covers_every_finding(self, repo_report):
        """The acceptance criterion: the repo is clean under its own
        committed baseline, so ``repro analyze --strict`` exits 0."""
        baseline = Baseline.load(REPO_BASELINE)
        report = AnalysisReport(
            findings=list(repo_report.findings),
            hot_functions=repo_report.hot_functions,
            certified_allocation_free=repo_report.certified_allocation_free,
        )
        report.apply_baseline(baseline)
        assert report.findings == []
        assert report.exit_code(strict=True) == 0

    def test_baseline_has_no_stale_entries(self, repo_report):
        """Every committed suppression matches a live finding — stale
        fingerprints would silently mask future regressions."""
        live = {f.fingerprint for f in repo_report.findings}
        baseline = Baseline.load(REPO_BASELINE)
        assert set(baseline.suppressions) == live

    def test_custom_traffic_ratio_changes_findings(self):
        loose = analyze_repo(AnalysisConfig(max_traffic_ratio=4.5))
        assert all(f.rule_id != "excess-traffic" for f in loose.findings)


class TestReportMechanics:
    def _finding(self, severity):
        return Finding(
            rule_id="hot-alloc",
            severity=severity,
            location=Location(module="m", qualname="f"),
            message="msg",
        )

    def test_exit_code_policy(self):
        clean = AnalysisReport()
        assert clean.exit_code() == 0 and clean.exit_code(strict=True) == 0
        warn = AnalysisReport(findings=[self._finding(Severity.WARNING)])
        assert warn.exit_code() == 0
        assert warn.exit_code(strict=True) == 1
        err = AnalysisReport(findings=[self._finding(Severity.ERROR)])
        assert err.exit_code() == 1

    def test_render_summarises_counts(self):
        report = AnalysisReport(findings=[self._finding(Severity.WARNING)])
        text = report.render()
        assert "1 warning(s)" in text and "0 error(s)" in text


class TestAnalyzeCli:
    def test_strict_with_committed_baseline_exits_zero(self, capsys):
        rc = main(["analyze", "--strict", "--baseline", str(REPO_BASELINE)])
        assert rc == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_strict_without_baseline_fails_on_known_findings(self, capsys):
        rc = main(["analyze", "--strict", "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "excess-traffic" in out and "Figure 5" in out

    def test_default_mode_passes_without_baseline(self, capsys):
        """Warnings alone do not fail a non-strict run."""
        assert main(["analyze", "--no-baseline"]) == 0
        capsys.readouterr()

    def test_json_output_parses_and_carries_summary(self, capsys):
        rc = main(["analyze", "--json", "--baseline", str(REPO_BASELINE)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["findings"] == []
        assert len(payload["suppressed"]) == len(
            Baseline.load(REPO_BASELINE).suppressions
        )
        assert (
            "repro.batch.engine::BatchFitEngine._fit_batch"
            in payload["summary"]["certified_allocation_free"]
        )

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        assert main(["analyze", "--write-baseline", "--baseline", str(path)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--strict", "--baseline", str(path)]) == 0
        capsys.readouterr()

    def test_tighter_ratio_adds_findings(self, capsys):
        rc = main(
            ["analyze", "--strict", "--no-baseline", "--max-traffic-ratio", "1.2"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert out.count("excess-traffic") > 2


class TestSharedJsonEmitters:
    def test_census_json_matches_tables(self, capsys):
        assert main(["census", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"table4", "table5"}
        for table in payload.values():
            assert {"title", "headers", "rows"} <= set(table)
            assert table["rows"]

    def test_sites_json_lists_the_three_machines(self, capsys):
        assert main(["sites", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in payload] == ["perlmutter", "frontier", "sunspot"]
        by_name = {s["name"]: s for s in payload}
        assert by_name["sunspot"]["unified_memory"] is False
        assert "openacc" not in by_name["sunspot"]["models"]

    def test_text_mode_unchanged(self, capsys):
        assert main(["census"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "{" not in out
