"""Tests of the directive checkers, one per rule id.

The fixtures build deliberately-misannotated kernels (a shared write
without a reduction clause, an uncovered device array, an ``async``
region with no ``wait``) and assert the rules catch each with the right
location and fix hint.  The paper-reproduction tests run the *real*
``pflux_`` registry: the OpenACC lowering must be flagged for excess
traffic on the AMD site model while the OpenMP lowering stays clean.
"""

import pytest

from repro.analysis.directive_rules import (
    RULE_ASYNC,
    RULE_IMPLICIT,
    RULE_RACE,
    RULE_REGION,
    RULE_TRAFFIC,
    DirectiveAnalysisContext,
    check_async_wait,
    check_data_environment,
    check_races,
    check_traffic,
    run_directive_rules,
)
from repro.analysis.findings import Severity
from repro.core.offload import build_pflux_registry, pflux_device_arrays
from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.directives.openacc import AccLoop, AccParallelLoop, AccWait
from repro.directives.openmp import OmpParallelDo, OmpTargetTeamsDistribute
from repro.directives.registry import AnnotatedKernel, KernelRegistry
from repro.errors import AnalysisError
from repro.machines.site import ALL_SITES, frontier, perlmutter, sunspot

REDUCTIONS = ("tempsum1", "tempsum2")


def _boundary_nest(name="boundary_bad", *, reductions=REDUCTIONS):
    """A Figure 2-shaped O(N^3) nest: edge loop over a full-grid sum."""
    n = 33
    return LoopNest(
        name,
        (Loop("j", n), Loop("ii", n), Loop("jj", n)),
        flops_per_iteration=4.0,
        arrays=(
            ArrayRef("gridpc", n * n * n, AccessMode.READ, 2.0),
            ArrayRef("pcurr", n * n, AccessMode.READ, 2.0),
            ArrayRef("psi", 2 * n, AccessMode.WRITE, 2.0 / (n * n)),
        ),
        n_outer=1,
        reductions=reductions,
    )


def _registry(*kernels):
    reg = KernelRegistry("pflux_fixture", 400)
    for k in kernels:
        reg.register(k)
    return reg


@pytest.fixture(scope="module")
def real_registry():
    return build_pflux_registry(65)


class TestRaceRule:
    def test_misannotated_fixture_kernel_is_caught(self):
        """The intentionally-misannotated kernel: a reduction-carrying
        nest whose directives declare no reduction clause."""
        bad = AnnotatedKernel(
            nest=_boundary_nest(),
            acc_directives=(AccParallelLoop(gang=True, worker=True), AccLoop(vector=True)),
            omp_directives=(OmpTargetTeamsDistribute(), OmpParallelDo(collapse=2)),
        )
        findings = check_races(_registry(bad))
        assert {f.rule_id for f in findings} == {RULE_RACE}
        assert len(findings) == 2  # one per programming model
        for f in findings:
            assert f.severity is Severity.ERROR
            assert f.location.ident == "pflux_fixture::boundary_bad"
            assert "tempsum1" in f.message and "tempsum2" in f.message
            assert "reduction(+:tempsum1,tempsum2)" in f.fix_hint

    def test_shared_write_without_any_reduction(self):
        """Variant (b): no reductions anywhere, but an array smaller than
        the parallel iteration space is written."""
        bad = AnnotatedKernel(
            nest=_boundary_nest(reductions=()),
            acc_directives=(AccParallelLoop(gang=True),),
            omp_directives=(OmpTargetTeamsDistribute(),),
        )
        findings = check_races(_registry(bad))
        assert len(findings) == 2
        assert all("psi" in f.message for f in findings)
        assert all("private" in f.fix_hint or "atomic" in f.fix_hint for f in findings)

    def test_correctly_annotated_kernel_is_clean(self):
        good = AnnotatedKernel(
            nest=_boundary_nest(),
            acc_directives=(
                AccParallelLoop(gang=True, worker=True),
                AccLoop(vector=True, reduction=REDUCTIONS),
            ),
            omp_directives=(
                OmpTargetTeamsDistribute(reduction=REDUCTIONS),
                OmpParallelDo(reduction=REDUCTIONS, collapse=2),
            ),
        )
        assert check_races(_registry(good)) == []

    def test_registered_pflux_kernels_are_race_clean(self, real_registry):
        assert check_races(real_registry) == []


class TestAsyncRule:
    def test_async_without_wait_is_flagged(self):
        bad = AnnotatedKernel(
            nest=_boundary_nest(),
            acc_directives=(
                AccParallelLoop(gang=True, reduction=REDUCTIONS, async_queue=1),
                AccLoop(reduction=REDUCTIONS),
            ),
            omp_directives=(OmpTargetTeamsDistribute(reduction=REDUCTIONS),),
        )
        findings = check_async_wait(_registry(bad))
        assert [f.rule_id for f in findings] == [RULE_ASYNC]
        assert findings[0].detail == "async:1"
        assert "AccWait" in findings[0].fix_hint

    def test_matching_wait_clears_the_finding(self):
        good = AnnotatedKernel(
            nest=_boundary_nest(),
            acc_directives=(
                AccParallelLoop(gang=True, reduction=REDUCTIONS, async_queue=1),
                AccLoop(reduction=REDUCTIONS),
                AccWait(queue=1),
            ),
            omp_directives=(OmpTargetTeamsDistribute(reduction=REDUCTIONS),),
        )
        assert check_async_wait(_registry(good)) == []

    def test_bare_wait_drains_every_queue(self):
        good = AnnotatedKernel(
            nest=_boundary_nest(),
            acc_directives=(
                AccParallelLoop(gang=True, reduction=REDUCTIONS, async_queue=3),
                AccWait(),
            ),
            omp_directives=(OmpTargetTeamsDistribute(reduction=REDUCTIONS),),
        )
        assert check_async_wait(_registry(good)) == []

    def test_registered_pflux_kernels_use_no_async(self, real_registry):
        assert check_async_wait(real_registry) == []


class TestTrafficRule:
    """Reproduces Figure 5: OpenACC flagged on the AMD site, OpenMP clean."""

    def test_openacc_on_frontier_exceeds_threshold(self, real_registry):
        ctx = DirectiveAnalysisContext(sites=(frontier(),))
        findings = check_traffic(real_registry, ctx)
        flagged = {(f.location.kernel, f.detail) for f in findings}
        assert flagged == {
            ("boundary_lr", "openacc@frontier"),
            ("boundary_tb", "openacc@frontier"),
        }
        for f in findings:
            assert f.severity is Severity.WARNING
            assert f.data["traffic_factor"] > 3.5  # the paper's ~3.7x
            assert f.data["modeled_bytes"] > f.data["streaming_bytes"]

    def test_openmp_is_clean_on_every_site(self, real_registry):
        ctx = DirectiveAnalysisContext(sites=ALL_SITES())
        findings = check_traffic(real_registry, ctx)
        assert all(not f.detail.startswith("openmp") for f in findings)

    def test_nvidia_openacc_is_clean(self, real_registry):
        ctx = DirectiveAnalysisContext(sites=(perlmutter(),))
        assert check_traffic(real_registry, ctx) == []

    def test_threshold_is_configurable(self, real_registry):
        loose = DirectiveAnalysisContext(sites=(frontier(),), max_traffic_ratio=5.0)
        assert check_traffic(real_registry, loose) == []
        tight = DirectiveAnalysisContext(sites=(frontier(),), max_traffic_ratio=1.1)
        assert len(check_traffic(real_registry, tight)) > 2

    def test_threshold_must_exceed_one(self):
        with pytest.raises(AnalysisError):
            DirectiveAnalysisContext(max_traffic_ratio=0.5)


class TestDataEnvironmentRules:
    def test_missing_region_flagged_on_explicit_memory_site_only(self, real_registry):
        ctx = DirectiveAnalysisContext(sites=ALL_SITES(), data_env=None)
        findings = check_data_environment(real_registry, ctx)
        assert findings, "sunspot kernels need an enclosing data region"
        assert {f.rule_id for f in findings} == {RULE_REGION}
        assert {f.detail for f in findings} == {"region@sunspot"}
        assert all("target data" in f.fix_hint for f in findings)

    def test_unified_memory_sites_need_no_region(self, real_registry):
        ctx = DirectiveAnalysisContext(sites=(perlmutter(), frontier()), data_env=None)
        assert check_data_environment(real_registry, ctx) == []

    def test_uncovered_array_predicts_transfer_bytes(self, real_registry):
        env = {a.name for a in pflux_device_arrays(65)} - {"gridpc"}
        ctx = DirectiveAnalysisContext(sites=(sunspot(),), data_env=frozenset(env))
        findings = check_data_environment(real_registry, ctx)
        assert findings
        assert {f.rule_id for f in findings} == {RULE_IMPLICIT}
        assert all(f.detail == "gridpc@sunspot" for f in findings)
        for f in findings:
            assert f.severity is Severity.ERROR
            assert f.data["implied_bytes_per_call"] > 0
            assert "gridpc" in f.fix_hint

    def test_full_device_environment_is_clean(self, real_registry):
        env = frozenset(a.name for a in pflux_device_arrays(65))
        ctx = DirectiveAnalysisContext(sites=tuple(ALL_SITES()), data_env=env)
        assert check_data_environment(real_registry, ctx) == []

    def test_work_array_family_counts_as_covered(self, real_registry):
        """A nest array 'work' is covered by env entries work00..work19."""
        env = frozenset(a.name for a in pflux_device_arrays(65))
        assert "work" not in env and any(e.startswith("work") for e in env)
        ctx = DirectiveAnalysisContext(sites=(sunspot(),), data_env=env)
        assert check_data_environment(real_registry, ctx) == []


class TestRunAll:
    def test_real_registry_with_device_env_yields_only_figure5(self, real_registry):
        env = frozenset(a.name for a in pflux_device_arrays(65))
        ctx = DirectiveAnalysisContext(sites=ALL_SITES(), data_env=env)
        findings = run_directive_rules(real_registry, ctx)
        assert {f.rule_id for f in findings} == {RULE_TRAFFIC}
        assert all(f.detail == "openacc@frontier" for f in findings)
