"""Tests of the findings model and the suppression baseline."""

import pytest

from repro.analysis import Baseline, Finding, Location, Severity
from repro.errors import AnalysisError


def _finding(rule="directive-race", detail="openacc:psi", line=None):
    return Finding(
        rule_id=rule,
        severity=Severity.ERROR,
        location=Location(subroutine="pflux_", kernel="boundary_lr", line=line),
        message="msg",
        fix_hint="fix it",
        detail=detail,
    )


class TestFinding:
    def test_fingerprint_ignores_line_numbers(self):
        """Baselines must survive unrelated edits that shift lines."""
        assert _finding(line=10).fingerprint == _finding(line=99).fingerprint

    def test_fingerprint_distinguishes_rule_location_detail(self):
        base = _finding().fingerprint
        assert _finding(rule="excess-traffic").fingerprint != base
        assert _finding(detail="openmp:psi").fingerprint != base

    def test_kernel_location_ident(self):
        loc = Location(subroutine="pflux_", kernel="boundary_lr")
        assert loc.ident == "pflux_::boundary_lr"

    def test_python_location_ident_and_label(self):
        loc = Location(module="repro.efit.fitting", qualname="EfitSolver.iterate_pre", line=42)
        assert loc.ident == "repro.efit.fitting::EfitSolver.iterate_pre"
        assert loc.label.endswith(":42")

    def test_render_carries_fix_hint(self):
        text = _finding().render()
        assert "directive-race" in text
        assert "fix it" in text

    def test_to_dict_roundtrips_through_json(self):
        import json

        payload = json.loads(json.dumps(_finding().to_dict()))
        assert payload["rule"] == "directive-race"
        assert payload["severity"] == "error"
        assert payload["fingerprint"] == _finding().fingerprint


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        b = Baseline.from_findings([_finding()], reason="known")
        b.save(path)
        loaded = Baseline.load(path)
        assert loaded.is_suppressed(_finding())
        assert _finding().fingerprint in loaded

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            Baseline.load(tmp_path / "nope.json")

    def test_damaged_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "v9.json"
        path.write_text('{"version": 9, "suppressions": {}}')
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_unsuppressed_finding_passes_through(self):
        b = Baseline.from_findings([_finding()], reason="known")
        other = _finding(rule="excess-traffic")
        assert not b.is_suppressed(other)

    def test_committed_repo_baseline_is_loadable(self):
        from pathlib import Path

        repo_baseline = Path(__file__).parents[2] / "analysis-baseline.json"
        loaded = Baseline.load(repo_baseline)
        assert len(loaded.suppressions) >= 1
        # Every committed suppression carries a human-written reason.
        assert all(reason.strip() for reason in loaded.suppressions.values())
