"""Tests of the portability linter (``repro.analysis``)."""
