"""Tests of the precision-flow rules, IR and AST sides.

The ``promote`` lattice is cross-checked against NumPy's own
``result_type`` — the static rules must agree with what the arrays
actually do at runtime.
"""

import itertools
from types import SimpleNamespace

import numpy as np

from repro.analysis.engine import analyze_precision
from repro.analysis.findings import Severity
from repro.analysis.precision import (
    F32,
    F64,
    RULE_MIXED_GEMM,
    RULE_NONDET_REDUCTION,
    RULE_SILENT_UPCAST,
    RULE_UNSAFE_ACCUMULATE,
    check_registry_precision,
    promote,
    scan_precision_source,
)
from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.directives.registry import AnnotatedKernel, KernelRegistry


def _nest(name, arrays, *, reductions=(), accumulator_bytes=None):
    return LoopNest(
        name,
        (Loop("i", 8), Loop("j", 8)),
        flops_per_iteration=2.0,
        arrays=tuple(arrays),
        reductions=tuple(reductions),
        accumulator_bytes=accumulator_bytes,
    )


def _registry(*nests):
    reg = KernelRegistry("mixed", 100)
    for nest in nests:
        reg.register(
            AnnotatedKernel(nest=nest, acc_directives=(), omp_directives=())
        )
    return reg


def _arr(name, *, bpe, mode=AccessMode.READ):
    return ArrayRef(name, 64, mode, 1.0, bytes_per_element=bpe)


class TestPromoteLattice:
    def test_matches_numpy_result_type(self):
        """Ground truth: singleton promotion is exactly np.result_type."""
        floats = ("float16", "float32", "float64")
        for a, b in itertools.product(floats, floats):
            expected = np.result_type(np.dtype(a), np.dtype(b)).name
            assert promote(frozenset({a}), frozenset({b})) == frozenset({expected})

    def test_empty_is_neutral_like_a_python_scalar(self):
        """f32_array * 2.0 stays float32 — no dtype info must not widen."""
        assert promote(frozenset({F32}), frozenset()) == frozenset({F32})
        assert (np.zeros(3, np.float32) * 2.0).dtype == np.float32

    def test_may_sets_promote_pairwise(self):
        got = promote(frozenset({F32, F64}), frozenset({F32}))
        assert got == frozenset({F32, F64})


class TestRegistryRules:
    def test_mixed_gemm_reduction_kernel_is_flagged(self):
        """The acceptance-criterion kernel: fp32/fp64 operands feeding a
        reduction."""
        nest = _nest(
            "gemm_mixed",
            [_arr("a32", bpe=4), _arr("b64", bpe=8),
             _arr("c", bpe=8, mode=AccessMode.WRITE)],
            reductions=("acc",),
        )
        findings = check_registry_precision(_registry(nest))
        assert [f.rule_id for f in findings] == [RULE_MIXED_GEMM]
        f = findings[0]
        assert f.severity is Severity.ERROR
        assert f.location.ident == "mixed::gemm_mixed"
        assert f.fingerprint == "precision-mixed-gemm@mixed::gemm_mixed#reads:a32,b64"

    def test_f32_accumulation_without_refinement_is_flagged(self):
        nest = _nest(
            "dot32",
            [_arr("x", bpe=4), _arr("y", bpe=4)],
            reductions=("tempsum1",),
        )
        findings = check_registry_precision(_registry(nest))
        assert [f.rule_id for f in findings] == [RULE_UNSAFE_ACCUMULATE]
        assert "tempsum1" in findings[0].message

    def test_fp64_accumulator_declaration_satisfies_the_rule(self):
        """The fp32-with-fp64-refinement pattern the ROADMAP wants."""
        nest = _nest(
            "dot32_refined",
            [_arr("x", bpe=4), _arr("y", bpe=4)],
            reductions=("tempsum1",),
            accumulator_bytes=8,
        )
        assert check_registry_precision(_registry(nest)) == []

    def test_mixed_streaming_nest_is_an_upcast_warning(self):
        nest = _nest("axpy_mixed", [_arr("x", bpe=4), _arr("y", bpe=8)])
        findings = check_registry_precision(_registry(nest))
        assert [f.rule_id for f in findings] == [RULE_SILENT_UPCAST]
        assert findings[0].severity is Severity.WARNING

    def test_f32_inputs_f64_output_is_an_upcast_warning(self):
        nest = _nest(
            "widen_out",
            [_arr("x", bpe=4),
             _arr("out", bpe=8, mode=AccessMode.WRITE)],
        )
        findings = check_registry_precision(_registry(nest))
        assert [f.rule_id for f in findings] == [RULE_SILENT_UPCAST]
        assert "out" in findings[0].message

    def test_uniform_f64_kernel_is_clean(self):
        nest = _nest(
            "all64",
            [_arr("x", bpe=8), _arr("y", bpe=8)],
            reductions=("s",),
        )
        assert check_registry_precision(_registry(nest)) == []

    def test_nondet_lowering_is_flagged_per_site_model(self):
        nest = _nest(
            "sum64", [_arr("x", bpe=8)], reductions=("s",)
        )
        site = SimpleNamespace(
            name="stubsite",
            models=("openmp",),
            gpu=None,
            compiler=SimpleNamespace(
                name="stubcc",
                lower=lambda kernel, model, gpu: SimpleNamespace(
                    deterministic_reduction=False
                ),
            ),
        )
        findings = check_registry_precision(_registry(nest), sites=(site,))
        assert [f.rule_id for f in findings] == [RULE_NONDET_REDUCTION]
        assert findings[0].detail == "openmp@stubsite"
        assert findings[0].severity is Severity.ERROR

    def test_dtype_name_property(self):
        assert _arr("x", bpe=4).dtype_name == "float32"
        assert _arr("x", bpe=8).dtype_name == "float64"
        assert _arr("x", bpe=2).dtype_name == "float16"


def _scan(body: str) -> list:
    """Scan one @hot_path function whose body is ``body``."""
    lines = "\n".join("    " + ln for ln in body.strip("\n").splitlines())
    src = (
        "import numpy as np\n"
        "from repro.analysis.hotpath import hot_path\n\n"
        "@hot_path\n"
        f"def f(x, y):\n{lines}\n"
    )
    return scan_precision_source(src, "fixture")


class TestAstRules:
    def test_mixed_matmul_is_flagged(self):
        findings = _scan(
            """
a = np.zeros((4, 4), dtype=np.float32)
b = np.zeros((4, 4), dtype=np.float64)
return a @ b
"""
        )
        assert [f.rule_id for f in findings] == [RULE_MIXED_GEMM]
        assert findings[0].detail == "@:a|b"

    def test_mixed_np_dot_is_flagged(self):
        findings = _scan(
            """
a = np.zeros(4, dtype=np.float32)
b = np.zeros(4)
return np.dot(a, b)
"""
        )
        assert [f.rule_id for f in findings] == [RULE_MIXED_GEMM]

    def test_astype_conversion_clears_the_mix(self):
        findings = _scan(
            """
a = np.zeros((4, 4), dtype=np.float32)
b = np.zeros((4, 4), dtype=np.float64)
a64 = a.astype(np.float64)
return a64 @ b
"""
        )
        assert findings == []

    def test_mixed_multiply_is_an_upcast_warning(self):
        findings = _scan(
            """
a = np.zeros(4, dtype=np.float32)
b = np.ones(4)
return a * b
"""
        )
        assert [f.rule_id for f in findings] == [RULE_SILENT_UPCAST]
        assert findings[0].severity is Severity.WARNING

    def test_scalar_operand_is_not_a_mix(self):
        findings = _scan(
            """
a = np.zeros(4, dtype=np.float32)
return a * 2.0
"""
        )
        assert findings == []

    def test_f32_loop_accumulation_is_flagged(self):
        findings = _scan(
            """
s = np.float32(0.0)
for v in x:
    s += np.float32(v)
return s
"""
        )
        assert [f.rule_id for f in findings] == [RULE_UNSAFE_ACCUMULATE]
        assert findings[0].detail == "aug:s"

    def test_accumulation_outside_a_loop_is_fine(self):
        findings = _scan(
            """
s = np.float32(0.0)
s += np.float32(1.0)
return s
"""
        )
        assert findings == []

    def test_np_sum_of_f32_without_dtype_is_flagged(self):
        findings = _scan(
            """
a = np.zeros(4, dtype=np.float32)
return np.sum(a)
"""
        )
        assert [f.rule_id for f in findings] == [RULE_UNSAFE_ACCUMULATE]
        assert findings[0].detail == "np.sum:a"

    def test_np_sum_with_f64_accumulator_is_fine(self):
        findings = _scan(
            """
a = np.zeros(4, dtype=np.float32)
return np.sum(a, dtype=np.float64)
"""
        )
        assert findings == []

    def test_branchy_dtype_stays_a_may_set_and_is_not_flagged(self):
        """Flow sensitivity: a name that may be either width on different
        paths is ambiguous, not a definite mix — no finding."""
        findings = _scan(
            """
if y:
    a = np.zeros(4, dtype=np.float32)
else:
    a = np.zeros(4)
b = np.zeros(4)
return a @ b
"""
        )
        assert findings == []

    def test_functions_without_hot_path_are_ignored(self):
        src = (
            "import numpy as np\n"
            "def cold(x):\n"
            "    a = np.zeros(4, dtype=np.float32)\n"
            "    return a @ np.zeros(4)\n"
        )
        assert scan_precision_source(src, "fixture") == []


class TestCleanTree:
    def test_repo_precision_pass_is_clean(self):
        """Acceptance criterion: zero precision findings on the tree."""
        assert analyze_precision() == []
