"""Static/runtime cross-check: linter-certified kernels vs counters.

The linter certifies a ``@hot_path`` function as allocation-free from
its AST alone; the workspace counters observe actual arena behaviour.
These tests tie the two together: the certified batched kernels must
show *zero* steady-state allocations at runtime, so a regression in
either the static rules or the runtime discipline breaks the pair.
"""

import pytest

from repro.analysis.engine import analyze_repo
from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.errors import RuntimeModelError
from repro.runtime.counters import WorkspaceCounters


class TestSnapshotApi:
    def test_snapshot_is_independent(self):
        c = WorkspaceCounters()
        c.record_allocation(100)
        snap = c.snapshot()
        c.record_allocation(50)
        c.record_reuse()
        assert snap.allocations == 1 and c.allocations == 2
        assert c.allocations_since(snap) == 1

    def test_allocations_since_rejects_foreign_snapshot(self):
        c = WorkspaceCounters()
        future = WorkspaceCounters(allocations=5)
        with pytest.raises(RuntimeModelError):
            c.allocations_since(future)


class TestCertifiedKernelsAllocationFree:
    @pytest.fixture(scope="class")
    def engine(self, shot33):
        return BatchFitEngine(
            shot33.machine, shot33.diagnostics, shot33.grid, batch_size=4
        )

    @pytest.fixture(scope="class")
    def slices(self, shot33):
        return synthetic_slice_sequence(shot33, 4, seed=11)

    def test_certified_fit_batch_allocates_nothing_when_warm(self, engine, slices):
        """The linter certifies ``_fit_batch``; the counters must agree."""
        report = analyze_repo()
        assert (
            "repro.batch.engine::BatchFitEngine._fit_batch"
            in report.certified_allocation_free
        )
        engine.fit_many(slices)  # warm-up batch may allocate arena buffers
        warm = engine.workspace_counters().snapshot()
        engine.fit_many(slices)
        engine.fit_many(slices)
        steady = engine.workspace_counters()
        assert steady.allocations_since(warm) == 0
        assert steady.reuses > warm.reuses
