"""CLI: `repro operators`, boundary-method flags and gate subsetting."""

from __future__ import annotations

import json

import pytest

from repro.cli import _EDGE_METHODS, build_parser, main


class TestMethodListPin:
    def test_cli_literal_matches_registry(self):
        """cli.py keeps its own import-light tuple of methods for argparse
        choices; pin it to the real registry so they cannot drift."""
        from repro.efit.operators import EDGE_METHODS

        assert _EDGE_METHODS == EDGE_METHODS


class TestParser:
    def test_operators_defaults(self):
        args = build_parser().parse_args(["operators"])
        assert args.grid == 65 and args.vectors == 4
        assert args.method is None and not args.check

    def test_operators_method_choices(self):
        args = build_parser().parse_args(
            ["operators", "--method", "lowrank", "--method", "toeplitz-fp32"]
        )
        assert args.method == ["lowrank", "toeplitz-fp32"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["operators", "--method", "dense"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["operators", "--method", "butterfly"])

    @pytest.mark.parametrize("command", ["fit", "analyze"])
    def test_boundary_method_flag(self, command):
        args = build_parser().parse_args([command, "--boundary-method", "lowrank"])
        assert args.boundary_method == "lowrank"
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--boundary-method", "butterfly"])

    def test_pfleet_boundary_method_flag(self):
        args = build_parser().parse_args(
            ["pfleet", "g186610", "--boundary-method", "toeplitz"]
        )
        assert args.boundary_method == "toeplitz"


class TestOperatorsCommand:
    def test_check_passes_at_small_grid(self, capsys):
        assert main(["operators", "--grid", "17", "--check"]) == 0
        out = capsys.readouterr().out
        assert "operator drift check: ok (4 method(s))" in out
        for method in ("toeplitz", "lowrank", "toeplitz-fp32", "lowrank-fp32"):
            assert method in out
        assert "max-abs-error" in out

    def test_json_payload(self, capsys):
        assert main(["operators", "--grid", "17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["grid"] == 17
        assert payload["dense_nbytes"] > 0
        methods = {row["method"]: row for row in payload["methods"]}
        assert all(row["ok"] for row in methods.values())
        assert methods["lowrank"]["compression"] > 1.0
        assert methods["lowrank-fp32"]["bound"] == pytest.approx(1e-5)

    def test_impossible_bound_fails_check(self, capsys):
        code = main(
            ["operators", "--grid", "17", "--method", "lowrank",
             "--fp64-bound", "1e-30", "--check"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "operator drift check: FAIL" in captured.err

    def test_without_check_bound_failure_is_reported_not_fatal(self, capsys):
        code = main(
            ["operators", "--grid", "17", "--method", "lowrank",
             "--fp64-bound", "1e-30"]
        )
        assert code == 0
        assert "FAIL" in capsys.readouterr().out

    def test_bad_usage_exits_2(self, capsys):
        assert main(["operators", "--grid", "3"]) == 2
        assert "--grid" in capsys.readouterr().err


def _fake_results(**medians):
    from repro.obs.bench import BenchResult

    return {
        name: BenchResult(
            name=name, group="kernels", median_seconds=m, samples=(m,)
        )
        for name, m in medians.items()
    }


def _write_baseline(path, medians, tolerance=0.5):
    from repro.obs.bench import BENCH_SCHEMA_VERSION

    path.write_text(
        json.dumps(
            {
                "schema_version": BENCH_SCHEMA_VERSION,
                "tolerance": tolerance,
                "benchmarks": {
                    n: {"median_seconds": m, "group": "kernels"}
                    for n, m in medians.items()
                },
            }
        )
    )


class TestGateSubsettingCLI:
    @pytest.fixture(autouse=True)
    def no_large_env(self, monkeypatch):
        from repro.obs.bench import LARGE_ENV

        monkeypatch.delenv(LARGE_ENV, raising=False)

    def test_default_gate_skips_large_baseline_entries(
        self, tmp_path, monkeypatch, capsys
    ):
        """The quick lane passes without running 129^2/257^2 cases even
        though the committed baseline includes them."""
        import repro.obs.bench as bench

        monkeypatch.setattr(
            bench, "run_benchmarks", lambda *a, **k: _fake_results(a=1.0)
        )
        p = tmp_path / "b.json"
        _write_baseline(p, {"a": 1.0, "fit_129": 1.0, "kernel_boundary_257": 1.0})
        assert main(["bench", "--gate", "--baseline", str(p)]) == 0
        out = capsys.readouterr().out
        assert "benchmark gate: ok (1 case(s)" in out
        assert "fit_129" not in out

    def test_missing_coverage_exit_2_still_prints_ratio_table(
        self, tmp_path, monkeypatch, capsys
    ):
        """A baseline entry that never ran is a broken gate (exit 2), but
        the partial ratio table must still print for diagnosis."""
        import repro.obs.bench as bench

        monkeypatch.setattr(
            bench, "run_benchmarks", lambda *a, **k: _fake_results(a=1.0)
        )
        p = tmp_path / "b.json"
        _write_baseline(p, {"a": 1.0, "ghost": 1.0})
        assert main(["bench", "--gate", "--baseline", str(p)]) == 2
        captured = capsys.readouterr()
        assert "ghost" in captured.err and "missing coverage" in captured.err
        # The one case that did run shows up in the printed table.
        assert "gate ok" in captured.out and "limit" in captured.out

    def test_regression_exit_3_with_table(self, tmp_path, monkeypatch, capsys):
        import repro.obs.bench as bench

        monkeypatch.setattr(
            bench, "run_benchmarks", lambda *a, **k: _fake_results(a=10.0)
        )
        p = tmp_path / "b.json"
        _write_baseline(p, {"a": 1.0})
        assert main(["bench", "--gate", "--baseline", str(p)]) == 3
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "a" in captured.out.split()
