"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.artifact == "all" and args.grids is None

    def test_fit_options(self):
        args = build_parser().parse_args(
            ["fit", "--grid", "33", "--solver", "cyclic", "--geqdsk", "out.g"]
        )
        assert args.grid == 33 and args.solver == "cyclic" and args.geqdsk == "out.g"

    def test_invalid_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "--solver", "magic"])


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        from repro.version import __version__

        assert capsys.readouterr().out.strip() == __version__

    def test_sites(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        for name in ("perlmutter", "frontier", "sunspot"):
            assert name in out
        assert "break-even" in out

    def test_census(self, capsys):
        assert main(["census"]) == 0
        out = capsys.readouterr().out
        assert "!$acc kernel" in out and "!$omp target teams distribute" in out

    def test_study_single_artifact_small_grids(self, capsys):
        assert main(["study", "--artifact", "table7", "--grids", "65"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "65x65" in out

    def test_study_fig7(self, capsys):
        assert main(["study", "--artifact", "fig7", "--grids", "65", "129"]) == 0
        assert "cpu optimized" in capsys.readouterr().out

    def test_fit_writes_geqdsk(self, tmp_path, capsys):
        out = tmp_path / "g.out"
        assert main(["fit", "--grid", "33", "--geqdsk", str(out)]) == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "converged: True" in text
        # and the file round-trips
        from repro.efit.eqdsk import read_geqdsk

        eq = read_geqdsk(out)
        assert eq.nw == 33 and eq.qpsi.shape == (33,)
        assert (eq.qpsi > 0).all()


def test_fit_writes_afile(tmp_path):
    out = tmp_path / "a.out"
    assert main(["fit", "--grid", "33", "--afile", str(out)]) == 0
    from repro.efit.afile import read_afile

    a = read_afile(out)
    assert a.converged and a.q95 > 1.0


def test_fit_nondefault_scenario(capsys):
    assert main(["fit", "--scenario", "spherical-torus", "--grid", "33"]) == 0
    out = capsys.readouterr().out
    assert "scenario: spherical-torus" in out
    assert "converged: True" in out
