"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.artifact == "all" and args.grids is None

    def test_fit_options(self):
        args = build_parser().parse_args(
            ["fit", "--grid", "33", "--solver", "cyclic", "--geqdsk", "out.g"]
        )
        assert args.grid == 33 and args.solver == "cyclic" and args.geqdsk == "out.g"

    def test_invalid_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "--solver", "magic"])


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        from repro.version import __version__

        assert capsys.readouterr().out.strip() == __version__

    def test_sites(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        for name in ("perlmutter", "frontier", "sunspot"):
            assert name in out
        assert "break-even" in out

    def test_census(self, capsys):
        assert main(["census"]) == 0
        out = capsys.readouterr().out
        assert "!$acc kernel" in out and "!$omp target teams distribute" in out

    def test_study_single_artifact_small_grids(self, capsys):
        assert main(["study", "--artifact", "table7", "--grids", "65"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "65x65" in out

    def test_study_fig7(self, capsys):
        assert main(["study", "--artifact", "fig7", "--grids", "65", "129"]) == 0
        assert "cpu optimized" in capsys.readouterr().out

    def test_fit_writes_geqdsk(self, tmp_path, capsys):
        out = tmp_path / "g.out"
        assert main(["fit", "--grid", "33", "--geqdsk", str(out)]) == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "converged: True" in text
        # and the file round-trips
        from repro.efit.eqdsk import read_geqdsk

        eq = read_geqdsk(out)
        assert eq.nw == 33 and eq.qpsi.shape == (33,)
        assert (eq.qpsi > 0).all()


def test_fit_writes_afile(tmp_path):
    out = tmp_path / "a.out"
    assert main(["fit", "--grid", "33", "--afile", str(out)]) == 0
    from repro.efit.afile import read_afile

    a = read_afile(out)
    assert a.converged and a.q95 > 1.0


def test_fit_nondefault_scenario(capsys):
    assert main(["fit", "--scenario", "spherical-torus", "--grid", "33"]) == 0
    out = capsys.readouterr().out
    assert "scenario: spherical-torus" in out
    assert "converged: True" in out


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.streams == 4 and args.slices == 8
        assert args.deadline_ms == 1000.0
        assert not args.no_warm_start and not args.check

    def test_invalid_streams_exit_2(self, capsys):
        assert main(["serve", "--streams", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_invalid_deadline_exit_2(self, capsys):
        assert main(["serve", "--deadline-ms", "-5"]) == 2
        assert "deadline" in capsys.readouterr().err

    def test_smoke_streams_check_and_metrics(self, tmp_path, capsys):
        """The serve-smoke gate in miniature: 2 streams x 2 slices at
        33^2, no deadline, serial comparison and the --check gate."""
        out = tmp_path / "serve.json"
        rc = main(
            [
                "serve",
                "--grid", "33",
                "--streams", "2",
                "--slices", "2",
                "--deadline-ms", "0",
                "--compare-serial",
                "--check",
                "--metrics-out", str(out),
            ]
        )
        text = capsys.readouterr().out
        assert rc == 0
        assert "0 mismatch(es)" in text
        assert "serve check: ok" in text
        import json

        payload = json.loads(out.read_text())
        assert payload["summary"]["warm_iteration_savings"] > 0
        assert payload["summary"]["deadline_misses"] == 0
        assert payload["metrics"]["serve.slices"] == 4.0
