"""CLI exit-code contracts: 0 success, 2 environment error, 3 gate fail.

Scripts (CI above all) branch on these codes, so they are tested as an
interface, not an implementation detail.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

FAST_BENCH = ["--only", "kernel_dst_solve_65", "--repeats", "1"]


class TestUsageErrors:
    def test_unknown_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["explode"])
        assert exc.value.code == 2

    def test_unknown_trace_case_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "nonsense"])
        assert exc.value.code == 2


class TestAnalyzeExitCodes:
    def test_strict_with_committed_baseline_passes(self):
        assert main(["analyze", "--strict", "--baseline", "analysis-baseline.json"]) == 0

    def test_no_baseline_reports_findings_nonzero(self, capsys):
        code = main(["analyze", "--strict", "--no-baseline"])
        capsys.readouterr()
        assert code != 0

    def test_missing_baseline_path_is_error(self, tmp_path, capsys):
        code = main(["analyze", "--baseline", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "an.json"
        assert main(["analyze", "--write-baseline", "--baseline", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["analyze", "--strict", "--baseline", str(path)]) == 0


class TestTraceExitCodes:
    def test_trace_writes_chrome_and_jsonl(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        code = main(
            ["trace", "g186610", "--grid", "33", "--out", str(out), "--jsonl", str(jsonl)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])
        assert jsonl.read_text().count("\n") > 10
        assert "spans" in capsys.readouterr().out

    def test_unwritable_out_path_exits_2(self, tmp_path, capsys):
        out = tmp_path / "no" / "such" / "dir" / "t.json"
        code = main(["trace", "offload", "--out", str(out)])
        assert code == 2
        assert "cannot write trace" in capsys.readouterr().err


class TestBenchExitCodes:
    def test_unknown_benchmark_exits_2(self, capsys):
        code = main(["bench", "--only", "nope", "--repeats", "1"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_gate_missing_baseline_exits_2(self, tmp_path, capsys):
        code = main(
            ["bench", "--gate", "--baseline", str(tmp_path / "absent.json"), *FAST_BENCH]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_gate_pass_and_handicapped_fail(self, tmp_path, capsys, monkeypatch):
        baseline = tmp_path / "b.json"
        assert main(["bench", "--write-baseline", "--baseline", str(baseline), *FAST_BENCH]) == 0
        capsys.readouterr()

        # Same machine, generous tolerance: the gate passes...
        code = main(
            ["bench", "--gate", "--baseline", str(baseline), "--tolerance", "10.0", *FAST_BENCH]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "gate ok" in out and "benchmark gate: ok" in out

        # ...until a synthetic 1e6x slowdown trips it with exit code 3.
        monkeypatch.setenv("REPRO_BENCH_HANDICAP", "1e6")
        code = main(
            ["bench", "--gate", "--baseline", str(baseline), "--tolerance", "10.0", *FAST_BENCH]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "gate FAIL" in captured.out
        assert "REGRESSION" in captured.err

    def test_json_payload_shape(self, capsys):
        assert main(["bench", "--json", *FAST_BENCH]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert "kernel_dst_solve_65" in payload["benchmarks"]


class TestScenarioSelection:
    """--scenario negative paths: the registry drives the choice list."""

    def test_unknown_fit_scenario_exits_2_with_list(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fit", "--scenario", "no-such-machine"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        # argparse's invalid-choice message enumerates every registered
        # scenario, so the user sees what IS available.
        assert "invalid choice" in err
        for name in ("g186610", "spherical-torus", "double-null", "single-null", "mse"):
            assert name in err

    def test_unknown_pfleet_scenario_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["pfleet", "--scenario", "no-such-machine"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_pfleet_conflicting_forms_exit_2(self, capsys):
        code = main(["pfleet", "g186610", "--scenario", "double-null"])
        assert code == 2
        assert "conflicting" in capsys.readouterr().err

    def test_pfleet_agreeing_forms_accepted(self, capsys):
        code = main(
            ["pfleet", "g186610", "--scenario", "g186610", "--grid", "33",
             "--slices", "2", "--batch", "2", "--workers", "1"]
        )
        assert code == 0
        assert "pfleet g186610" in capsys.readouterr().out

    def test_pfleet_nondefault_scenario_compare_serial(self, capsys):
        """A diverted scenario shards across workers and stays
        bit-identical to the serial engine."""
        code = main(
            ["pfleet", "--scenario", "double-null", "--grid", "33",
             "--slices", "4", "--batch", "2", "--workers", "2",
             "--compare-serial"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pfleet double-null" in out
        assert "bit-identical: True" in out
