"""Tests of OpenACC/OpenMP pragma objects, parsing and round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.directives.openacc import (
    AccEndKernels,
    AccKernels,
    AccLoop,
    AccParallelLoop,
    parse_acc,
)
from repro.directives.openmp import (
    OmpEndTargetData,
    OmpLoop,
    OmpParallelDo,
    OmpTargetData,
    OmpTargetTeamsDistribute,
    parse_omp,
)
from repro.errors import DirectiveParseError

names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10),
    min_size=0,
    max_size=3,
    unique=True,
).map(tuple)


class TestAccRendering:
    def test_paper_figure2_pragmas(self):
        """The exact directives of the paper's Figure 2."""
        outer = AccParallelLoop(gang=True, worker=True, num_workers=4, vector_length=32)
        assert (
            outer.to_pragma()
            == "!$acc parallel loop gang worker num_workers(4) vector_length(32)"
        )
        inner = AccLoop(vector=True, reduction=("tempsum1", "tempsum2"))
        assert inner.to_pragma() == "!$acc loop vector reduction(+:tempsum1,tempsum2)"

    def test_kernel_pair(self):
        assert AccKernels().to_pragma() == "!$acc kernel"
        assert AccEndKernels().to_pragma() == "!$acc end kernel"

    def test_invalid_clause_values(self):
        with pytest.raises(DirectiveParseError):
            AccParallelLoop(num_workers=0)
        with pytest.raises(DirectiveParseError):
            AccParallelLoop(vector_length=-1)


class TestAccParsing:
    @pytest.mark.parametrize(
        "pragma",
        [
            "!$acc kernel",
            "!$acc end kernel",
            "!$acc parallel loop gang worker",
            "!$acc parallel loop gang worker num_workers(4) vector_length(64)",
            "!$acc loop vector reduction(+:tempsum1,tempsum2)",
        ],
    )
    def test_roundtrip(self, pragma):
        assert parse_acc(pragma).to_pragma() == pragma

    def test_whitespace_tolerant(self):
        d = parse_acc("  !$acc   parallel   loop  gang  worker ")
        assert isinstance(d, AccParallelLoop) and d.gang and d.worker

    def test_rejects_non_acc(self):
        with pytest.raises(DirectiveParseError):
            parse_acc("!$omp target teams distribute")
        with pytest.raises(DirectiveParseError):
            parse_acc("do i=1,n")

    def test_rejects_unknown_clause(self):
        with pytest.raises(DirectiveParseError):
            parse_acc("!$acc parallel loop gang fancy_clause")

    @given(
        st.booleans(),
        st.booleans(),
        st.one_of(st.none(), st.integers(min_value=1, max_value=1024)),
        st.one_of(st.none(), st.integers(min_value=1, max_value=1024)),
        names,
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, gang, worker, nw, vl, reduction):
        d = AccParallelLoop(
            gang=gang, worker=worker, num_workers=nw, vector_length=vl, reduction=reduction
        )
        assert parse_acc(d.to_pragma()) == d


class TestOmpRendering:
    def test_paper_figure3_pragmas(self):
        outer = OmpTargetTeamsDistribute(reduction=("tempsum1", "tempsum2"))
        assert (
            outer.to_pragma()
            == "!$omp target teams distribute reduction(+:tempsum1,tempsum2)"
        )
        inner = OmpParallelDo(reduction=("tempsum1", "tempsum2"), collapse=2)
        assert (
            inner.to_pragma()
            == "!$omp parallel do reduction(+:tempsum1,tempsum2) collapse(2)"
        )

    def test_fused_form(self):
        d = OmpTargetTeamsDistribute(parallel_do=True, collapse=2)
        assert d.to_pragma() == "!$omp target teams distribute parallel do collapse(2)"

    def test_target_data_maps(self):
        d = OmpTargetData(map_to=("gridpc", "pcurr"), map_from=("psi",))
        assert d.to_pragma() == "!$omp target data map(to:gridpc,pcurr) map(from:psi)"
        assert OmpEndTargetData().to_pragma() == "!$omp end target data"

    def test_empty_data_region_rejected(self):
        with pytest.raises(DirectiveParseError):
            OmpTargetData()

    def test_collapse_validation(self):
        with pytest.raises(DirectiveParseError):
            OmpParallelDo(collapse=1)


class TestOmpParsing:
    @pytest.mark.parametrize(
        "pragma",
        [
            "!$omp target teams distribute parallel do collapse(2)",
            "!$omp target teams distribute reduction(+:tempsum1,tempsum2)",
            "!$omp parallel do reduction(+:tempsum1,tempsum2) collapse(2)",
            "!$omp loop",
            "!$omp target data map(to:gridpc,pcurr) map(from:psi)",
            "!$omp end target data",
        ],
    )
    def test_roundtrip(self, pragma):
        assert parse_omp(pragma).to_pragma() == pragma

    def test_rejects_non_omp(self):
        with pytest.raises(DirectiveParseError):
            parse_omp("!$acc kernel")

    def test_rejects_unknown_clauses(self):
        with pytest.raises(DirectiveParseError):
            parse_omp("!$omp parallel do schedule(dynamic)")
        with pytest.raises(DirectiveParseError):
            parse_omp("!$omp target teams distribute simd")

    @given(st.booleans(), st.one_of(st.none(), st.integers(min_value=2, max_value=6)), names)
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_ttd(self, parallel_do, collapse, reduction):
        d = OmpTargetTeamsDistribute(
            parallel_do=parallel_do, collapse=collapse, reduction=reduction
        )
        assert parse_omp(d.to_pragma()) == d

    @given(names, names)
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_target_data(self, to, frm):
        if not to and not frm:
            return
        d = OmpTargetData(map_to=to, map_from=frm)
        assert parse_omp(d.to_pragma()) == d

    def test_model_attribute(self):
        assert OmpLoop().model == "openmp"
        assert AccKernels().model == "openacc"
