"""Tests of the loop-nest IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.errors import DirectiveError


def make_nest(nw=8, nh=10):
    return LoopNest(
        name="boundary",
        loops=(Loop("j", nh), Loop("ii", nw), Loop("jj", nh)),
        flops_per_iteration=4.0,
        arrays=(
            ArrayRef("gridpc", 2 * nh * nw, AccessMode.READ, 2.0),
            ArrayRef("pcurr", nw * nh, AccessMode.READ, 1.0),
            ArrayRef("psi", 2 * nh, AccessMode.WRITE, 0.0),
        ),
        n_outer=1,
        reductions=("tempsum1", "tempsum2"),
    )


class TestIterationSpace:
    def test_totals(self):
        nest = make_nest(8, 10)
        assert nest.total_iterations == 10 * 8 * 10
        assert nest.outer_iterations == 10
        assert nest.inner_iterations == 80

    def test_single_loop_inner_is_one(self):
        nest = LoopNest("x", (Loop("i", 5),), 1.0, n_outer=1)
        assert nest.inner_iterations == 1

    def test_collapse_all_outer(self):
        nest = LoopNest("x", (Loop("i", 5), Loop("j", 7)), 1.0, n_outer=2)
        assert nest.outer_iterations == 35


class TestWork:
    def test_flops(self):
        assert make_nest().total_flops == 4.0 * 800

    def test_streaming_bytes(self):
        nest = make_nest()
        # (2 + 1 + 0) accesses x 8 bytes per iteration
        assert nest.streaming_bytes == 24.0 * nest.total_iterations

    def test_footprint_bytes(self):
        nest = make_nest(8, 10)
        assert nest.footprint_bytes == (2 * 10 * 8 + 80 + 20) * 8

    def test_arithmetic_intensity_positive(self):
        assert make_nest().arithmetic_intensity > 0

    def test_intensity_infinite_without_arrays(self):
        nest = LoopNest("pure", (Loop("i", 4),), 2.0)
        assert nest.arithmetic_intensity == float("inf")


class TestValidation:
    def test_empty_loops(self):
        with pytest.raises(DirectiveError):
            LoopNest("x", (), 1.0)

    def test_bad_n_outer(self):
        with pytest.raises(DirectiveError):
            LoopNest("x", (Loop("i", 4),), 1.0, n_outer=2)
        with pytest.raises(DirectiveError):
            LoopNest("x", (Loop("i", 4),), 1.0, n_outer=0)

    def test_negative_flops(self):
        with pytest.raises(DirectiveError):
            LoopNest("x", (Loop("i", 4),), -1.0)

    def test_duplicate_arrays(self):
        with pytest.raises(DirectiveError):
            LoopNest(
                "x",
                (Loop("i", 4),),
                1.0,
                arrays=(ArrayRef("a", 4), ArrayRef("a", 8)),
            )

    def test_bad_loop_extent(self):
        with pytest.raises(DirectiveError):
            Loop("i", 0)

    def test_bad_array(self):
        with pytest.raises(DirectiveError):
            ArrayRef("a", -1)
        with pytest.raises(DirectiveError):
            ArrayRef("a", 4, accesses_per_iteration=-1.0)

    def test_array_lookup(self):
        nest = make_nest()
        assert nest.array("pcurr").elements == 80
        with pytest.raises(DirectiveError):
            nest.array("nonexistent")


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.0, max_value=16.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_work_scales_with_iterations(self, a, b, flops):
        nest = LoopNest("x", (Loop("i", a), Loop("j", b)), flops)
        assert nest.total_flops == pytest.approx(flops * a * b, rel=1e-12)

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_streaming_at_least_footprint_when_accessed_each_iter(self, n):
        """If every array is touched >= once per iteration and iterations
        >= elements, streaming >= footprint."""
        nest = LoopNest(
            "x",
            (Loop("i", n), Loop("j", n)),
            1.0,
            arrays=(ArrayRef("a", n * n, AccessMode.READ, 1.0),),
        )
        assert nest.streaming_bytes >= nest.footprint_bytes
