"""Tests of ACC<->OMP translation and the kernel registry census."""

import pytest

from repro.core import paper
from repro.core.offload import PFLUX_SOURCE_LINES, build_pflux_registry
from repro.directives.openacc import (
    AccEndKernels,
    AccKernels,
    AccLoop,
    AccParallelLoop,
)
from repro.directives.openmp import (
    OmpLoop,
    OmpParallelDo,
    OmpTargetData,
    OmpTargetTeamsDistribute,
)
from repro.directives.registry import AnnotatedKernel, KernelRegistry, directive_census
from repro.directives.translate import acc_to_omp, omp_to_acc
from repro.directives.ir import Loop, LoopNest
from repro.errors import DirectiveError


class TestTranslation:
    def test_kernels_region_maps_to_fused_form(self):
        out = acc_to_omp(AccKernels())
        assert isinstance(out, OmpTargetTeamsDistribute)
        assert out.parallel_do and out.collapse == 2

    def test_end_kernel_has_no_counterpart(self):
        assert acc_to_omp(AccEndKernels()) is None

    def test_parallel_loop_maps_to_teams_distribute(self):
        out = acc_to_omp(AccParallelLoop(reduction=("t1", "t2")))
        assert isinstance(out, OmpTargetTeamsDistribute)
        assert not out.parallel_do
        assert out.reduction == ("t1", "t2")

    def test_loop_vector_maps_to_parallel_do(self):
        out = acc_to_omp(AccLoop(reduction=("t1",)))
        assert isinstance(out, OmpParallelDo)
        assert out.collapse == 2 and out.reduction == ("t1",)

    def test_tuning_clauses_dropped(self):
        """num_workers / vector_length have no OpenMP analog."""
        out = acc_to_omp(AccParallelLoop(num_workers=4, vector_length=32))
        assert isinstance(out, OmpTargetTeamsDistribute)

    def test_inverse_direction(self):
        assert isinstance(omp_to_acc(OmpTargetTeamsDistribute(parallel_do=True, collapse=2)), AccKernels)
        assert isinstance(omp_to_acc(OmpTargetTeamsDistribute(reduction=("x",))), AccParallelLoop)
        assert isinstance(omp_to_acc(OmpParallelDo(reduction=("x",), collapse=2)), AccLoop)
        assert omp_to_acc(OmpTargetData(map_to=("a",))) is None
        assert omp_to_acc(OmpLoop()) is None

    def test_semantic_roundtrip(self):
        """acc -> omp -> acc preserves offload semantics (reductions)."""
        start = AccLoop(reduction=("tempsum1", "tempsum2"))
        back = omp_to_acc(acc_to_omp(start))
        assert isinstance(back, AccLoop)
        assert back.reduction == start.reduction


class TestRegistry:
    def test_pflux_registry_kernel_names(self):
        reg = build_pflux_registry(65)
        names = {k.name for k in reg}
        assert names == {
            "boundary_lr",
            "boundary_tb",
            "rhs_build",
            "solver_fast",
            "small_loops",
            "assemble",
        }

    def test_duplicate_registration_rejected(self):
        reg = build_pflux_registry(17)
        with pytest.raises(DirectiveError):
            reg.register(reg.get("assemble"))

    def test_get_unknown(self):
        with pytest.raises(DirectiveError):
            build_pflux_registry(17).get("nope")

    def test_census_matches_table4(self):
        reg = build_pflux_registry(65)
        census = {p: c for p, c, _ in reg.census_table("openacc")}
        assert census == paper.TABLE4_ACC_CENSUS

    def test_census_matches_table5(self):
        reg = build_pflux_registry(65)
        census = {p: c for p, c, _ in reg.census_table("openmp")}
        assert census == paper.TABLE5_OMP_CENSUS

    def test_omp_line_count_is_the_papers_eight(self):
        reg = build_pflux_registry(65)
        assert reg.directive_line_count("openmp") == 8
        # "roughly 2% of the routine"
        assert 8 / PFLUX_SOURCE_LINES == pytest.approx(0.02)

    def test_census_percentages_match_paper(self):
        reg = build_pflux_registry(65)
        for pragma, count, pct in reg.census_table("openacc"):
            assert pct == pytest.approx(100.0 * count / PFLUX_SOURCE_LINES)

    def test_unknown_model_rejected(self):
        with pytest.raises(DirectiveError):
            build_pflux_registry(17).census_table("sycl")

    def test_census_strips_clause_arguments(self):
        census = directive_census(
            [AccParallelLoop(num_workers=4, vector_length=32), AccParallelLoop(num_workers=8)]
        )
        assert census == {"!$acc parallel loop gang": 2} or census == {
            "!$acc parallel loop gang worker": 2
        }

    def test_registry_requires_positive_lines(self):
        with pytest.raises(DirectiveError):
            KernelRegistry("x", 0)

    def test_kernel_payload_optional(self):
        nest = LoopNest("k", (Loop("i", 4),), 1.0)
        k = AnnotatedKernel(nest=nest, acc_directives=(), omp_directives=())
        assert k.payload is None and k.launches == 1


class TestTranslationProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    names = st.lists(
        st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
        min_size=0,
        max_size=3,
        unique=True,
    ).map(tuple)

    @given(reduction=names)
    @settings(max_examples=50, deadline=None)
    def test_reductions_survive_roundtrip(self, reduction):
        """acc -> omp -> acc preserves reduction semantics for both
        paper directive shapes."""
        for start in (
            AccParallelLoop(gang=True, worker=True, reduction=reduction),
            AccLoop(vector=True, reduction=reduction),
        ):
            omp = acc_to_omp(start)
            back = omp_to_acc(omp)
            assert back.reduction == reduction
            assert type(back) is type(start)

    @given(reduction=names)
    @settings(max_examples=50, deadline=None)
    def test_omp_roundtrip_loses_nothing_semantic(self, reduction):
        from repro.directives.openmp import OmpParallelDo, OmpTargetTeamsDistribute

        for start in (
            OmpTargetTeamsDistribute(reduction=reduction),
            OmpParallelDo(reduction=reduction, collapse=2),
        ):
            acc = omp_to_acc(start)
            again = acc_to_omp(acc)
            assert again.reduction == reduction
