"""Round-trip translation over every *registered* pflux kernel.

Satellite coverage for :mod:`repro.directives.translate`: Section 5.2
claims Tables 4 and 5 "map precisely", so translating each registered
kernel's real annotations between models must preserve offload
semantics, and the translated censuses must agree with the paper's
census tables.
"""

import pytest

from repro.core import paper
from repro.core.offload import build_pflux_registry
from repro.directives.openacc import AccDirective, AccEndKernels
from repro.directives.openmp import OmpDirective
from repro.directives.registry import directive_census
from repro.directives.translate import (
    acc_to_omp,
    omp_to_acc,
    translate_kernel_acc_to_omp,
    translate_kernel_omp_to_acc,
)
from repro.errors import TranslationError


@pytest.fixture(scope="module")
def registry():
    return build_pflux_registry(65)


class TestRoundTripEveryRegisteredKernel:
    def test_every_acc_directive_translates(self, registry):
        for kernel in registry:
            for d in kernel.acc_directives:
                out = acc_to_omp(d)
                assert out is None or isinstance(out, OmpDirective)

    def test_every_omp_directive_translates(self, registry):
        for kernel in registry:
            for d in kernel.omp_directives:
                out = omp_to_acc(d)
                assert out is None or isinstance(out, AccDirective)

    def test_acc_omp_acc_preserves_semantics(self, registry):
        """Full round trip per kernel: type and reductions survive;
        only ``end kernel`` markers and tuning clauses are lost."""
        for kernel in registry:
            for d in kernel.acc_directives:
                omp = acc_to_omp(d)
                if omp is None:
                    assert isinstance(d, AccEndKernels)
                    continue
                back = omp_to_acc(omp)
                assert type(back).__name__ == type(d).__name__, kernel.name
                assert getattr(back, "reduction", ()) == getattr(d, "reduction", ())

    def test_omp_acc_omp_preserves_semantics(self, registry):
        for kernel in registry:
            for d in kernel.omp_directives:
                acc = omp_to_acc(d)
                if acc is None:
                    continue
                again = acc_to_omp(acc)
                assert type(again).__name__ == type(d).__name__, kernel.name
                assert getattr(again, "reduction", ()) == getattr(d, "reduction", ())

    def test_reduction_kernels_keep_their_reductions(self, registry):
        """The Figure 2/3 boundary kernels' tempsum reductions must never
        be dropped by translation (that is the directive-race bug)."""
        for name in ("boundary_lr", "boundary_tb"):
            kernel = registry.get(name)
            translated = [acc_to_omp(d) for d in kernel.acc_directives]
            declared = set()
            for d in translated:
                declared.update(getattr(d, "reduction", ()) or ())
            assert {"tempsum1", "tempsum2"} <= declared


class TestTranslatedCensusesMatchTables:
    def test_acc_to_omp_census_matches_table5(self, registry):
        """Kernel-level translation of the whole OpenACC annotation set
        yields exactly the paper's Table 5 OpenMP census (the reduction
        is hoisted onto the teams-distribute level, as Table 5 spells it)."""
        translated = [
            d for kernel in registry for d in translate_kernel_acc_to_omp(kernel)
        ]
        assert directive_census(translated) == paper.TABLE5_OMP_CENSUS

    def test_omp_to_acc_census_matches_table4_minus_end_markers(self, registry):
        """The inverse direction recovers Table 4 except the ``end
        kernel`` row, which has no OpenMP analog to come back from."""
        translated = [
            d for kernel in registry for d in translate_kernel_omp_to_acc(kernel)
        ]
        expected = {
            form: count
            for form, count in paper.TABLE4_ACC_CENSUS.items()
            if form != "!$acc end kernel"
        }
        assert directive_census(translated) == expected

    def test_kernel_translation_preserves_boundary_reductions(self, registry):
        """Both placements end up declared: teams-distribute and
        parallel-do each carry the tempsum pair after hoisting."""
        for name in ("boundary_lr", "boundary_tb"):
            omp = translate_kernel_acc_to_omp(registry.get(name))
            assert all(d.reduction == ("tempsum1", "tempsum2") for d in omp)


class TestTranslationErrors:
    def test_unknown_directive_types_are_rejected(self):
        class FakeAcc(AccDirective):
            pass

        class FakeOmp(OmpDirective):
            pass

        with pytest.raises(TranslationError):
            acc_to_omp(FakeAcc())
        with pytest.raises(TranslationError):
            omp_to_acc(FakeOmp())
