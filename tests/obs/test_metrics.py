"""MetricsRegistry: counters/gauges/histograms plus legacy-counter sources."""

from __future__ import annotations

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_source,
    region_profiler_source,
    workspace_source,
)
from repro.profiling.regions import RegionProfiler
from repro.profiling.timer import VirtualClock
from repro.runtime.counters import CacheCounters, WorkspaceCounters


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter("launches")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ObservabilityError, match="negative"):
            c.inc(-1.0)

    def test_gauge_rejects_non_finite(self):
        g = Gauge("resident_bytes")
        g.set(1.5)
        g.set(-2.0)
        assert g.value == -2.0
        with pytest.raises(ObservabilityError, match="non-finite"):
            g.set(math.nan)

    def test_histogram_bucketing_inclusive_upper_bounds(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        # <=1 | <=10 | overflow
        assert h.counts == [2, 2, 1]
        assert h.total == 5
        assert h.sum == pytest.approx(27.5)
        assert h.mean == pytest.approx(5.5)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ObservabilityError, match="strictly increase"):
            Histogram("bad", bounds=(1.0, 1.0))
        with pytest.raises(ObservabilityError, match="at least one"):
            Histogram("empty", bounds=())

    def test_histogram_quantile_conservative(self):
        h = Histogram("q", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == 4.0
        h.observe(100.0)
        assert h.quantile(1.0) == math.inf
        with pytest.raises(ObservabilityError):
            h.quantile(1.5)

    def test_histogram_quantile_boundaries(self):
        """The q=0 / q=1 / empty / overflow corner cases the serving
        scoreboard leans on."""
        empty = Histogram("empty", bounds=(1.0, 2.0))
        assert empty.quantile(0.0) == 0.0
        assert empty.quantile(0.5) == 0.0
        assert empty.quantile(1.0) == 0.0

        h = Histogram("q", bounds=(1.0, 2.0, 4.0))
        h.observe(3.0)
        # q=0 reports the minimum sample's bucket, not bounds[0]: the
        # leading empty buckets must be skipped.
        assert h.quantile(0.0) == 4.0
        assert h.quantile(1.0) == 4.0
        h.observe(0.5)
        assert h.quantile(0.0) == 1.0

        overflow = Histogram("of", bounds=(1.0,))
        overflow.observe(50.0)
        assert overflow.quantile(0.0) == math.inf
        assert overflow.quantile(1.0) == math.inf
        for q in (-0.1, 1.1, math.nan):
            with pytest.raises(ObservabilityError):
                overflow.quantile(q)

    def test_histogram_merge_requires_same_bounds(self):
        a = Histogram("a", bounds=(1.0, 2.0))
        b = Histogram("b", bounds=(1.0, 3.0))
        with pytest.raises(ObservabilityError, match="bounds differ"):
            a.merge(b)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.gauge("x")

    def test_collect_flattens_metrics_and_sources(self):
        reg = MetricsRegistry()
        reg.counter("iters").inc(7)
        reg.gauge("chi2").set(500.0)
        h = reg.histogram("dt", bounds=(1.0,))
        h.observe(0.5)
        reg.register_source("extra", lambda: {"a": 1.0})
        snap = reg.collect()
        assert snap["iters"] == 7.0
        assert snap["chi2"] == 500.0
        assert snap["dt.count"] == 1.0
        assert snap["dt.mean"] == 0.5
        assert snap["extra.a"] == 1.0

    def test_sources_are_live_not_snapshots(self):
        reg = MetricsRegistry()
        ws = WorkspaceCounters()
        reg.register_source("workspace", workspace_source(ws))
        assert reg.collect()["workspace.allocations"] == 0.0
        ws.allocations += 3
        assert reg.collect()["workspace.allocations"] == 3.0

    def test_duplicate_source_prefix_raises(self):
        reg = MetricsRegistry()
        reg.register_source("p", lambda: {})
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.register_source("p", lambda: {})

    def test_cache_and_profiler_sources(self):
        reg = MetricsRegistry()
        cache = CacheCounters()
        cache.hits, cache.misses = 9, 1
        reg.register_source("tables", cache_source(cache))
        clock = VirtualClock()
        prof = RegionProfiler(clock)
        with prof.region("steps_"):
            clock.advance(2.0)
        reg.register_source("regions", region_profiler_source(prof))
        snap = reg.collect()
        assert snap["tables.hit_rate"] == pytest.approx(0.9)
        assert snap["regions.steps_.seconds"] == pytest.approx(2.0)
        assert snap["regions.steps_.calls"] == 1.0

    def test_to_dict_keeps_histogram_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("dt", bounds=(1.0, 2.0)).observe(1.5)
        dumped = reg.to_dict()
        assert dumped["metrics"]["dt"]["counts"] == [0, 1, 0]
        assert dumped["collected"]["dt.count"] == 1.0
