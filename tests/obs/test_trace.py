"""TraceRecorder behaviour: nesting, exports, profiler agreement.

The headline test is the acceptance check of the observability layer: a
traced 65^2 reconstruction must produce a Chrome-trace JSON whose
per-region exclusive totals agree with the solver's own
:class:`~repro.profiling.regions.RegionProfiler` report.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    TraceHooks,
    TraceRecorder,
    chrome_trace,
    jsonl_records,
    region_totals,
    write_chrome_trace,
    write_jsonl,
)
from repro.profiling.regions import RegionProfiler
from repro.profiling.timer import VirtualClock


def make_recorder():
    return TraceRecorder(VirtualClock())


class TestSpans:
    def test_nesting_depth_and_parents(self):
        rec = make_recorder()
        with rec.span("outer") as outer:
            rec.clock.advance(1.0)
            with rec.span("inner") as inner:
                rec.clock.advance(0.25)
        assert outer.depth == 0 and inner.depth == 1
        assert inner.parent_index == outer.index
        assert outer.duration == pytest.approx(1.25)
        assert inner.duration == pytest.approx(0.25)
        assert outer.exclusive == pytest.approx(1.0)

    def test_sibling_children_both_subtracted(self):
        rec = make_recorder()
        with rec.span("fit_"):
            for _ in range(3):
                with rec.span("steps_"):
                    rec.clock.advance(0.1)
                rec.clock.advance(0.01)
        totals = rec.region_totals()
        assert totals["steps_"] == pytest.approx(0.3)
        assert totals["fit_"] == pytest.approx(0.03)

    def test_live_attributes_editable_until_close(self):
        rec = make_recorder()
        with rec.span("steps_", iteration=3) as span:
            span.attributes["chi2"] = 17.0
        assert span.attributes == {"iteration": 3, "chi2": 17.0}

    def test_out_of_order_close_raises(self):
        rec = make_recorder()
        outer = rec.span("outer")
        inner = rec.span("inner")
        assert inner is not outer
        with pytest.raises(ObservabilityError, match="out of order"):
            outer.close()
        inner.close()
        outer.close()

    def test_disabled_recorder_records_nothing(self):
        rec = TraceRecorder(VirtualClock(), enabled=False)
        with rec.span("x"):
            rec.instant("e")
            rec.complete("k", start=0.0, duration=1.0)
        assert rec.records == ()

    def test_disabled_recorder_shares_one_null_context(self):
        rec = TraceRecorder(enabled=False)
        assert rec.span("a") is rec.span("b")

    def test_reset_refuses_open_spans(self):
        rec = make_recorder()
        handle = rec.span("open")
        with pytest.raises(ObservabilityError, match="open spans"):
            rec.reset()
        handle.close()
        rec.reset()
        assert rec.records == ()

    def test_complete_does_not_touch_parent_child_duration(self):
        # Modeled device spans live on a different clock; host exclusive
        # time must not have them subtracted.
        rec = make_recorder()
        with rec.span("pflux_") as host:
            rec.complete("boundary_lr", start=0.0, duration=5.0)
            rec.clock.advance(0.5)
        assert host.child_duration == 0.0
        assert host.exclusive == pytest.approx(0.5)
        kernels = list(rec.spans(category="kernel"))
        assert len(kernels) == 1 and kernels[0].duration == 5.0


class TestExports:
    def _traced(self):
        rec = make_recorder()
        with rec.span("fit_", iteration=1):
            with rec.span("steps_"):
                rec.clock.advance(0.125)
            rec.instant("picard_iteration", chi2=42.0)
            rec.clock.advance(0.0625)
        return rec

    def test_chrome_payload_shape(self):
        payload = chrome_trace(self._traced())
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert phases.count("M") == 1
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        x = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        # Chrome timestamps are microseconds
        assert {e["name"]: e["dur"] for e in x} == pytest.approx(
            {"fit_": 187500.0, "steps_": 125000.0}
        )

    def test_chrome_round_trip_region_totals(self):
        rec = self._traced()
        payload = chrome_trace(rec)
        assert region_totals(payload) == pytest.approx(rec.region_totals())

    def test_region_totals_rejects_non_trace(self):
        with pytest.raises(ObservabilityError, match="traceEvents"):
            region_totals({"foo": 1})

    def test_jsonl_lines_parse_and_carry_schema(self):
        rec = self._traced()
        lines = [json.loads(line) for line in jsonl_records(rec)]
        assert len(lines) == 3
        assert all(line["schema_version"] == 1 for line in lines)
        kinds = sorted(line["kind"] for line in lines)
        assert kinds == ["event", "span", "span"]

    def test_writers_create_files(self, tmp_path):
        rec = self._traced()
        chrome = write_chrome_trace(rec, tmp_path / "t.json")
        jsonl = write_jsonl(rec, tmp_path / "t.jsonl")
        assert json.loads(chrome.read_text())["displayTimeUnit"] == "ms"
        assert len(jsonl.read_text().splitlines()) == 3


class TestProfilerAgreement:
    def test_paired_region_totals_identical(self):
        clock = VirtualClock()
        rec = TraceRecorder(clock)
        hooks = TraceHooks(rec)
        profiler = RegionProfiler(clock)
        with hooks.profiled_region(profiler, "fit_"):
            with hooks.profiled_region(profiler, "steps_"):
                clock.advance(0.25)
            clock.advance(0.0625)
        report = profiler.report()
        assert rec.region_totals() == report.totals

    def test_traced_65sq_reconstruction_matches_profiler(self):
        """The acceptance criterion: trace-derived exclusive region totals
        from the Chrome JSON agree with RegionProfiler.report() within 1%
        on a full 65^2 reconstruction."""
        from repro.efit.fitting import EfitSolver
        from repro.efit.measurements import synthetic_shot_186610

        rec = TraceRecorder()
        shot = synthetic_shot_186610(65)
        solver = EfitSolver(
            shot.machine, shot.diagnostics, shot.grid, hooks=TraceHooks(rec)
        )
        result = solver.fit(shot.measurements)
        assert result.converged

        payload = chrome_trace(rec)
        trace_totals = region_totals(payload)
        profiler_totals = solver.profiler.report().totals
        assert set(trace_totals) == set(profiler_totals)
        for name, expected in profiler_totals.items():
            assert trace_totals[name] == pytest.approx(expected, rel=0.01), name

        # Per-iteration Picard events rode along, one per iterate.
        events = [e for e in rec.events() if e.name == "picard_iteration"]
        assert len(events) == result.iterations
        assert events[-1].attributes["converged"] is True
        assert events[-1].attributes["chi2"] == pytest.approx(result.chi2)


class TestKernelSpans:
    def test_offload_model_emits_kernel_spans(self):
        from repro.compilers.flags import parse_flags
        from repro.core.offload import PfluxOffloadModel
        from repro.machines.site import perlmutter

        site = perlmutter()
        model = site.models[0]
        build = site.compiler.configure(
            parse_flags(site.flags(model)), site.env, site.gpu
        )
        rec = TraceRecorder()
        offload = PfluxOffloadModel(65, 65, build, hooks=TraceHooks(rec))
        per_kernel = offload.invoke()

        spans = {s.name: s for s in rec.spans(category="kernel")}
        assert set(spans) == {k for k in per_kernel if k != "__total__"}
        for name, span in spans.items():
            assert span.duration == pytest.approx(per_kernel[name])
            assert span.attributes["model"] == build.model
            assert span.attributes["hbm_bytes"] > 0
