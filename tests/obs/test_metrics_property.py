"""Property tests of Histogram algebra.

``merge`` on fixed-bound histograms must behave like multiset union of
the underlying samples: associative, commutative, with a zero element —
the properties that let per-worker histograms combine in any order.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import DEFAULT_SECONDS_BOUNDS, Histogram

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    max_size=40,
)


def fill(values):
    h = Histogram("h", DEFAULT_SECONDS_BOUNDS)
    for v in values:
        h.observe(v)
    return h


def state(h):
    return (h.counts, h.total, h.sum)


def assert_equivalent(x, y):
    # Bucket counts and totals are integers and must match exactly; the
    # running sum is a float accumulation, so compare it to relative eps.
    assert x.counts == y.counts
    assert x.total == y.total
    assert x.sum == pytest.approx(y.sum, rel=1e-12, abs=1e-12)


@given(samples, samples)
@settings(max_examples=100, deadline=None)
def test_merge_commutative(a, b):
    ha, hb = fill(a), fill(b)
    assert_equivalent(ha.merge(hb), hb.merge(ha))


@given(samples, samples, samples)
@settings(max_examples=100, deadline=None)
def test_merge_associative(a, b, c):
    ha, hb, hc = fill(a), fill(b), fill(c)
    left = ha.merge(hb).merge(hc)
    right = ha.merge(hb.merge(hc))
    assert_equivalent(left, right)


@given(samples)
@settings(max_examples=100, deadline=None)
def test_empty_histogram_is_identity(a):
    h = fill(a)
    assert_equivalent(h.merge(fill([])), h)


@given(samples, samples)
@settings(max_examples=100, deadline=None)
def test_merge_equals_merged_observation_stream(a, b):
    assert_equivalent(fill(a).merge(fill(b)), fill(a + b))


@given(samples)
@settings(max_examples=100, deadline=None)
def test_counts_nonnegative_and_consistent(a):
    h = fill(a)
    assert all(c >= 0 for c in h.counts)
    assert sum(h.counts) == h.total == len(a)
    assert h.sum == pytest.approx(sum(a), rel=1e-9, abs=1e-12)
    assert h.mean == pytest.approx(sum(a) / len(a) if a else 0.0, rel=1e-9, abs=1e-12)


@given(samples)
@settings(max_examples=100, deadline=None)
def test_merge_never_mutates_operands(a):
    ha, hb = fill(a), fill([1.0, 2.0])
    before_a, before_b = state(ha), state(hb)
    ha.merge(hb)
    assert state(ha) == before_a and state(hb) == before_b
