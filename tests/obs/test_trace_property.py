"""Stateful property tests of the TraceRecorder.

A random interleaving of span-open / span-close / clock-advance /
instant-event must never violate the recorder's invariants:

* timestamps are monotone and every closed span has ``end >= start``;
* nesting depth always equals the open-span stack depth;
* exclusive time is non-negative and children never exceed their parent;
* the recorder's exclusive region totals equal a co-driven
  :class:`~repro.profiling.regions.RegionProfiler` exactly (shared-clock
  pairing), whatever the nesting pattern.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.obs import TraceHooks, TraceRecorder, chrome_trace, region_totals
from repro.profiling.regions import RegionProfiler
from repro.profiling.timer import VirtualClock

NAMES = ["fit_", "steps_", "current_", "green_", "pflux_"]


class TraceRecorderMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = VirtualClock()
        self.recorder = TraceRecorder(self.clock)
        self.hooks = TraceHooks(self.recorder)
        self.profiler = RegionProfiler(self.clock)
        self.open = []  # paired-region context managers, innermost last

    @rule(name=st.sampled_from(NAMES), dt=st.floats(min_value=0.0, max_value=1.0))
    def open_span(self, name, dt):
        self.clock.advance(dt)
        cm = self.hooks.profiled_region(self.profiler, name, depth=len(self.open))
        cm.__enter__()
        self.open.append(cm)

    @precondition(lambda self: bool(self.open))
    @rule(dt=st.floats(min_value=0.0, max_value=1.0))
    def close_span(self, dt):
        self.clock.advance(dt)
        self.open.pop().__exit__(None, None, None)

    @rule(dt=st.floats(min_value=0.0, max_value=0.5))
    def advance(self, dt):
        self.clock.advance(dt)

    @rule(name=st.sampled_from(NAMES))
    def emit_event(self, name):
        self.hooks.event(name, marker=True)

    @invariant()
    def timestamps_monotone_and_nonnegative(self):
        starts = []
        for record in self.recorder.records:
            t = getattr(record, "start", None)
            if t is None:
                t = record.timestamp
            starts.append(t)
        assert starts == sorted(starts)
        for span in self.recorder.spans():
            assert span.duration >= 0.0
            assert span.end >= span.start

    @invariant()
    def open_count_matches_stack(self):
        assert self.recorder.open_span_count == len(self.open)

    @invariant()
    def exclusive_nonnegative_and_children_bounded(self):
        for span in self.recorder.spans():
            assert span.child_duration <= span.duration + 1e-12
            assert span.exclusive >= -1e-12

    @invariant()
    def depth_tracks_parenthood(self):
        records = self.recorder.records
        for span in self.recorder.spans():
            if span.parent_index is None:
                assert span.depth == 0
            else:
                assert span.depth == records[span.parent_index].depth + 1

    def teardown(self):
        while self.open:
            self.open.pop().__exit__(None, None, None)
        # Closed out: trace totals, profiler totals and the Chrome-JSON
        # round trip must all agree.  Both sides sum the same clock
        # deltas but associate the additions differently (recorder: per
        # span at close; profiler: running exclusive accumulator), so
        # deep nests can disagree in the last ULP — compare to tolerance,
        # not bit-for-bit.
        trace_totals = self.recorder.region_totals()
        assert trace_totals == pytest.approx(self.profiler.report().totals, abs=1e-9)
        rebuilt = region_totals(chrome_trace(self.recorder))
        assert rebuilt == pytest.approx(trace_totals, abs=1e-9)


TestTraceRecorderStateful = TraceRecorderMachine.TestCase
TestTraceRecorderStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
