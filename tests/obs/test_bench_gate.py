"""Benchmark harness and regression gate semantics.

Gate logic is unit-tested against synthetic results (no wall clocks);
one real-measurement test runs the cheap kernel subset to prove the
harness times actual payloads, and the handicap hook demonstrates the
failure path the CI gate depends on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import BenchGateError, ObservabilityError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    LARGE_ENV,
    BenchResult,
    _resolve,
    bench_cases,
    evaluate_gate,
    large_case_names,
    load_baseline,
    results_payload,
    run_benchmarks,
    save_baseline,
)


def result(name, median, group="kernels"):
    return BenchResult(
        name=name, group=group, median_seconds=median, samples=(median,)
    )


class TestRunner:
    def test_kernel_subset_measures_real_time(self):
        results = run_benchmarks(["kernel_dst_solve_65"], repeats=3)
        r = results["kernel_dst_solve_65"]
        assert r.group == "kernels"
        assert len(r.samples) == 3
        assert r.median_seconds > 0.0
        assert min(r.samples) <= r.median_seconds <= max(r.samples)

    def test_handicap_scales_measured_times(self):
        slow = run_benchmarks(
            ["kernel_dst_solve_65"], repeats=1, handicap=1e6
        )["kernel_dst_solve_65"]
        # Even a microsecond payload reads as >= 1s under a 1e6 handicap.
        assert slow.median_seconds > 1.0

    def test_handicap_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HANDICAP", "1e6")
        slow = run_benchmarks(["kernel_dst_solve_65"], repeats=1)
        assert slow["kernel_dst_solve_65"].median_seconds > 1.0

    def test_unknown_case_raises(self):
        with pytest.raises(BenchGateError, match="unknown benchmark"):
            run_benchmarks(["nope"], repeats=1)

    def test_bad_repeats_and_handicap_raise(self):
        with pytest.raises(ObservabilityError, match="repeats"):
            run_benchmarks(["kernel_dst_solve_65"], repeats=0)
        with pytest.raises(ObservabilityError, match="handicap"):
            run_benchmarks(["kernel_dst_solve_65"], repeats=1, handicap=0.0)

    def test_suite_covers_all_benchmark_families(self):
        assert {case.group for case in bench_cases()} == {
            "fit",
            "batch",
            "parallel",
            "kernels",
        }


class TestGate:
    def baseline(self, **medians):
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "tolerance": 0.5,
            "benchmarks": {
                name: {"group": "kernels", "median_seconds": m}
                for name, m in medians.items()
            },
        }

    def test_within_tolerance_passes(self):
        outcomes, ok = evaluate_gate(
            {"a": result("a", 1.4)}, self.baseline(a=1.0)
        )
        assert ok
        assert outcomes[0].ok
        assert outcomes[0].limit_seconds == pytest.approx(1.5)
        assert outcomes[0].ratio == pytest.approx(1.4)

    def test_regression_fails(self):
        outcomes, ok = evaluate_gate(
            {"a": result("a", 1.6)}, self.baseline(a=1.0)
        )
        assert not ok
        assert not outcomes[0].ok

    def test_tolerance_override_beats_baseline_value(self):
        _, ok = evaluate_gate(
            {"a": result("a", 1.6)}, self.baseline(a=1.0), tolerance=2.0
        )
        assert ok
        with pytest.raises(BenchGateError, match="tolerance"):
            evaluate_gate(
                {"a": result("a", 1.0)}, self.baseline(a=1.0), tolerance=-0.1
            )

    def test_missing_coverage_raises(self):
        with pytest.raises(BenchGateError, match="missing coverage"):
            evaluate_gate({}, self.baseline(a=1.0))

    def test_extra_current_cases_are_ignored(self):
        _, ok = evaluate_gate(
            {"a": result("a", 1.0), "new": result("new", 99.0)},
            self.baseline(a=1.0),
        )
        assert ok


class TestBaselineIO:
    def test_round_trip(self, tmp_path):
        path = save_baseline(
            {"a": result("a", 0.25)}, tmp_path / "b.json", tolerance=0.75
        )
        payload = load_baseline(path)
        assert payload["tolerance"] == 0.75
        assert payload["benchmarks"]["a"]["median_seconds"] == 0.25
        _, ok = evaluate_gate({"a": result("a", 0.3)}, payload)
        assert ok

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchGateError, match="does not exist"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(BenchGateError, match="not valid JSON"):
            load_baseline(bad)

    def test_wrong_schema_or_shape_raises(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"benchmarks": {}}))
        with pytest.raises(BenchGateError, match="schema"):
            load_baseline(p)
        p.write_text(json.dumps([1, 2]))
        with pytest.raises(BenchGateError, match="benchmarks"):
            load_baseline(p)
        p.write_text(
            json.dumps(
                {"schema_version": BENCH_SCHEMA_VERSION, "benchmarks": {"a": {}}}
            )
        )
        with pytest.raises(BenchGateError, match="median_seconds"):
            load_baseline(p)

    def test_results_payload_matches_saved_file(self, tmp_path):
        results = {"a": result("a", 0.5)}
        path = save_baseline(results, tmp_path / "b.json")
        assert json.loads(path.read_text()) == results_payload(results)


class TestLargeCases:
    """The 129^2/257^2 cases: registered but off by default."""

    def test_large_cases_registered_and_flagged(self):
        names = {c.name: c.large for c in bench_cases()}
        for big in ("fit_129", "batch_129_b8", "kernel_boundary_257"):
            assert names[big] is True
        assert names["fit_65"] is False
        assert set(large_case_names()) == {
            "fit_129", "batch_129_b8", "kernel_boundary_257"
        }

    def test_default_resolution_excludes_large(self, monkeypatch):
        monkeypatch.delenv(LARGE_ENV, raising=False)
        resolved = {c.name for c in _resolve(None)}
        assert resolved.isdisjoint(large_case_names())
        assert "fit_65" in resolved

    def test_env_flag_unlocks_large(self, monkeypatch):
        monkeypatch.setenv(LARGE_ENV, "1")
        resolved = {c.name for c in _resolve(None)}
        assert set(large_case_names()) <= resolved
        monkeypatch.setenv(LARGE_ENV, "0")
        assert {c.name for c in _resolve(None)}.isdisjoint(large_case_names())

    def test_explicit_names_ignore_env(self, monkeypatch):
        monkeypatch.delenv(LARGE_ENV, raising=False)
        resolved = _resolve(["kernel_boundary_257"])
        assert [c.name for c in resolved] == ["kernel_boundary_257"]


class TestGateSubsetting:
    """evaluate_gate(names=...) — the split-lane CI form."""

    def _baseline(self):
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "tolerance": 0.5,
            "benchmarks": {
                "a": {"median_seconds": 1.0},
                "b": {"median_seconds": 1.0},
                "big": {"median_seconds": 1.0},
            },
        }

    def test_names_subset_only_gates_selection(self):
        # "big" missing from current would fail a full gate, but the
        # quick lane gates only its own subset.
        current = {"a": result("a", 1.0), "b": result("b", 1.0)}
        outcomes, ok = evaluate_gate(current, self._baseline(), names=["a", "b"])
        assert ok and [o.name for o in outcomes] == ["a", "b"]

    def test_full_gate_requires_every_baseline_entry(self):
        current = {"a": result("a", 1.0), "b": result("b", 1.0)}
        with pytest.raises(BenchGateError, match="missing coverage"):
            evaluate_gate(current, self._baseline())

    def test_missing_coverage_carries_partial_outcomes(self):
        current = {"a": result("a", 1.0), "b": result("b", 1.0)}
        with pytest.raises(BenchGateError) as excinfo:
            evaluate_gate(current, self._baseline(), names=["a", "big", "b"])
        partial = excinfo.value.outcomes
        assert [o.name for o in partial] == ["a"]

    def test_duplicate_and_unknown_names_tolerated(self):
        # Unknown names are skipped (they gate once committed); dupes
        # collapse so no case is double-reported.
        current = {"a": result("a", 1.0)}
        outcomes, ok = evaluate_gate(
            current, self._baseline(), names=["a", "a", "uncommitted"]
        )
        assert ok and [o.name for o in outcomes] == ["a"]
