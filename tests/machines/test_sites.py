"""Tests of the facility node configurations."""

import pytest

from repro.compilers.cce import CceCompiler
from repro.compilers.nvhpc import NvhpcCompiler
from repro.compilers.oneapi import OneApiCompiler
from repro.core import paper
from repro.errors import HardwareError
from repro.machines.site import ALL_SITES, frontier, perlmutter, sunspot


class TestSites:
    def test_three_sites(self):
        sites = ALL_SITES()
        assert [s.name for s in sites] == ["perlmutter", "frontier", "sunspot"]

    def test_node_compositions(self):
        assert perlmutter().devices_per_node == 4  # 4x A100
        assert frontier().devices_per_node == 8  # 8 GCDs
        assert sunspot().devices_per_node == 12  # 6 GPUs x 2 stacks

    def test_acceleration_thresholds_match_section4(self):
        for site in ALL_SITES():
            expected = paper.ACCELERATION_THRESHOLDS[site.name]
            assert site.acceleration_threshold == pytest.approx(expected, rel=0.01)

    def test_facility_compilers(self):
        assert isinstance(perlmutter().compiler, NvhpcCompiler)
        assert isinstance(frontier().compiler, CceCompiler)
        assert isinstance(sunspot().compiler, OneApiCompiler)

    def test_flag_lines_parse_and_configure(self):
        from repro.compilers.flags import parse_flags

        for site in ALL_SITES():
            for model in site.models:
                flags = parse_flags(site.flags(model))
                build = site.compiler.configure(flags, site.env, site.gpu)
                assert build.model == model

    def test_sunspot_has_no_openacc_line(self):
        with pytest.raises(HardwareError):
            sunspot().flags("openacc")

    def test_frontier_env_variables(self):
        env = frontier().env
        assert env.flag("CRAY_ACC_USE_UNIFIED_MEM")
        assert env.flag("HSA_XNACK")
        assert env.cray_mallopt_off

    def test_frontier_slow_variant(self):
        site = frontier(system_alloc=False)
        assert not site.env.cray_mallopt_off
        assert "-hsystem_alloc" not in site.flags("openmp")

    def test_sunspot_affinity_mask(self):
        assert sunspot().env.get("ZE_AFFINITY_MASK") == "0.0"

    def test_vendor_pairing(self):
        assert perlmutter().gpu.vendor == "NVIDIA"
        assert frontier().gpu.vendor == "AMD"
        assert sunspot().gpu.vendor == "Intel"


class TestEnvironment:
    def test_functional_updates(self):
        env = perlmutter().env
        e2 = env.with_var("OMP_NUM_THREADS", "1")
        assert e2.get("OMP_NUM_THREADS") == "1"
        assert env.get("OMP_NUM_THREADS") is None
        assert e2.without_var("OMP_NUM_THREADS").get("OMP_NUM_THREADS") is None

    def test_flag_parsing_variants(self):
        env = perlmutter().env.with_var("X", "TRUE").with_var("Y", "0")
        assert env.flag("X")
        assert not env.flag("Y")
        assert not env.flag("MISSING")

    def test_unified_memory_needs_both_vars(self):
        from repro.config import Environment

        assert not Environment({"CRAY_ACC_USE_UNIFIED_MEM": "1"}).unified_memory_requested
        assert not Environment({"HSA_XNACK": "1"}).unified_memory_requested
        assert Environment(
            {"CRAY_ACC_USE_UNIFIED_MEM": "1", "HSA_XNACK": "1"}
        ).unified_memory_requested
