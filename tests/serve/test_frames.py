"""Frame / SliceReport validation."""

import pytest

from repro.errors import ServeError
from repro.serve import Frame


class TestFrameValidation:
    def test_valid_frame(self, slices3):
        f = Frame(stream_id="s", index=0, measurements=slices3[0])
        assert f.deadline_s is None

    def test_empty_stream_id(self, slices3):
        with pytest.raises(ServeError, match="stream_id"):
            Frame(stream_id="", index=0, measurements=slices3[0])

    def test_negative_index(self, slices3):
        with pytest.raises(ServeError, match="index"):
            Frame(stream_id="s", index=-1, measurements=slices3[0])

    def test_non_positive_deadline(self, slices3):
        with pytest.raises(ServeError, match="deadline"):
            Frame(stream_id="s", index=0, measurements=slices3[0], deadline_s=0.0)
