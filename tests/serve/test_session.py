"""ShotSession: warm-start chaining, bit-identity, deadline enforcement."""

import itertools

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import ServeMetrics, Frame, ShotSession


def _frames(slices, stream="s"):
    return [
        Frame(stream_id=stream, index=i, measurements=m)
        for i, m in enumerate(slices)
    ]


class TestWarmChaining:
    def test_later_slices_warm_and_faster(self, engine33, slices3):
        session = ShotSession(engine33.solver, statics=engine33.statics)
        reports = [session.reconstruct(f) for f in _frames(slices3)]
        assert all(r.converged for r in reports)
        assert not reports[0].warm_start
        for r in reports[1:]:
            assert r.warm_start
            assert r.iterations < reports[0].iterations

    def test_bit_identical_to_chained_serial_fit(self, engine33, slices3):
        """The acceptance criterion: a served slice that converged is
        bit-identical to the serial solver run with the same chaining."""
        session = ShotSession(engine33.solver, statics=engine33.statics)
        reports = [session.reconstruct(f) for f in _frames(slices3)]
        solver = engine33.solver
        prev_psi = prev_coeffs = None
        for r, m in zip(reports, slices3):
            serial = solver.fit(
                m, psi_initial=prev_psi, coeffs_initial=prev_coeffs
            )
            np.testing.assert_array_equal(serial.psi, r.result.psi)
            assert serial.chi2 == r.result.chi2
            assert serial.iterations == r.iterations
            prev_psi = serial.psi
            prev_coeffs = serial.history[-1].coefficients

    def test_warm_start_disabled_stays_cold(self, engine33, slices3):
        session = ShotSession(
            engine33.solver, statics=engine33.statics, warm_start=False
        )
        reports = [session.reconstruct(f) for f in _frames(slices3)]
        assert not any(r.warm_start for r in reports)

    def test_metrics_split_warm_and_cold(self, engine33, slices3):
        metrics = ServeMetrics()
        session = ShotSession(
            engine33.solver, statics=engine33.statics, metrics=metrics
        )
        for f in _frames(slices3):
            session.reconstruct(f)
        s = metrics.summary()
        assert s["cold_slices"] == 1 and s["warm_slices"] == 2
        assert s["warm_iteration_savings"] > 0
        assert s["slices"] == 3.0 and s["deadline_misses"] == 0.0


class TestDeadlines:
    def test_starved_clock_misses_deadline(self, engine33, slices3):
        """A fake clock that jumps one second per reading starves the
        budget: the solve stops early, reports a miss, still returns a
        sealed partial result with a boundary."""
        metrics = ServeMetrics()
        fake = itertools.count()
        session = ShotSession(
            engine33.solver,
            statics=engine33.statics,
            deadline_s=1.5,
            metrics=metrics,
            clock=lambda: float(next(fake)),
        )
        report = session.reconstruct(_frames(slices3)[0])
        assert report.deadline_missed
        assert not report.converged
        # t0=0, deadline checked after each iterate: iterate 1 sees t=1
        # (< 1.5, continue), iterate 2 sees t=2 (miss).
        assert report.iterations == 2
        assert report.result.boundary is not None
        assert metrics.summary()["deadline_misses"] == 1.0

    def test_missed_slice_is_not_chained(self, engine33, slices3):
        fake = itertools.count()
        session = ShotSession(
            engine33.solver,
            statics=engine33.statics,
            deadline_s=1.5,
            clock=lambda: float(next(fake)),
        )
        first = session.reconstruct(_frames(slices3)[0])
        assert first.deadline_missed
        assert session._prev_psi is None and session._prev_coeffs is None

    def test_frame_deadline_overrides_session(self, engine33, slices3):
        fake = itertools.count()
        session = ShotSession(
            engine33.solver,
            statics=engine33.statics,
            deadline_s=1.5,
            clock=lambda: float(next(fake)),
        )
        generous = Frame(
            stream_id="s", index=0, measurements=slices3[0], deadline_s=1e9
        )
        report = session.reconstruct(generous)
        assert report.converged and not report.deadline_missed

    def test_first_iterate_always_runs(self, engine33, slices3):
        """Even a zero-budget-equivalent clock yields one iterate, so a
        missed slice still carries a flux map."""
        fake = itertools.count(0, 1000)
        session = ShotSession(
            engine33.solver,
            statics=engine33.statics,
            deadline_s=0.5,
            clock=lambda: float(next(fake)),
        )
        report = session.reconstruct(_frames(slices3)[0])
        assert report.deadline_missed and report.iterations == 1

    def test_invalid_deadline_rejected(self, engine33):
        with pytest.raises(ServeError):
            ShotSession(engine33.solver, deadline_s=0.0)
