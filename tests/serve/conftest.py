"""Shared fixtures for the streaming-service suite.

Everything here rides on the session-scoped ``shot33`` fixture: one
33^2 engine whose per-grid state (tables, statics, factorisation) every
test shares read-only, exactly as the service itself shares it across
streams.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence


@pytest.fixture(scope="session")
def engine33(shot33):
    return BatchFitEngine(
        shot33.machine, shot33.diagnostics, shot33.grid, batch_size=2
    )


@pytest.fixture(scope="session")
def slices3(shot33):
    return synthetic_slice_sequence(shot33, 3, seed=7)
