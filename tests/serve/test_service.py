"""ReconstructionService: concurrency, admission, backpressure, drain."""

import asyncio

import numpy as np
import pytest

from repro.batch import synthetic_slice_sequence
from repro.errors import AdmissionError, ServeError
from repro.serve import (
    Frame,
    ReconstructionService,
    ServeConfig,
    ServeMetrics,
)


def _run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_requires_start(self, engine33, slices3):
        svc = ReconstructionService(engine33)

        async def use_cold():
            await svc.open_stream("s")

        with pytest.raises(ServeError, match="not running"):
            _run(use_cold())

    def test_double_start_rejected(self, engine33):
        async def scenario():
            async with ReconstructionService(engine33) as svc:
                with pytest.raises(ServeError, match="already started"):
                    await svc.start()

        _run(scenario())

    def test_stop_idempotent_and_drains(self, engine33, slices3):
        async def scenario():
            svc = ReconstructionService(
                engine33, config=ServeConfig(deadline_s=None)
            )
            await svc.start()
            await svc.open_stream("s")
            for i, m in enumerate(slices3):
                await svc.submit("s", Frame(stream_id="s", index=i, measurements=m))
            summaries = await svc.stop()
            assert await svc.stop() == {}
            return summaries

        summaries = _run(scenario())
        assert len(summaries["s"].reports) == 3
        assert all(r.converged for r in summaries["s"].reports)

    def test_unknown_stream(self, engine33, slices3):
        async def scenario():
            async with ReconstructionService(engine33) as svc:
                with pytest.raises(ServeError, match="unknown stream"):
                    await svc.submit(
                        "ghost",
                        Frame(stream_id="ghost", index=0, measurements=slices3[0]),
                    )

        _run(scenario())


class TestAdmission:
    def test_capacity_enforced(self, engine33):
        metrics = ServeMetrics()
        config = ServeConfig(max_streams=2, deadline_s=None)

        async def scenario():
            async with ReconstructionService(
                engine33, config=config, metrics=metrics
            ) as svc:
                await svc.open_stream("a")
                await svc.open_stream("b")
                with pytest.raises(AdmissionError, match="refused"):
                    await svc.open_stream("c")
                # Closing one frees the slot.
                await svc.close_stream("a")
                await svc.open_stream("c")

        _run(scenario())
        assert metrics.streams_rejected.value == 1.0
        assert metrics.streams_active.value == 0.0

    def test_duplicate_stream_id_rejected(self, engine33):
        async def scenario():
            async with ReconstructionService(engine33) as svc:
                await svc.open_stream("a")
                with pytest.raises(ServeError, match="already open"):
                    await svc.open_stream("a")

        _run(scenario())


class TestBackpressure:
    def test_full_queue_sheds_oldest(self, engine33, shot33):
        slices = synthetic_slice_sequence(shot33, 4, seed=5)
        metrics = ServeMetrics()
        config = ServeConfig(queue_depth=2, deadline_s=None)

        async def scenario():
            async with ReconstructionService(
                engine33, config=config, metrics=metrics
            ) as svc:
                await svc.open_stream("s")
                # No await between submits: the worker cannot dequeue, so
                # the 3rd and 4th submit must shed the two oldest frames.
                accepted = [
                    await svc.submit(
                        "s", Frame(stream_id="s", index=i, measurements=m)
                    )
                    for i, m in enumerate(slices)
                ]
                summary = await svc.close_stream("s")
                return accepted, summary

        accepted, summary = _run(scenario())
        assert accepted == [True, True, False, False]
        assert summary.frames_shed == 2
        assert [r.index for r in summary.reports] == [2, 3]
        assert metrics.frames_shed.value == 2.0


class TestConcurrentStreams:
    def test_four_streams_bit_identical_to_serial(self, engine33, shot33):
        """The acceptance criterion end-to-end: >= 4 concurrent streams,
        every converged slice bit-identical to the chained serial solver,
        warm starts saving iterations on every stream."""
        n_streams, n_slices = 4, 3
        frames = {
            f"s{k}": synthetic_slice_sequence(shot33, n_slices, seed=11 + k)
            for k in range(n_streams)
        }
        metrics = ServeMetrics()
        config = ServeConfig(
            deadline_s=None, executor_workers=4, queue_depth=n_slices
        )

        async def scenario():
            async with ReconstructionService(
                engine33, config=config, metrics=metrics
            ) as svc:
                for sid in frames:
                    await svc.open_stream(sid)
                for i in range(n_slices):
                    for sid, slices in frames.items():
                        await svc.submit(
                            sid,
                            Frame(stream_id=sid, index=i, measurements=slices[i]),
                        )
                return await svc.stop()

        summaries = _run(scenario())
        assert len(summaries) == n_streams
        solver = engine33.solver
        for sid, slices in frames.items():
            reports = summaries[sid].reports
            assert len(reports) == n_slices
            assert summaries[sid].deadline_misses == 0
            assert not reports[0].warm_start
            assert all(r.warm_start for r in reports[1:])
            prev_psi = prev_coeffs = None
            for r, m in zip(reports, slices):
                serial = solver.fit(
                    m, psi_initial=prev_psi, coeffs_initial=prev_coeffs
                )
                np.testing.assert_array_equal(serial.psi, r.result.psi)
                assert serial.chi2 == r.result.chi2
                prev_psi = serial.psi
                prev_coeffs = serial.history[-1].coefficients
        s = metrics.summary()
        assert s["slices"] == float(n_streams * n_slices)
        assert s["warm_iteration_savings"] > 0
