"""ServeMetrics: the serve.* family and its scoreboard."""

import json
import math

from repro.obs import MetricsRegistry
from repro.serve import LATENCY_BOUNDS, ServeMetrics
from repro.utils.jsonio import dump_json


class TestServeMetrics:
    def test_registers_on_shared_registry(self):
        reg = MetricsRegistry()
        m = ServeMetrics(reg)
        collected = reg.collect()
        for name in (
            "serve.slices",
            "serve.deadline_misses",
            "serve.frames_shed",
            "serve.streams_rejected",
            "serve.warm_start_fallbacks",
            "serve.streams_active",
            "serve.slice_seconds.count",
            "serve.queue_seconds.count",
            "serve.warm_iterations.count",
            "serve.cold_iterations.count",
        ):
            assert name in collected
        assert m.slice_seconds.bounds == LATENCY_BOUNDS

    def test_summary_savings(self):
        m = ServeMetrics()
        for iters in (40, 42):
            m.cold_iterations.observe(iters)
        for iters in (3, 5):
            m.warm_iterations.observe(iters)
        s = m.summary()
        assert s["cold_iterations_mean"] == 41.0
        assert s["warm_iterations_mean"] == 4.0
        assert s["warm_iteration_savings"] == 37.0

    def test_savings_zero_without_both_populations(self):
        m = ServeMetrics()
        m.cold_iterations.observe(40)
        assert m.summary()["warm_iteration_savings"] == 0.0

    def test_latency_quantiles_conservative(self):
        m = ServeMetrics()
        for v in (0.003, 0.004, 0.009, 0.4):
            m.slice_seconds.observe(v)
        s = m.summary()
        assert s["latency_p50_s"] == 5e-3
        assert s["latency_p99_s"] == 0.5

    def test_to_dict_is_strict_json_safe(self):
        """Overflow quantiles are inf — the export must still survive
        allow_nan=False emission."""
        m = ServeMetrics()
        m.slice_seconds.observe(100.0)  # beyond the last bound
        payload = m.to_dict()
        assert payload["summary"]["latency_p99_s"] is None
        text = dump_json(payload)
        assert not math.isinf(json.loads(text)["metrics"]["serve.slices"])
