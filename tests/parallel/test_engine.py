"""ParallelFitEngine: API parity, bit-identical merge, failure modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.efit.measurements import synthetic_shot_186610
from repro.errors import FittingError, JobQuarantinedError
from repro.obs import TraceHooks, TraceRecorder
from repro.parallel import CRASH_RATE_ENV, ParallelFitEngine, SchedulerConfig


@pytest.fixture(scope="module")
def shot():
    return synthetic_shot_186610(33)


@pytest.fixture(scope="module")
def slices(shot):
    return synthetic_slice_sequence(shot, 6, seed=3)


@pytest.fixture(scope="module")
def serial_result(shot, slices):
    engine = BatchFitEngine(shot.machine, shot.diagnostics, shot.grid, batch_size=2)
    return engine.fit_many(slices)


@pytest.fixture(autouse=True)
def no_crash_env(monkeypatch):
    monkeypatch.delenv(CRASH_RATE_ENV, raising=False)


def _inline_engine(shot, *, workers, seed=0, **kwargs):
    return ParallelFitEngine(
        shot.machine,
        shot.diagnostics,
        shot.grid,
        batch_size=2,
        workers=workers,
        config=SchedulerConfig(
            workers=workers, transport="inline", inline_order_seed=seed
        ),
        **kwargs,
    )


def _assert_identical(serial, parallel):
    assert len(serial.results) == len(parallel.results)
    for a, b in zip(serial.results, parallel.results):
        np.testing.assert_array_equal(a.psi, b.psi)
        assert a.chi2 == b.chi2
        assert a.iterations == b.iterations
        assert a.converged == b.converged


class TestBitIdenticalMerge:
    def test_real_processes_match_serial(self, shot, slices, serial_result):
        with ParallelFitEngine(
            shot.machine, shot.diagnostics, shot.grid, batch_size=2, workers=2
        ) as engine:
            parallel = engine.fit_many(slices)
        _assert_identical(serial_result, parallel)
        assert parallel.stats.n_slices == 6
        assert parallel.stats.n_converged == 6
        assert parallel.stats.total_iterations == serial_result.stats.total_iterations

    def test_inline_matches_serial(self, shot, slices, serial_result):
        with _inline_engine(shot, workers=3, seed=11) as engine:
            parallel = engine.fit_many(slices)
        _assert_identical(serial_result, parallel)


class TestEngineApi:
    def test_bad_batch_size(self, shot):
        with pytest.raises(FittingError):
            ParallelFitEngine(
                shot.machine, shot.diagnostics, shot.grid, batch_size=0
            )

    def test_conflicting_worker_counts(self, shot):
        with pytest.raises(FittingError):
            ParallelFitEngine(
                shot.machine,
                shot.diagnostics,
                shot.grid,
                workers=4,
                config=SchedulerConfig(workers=3, transport="inline"),
            )

    def test_empty_slices(self, shot):
        with _inline_engine(shot, workers=1) as engine:
            with pytest.raises(FittingError):
                engine.fit_many([])

    def test_engines_share_one_arena(self, shot):
        e1 = _inline_engine(shot, workers=1)
        e2 = _inline_engine(shot, workers=1)
        try:
            assert e1.arena is e2.arena
            assert e1._manager.refcount(shot.grid) >= 2
        finally:
            e1.close()
            e2.close()

    def test_close_is_idempotent(self, shot):
        engine = _inline_engine(shot, workers=1)
        engine.close()
        engine.close()


class TestFailureModes:
    def test_quarantine_raises_by_default(self, shot, slices, monkeypatch):
        monkeypatch.setenv(CRASH_RATE_ENV, "1.0")
        with _inline_engine(shot, workers=2) as engine:
            with pytest.raises(JobQuarantinedError) as excinfo:
                engine.fit_many(slices)
        assert len(excinfo.value.failures) == 3  # one per job group
        assert all(f.reason == "crash" for f in excinfo.value.failures)

    def test_allow_failures_returns_survivors(self, shot, slices, monkeypatch):
        # Seeded so some jobs crash past the retry budget and some survive.
        monkeypatch.setenv(CRASH_RATE_ENV, "0.6")
        monkeypatch.setenv("REPRO_PARALLEL_CRASH_SEED", "1")
        with ParallelFitEngine(
            shot.machine,
            shot.diagnostics,
            shot.grid,
            batch_size=2,
            workers=2,
            config=SchedulerConfig(
                workers=2,
                transport="inline",
                max_retries=0,
                backoff_seconds=0.0,
            ),
        ) as engine:
            result = engine.fit_many(slices, allow_failures=True)
        assert result.failures  # some quarantined ...
        assert result.results  # ... some survived
        assert len(result.results) == 6 - 2 * len(result.failures)


class TestMergedObservability:
    def test_trace_and_metrics(self, shot, slices):
        recorder = TraceRecorder()
        with ParallelFitEngine(
            shot.machine,
            shot.diagnostics,
            shot.grid,
            batch_size=2,
            workers=2,
            hooks=TraceHooks(recorder),
        ) as engine:
            result = engine.fit_many(slices)
            trace = engine.merged_trace()
            metrics = engine.merged_metrics()
        assert sum(r.jobs_done for r in result.worker_reports) == 3
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert 0 in pids and len(pids) == 3
        # Worker lanes carry the engine's own instrumentation (pflux_
        # batch regions) nested under the scheduler's job spans.
        span_names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X" and e["pid"] > 0
        }
        assert "job" in span_names and "pflux_" in span_names
        assert metrics["metrics"]["jobs_completed"] == 3.0
        assert metrics["metrics"]["job_seconds"]["count"] == 3
        assert metrics["parent"]["scheduler.completed"] == 3.0
        assert metrics["parent"]["scheduler.quarantined"] == 0.0
