"""The process scheduler: dispatch, retries, timeouts, quarantine.

Worker callables live at module level so they pickle under every start
method.  The fault-injection tests drive the *real* crash path (workers
``os._exit`` mid-run) through the documented environment variables —
the same mechanism the parallel-stress CI job uses.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ParallelError
from repro.obs import TraceHooks, TraceRecorder
from repro.parallel import (
    CRASH_RATE_ENV,
    CRASH_SEED_ENV,
    ProcessScheduler,
    SchedulerConfig,
)
from repro.parallel.merge import merge_metrics, merged_chrome_trace
from repro.parallel.scheduler import _should_crash


def _init(ctx):
    return {"worker": ctx.worker, "ctx": ctx}


def _double(state, payload):
    return payload * 2


def _traced_double(state, payload):
    ctx = state["ctx"]
    with ctx.hooks.region("work", payload=payload):
        return payload * 2


def _sleepy(state, payload):
    if payload == "slow":
        time.sleep(30.0)
    return payload


def _flaky(state, payload):
    if payload == "bad":
        raise ValueError("deterministic failure")
    return payload


@pytest.fixture()
def no_crash_env(monkeypatch):
    monkeypatch.delenv(CRASH_RATE_ENV, raising=False)
    monkeypatch.delenv(CRASH_SEED_ENV, raising=False)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"timeout_seconds": 0.0},
            {"max_retries": -1},
            {"backoff_seconds": -0.1},
            {"transport": "carrier-pigeon"},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ParallelError):
            SchedulerConfig(**kwargs)

    def test_missing_worker_fn_rejected(self):
        with pytest.raises(ParallelError):
            ProcessScheduler(_init, ())

    def test_empty_run_rejected(self, no_crash_env):
        sched = ProcessScheduler(
            _init, (), _double, config=SchedulerConfig(workers=1, transport="inline")
        )
        with pytest.raises(ParallelError):
            sched.run([])

    def test_run_after_close_rejected(self, no_crash_env):
        sched = ProcessScheduler(
            _init, (), _double, config=SchedulerConfig(workers=1, transport="inline")
        )
        sched.close()
        with pytest.raises(ParallelError):
            sched.run([1])


class TestCrashDecision:
    def test_deterministic_and_attempt_dependent(self, monkeypatch):
        monkeypatch.setenv(CRASH_SEED_ENV, "42")
        first = [_should_crash(i, 1, 0.5) for i in range(64)]
        assert first == [_should_crash(i, 1, 0.5) for i in range(64)]
        assert first != [_should_crash(i, 2, 0.5) for i in range(64)]
        assert any(first) and not all(first)

    def test_rate_extremes(self):
        assert not _should_crash(0, 1, 0.0)
        assert _should_crash(0, 1, 1.0)


class TestProcessTransport:
    def test_results_ordered_by_submission(self, no_crash_env):
        with ProcessScheduler(
            _init, (), _double, config=SchedulerConfig(workers=2)
        ) as sched:
            result = sched.run(list(range(12)))
        assert result.results == [2 * i for i in range(12)]
        assert [o.index for o in result.outcomes] == list(range(12))
        assert result.counters.completed == 12
        assert result.counters.quarantined == 0

    def test_pool_persists_across_runs(self, no_crash_env):
        with ProcessScheduler(
            _init, (), _double, config=SchedulerConfig(workers=2)
        ) as sched:
            first = sched.run([1, 2, 3])
            pids = {r.pid for r in first.reports}
            second = sched.run([4, 5])
            assert second.results == [8, 10]
            assert {r.pid for r in second.reports} == pids  # no respawn

    def test_error_quarantines_without_retry(self, no_crash_env):
        with ProcessScheduler(
            _init, (), _flaky, config=SchedulerConfig(workers=2, max_retries=3)
        ) as sched:
            result = sched.run(["a", "bad", "b"])
        assert result.results == ["a", "b"]
        (failure,) = result.failures
        assert failure.reason == "error"
        assert failure.attempts == 1  # deterministic: no retry burned
        assert "deterministic failure" in failure.detail
        assert result.counters.errors == 1
        assert result.counters.quarantined == 1
        assert result.counters.retries == 0

    def test_timeout_kills_and_quarantines(self, no_crash_env):
        with ProcessScheduler(
            _init,
            (),
            _sleepy,
            config=SchedulerConfig(
                workers=2, timeout_seconds=0.5, max_retries=1, backoff_seconds=0.01
            ),
        ) as sched:
            result = sched.run(["a", "slow", "b"])
        assert result.results == ["a", "b"]
        (failure,) = result.failures
        assert failure.reason == "timeout"
        assert failure.attempts == 2  # initial + one retry
        assert result.counters.timeouts == 2
        assert result.counters.worker_restarts >= 2

    def test_injected_crashes_recovered_by_retry(self, monkeypatch):
        monkeypatch.setenv(CRASH_RATE_ENV, "0.5")
        monkeypatch.setenv(CRASH_SEED_ENV, "7")
        with ProcessScheduler(
            _init,
            (),
            _double,
            config=SchedulerConfig(workers=2, max_retries=6, backoff_seconds=0.01),
        ) as sched:
            result = sched.run(list(range(8)))
        assert result.results == [2 * i for i in range(8)]
        assert result.counters.crashes > 0
        assert result.counters.retries == result.counters.crashes
        assert result.counters.worker_restarts == result.counters.crashes
        assert result.counters.quarantined == 0

    def test_certain_crash_quarantines(self, monkeypatch):
        monkeypatch.setenv(CRASH_RATE_ENV, "1.0")
        with ProcessScheduler(
            _init,
            (),
            _double,
            config=SchedulerConfig(workers=2, max_retries=1, backoff_seconds=0.01),
        ) as sched:
            result = sched.run([1, 2])
        assert result.results == []
        assert len(result.failures) == 2
        assert all(f.reason == "crash" and f.attempts == 2 for f in result.failures)
        # Quarantine bounds the damage: 2 jobs x 2 attempts, no crash loop.
        assert result.counters.crashes == 4

    def test_worker_reports_and_merged_artifacts(self, no_crash_env):
        recorder = TraceRecorder()
        with ProcessScheduler(
            _init,
            (),
            _traced_double,
            config=SchedulerConfig(workers=2),
            hooks=TraceHooks(recorder),
        ) as sched:
            result = sched.run(list(range(6)))
        assert sum(r.jobs_done for r in result.reports) == 6
        # Every worker traced its own job spans ("job" wrapping "work").
        for report in result.reports:
            names = {r["name"] for r in report.records if r["kind"] == "span"}
            if report.jobs_done:
                assert {"job", "work"} <= names
        trace = merged_chrome_trace(result.reports, parent=recorder)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {0, 1, 2}  # parent lane + one lane per worker
        lanes = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert any("worker 0" in lane for lane in lanes)
        assert any("worker 1" in lane for lane in lanes)
        # Parent lane carries the scheduling events.
        parent_events = {
            e["name"] for e in trace["traceEvents"] if e["pid"] == 0 and e["ph"] == "i"
        }
        assert "job_assigned" in parent_events and "job_done" in parent_events
        merged = merge_metrics(result.reports)
        assert merged["workers"] == 2
        assert merged["metrics"]["jobs_completed"] == 6.0
        assert merged["metrics"]["job_seconds"]["count"] == 6

    def test_flush_resets_worker_recorders(self, no_crash_env):
        recorder = TraceRecorder()
        with ProcessScheduler(
            _init,
            (),
            _traced_double,
            config=SchedulerConfig(workers=1),
            hooks=TraceHooks(recorder),
        ) as sched:
            first = sched.run([1, 2, 3])
            second = sched.run([4])
        assert sum(len(r.records) for r in first.reports) >= 3
        # Second run's report holds only its own spans, not run one's.
        job_spans = [
            r
            for rep in second.reports
            for r in rep.records
            if r["kind"] == "span" and r["name"] == "job"
        ]
        assert len(job_spans) == 1


class TestInlineTransport:
    def test_matches_process_semantics(self, no_crash_env):
        sched = ProcessScheduler(
            _init,
            (),
            _double,
            config=SchedulerConfig(workers=3, transport="inline", inline_order_seed=5),
        )
        result = sched.run(list(range(10)))
        assert result.results == [2 * i for i in range(10)]
        assert [o.index for o in result.outcomes] == list(range(10))
        sched.close()

    def test_simulated_crash_retries(self, monkeypatch):
        monkeypatch.setenv(CRASH_RATE_ENV, "0.5")
        monkeypatch.setenv(CRASH_SEED_ENV, "3")
        sched = ProcessScheduler(
            _init,
            (),
            _double,
            config=SchedulerConfig(
                workers=2, transport="inline", max_retries=8, backoff_seconds=0.0
            ),
        )
        result = sched.run(list(range(8)))
        assert result.results == [2 * i for i in range(8)]
        assert result.counters.crashes > 0
        sched.close()

    def test_inline_reports_cover_slots(self, no_crash_env):
        sched = ProcessScheduler(
            _init,
            (),
            _double,
            config=SchedulerConfig(workers=2, transport="inline"),
        )
        result = sched.run(list(range(4)))
        assert {r.worker for r in result.reports} == {0, 1}
        assert all(r.pid == os.getpid() for r in result.reports)
        sched.close()
