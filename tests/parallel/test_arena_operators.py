"""Structured edge operators through the shared-memory arena layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.operators import build_edge_operator, cached_edge_operator
from repro.efit.tables import cached_boundary_tables
from repro.parallel import ArenaManager, TableArena, attach_arena


@pytest.fixture(scope="module")
def grid():
    return RZGrid(17, 17)


@pytest.fixture(scope="module")
def tables(grid):
    return cached_boundary_tables(grid)


STRUCTURED = ("toeplitz", "lowrank", "toeplitz-fp32", "lowrank-fp32")


class TestStructuredArena:
    @pytest.mark.parametrize("method", STRUCTURED)
    def test_build_attach_apply_bitwise(self, grid, tables, method):
        """An operator rebuilt from arena segments applies bit-identically
        to one built privately — fleet workers and the parent agree."""
        local = cached_edge_operator(tables, method)
        arena = TableArena.build(grid, method)
        try:
            x = np.random.default_rng(0).normal(size=(grid.size, 3))
            np.testing.assert_array_equal(arena.edge_op().apply(x), local.apply(x))
            attached = attach_arena(arena.spec)
            try:
                np.testing.assert_array_equal(
                    attached.edge_op().apply(x), local.apply(x)
                )
            finally:
                attached.close()
        finally:
            arena.unlink()

    def test_spec_carries_content_identity(self, grid, tables):
        op = cached_edge_operator(tables, "lowrank")
        arena = TableArena.build(grid, "lowrank")
        try:
            assert arena.spec.boundary_method == "lowrank"
            assert arena.spec.content_key == op.content_key
            assert arena.spec.content_key.startswith(grid.geometry_hash())
        finally:
            arena.unlink()

    def test_dense_arena_keeps_historical_layout(self, grid, tables):
        arena = TableArena.build(grid)
        try:
            assert arena.spec.boundary_method == "dense"
            dense = build_edge_operator(tables, "dense")
            np.testing.assert_array_equal(
                arena.edge_op().to_arrays()["matrix"], dense.to_arrays()["matrix"]
            )
            # The legacy raw-matrix accessor still works on dense arenas.
            np.testing.assert_array_equal(
                arena.edge_operator(), dense.to_arrays()["matrix"]
            )
        finally:
            arena.unlink()


class TestFleetBoundaryMethod:
    def test_inline_fleet_lowrank_tracks_dense_serial(self):
        """The fleet threads boundary_method through arena + workers; the
        low-rank fp64 path must track the dense serial engine to 1e-10."""
        from repro.batch import BatchFitEngine, synthetic_slice_sequence
        from repro.efit.measurements import synthetic_shot_186610
        from repro.parallel import ParallelFitEngine, SchedulerConfig

        shot = synthetic_shot_186610(33)
        slices = synthetic_slice_sequence(shot, 4, seed=5)
        serial = BatchFitEngine(
            shot.machine, shot.diagnostics, shot.grid, batch_size=2
        ).fit_many(slices)
        with ParallelFitEngine(
            shot.machine,
            shot.diagnostics,
            shot.grid,
            batch_size=2,
            workers=2,
            config=SchedulerConfig(workers=2, transport="inline"),
            boundary_method="lowrank",
        ) as engine:
            assert engine.boundary_method == "lowrank"
            assert engine.arena.spec.boundary_method == "lowrank"
            fleet = engine.fit_many(slices)
        for a, b in zip(serial.results, fleet.results):
            scale = np.max(np.abs(a.psi))
            assert np.max(np.abs(a.psi - b.psi)) <= 1e-10 * scale
            assert a.converged and b.converged


class TestManagerKeying:
    def test_methods_get_distinct_arenas(self, grid):
        manager = ArenaManager()
        dense = manager.acquire(grid)
        lowrank = manager.acquire(grid, "lowrank")
        try:
            assert dense is not lowrank
            assert manager.refcount(grid) == 1
            assert manager.refcount(grid, "lowrank") == 1
            again = manager.acquire(grid, "lowrank")
            assert again is lowrank
            assert manager.refcount(grid, "lowrank") == 2
        finally:
            manager.release(grid, "lowrank")
            manager.release(grid, "lowrank")
            manager.release(grid)
        assert manager.refcount(grid) == 0
        assert manager.refcount(grid, "lowrank") == 0
