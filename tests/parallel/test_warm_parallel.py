"""Warm-start seeds across process-parallel workers: bit-identity.

The satellite contract: warm ``ParallelFitEngine.fit_many`` must be
bit-identical to warm serial ``BatchFitEngine.fit_many`` — seeds ride
the job payloads into the workers without perturbing a single ulp.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.errors import FittingError
from repro.parallel import CRASH_RATE_ENV, ParallelFitEngine, SchedulerConfig


@pytest.fixture(scope="module")
def slices(shot33):
    return synthetic_slice_sequence(shot33, 4, seed=3)


@pytest.fixture(scope="module")
def seeds(shot33, slices):
    engine = BatchFitEngine(
        shot33.machine, shot33.diagnostics, shot33.grid, batch_size=2
    )
    return [r.psi for r in engine.fit_many(slices).results]


@pytest.fixture(autouse=True)
def no_crash_env(monkeypatch):
    monkeypatch.delenv(CRASH_RATE_ENV, raising=False)


def _inline_engine(shot, *, workers=2):
    return ParallelFitEngine(
        shot.machine,
        shot.diagnostics,
        shot.grid,
        batch_size=2,
        workers=workers,
        config=SchedulerConfig(workers=workers, transport="inline"),
    )


class TestWarmParallel:
    def test_warm_parallel_bit_identical_to_warm_serial(
        self, shot33, slices, seeds
    ):
        serial_engine = BatchFitEngine(
            shot33.machine, shot33.diagnostics, shot33.grid, batch_size=2
        )
        serial = serial_engine.fit_many(slices, psi_initial=seeds)
        with _inline_engine(shot33) as engine:
            parallel = engine.fit_many(slices, psi_initial=seeds)
        for a, b in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(a.psi, b.psi)
            assert a.chi2 == b.chi2
            assert a.iterations == b.iterations
            assert a.warm_start and b.warm_start

    def test_warm_cuts_iterations_across_workers(self, shot33, slices, seeds):
        with _inline_engine(shot33) as engine:
            cold = engine.fit_many(slices)
            warm = engine.fit_many(slices, psi_initial=seeds)
        assert warm.stats.total_iterations < cold.stats.total_iterations
        assert all(r.warm_start for r in warm.results)

    def test_seed_length_mismatch_rejected(self, shot33, slices, seeds):
        with _inline_engine(shot33) as engine:
            with pytest.raises(FittingError):
                engine.fit_many(slices, psi_initial=seeds[:-1])
