"""Property: the parallel merge is invisible in the output.

For *any* worker count and *any* job completion order, the
:class:`~repro.parallel.engine.ParallelFitEngine` must hand back results
bit-identical to the serial :class:`~repro.batch.engine.BatchFitEngine`
on the same slices — element-wise equal ``psi`` arrays, equal ``chi2``,
equal iteration counts.  This holds because jobs are the serial engine's
exact ``batch_size`` groups (identical GEMM operand shapes inside every
group) and the merge orders outcomes by submission index.

The Hypothesis search runs on the inline transport, where the
``inline_order_seed`` shuffles the completion order deterministically —
so "any completion order" is exercised without paying process spawns per
example.  Process-transport equality is pinned separately in
``test_engine.py``.  The reconstruction target is the Solov'ev golden
case: an analytic equilibrium, so convergence is guaranteed and the
reference is meaningful physics, not just a fixture.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.efit.measurements import synthetic_solovev_shot
from repro.parallel import CRASH_RATE_ENV, ParallelFitEngine, SchedulerConfig

N_SLICES = 6
BATCH_SIZE = 2


@pytest.fixture(scope="module")
def shot():
    return synthetic_solovev_shot(65)


@pytest.fixture(scope="module")
def slices(shot):
    return synthetic_slice_sequence(shot, N_SLICES, seed=3)


@pytest.fixture(scope="module")
def serial(shot, slices):
    engine = BatchFitEngine(
        shot.machine, shot.diagnostics, shot.grid, batch_size=BATCH_SIZE
    )
    return engine.fit_many(slices)


@pytest.fixture(autouse=True)
def no_crash_env(monkeypatch):
    monkeypatch.delenv(CRASH_RATE_ENV, raising=False)


@settings(max_examples=6, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=3),
    order_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_merge_is_bit_identical_to_serial(shot, slices, serial, workers, order_seed):
    config = SchedulerConfig(
        workers=workers, transport="inline", inline_order_seed=order_seed
    )
    with ParallelFitEngine(
        shot.machine,
        shot.diagnostics,
        shot.grid,
        batch_size=BATCH_SIZE,
        workers=workers,
        config=config,
    ) as engine:
        parallel = engine.fit_many(slices)
    assert len(parallel.results) == len(serial.results) == N_SLICES
    for ours, ref in zip(parallel.results, serial.results):
        assert np.array_equal(ours.psi, ref.psi)  # bit-for-bit, not approx
        assert ours.chi2 == ref.chi2
        assert ours.iterations == ref.iterations
        assert ours.converged and ref.converged
    assert parallel.stats.total_iterations == serial.stats.total_iterations
