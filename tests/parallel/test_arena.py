"""Shared-memory table arenas: build, attach, refcount, unlink."""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.pflux import edge_flux_operator
from repro.efit.tables import (
    BoundaryTableCache,
    build_boundary_tables,
    cached_boundary_tables,
)
from repro.errors import ArenaError
from repro.parallel import ArenaManager, TableArena, attach_arena


@pytest.fixture(scope="module")
def grid():
    return RZGrid(17, 17)


@pytest.fixture(scope="module")
def arena(grid):
    arena = TableArena.build(grid)
    yield arena
    arena.unlink()


class TestTableArena:
    def test_tables_match_direct_build(self, grid, arena):
        direct = cached_boundary_tables(grid)
        np.testing.assert_array_equal(arena.tables().gpc, direct.gpc)

    def test_edge_operator_matches(self, grid, arena):
        expected = edge_flux_operator(cached_boundary_tables(grid))
        np.testing.assert_array_equal(arena.edge_operator(), expected)

    def test_views_are_read_only(self, arena):
        with pytest.raises(ValueError):
            arena.tables().gpc[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            arena.edge_operator()[0, 0] = 1.0

    def test_spec_reconstructs_grid(self, grid, arena):
        assert arena.spec.grid() == grid

    def test_spec_unknown_segment(self, arena):
        with pytest.raises(ArenaError):
            arena.spec.segment("nope")

    def test_nbytes_covers_both_segments(self, grid, arena):
        tables = cached_boundary_tables(grid)
        edge_op = edge_flux_operator(tables)
        assert arena.nbytes == tables.gpc.nbytes + edge_op.nbytes

    def test_unlink_is_idempotent(self, grid):
        arena = TableArena.build(grid)
        arena.unlink()
        arena.unlink()


class TestAttach:
    def test_attach_sees_identical_bytes(self, grid, arena):
        attached = attach_arena(arena.spec)
        try:
            np.testing.assert_array_equal(
                attached.tables().gpc, cached_boundary_tables(grid).gpc
            )
            np.testing.assert_array_equal(
                attached.edge_operator(), arena.edge_operator()
            )
        finally:
            attached.close()

    def test_attach_after_unlink_raises(self, grid):
        arena = TableArena.build(grid)
        spec = arena.spec
        arena.unlink()
        with pytest.raises(ArenaError):
            attach_arena(spec)


class TestArenaManager:
    def test_refcounted_sharing_and_unlink_at_zero(self, grid):
        manager = ArenaManager()
        a1 = manager.acquire(grid)
        a2 = manager.acquire(grid)
        assert a1 is a2
        assert manager.refcount(grid) == 2
        assert len(manager) == 1
        manager.release(grid)
        assert manager.refcount(grid) == 1
        spec = a1.spec
        manager.release(grid)
        assert manager.refcount(grid) == 0
        assert len(manager) == 0
        with pytest.raises(ArenaError):
            attach_arena(spec)  # unlinked at refcount zero

    def test_release_without_acquire_raises(self, grid):
        with pytest.raises(ArenaError):
            ArenaManager().release(grid)

    def test_distinct_grids_distinct_arenas(self, grid):
        manager = ArenaManager()
        other = RZGrid(9, 9)
        a1 = manager.acquire(grid)
        a2 = manager.acquire(other)
        assert a1 is not a2
        assert len(manager) == 2
        assert manager.resident_bytes == a1.nbytes + a2.nbytes
        manager.shutdown()
        assert len(manager) == 0

    def test_shutdown_is_reentrant(self, grid):
        manager = ArenaManager()
        manager.acquire(grid)
        manager.shutdown()
        manager.shutdown()


class TestCacheSeeding:
    def test_seed_makes_get_return_shared_view(self, grid):
        arena = TableArena.build(grid)
        try:
            cache = BoundaryTableCache()
            cache.seed(arena.tables())
            got = cache.get(grid)
            assert not got.gpc.flags.writeable  # the shared view, not a rebuild
            assert cache.counters.hits == 1
            np.testing.assert_array_equal(
                got.gpc, build_boundary_tables(grid).gpc
            )
        finally:
            arena.unlink()

    def test_seed_replaces_existing_entry(self, grid):
        arena = TableArena.build(grid)
        try:
            cache = BoundaryTableCache()
            cache.get(grid)  # private build first
            cache.seed(arena.tables())
            assert not cache.get(grid).gpc.flags.writeable
        finally:
            arena.unlink()

    def test_double_drop_is_a_no_op(self, grid):
        """Teardown paths may race close() against each other; dropping
        an entry that is already gone must stay silent."""
        arena = TableArena.build(grid)
        try:
            cache = BoundaryTableCache()
            cache.seed(arena.tables())
            cache.drop(grid)
            cache.drop(grid)
            # the next get rebuilds privately, off the dropped view
            assert cache.get(grid).gpc.flags.writeable
        finally:
            arena.unlink()


def _crash_while_attached(spec):
    """Worker that dies hard while still holding a live attachment —
    no close(), no interpreter shutdown hooks."""
    attached = attach_arena(spec)
    attached.tables()
    os._exit(3)


class TestFailurePaths:
    """Runtime ground truth of the static lifecycle rules: the misuse
    each rule flags must fail as a clean ArenaError, not a segfault."""

    def test_parent_view_after_unlink_raises(self, grid):
        arena = TableArena.build(grid)
        arena.unlink()
        with pytest.raises(ArenaError, match="use-after-unlink"):
            arena.tables()
        with pytest.raises(ArenaError, match="use-after-unlink"):
            arena.edge_operator()

    def test_views_taken_before_unlink_still_error_after(self, grid):
        """The static rule's exact shape: view production ordered after
        teardown is refused (views taken before stay the caller's
        responsibility — the mapping itself is gone)."""
        arena = TableArena.build(grid)
        arena.tables()  # fine while live
        arena.unlink()
        with pytest.raises(ArenaError):
            arena.tables()

    def test_worker_view_after_close_raises(self, grid):
        arena = TableArena.build(grid)
        try:
            attached = attach_arena(arena.spec)
            attached.close()
            with pytest.raises(ArenaError, match="use-after-close"):
                attached.tables()
            with pytest.raises(ArenaError, match="use-after-close"):
                attached.edge_operator()
        finally:
            arena.unlink()

    def test_worker_close_is_idempotent(self, grid):
        arena = TableArena.build(grid)
        try:
            attached = attach_arena(arena.spec)
            attached.close()
            attached.close()
        finally:
            arena.unlink()

    def test_manager_sweep_with_crashed_worker_holding_attachment(self, grid):
        """The atexit-sweep scenario: a worker dies hard (os._exit, no
        close) while attached; the parent's shutdown sweep must still
        unlink cleanly and leave nothing to attach to."""
        manager = ArenaManager()
        arena = manager.acquire(grid)
        spec = arena.spec
        proc = multiprocessing.get_context("fork").Process(
            target=_crash_while_attached, args=(spec,)
        )
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == 3  # crashed as injected, while attached
        manager.shutdown()  # refcount still 1: the safety net overrides
        assert len(manager) == 0
        with pytest.raises(ArenaError):
            attach_arena(spec)  # segment really is gone
