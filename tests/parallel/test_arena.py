"""Shared-memory table arenas: build, attach, refcount, unlink."""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.pflux import edge_flux_operator
from repro.efit.tables import (
    BoundaryTableCache,
    build_boundary_tables,
    cached_boundary_tables,
)
from repro.errors import ArenaError
from repro.parallel import ArenaManager, TableArena, attach_arena


@pytest.fixture(scope="module")
def grid():
    return RZGrid(17, 17)


@pytest.fixture(scope="module")
def arena(grid):
    arena = TableArena.build(grid)
    yield arena
    arena.unlink()


class TestTableArena:
    def test_tables_match_direct_build(self, grid, arena):
        direct = cached_boundary_tables(grid)
        np.testing.assert_array_equal(arena.tables().gpc, direct.gpc)

    def test_edge_operator_matches(self, grid, arena):
        expected = edge_flux_operator(cached_boundary_tables(grid))
        np.testing.assert_array_equal(arena.edge_operator(), expected)

    def test_views_are_read_only(self, arena):
        with pytest.raises(ValueError):
            arena.tables().gpc[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            arena.edge_operator()[0, 0] = 1.0

    def test_spec_reconstructs_grid(self, grid, arena):
        assert arena.spec.grid() == grid

    def test_spec_unknown_segment(self, arena):
        with pytest.raises(ArenaError):
            arena.spec.segment("nope")

    def test_nbytes_covers_both_segments(self, grid, arena):
        tables = cached_boundary_tables(grid)
        edge_op = edge_flux_operator(tables)
        assert arena.nbytes == tables.gpc.nbytes + edge_op.nbytes

    def test_unlink_is_idempotent(self, grid):
        arena = TableArena.build(grid)
        arena.unlink()
        arena.unlink()


class TestAttach:
    def test_attach_sees_identical_bytes(self, grid, arena):
        attached = attach_arena(arena.spec)
        try:
            np.testing.assert_array_equal(
                attached.tables().gpc, cached_boundary_tables(grid).gpc
            )
            np.testing.assert_array_equal(
                attached.edge_operator(), arena.edge_operator()
            )
        finally:
            attached.close()

    def test_attach_after_unlink_raises(self, grid):
        arena = TableArena.build(grid)
        spec = arena.spec
        arena.unlink()
        with pytest.raises(ArenaError):
            attach_arena(spec)


class TestArenaManager:
    def test_refcounted_sharing_and_unlink_at_zero(self, grid):
        manager = ArenaManager()
        a1 = manager.acquire(grid)
        a2 = manager.acquire(grid)
        assert a1 is a2
        assert manager.refcount(grid) == 2
        assert len(manager) == 1
        manager.release(grid)
        assert manager.refcount(grid) == 1
        spec = a1.spec
        manager.release(grid)
        assert manager.refcount(grid) == 0
        assert len(manager) == 0
        with pytest.raises(ArenaError):
            attach_arena(spec)  # unlinked at refcount zero

    def test_release_without_acquire_raises(self, grid):
        with pytest.raises(ArenaError):
            ArenaManager().release(grid)

    def test_distinct_grids_distinct_arenas(self, grid):
        manager = ArenaManager()
        other = RZGrid(9, 9)
        a1 = manager.acquire(grid)
        a2 = manager.acquire(other)
        assert a1 is not a2
        assert len(manager) == 2
        assert manager.resident_bytes == a1.nbytes + a2.nbytes
        manager.shutdown()
        assert len(manager) == 0

    def test_shutdown_is_reentrant(self, grid):
        manager = ArenaManager()
        manager.acquire(grid)
        manager.shutdown()
        manager.shutdown()


class TestCacheSeeding:
    def test_seed_makes_get_return_shared_view(self, grid):
        arena = TableArena.build(grid)
        try:
            cache = BoundaryTableCache()
            cache.seed(arena.tables())
            got = cache.get(grid)
            assert not got.gpc.flags.writeable  # the shared view, not a rebuild
            assert cache.counters.hits == 1
            np.testing.assert_array_equal(
                got.gpc, build_boundary_tables(grid).gpc
            )
        finally:
            arena.unlink()

    def test_seed_replaces_existing_entry(self, grid):
        arena = TableArena.build(grid)
        try:
            cache = BoundaryTableCache()
            cache.get(grid)  # private build first
            cache.seed(arena.tables())
            assert not cache.get(grid).gpc.flags.writeable
        finally:
            arena.unlink()
