"""Property-based tests of the full pflux_ pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.efit.grid import RZGrid
from repro.efit.operators import GradShafranovOperator
from repro.efit.pflux import PfluxVectorized, boundary_flux_vectorized
from repro.efit.solvers import make_solver
from repro.efit.tables import cached_boundary_tables
from repro.utils.constants import MU0

GRID = RZGrid(13, 17)
TABLES = cached_boundary_tables(GRID)
SOLVER = make_solver("direct", GRID)
OP = GradShafranovOperator(GRID)

currents = hnp.arrays(
    np.float64,
    GRID.shape,
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
)


@given(currents)
@settings(max_examples=40, deadline=None)
def test_gs_equation_satisfied_for_any_current(pcurr):
    """Whatever the current distribution, the computed flux satisfies the
    discrete GS equation with that source in the interior."""
    pflux = PfluxVectorized(GRID, TABLES, SOLVER)
    psi = pflux.compute(pcurr)
    rhs = -(MU0 / GRID.cell_area) * GRID.rr * pcurr
    res = OP.residual(psi, rhs)
    scale = max(np.abs(rhs).max(), 1e-30)
    assert np.abs(res[1:-1, 1:-1]).max() <= 1e-8 * scale + 1e-18


@given(currents, st.floats(min_value=-3, max_value=3))
@settings(max_examples=30, deadline=None)
def test_flux_scales_linearly_with_current(pcurr, scale):
    pflux = PfluxVectorized(GRID, TABLES, SOLVER)
    a = pflux.compute(pcurr)
    b = pflux.compute(scale * pcurr)
    assert np.allclose(b, scale * a, rtol=1e-10, atol=1e-16)


@given(currents)
@settings(max_examples=30, deadline=None)
def test_updown_symmetry_preserved(pcurr):
    """A Z-symmetric current on a Z-symmetric grid gives Z-symmetric flux."""
    sym = 0.5 * (pcurr + pcurr[:, ::-1])
    psi = PfluxVectorized(GRID, TABLES, SOLVER).compute(sym)
    assert np.allclose(psi, psi[:, ::-1], rtol=1e-9, atol=1e-15)


@given(currents)
@settings(max_examples=30, deadline=None)
def test_boundary_kernel_sign_convention(pcurr):
    """The paper kernel computes -sum(G * pcurr); G > 0, so a nonnegative
    current gives a nonpositive edge result."""
    nonneg = np.abs(pcurr)
    edge = boundary_flux_vectorized(TABLES, nonneg)
    assert (edge[0, :] <= 1e-18).all()
    assert (edge[:, -1] <= 1e-18).all()
