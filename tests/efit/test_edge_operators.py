"""Structured edge-flux operators: accuracy bounds, structure pinning,
serialization, caching and solver integration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.efit.fitting import EfitSolver
from repro.efit.grid import RZGrid
from repro.efit.operators import (
    EDGE_METHODS,
    DenseEdgeOperator,
    EdgeOperator,
    LowRankEdgeOperator,
    ToeplitzFFTEdgeOperator,
    build_edge_operator,
    cached_edge_operator,
    drop_edge_operator,
    edge_operator_from_arrays,
    seed_edge_operator,
    validate_edge_structure,
)
from repro.efit.pflux import boundary_flux_operator, edge_flux_operator
from repro.efit.tables import BoundaryGreensTables, cached_boundary_tables
from repro.errors import FittingError, OperatorError, OperatorStructureError

STRUCTURED = tuple(m for m in EDGE_METHODS if m != "dense")


@pytest.fixture(scope="module")
def tables33():
    return cached_boundary_tables(RZGrid(33, 33))


@pytest.fixture(scope="module")
def dense33(tables33):
    return build_edge_operator(tables33, "dense")


def _probe(grid: RZGrid, n: int = 3, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(grid.size, n))


# -- accuracy vs the dense ground truth --------------------------------------------
class TestAccuracy:
    @pytest.mark.parametrize("method", STRUCTURED)
    def test_matches_dense_33(self, tables33, dense33, method):
        op = build_edge_operator(tables33, method)
        x = _probe(tables33.grid)
        ref = dense33.apply(x)
        rel = np.max(np.abs(op.apply(x) - ref)) / np.max(np.abs(ref))
        bound = 1e-5 if method.endswith("-fp32") else 1e-10
        assert rel <= bound, f"{method}: rel error {rel:.3e} > {bound}"

    @settings(max_examples=10, deadline=None)
    @given(
        nw=st.integers(min_value=9, max_value=21),
        nh=st.integers(min_value=9, max_value=21),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_error_bounds(self, nw, nh, seed):
        """The PR's property-tested bounds: on arbitrary (incl. non-square)
        grids, fp64 structured applies stay within 1e-10 of dense and the
        fp32+refinement variants within 1e-5, relative to the result scale."""
        grid = RZGrid(nw, nh)
        tables = cached_boundary_tables(grid)
        dense = build_edge_operator(tables, "dense")
        x = np.random.default_rng(seed).normal(size=grid.size)
        ref = dense.apply(x)
        scale = np.max(np.abs(ref))
        for method in STRUCTURED:
            op = build_edge_operator(tables, method)
            rel = np.max(np.abs(op.apply(x) - ref)) / scale
            bound = 1e-5 if method.endswith("-fp32") else 1e-10
            assert rel <= bound, f"{method}@{nw}x{nh}: {rel:.3e} > {bound}"

    def test_error_bound_hook(self, tables33):
        op = build_edge_operator(tables33, "lowrank")
        assert op.error_bound(1.0) >= 0.0

    @pytest.mark.parametrize("method", STRUCTURED)
    def test_batched_apply_and_out(self, tables33, dense33, method):
        op = build_edge_operator(tables33, method)
        x = _probe(tables33.grid, n=5, seed=2)
        batched = op.apply(x)
        assert batched.shape == (op.n_edge, 5)
        # Not bitwise: GEMM/FFT reduction order depends on operand shapes.
        cols = np.stack([op.apply(x[:, k]) for k in range(5)], axis=1)
        rel = np.max(np.abs(batched - cols)) / np.max(np.abs(batched))
        assert rel < (1e-6 if method.endswith("-fp32") else 1e-12)
        out = np.empty(op.n_edge)
        res = op.apply(x[:, 0], out=out)
        assert res is out


# -- the dense default stays the ground truth --------------------------------------
class TestDenseDefault:
    def test_bit_identical_to_legacy_operator(self, tables33, dense33):
        x = _probe(tables33.grid, n=1)[:, 0]
        legacy = boundary_flux_operator(edge_flux_operator(tables33), x)
        np.testing.assert_array_equal(dense33.apply(x), legacy)

    def test_from_tables_matrix_identical(self, tables33, dense33):
        np.testing.assert_array_equal(
            dense33.to_arrays()["matrix"], edge_flux_operator(tables33)
        )

    def test_rejects_wrong_shapes(self, tables33, dense33):
        from repro.errors import GridError

        with pytest.raises(GridError):
            dense33.apply(np.zeros(7))
        with pytest.raises(GridError):
            dense33.apply(
                np.zeros(dense33.n_grid), out=np.zeros(dense33.n_edge + 1)
            )


# -- structure pinning -------------------------------------------------------------
class TestStructurePin:
    def test_translation_invariance_holds(self, tables33):
        assert validate_edge_structure(tables33) < 1e-9

    def test_tampered_table_fails_loudly_naming_dense(self, tables33):
        """The pin test the ISSUE requires: break gridpc's z-translation
        invariance and the structured build must refuse, telling the user
        the dense path is the fallback."""
        gpc = tables33.gpc.copy()
        gpc[5] *= 1.01  # boundary column 5 no longer matches greens_psi
        bad = BoundaryGreensTables(grid=tables33.grid, gpc=gpc)
        with pytest.raises(OperatorStructureError, match="dense"):
            validate_edge_structure(bad, samples=4096, seed=1)

    def test_structured_build_runs_validation(self, tables33):
        gpc = tables33.gpc.copy()
        gpc[0] += 1e-3
        bad = BoundaryGreensTables(grid=tables33.grid, gpc=gpc)
        with pytest.raises(OperatorStructureError):
            build_edge_operator(bad, "toeplitz")
        # validate=False skips the check (the trusted fleet-worker path).
        op = build_edge_operator(bad, "toeplitz", validate=False)
        assert isinstance(op, ToeplitzFFTEdgeOperator)

    def test_unknown_method_lists_choices(self, tables33):
        with pytest.raises(OperatorError, match="dense"):
            build_edge_operator(tables33, "fourier")


# -- serialization -----------------------------------------------------------------
class TestSerialization:
    @pytest.mark.parametrize("method", STRUCTURED)
    def test_roundtrip_bitwise(self, tables33, method):
        op = build_edge_operator(tables33, method)
        arrays = op.to_arrays()
        clone = edge_operator_from_arrays(
            tables33.grid, method, arrays, gpc=tables33.gpc
        )
        x = _probe(tables33.grid)
        np.testing.assert_array_equal(op.apply(x), clone.apply(x))
        assert clone.variant_tag == op.variant_tag

    def test_fp64_toeplitz_requires_gpc(self, tables33):
        op = build_edge_operator(tables33, "toeplitz")
        with pytest.raises(OperatorError):
            edge_operator_from_arrays(tables33.grid, "toeplitz", op.to_arrays())

    def test_fp64_toeplitz_aliases_green_table(self, tables33):
        op = build_edge_operator(tables33, "toeplitz")
        assert isinstance(op, ToeplitzFFTEdgeOperator)
        # The horizontal block is a view of gpc, not a copy: compression
        # here means *no new* O(N^3) storage.
        assert np.shares_memory(op._horizontal, tables33.gpc)

    def test_compression_pays(self, tables33, dense33):
        lowrank = build_edge_operator(tables33, "lowrank")
        assert 0 < lowrank.nbytes < dense33.nbytes
        assert isinstance(lowrank, LowRankEdgeOperator)
        assert lowrank.total_rank > 0


# -- content identity + process cache ----------------------------------------------
class TestContentIdentity:
    def test_content_key_embeds_hash_method_and_rank(self, tables33):
        op = build_edge_operator(tables33, "lowrank")
        key = op.content_key
        assert key.startswith(tables33.grid.geometry_hash())
        assert "lowrank" in key and f"r{op.total_rank}" in key

    def test_variant_tags_distinct_across_methods(self, tables33):
        tags = {build_edge_operator(tables33, m).variant_tag for m in EDGE_METHODS}
        assert len(tags) == len(EDGE_METHODS)

    def test_geometry_hash_stable_and_distinct(self):
        a, b = RZGrid(33, 33), RZGrid(33, 33)
        assert a.geometry_hash() == b.geometry_hash()
        assert RZGrid(33, 35).geometry_hash() != a.geometry_hash()

    def test_cached_seed_drop(self, tables33):
        grid = tables33.grid
        drop_edge_operator(grid, "toeplitz")
        op = cached_edge_operator(tables33, "toeplitz")
        assert cached_edge_operator(tables33, "toeplitz") is op
        drop_edge_operator(grid, "toeplitz")
        rebuilt = cached_edge_operator(tables33, "toeplitz")
        assert rebuilt is not op
        seed_edge_operator(op)
        assert cached_edge_operator(tables33, "toeplitz") is op
        drop_edge_operator(grid, "toeplitz")


# -- solver integration ------------------------------------------------------------
class TestSolverIntegration:
    @pytest.fixture(scope="class")
    def shot(self):
        from repro.efit.measurements import synthetic_shot_186610

        return synthetic_shot_186610(33)

    @pytest.fixture(scope="class")
    def dense_fit(self, shot):
        solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid)
        return solver.fit(shot.measurements)

    def test_default_is_dense(self, shot):
        solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid)
        assert solver.boundary_method == "dense"

    @pytest.mark.parametrize("method", ["toeplitz", "lowrank"])
    def test_fp64_structured_fit_matches(self, shot, dense_fit, method):
        solver = EfitSolver(
            shot.machine, shot.diagnostics, shot.grid, boundary_method=method
        )
        result = solver.fit(shot.measurements)
        assert result.converged and result.iterations == dense_fit.iterations
        rel = np.max(np.abs(result.psi - dense_fit.psi)) / np.max(
            np.abs(dense_fit.psi)
        )
        assert rel < 1e-10

    def test_fp32_structured_fit_converges_close(self, shot, dense_fit):
        solver = EfitSolver(
            shot.machine, shot.diagnostics, shot.grid,
            boundary_method="lowrank-fp32",
        )
        result = solver.fit(shot.measurements)
        assert result.converged
        rel = np.max(np.abs(result.psi - dense_fit.psi)) / np.max(
            np.abs(dense_fit.psi)
        )
        assert rel < 1e-5

    def test_conflicting_pflux_impl_rejected(self, shot):
        with pytest.raises(FittingError, match="boundary_method"):
            EfitSolver(
                shot.machine, shot.diagnostics, shot.grid,
                pflux_impl="reference", boundary_method="lowrank",
            )

    def test_unknown_method_rejected(self, shot):
        with pytest.raises(OperatorError):
            EfitSolver(
                shot.machine, shot.diagnostics, shot.grid,
                boundary_method="fourier",
            )


# -- disk cache --------------------------------------------------------------------
class TestDiskCache:
    def test_roundtrip_and_failsoft(self, tmp_path, monkeypatch, tables33):
        from repro.efit import diskcache

        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
        grid = tables33.grid
        assert diskcache.load_tables(grid) is None
        assert diskcache.store_tables(tables33)
        loaded = diskcache.load_tables(grid)
        np.testing.assert_array_equal(loaded.gpc, tables33.gpc)

        op = build_edge_operator(tables33, "lowrank")
        assert diskcache.load_edge_operator(tables33, "lowrank", 1e-12) is None
        assert diskcache.store_edge_operator(op, 1e-12)
        clone = diskcache.load_edge_operator(tables33, "lowrank", 1e-12)
        x = _probe(grid)
        np.testing.assert_array_equal(clone.apply(x), op.apply(x))

        # dense is never persisted; damaged entries fall back to None
        dense = build_edge_operator(tables33, "dense")
        assert not diskcache.store_edge_operator(dense, 1e-12)
        path = diskcache.operator_path(grid, "lowrank", 1e-12)
        path.write_bytes(b"not a zipfile")
        assert diskcache.load_edge_operator(tables33, "lowrank", 1e-12) is None

    def test_disabled_without_env(self, monkeypatch, tables33):
        from repro.efit import diskcache

        monkeypatch.delenv(diskcache.CACHE_DIR_ENV, raising=False)
        assert diskcache.cache_dir() is None
        assert diskcache.table_path(tables33.grid) is None
        assert not diskcache.store_tables(tables33)
        assert diskcache.load_tables(tables33.grid) is None


# -- the protocol itself -----------------------------------------------------------
class TestProtocol:
    def test_methods_registry(self):
        assert EDGE_METHODS[0] == "dense"
        assert set(STRUCTURED) == {
            "toeplitz", "lowrank", "toeplitz-fp32", "lowrank-fp32"
        }

    @pytest.mark.parametrize("method", EDGE_METHODS)
    def test_common_surface(self, tables33, method):
        op = build_edge_operator(tables33, method)
        assert isinstance(op, EdgeOperator)
        assert op.method == method
        grid = tables33.grid
        assert op.n_edge == 2 * grid.nw + 2 * grid.nh - 4
        assert op.n_grid == grid.size
        assert op.nbytes >= 0
        assert isinstance(op.to_arrays(), dict)

    def test_dense_wrapper_type(self, dense33):
        assert isinstance(dense33, DenseEdgeOperator)
