"""Tests of the shape-parameter (a-file) analysis."""

import numpy as np
import pytest

from repro.efit.contours import FluxSurface, trace_flux_surface
from repro.efit.measurements import synthetic_shot_186610
from repro.efit.shape import ShapeParameters
from repro.errors import BoundaryError


def miller_surface(r0=1.7, a=0.5, kappa=1.6, delta=0.35, n=256):
    theta = np.linspace(0, 2 * np.pi, n, endpoint=False)
    r = r0 + a * np.cos(theta + delta * np.sin(theta))
    z = kappa * a * np.sin(theta)
    return FluxSurface(1.0, r, z)


class TestAnalytic:
    def test_miller_parameters_recovered(self):
        s = ShapeParameters.from_surface(miller_surface())
        assert s.r_geo == pytest.approx(1.7, abs=5e-3)
        assert s.a_minor == pytest.approx(0.5, abs=5e-3)
        assert s.kappa == pytest.approx(1.6, abs=0.02)
        # Miller delta parameter ~ sin(delta-parameter) relation; loose check
        assert s.delta == pytest.approx(np.sin(0.35), abs=0.05)
        assert s.delta_upper == pytest.approx(s.delta_lower, abs=1e-6)

    def test_circle(self):
        theta = np.linspace(0, 2 * np.pi, 128, endpoint=False)
        s = ShapeParameters.from_surface(FluxSurface(1.0, 2.0 + 0.4 * np.cos(theta), 0.4 * np.sin(theta)))
        assert s.kappa == pytest.approx(1.0, abs=1e-3)
        assert s.delta == pytest.approx(0.0, abs=1e-3)
        assert s.aspect_ratio == pytest.approx(5.0, rel=1e-3)

    def test_validation(self):
        tiny = FluxSurface(0.5, np.array([1.0, 1.1, 1.2]), np.array([0.0, 0.1, 0.0]))
        with pytest.raises(BoundaryError):
            ShapeParameters.from_surface(tiny)


class TestReconstruction:
    def test_shot_shape_is_diiid_like(self):
        """The reconstructed LCFS has DIII-D-scale geometry (the machine
        the synthetic shot imitates)."""
        shot = synthetic_shot_186610(33)
        b = shot.truth.boundary
        lcfs = trace_flux_surface(shot.grid, b, 0.98)
        s = ShapeParameters.from_surface(lcfs)
        assert 1.4 < s.r_geo < 1.9
        assert 0.3 < s.a_minor < 0.8
        assert 1.0 < s.kappa < 2.1
        assert -0.2 < s.delta < 0.8
        assert 2.0 < s.aspect_ratio < 4.5

    def test_inner_surfaces_less_shaped(self):
        """Shaping decays toward the axis: kappa(0.3) < kappa(0.95)."""
        shot = synthetic_shot_186610(33)
        b = shot.truth.boundary
        inner = ShapeParameters.from_surface(trace_flux_surface(shot.grid, b, 0.3))
        outer = ShapeParameters.from_surface(trace_flux_surface(shot.grid, b, 0.95))
        assert inner.kappa < outer.kappa
        assert inner.a_minor < outer.a_minor
