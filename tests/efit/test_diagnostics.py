"""Tests of magnetic diagnostics and response matrices."""

import numpy as np
import pytest

from repro.efit.diagnostics import DiagnosticSet, FluxLoop, MagneticProbe, RogowskiCoil
from repro.efit.greens import greens_br, greens_bz, greens_psi
from repro.errors import MeasurementError


class TestFluxLoop:
    def test_grid_response_matches_green(self, grid33):
        loop = FluxLoop("L", 2.3, 0.5)
        resp = loop.response_to_grid(grid33)
        assert resp.shape == grid33.shape
        assert resp[4, 7] == pytest.approx(
            greens_psi(2.3, 0.5, grid33.r[4], grid33.z[7])
        )

    def test_invalid_position(self):
        with pytest.raises(MeasurementError):
            FluxLoop("L", -1.0, 0.0)

    def test_coil_response_length(self, machine):
        loop = FluxLoop("L", 2.3, 0.5)
        assert loop.response_to_coils(machine).shape == (machine.n_coils,)


class TestProbe:
    def test_angle_decomposition(self, grid33):
        r, z = 2.3, 0.4
        radial = MagneticProbe("PR", r, z, 0.0).response_to_grid(grid33)
        vertical = MagneticProbe("PZ", r, z, np.pi / 2).response_to_grid(grid33)
        assert radial[5, 5] == pytest.approx(greens_br(r, z, grid33.r[5], grid33.z[5]))
        assert vertical[5, 5] == pytest.approx(greens_bz(r, z, grid33.r[5], grid33.z[5]))

    def test_oblique_probe_combination(self, grid33):
        r, z, a = 2.3, 0.4, 0.7
        probe = MagneticProbe("P", r, z, a).response_to_grid(grid33)
        br = MagneticProbe("PR", r, z, 0.0).response_to_grid(grid33)
        bz = MagneticProbe("PZ", r, z, np.pi / 2).response_to_grid(grid33)
        assert np.allclose(probe, np.cos(a) * br + np.sin(a) * bz)


class TestRogowski:
    def test_measures_total_current(self, grid33, rng):
        rog = RogowskiCoil()
        resp = rog.response_to_grid(grid33)
        pcurr = rng.normal(size=grid33.shape)
        assert np.sum(resp * pcurr) == pytest.approx(pcurr.sum())

    def test_excludes_coils(self, machine):
        assert np.array_equal(RogowskiCoil().response_to_coils(machine), np.zeros(18))


class TestDiagnosticSet:
    @pytest.fixture(scope="class")
    def diags(self, machine):
        return DiagnosticSet.for_machine(machine, n_flux_loops=12, n_probes=16)

    def test_counts(self, diags):
        assert diags.n_measurements == 12 + 16 + 1
        assert len(diags.names) == diags.n_measurements
        assert diags.names[-1] == "IP"

    def test_positions_outside_limiter(self, machine, diags):
        for loop in diags.flux_loops:
            assert not bool(machine.limiter.contains(loop.r, loop.z))

    def test_positions_inside_box(self, machine, diags):
        rmin, rmax, zmin, zmax = machine.default_box
        for d in list(diags.flux_loops) + list(diags.probes):
            assert rmin < d.r < rmax and zmin < d.z < zmax

    def test_response_matrix_rows(self, machine, diags, grid33):
        g = machine.make_grid(17)
        resp = diags.response_to_grid(g)
        assert resp.shape == (diags.n_measurements, g.size)
        # Last row is the Rogowski: all ones.
        assert np.allclose(resp[-1], 1.0)
        # First row matches the first flux loop's field.
        assert np.allclose(resp[0], g.flatten(diags.flux_loops[0].response_to_grid(g)))

    def test_coil_response_shape(self, machine, diags):
        resp = diags.response_to_coils(machine)
        assert resp.shape == (diags.n_measurements, machine.n_coils)
        assert np.allclose(resp[-1], 0.0)

    def test_measurement_linearity(self, machine, diags, rng):
        """Diagnostics are linear: response to a sum is the sum of
        responses (superposition of sources)."""
        g = machine.make_grid(17)
        resp = diags.response_to_grid(g)
        a = rng.normal(size=g.size)
        b = rng.normal(size=g.size)
        assert np.allclose(resp @ (a + b), resp @ a + resp @ b)

    def test_too_few_diagnostics_rejected(self, machine):
        with pytest.raises(MeasurementError):
            DiagnosticSet.for_machine(machine, n_flux_loops=2, n_probes=16)

    def test_duplicate_names_rejected(self):
        loop = FluxLoop("X", 2.0, 0.0)
        probe = MagneticProbe("X", 2.0, 0.1, 0.0)
        with pytest.raises(MeasurementError):
            DiagnosticSet((loop,), (probe,), RogowskiCoil())
