"""Deeper numerical verification of the substrate pieces."""

import numpy as np
import pytest

from repro.efit.boundary import _quadratic_refine
from repro.efit.grid import RZGrid
from repro.efit.operators import GradShafranovOperator
from repro.efit.solvers.dst import DSTSolver
from repro.efit.tables import cached_boundary_tables


class TestQuadraticRefine:
    def test_exact_on_quadratic_field(self):
        """The 3x3 quadratic model recovers the vertex of an exact
        paraboloid to machine precision."""
        g = RZGrid(21, 21, rmin=1.0, rmax=2.0, zmin=-0.5, zmax=0.5)
        r0 = g.r[10] + 0.3 * g.dr
        z0 = g.z[10] - 0.2 * g.dz
        f = -((g.rr - r0) ** 2) - 2.0 * (g.zz - z0) ** 2
        r, z, val = _quadratic_refine(g, f, 10, 10)
        assert r == pytest.approx(r0, abs=1e-12)
        assert z == pytest.approx(z0, abs=1e-12)
        assert val == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_stencil_falls_back(self):
        g = RZGrid(9, 9)
        flat = np.zeros(g.shape)
        r, z, val = _quadratic_refine(g, flat, 4, 4)
        assert (r, z, val) == (g.r[4], g.z[4], 0.0)

    def test_large_correction_clamped_to_node(self):
        """A saddle-free monotone field would push the vertex far outside
        the cell; the refiner must return the node instead."""
        g = RZGrid(9, 9)
        f = g.rr * 1e3 + 1e-9 * (g.rr - g.r[4]) ** 2
        r, z, _ = _quadratic_refine(g, f, 4, 4)
        assert r == g.r[4] and z == g.z[4]


class TestDSTInternals:
    def test_mode_eigenvalues_match_stencil(self):
        """lam_m must be the exact eigenvalue of the discrete d2/dZ2 on
        the corresponding sine mode."""
        g = RZGrid(9, 17)
        solver = DSTSolver(g)
        nj = g.nh - 2
        dz2 = g.dz**2
        for m in (1, 3, nj):
            j = np.arange(1, nj + 1)
            mode = np.sin(np.pi * m * j / (g.nh - 1))
            padded = np.concatenate([[0.0], mode, [0.0]])
            second = (padded[2:] - 2 * padded[1:-1] + padded[:-2]) / dz2
            lam = solver.lam[m - 1]
            assert np.allclose(second, lam * mode, atol=1e-10)


class TestGreenTableStructure:
    def test_z_translation_invariance_is_real(self, grid_rect, tables_rect):
        """The table entry must equal the Green function of *any* pair of
        points with that column pair and Z offset — the invariance the
        gridpc layout assumes."""
        from repro.efit.greens import greens_psi

        g = grid_rect
        i_b, ii, dj = 3, 7, 4
        for j0 in (0, 5, g.nh - 1 - dj):
            val = greens_psi(g.r[i_b], g.z[j0], g.r[ii], g.z[j0 + dj])
            assert tables_rect.gpc[i_b, dj, ii] == pytest.approx(val, rel=1e-12)

    def test_table_reciprocity(self, grid_rect, tables_rect):
        """G(i_b -> ii) == G(ii -> i_b) at equal offsets (filament
        reciprocity carried into the table)."""
        gpc = tables_rect.gpc
        for a, b, d in [(2, 9, 3), (0, grid_rect.nw - 1, 7)]:
            assert gpc[a, d, b] == pytest.approx(gpc[b, d, a], rel=1e-12)


class TestOperatorManufactured:
    def test_second_manufactured_solution(self):
        """Convergence on exp/log data (exercises both R terms)."""
        errs = []
        for n in (17, 33, 65):
            g = RZGrid(n, n, rmin=1.0, rmax=2.0, zmin=-0.5, zmax=0.5)
            op = GradShafranovOperator(g)
            psi = np.exp(g.zz) * np.log(g.rr)
            # R d/dR[(1/R) d(log R)/dR] = R d/dR[R^-2] = -2/R^2.
            exact = np.exp(g.zz) * (-2.0 / g.rr**2 + np.log(g.rr))
            err = np.abs(op.apply(psi) - exact)[1:-1, 1:-1].max()
            errs.append(err)
        # Asymptotically 4x per refinement; the coarse pair is pre-asymptotic.
        assert errs[0] / errs[1] > 3.2
        assert errs[1] / errs[2] > 3.5
