"""Tests of the fit_ Picard loop (the reconstruction itself)."""

import numpy as np
import pytest

from repro.efit.fitting import EfitSolver
from repro.errors import ConvergenceError, FittingError
from repro.profiling.regions import RegionProfiler


@pytest.fixture(scope="module")
def solver33(shot33):
    return EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid)


@pytest.fixture(scope="module")
def result33(solver33, shot33):
    return solver33.fit(shot33.measurements)


class TestConvergence:
    def test_converges_below_paper_tolerance(self, result33):
        assert result33.converged
        assert result33.residual < 1e-5

    def test_iteration_count_paper_range(self, result33):
        """'fit_ could take between ten or hundreds of iterations'."""
        assert 10 <= result33.iterations <= 300

    def test_residual_shrinks_over_tail(self, result33):
        """After warm-up the residual trends down (geometric convergence;
        individual iterates may wiggle)."""
        tail = [h.residual for h in result33.history[-6:]]
        assert tail[-1] <= tail[0]
        assert tail[-1] == min(tail)

    def test_nonconvergence_raises(self, shot33):
        s = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid, max_iters=3)
        with pytest.raises(ConvergenceError):
            s.fit(shot33.measurements)

    def test_nonconvergence_suppressable(self, shot33):
        s = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid, max_iters=3)
        res = s.fit(shot33.measurements, require_convergence=False)
        assert not res.converged and res.iterations == 3


class TestAccuracy:
    def test_flux_map_matches_truth(self, result33, shot33):
        err = np.abs(result33.psi - shot33.truth.psi).max() / np.ptp(shot33.truth.psi)
        assert err < 2e-3

    def test_ip_recovered(self, result33, shot33):
        assert result33.ip == pytest.approx(shot33.truth.ip, rel=5e-3)

    def test_chi2_statistically_reasonable(self, result33, shot33):
        """chi^2 ~ number of measurements for a correct noise model."""
        n = shot33.measurements.n_measurements
        assert result33.chi2 < 3 * n

    def test_ffprime_coefficients_recovered(self, result33, shot33):
        """FF' is well-constrained by external magnetics."""
        got = result33.profiles.beta
        want = shot33.truth.profiles.beta
        assert np.allclose(got, want, rtol=0.1)

    def test_axis_position_recovered(self, result33, shot33):
        b_fit, b_true = result33.boundary, shot33.truth.boundary
        assert b_fit.r_axis == pytest.approx(b_true.r_axis, abs=2 * shot33.grid.dr)
        assert b_fit.z_axis == pytest.approx(b_true.z_axis, abs=2 * shot33.grid.dz)


class TestStability:
    """The fitdelz vertical feedback keeps the Picard loop stable for
    every relaxation setting — the failure mode it fixes is a vertical
    drift that grows ~2.5x per iteration."""

    @pytest.mark.parametrize("relax,relax_current", [(1.0, 1.0), (0.7, 0.5), (0.5, 0.3)])
    def test_converges_across_relaxations(self, shot33, relax, relax_current):
        s = EfitSolver(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            relax=relax,
            relax_current=relax_current,
            max_iters=300,
        )
        res = s.fit(shot33.measurements)
        assert res.converged
        assert abs(res.boundary.z_axis) < 0.05

    def test_without_fitdelz_diverges_or_drifts(self, shot33):
        """Disabling the feedback reproduces the vertical instability —
        documenting that the feedback is load-bearing, not decorative."""
        s = EfitSolver(
            shot33.machine, shot33.diagnostics, shot33.grid, fitdelz=False, max_iters=60
        )
        try:
            res = s.fit(shot33.measurements, require_convergence=False)
        except Exception:
            return  # boundary search blew up: instability confirmed
        drifted = abs(res.boundary.z_axis) > 0.1
        assert (not res.converged) or drifted or res.chi2 > 10 * shot33.measurements.n_measurements

    def test_delz_estimator_sign_and_magnitude(self, solver33, shot33):
        from repro.efit.current import basis_current_matrix
        from repro.efit.response import assemble_response

        tr = shot33.truth
        g = shot33.grid
        shifted = solver33._shift_z(tr.pcurr, 2 * g.dz)
        jm = basis_current_matrix(
            g, tr.boundary.psin, tr.boundary.mask, tr.profiles.pp_basis, tr.profiles.ffp_basis
        )
        asm = assemble_response(
            solver33.grid_response,
            jm,
            solver33.coil_response,
            shot33.measurements.coil_currents,
            shot33.measurements.values,
            shot33.measurements.uncertainties,
        )
        est = solver33._fit_delz(shifted, asm)
        assert est == pytest.approx(-2 * g.dz, rel=0.05)

    def test_shift_z_roundtrip(self, solver33, rng):
        g = solver33.grid
        f = rng.normal(size=g.shape)
        back = solver33._shift_z(solver33._shift_z(f, 3 * g.dz), -3 * g.dz)
        # interior (unaffected by zero-fill) must be restored exactly
        assert np.allclose(back[:, 4:-4], f[:, 4:-4])

    def test_shift_z_conserves_interior_current(self, solver33, shot33):
        pc = shot33.truth.pcurr
        shifted = solver33._shift_z(pc, 1.5 * shot33.grid.dz)
        assert shifted.sum() == pytest.approx(pc.sum(), rel=1e-6)


class TestConfiguration:
    def test_invalid_parameters(self, shot33):
        kw = dict(machine=shot33.machine, diagnostics=shot33.diagnostics, grid=shot33.grid)
        with pytest.raises(FittingError):
            EfitSolver(relax=0.0, **kw)
        with pytest.raises(FittingError):
            EfitSolver(relax_current=1.5, **kw)
        with pytest.raises(FittingError):
            EfitSolver(tol=-1.0, **kw)
        with pytest.raises(FittingError):
            EfitSolver(n_warmup=-1, **kw)
        with pytest.raises(FittingError):
            EfitSolver(pflux_impl="cuda", **kw)

    def test_reference_pflux_impl_agrees(self, shot33):
        """The pure-loop pflux_ baseline produces the same reconstruction
        (slow: only run on the small grid)."""
        import repro.efit.measurements as m

        small = m.synthetic_shot_186610(17, noise=0.0, seed=2)
        kw = dict(max_iters=300)
        ref = EfitSolver(small.machine, small.diagnostics, small.grid, pflux_impl="reference", **kw).fit(
            small.measurements
        )
        vec = EfitSolver(small.machine, small.diagnostics, small.grid, pflux_impl="vectorized", **kw).fit(
            small.measurements
        )
        assert np.allclose(ref.psi, vec.psi, rtol=1e-10, atol=1e-12)
        assert ref.iterations == vec.iterations

    def test_profiler_regions_recorded(self, shot33):
        prof = RegionProfiler()
        s = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid, profiler=prof)
        s.fit(shot33.measurements)
        rep = prof.report()
        for region in ("fit_", "pflux_", "green_", "current_", "steps_"):
            assert rep.calls.get(region, 0) > 0
        # pflux_ called exactly once per fit_ invocation (Table 2 semantics)
        assert rep.calls["pflux_"] == rep.calls["fit_"]

    def test_measurement_mismatch_rejected(self, solver33, shot33):
        from repro.efit.measurements import MeasurementSet

        bad = MeasurementSet(
            np.zeros(3), np.ones(3), shot33.measurements.coil_currents, ("a", "b", "c")
        )
        with pytest.raises(FittingError):
            solver33.fit(bad)
