"""Tests for the (R, Z) grid: geometry, flattening, interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.efit.grid import PAPER_GRID_SIZES, RZGrid
from repro.errors import GridError


class TestConstruction:
    def test_paper_sizes_listed(self):
        assert PAPER_GRID_SIZES == (65, 129, 257, 513)

    def test_default_box_is_diiid_scale(self):
        g = RZGrid(65, 65)
        assert g.rmin > 0.5 and g.rmax < 3.0

    @pytest.mark.parametrize("nw,nh", [(2, 5), (5, 2), (0, 0), (1, 1)])
    def test_too_small_rejected(self, nw, nh):
        with pytest.raises(GridError):
            RZGrid(nw, nh)

    def test_nonpositive_rmin_rejected(self):
        with pytest.raises(GridError):
            RZGrid(9, 9, rmin=0.0, rmax=1.0)
        with pytest.raises(GridError):
            RZGrid(9, 9, rmin=-1.0, rmax=1.0)

    def test_inverted_extents_rejected(self):
        with pytest.raises(GridError):
            RZGrid(9, 9, rmin=2.0, rmax=1.0)
        with pytest.raises(GridError):
            RZGrid(9, 9, zmin=1.0, zmax=-1.0)


class TestCoordinates:
    def test_axes_span_box(self):
        g = RZGrid(9, 11, rmin=1.0, rmax=2.0, zmin=-0.5, zmax=0.5)
        assert g.r[0] == 1.0 and g.r[-1] == 2.0
        assert g.z[0] == -0.5 and g.z[-1] == 0.5

    def test_spacing(self):
        g = RZGrid(11, 21, rmin=1.0, rmax=2.0, zmin=-1.0, zmax=1.0)
        assert g.dr == pytest.approx(0.1)
        assert g.dz == pytest.approx(0.1)
        assert g.cell_area == pytest.approx(0.01)

    def test_meshgrids_shape_and_content(self):
        g = RZGrid(5, 7)
        assert g.rr.shape == (5, 7) == g.zz.shape
        assert np.allclose(g.rr[:, 0], g.r)
        assert np.allclose(g.zz[0, :], g.z)

    def test_axes_uniform(self):
        g = RZGrid(33, 65)
        assert np.allclose(np.diff(g.r), g.dr)
        assert np.allclose(np.diff(g.z), g.dz)


class TestFlattening:
    def test_roundtrip(self, rng):
        g = RZGrid(7, 9)
        f = rng.normal(size=g.shape)
        assert np.array_equal(g.unflatten(g.flatten(f)), f)

    def test_fortran_convention(self):
        """kk = i*nh + j, as in the paper's kernel (0-based)."""
        g = RZGrid(4, 5)
        f = np.arange(20.0).reshape(4, 5)
        flat = g.flatten(f)
        for i in range(4):
            for j in range(5):
                assert flat[i * 5 + j] == f[i, j]
                assert g.flat_index(i, j) == i * 5 + j

    def test_flat_index_bounds(self):
        g = RZGrid(4, 5)
        with pytest.raises(GridError):
            g.flat_index(4, 0)
        with pytest.raises(GridError):
            g.flat_index(0, -1)

    def test_shape_mismatch_rejected(self):
        g = RZGrid(4, 5)
        with pytest.raises(GridError):
            g.flatten(np.zeros((5, 4)))
        with pytest.raises(GridError):
            g.unflatten(np.zeros(19))


class TestBoundary:
    def test_boundary_mask_count(self):
        g = RZGrid(6, 9)
        assert g.boundary_mask.sum() == g.n_boundary == 2 * 6 + 2 * 9 - 4

    def test_interior_slice_complement(self):
        g = RZGrid(6, 9)
        inner = np.zeros(g.shape, dtype=bool)
        inner[g.interior_slice()] = True
        assert not (inner & g.boundary_mask).any()
        assert (inner | g.boundary_mask).all()


class TestInterpolation:
    def test_bilinear_exact_on_nodes(self, rng):
        g = RZGrid(9, 11)
        f = rng.normal(size=g.shape)
        vals = g.bilinear(f, g.rr.ravel(), g.zz.ravel())
        assert np.allclose(vals, f.ravel())

    def test_bilinear_exact_for_bilinear_function(self):
        g = RZGrid(9, 11)
        f = 2.0 + 3.0 * g.rr - 1.5 * g.zz + 0.7 * g.rr * g.zz
        r = np.linspace(g.rmin, g.rmax, 40)
        z = np.linspace(g.zmin, g.zmax, 40)
        expected = 2.0 + 3.0 * r - 1.5 * z + 0.7 * r * z
        assert np.allclose(g.bilinear(f, r, z), expected)

    def test_bilinear_clamps_outside(self):
        g = RZGrid(5, 5)
        f = np.ones(g.shape)
        assert g.bilinear(f, g.rmax + 10.0, g.zmax + 10.0) == pytest.approx(1.0)

    def test_contains(self):
        g = RZGrid(5, 5, rmin=1.0, rmax=2.0, zmin=-1.0, zmax=1.0)
        assert bool(g.contains(1.5, 0.0))
        assert not bool(g.contains(0.5, 0.0))
        assert not bool(g.contains(1.5, 2.0))


class TestRefinement:
    def test_refined_doubling_matches_paper_sweep(self):
        g = RZGrid(65, 65)
        for expected in (129, 257, 513):
            g = g.refined(2)
            assert g.nw == g.nh == expected

    def test_refined_preserves_box(self):
        g = RZGrid(9, 9, rmin=1.0, rmax=2.0)
        r = g.refined(3)
        assert (r.rmin, r.rmax, r.zmin, r.zmax) == (1.0, 2.0, g.zmin, g.zmax)

    def test_refined_invalid_factor(self):
        with pytest.raises(GridError):
            RZGrid(9, 9).refined(0)

    @given(st.integers(min_value=3, max_value=40), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_refined_nodes_superset(self, n, factor):
        """Refinement keeps every coarse node on the fine mesh."""
        g = RZGrid(n, n)
        f = g.refined(factor)
        coarse_in_fine = f.r[::factor]
        assert np.allclose(coarse_in_fine, g.r)
