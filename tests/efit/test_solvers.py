"""Tests of the interior Grad-Shafranov solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.efit.grid import RZGrid
from repro.efit.operators import GradShafranovOperator
from repro.efit.solvers import (
    SOLVER_NAMES,
    ConjugateGradientSolver,
    DirectLUSolver,
    DSTSolver,
    make_solver,
)
from repro.efit.solvers.dst import thomas_multi_rhs
from repro.errors import SolverError


@pytest.fixture(scope="module", params=SOLVER_NAMES)
def any_solver(request):
    return make_solver(request.param, RZGrid(19, 33))


class TestFactory:
    def test_known_names(self):
        g = RZGrid(9, 9)
        assert isinstance(make_solver("direct", g), DirectLUSolver)
        assert isinstance(make_solver("dst", g), DSTSolver)
        assert isinstance(make_solver("cg", g), ConjugateGradientSolver)

    def test_unknown_name(self):
        with pytest.raises(SolverError):
            make_solver("multigrid", RZGrid(9, 9))


class TestSolovevExactness:
    """All solvers reproduce the Solov'ev equilibrium to round-off: the
    conservative stencil is exact on its polynomial family."""

    def test_exact(self, any_solver, solovev):
        g = any_solver.grid
        psi_exact = solovev.psi(g.rr, g.zz)
        rhs = solovev.delta_star(g.rr, g.zz)
        psi = any_solver.solve(rhs, psi_exact)
        assert np.abs(psi - psi_exact).max() < 1e-9 * np.abs(psi_exact).max() + 1e-12


class TestCrossAgreement:
    def test_all_solvers_agree_on_random_data(self, rng):
        g = RZGrid(14, 17)  # nh = 2^4 + 1: cyclic-reduction compatible
        rhs = rng.normal(size=g.shape)
        bdry = rng.normal(size=g.shape)
        sols = [make_solver(name, g).solve(rhs, bdry) for name in SOLVER_NAMES]
        for other in sols[1:]:
            assert np.allclose(sols[0], other, rtol=1e-8, atol=1e-10)

    def test_solution_satisfies_operator(self, any_solver, rng):
        g = any_solver.grid
        rhs = rng.normal(size=g.shape)
        bdry = rng.normal(size=g.shape)
        psi = any_solver.solve(rhs, bdry)
        op = GradShafranovOperator(g)
        res = op.residual(psi, rhs)
        scale = max(np.abs(rhs).max(), 1.0)
        assert np.abs(res[1:-1, 1:-1]).max() < 1e-7 * scale

    def test_boundary_values_preserved(self, any_solver, rng):
        g = any_solver.grid
        bdry = rng.normal(size=g.shape)
        psi = any_solver.solve(np.zeros(g.shape), bdry)
        assert np.array_equal(psi[0, :], bdry[0, :])
        assert np.array_equal(psi[-1, :], bdry[-1, :])
        assert np.array_equal(psi[:, 0], bdry[:, 0])
        assert np.array_equal(psi[:, -1], bdry[:, -1])


class TestLinearity:
    @given(st.floats(min_value=-5, max_value=5), st.floats(min_value=-5, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_superposition(self, a, b):
        g = RZGrid(11, 13)
        solver = make_solver("dst", g)
        rng = np.random.default_rng(7)
        rhs1, rhs2 = rng.normal(size=(2, *g.shape))
        zero = np.zeros(g.shape)
        combo = solver.solve(a * rhs1 + b * rhs2, zero)
        parts = a * solver.solve(rhs1, zero) + b * solver.solve(rhs2, zero)
        assert np.allclose(combo, parts, rtol=1e-9, atol=1e-9)


class TestMaximumPrinciple:
    def test_zero_rhs_bounded_by_boundary(self, any_solver, rng):
        """With no source, the solution obeys a discrete maximum principle."""
        g = any_solver.grid
        bdry = rng.normal(size=g.shape)
        psi = any_solver.solve(np.zeros(g.shape), bdry)
        edge = np.concatenate([bdry[0, :], bdry[-1, :], bdry[:, 0], bdry[:, -1]])
        assert psi.max() <= edge.max() + 1e-9
        assert psi.min() >= edge.min() - 1e-9


class TestThomas:
    def test_against_dense_solve(self, rng):
        n, m = 12, 5
        lower = rng.normal(size=n)
        upper = rng.normal(size=n)
        diag = rng.normal(size=(n, m)) + 6.0  # diagonally dominant
        rhs = rng.normal(size=(n, m))
        x = thomas_multi_rhs(lower, diag, upper, rhs)
        for k in range(m):
            mat = np.diag(diag[:, k]) + np.diag(upper[:-1], 1) + np.diag(lower[1:], -1)
            assert np.allclose(mat @ x[:, k], rhs[:, k], atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            thomas_multi_rhs(np.zeros(3), np.ones((3, 2)), np.zeros(4), np.ones((3, 2)))


class TestNonSquare:
    @pytest.mark.parametrize("name", SOLVER_NAMES)
    def test_rectangular_grids(self, name, solovev):
        g = RZGrid(13, 33)
        solver = make_solver(name, g)
        psi_exact = solovev.psi(g.rr, g.zz)
        psi = solver.solve(solovev.delta_star(g.rr, g.zz), psi_exact)
        assert np.abs(psi - psi_exact).max() < 1e-8

    def test_shape_mismatch_rejected(self, any_solver):
        with pytest.raises(Exception):
            any_solver.solve(np.zeros((3, 3)), np.zeros((3, 3)))
