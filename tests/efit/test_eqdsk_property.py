"""Property-based round-trip testing of the g-EQDSK format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.efit.eqdsk import GEqdsk, read_geqdsk, write_geqdsk

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def profile_arrays(nw):
    return hnp.arrays(np.float64, (nw,), elements=finite)


@st.composite
def geqdsk_records(draw):
    nw = draw(st.integers(min_value=3, max_value=12))
    nh = draw(st.integers(min_value=3, max_value=12))
    nb = draw(st.integers(min_value=0, max_value=10))
    nl = draw(st.integers(min_value=0, max_value=6))
    return GEqdsk(
        description=draw(st.text(alphabet="abcXYZ 0123#", max_size=40)),
        nw=nw,
        nh=nh,
        rdim=draw(finite),
        zdim=draw(finite),
        rcentr=draw(finite),
        rleft=draw(finite),
        zmid=draw(finite),
        rmaxis=draw(finite),
        zmaxis=draw(finite),
        simag=draw(finite),
        sibry=draw(finite),
        bcentr=draw(finite),
        current=draw(finite),
        fpol=draw(profile_arrays(nw)),
        pres=draw(profile_arrays(nw)),
        ffprim=draw(profile_arrays(nw)),
        pprime=draw(profile_arrays(nw)),
        psirz=draw(hnp.arrays(np.float64, (nw, nh), elements=finite)),
        qpsi=draw(profile_arrays(nw)),
        rbbbs=draw(hnp.arrays(np.float64, (nb,), elements=finite)),
        zbbbs=draw(hnp.arrays(np.float64, (nb,), elements=finite)),
        rlim=draw(hnp.arrays(np.float64, (nl,), elements=finite)),
        zlim=draw(hnp.arrays(np.float64, (nl,), elements=finite)),
    )


@given(geqdsk_records())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_everything(tmp_path_factory, eq):
    path = tmp_path_factory.mktemp("eqdsk") / "g.prop"
    write_geqdsk(eq, path)
    back = read_geqdsk(path)
    assert back.nw == eq.nw and back.nh == eq.nh
    for name in ("rdim", "zdim", "rcentr", "rleft", "zmid", "rmaxis",
                 "zmaxis", "simag", "sibry", "bcentr", "current"):
        assert getattr(back, name) == pytest.approx(getattr(eq, name), rel=1e-8, abs=1e-12)
    for name in ("fpol", "pres", "ffprim", "pprime", "qpsi", "psirz",
                 "rbbbs", "zbbbs", "rlim", "zlim"):
        a, b = getattr(eq, name), getattr(back, name)
        assert a.shape == b.shape
        assert np.allclose(a, b, rtol=1e-8, atol=1e-12)
