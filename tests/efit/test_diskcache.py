"""The on-disk table cache's write path: atomicity, races, cleanup.

The original temp-file name was keyed on the pid alone, so two threads
of one process (concurrent serve sessions, batch workers) storing the
same artefact could interleave writes into a single temp file and
publish a torn ``.npz``.  These tests pin the per-call unique suffix and
the no-stray-temp-files guarantee on every exit path.
"""

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.efit import diskcache
from repro.efit.diskcache import _load_npz, _store_npz


class TestStoreNpz:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "entry.npz"
        arrays = {"a": np.arange(6.0).reshape(2, 3), "b": np.ones(4)}
        assert _store_npz(path, arrays)
        loaded = _load_npz(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_disabled_path_is_noop(self):
        assert not _store_npz(None, {"a": np.ones(2)})

    def test_temp_names_unique_per_call(self, tmp_path, monkeypatch):
        """Two stores of the same target must never share a temp file —
        the pid alone is not a safe key within one process."""
        seen = []
        real_replace = os.replace

        def recording_replace(src, dst):
            seen.append(str(src))
            real_replace(src, dst)

        monkeypatch.setattr(diskcache.os, "replace", recording_replace)
        path = tmp_path / "entry.npz"
        assert _store_npz(path, {"a": np.ones(2)})
        assert _store_npz(path, {"a": np.zeros(2)})
        assert len(seen) == 2 and seen[0] != seen[1]
        assert all(f".tmp{os.getpid()}-" in name for name in seen)

    def test_concurrent_writers_same_target(self, tmp_path):
        """Hammer one target from a thread pool: every write succeeds,
        the survivor is a coherent payload, and no temp files remain."""
        path = tmp_path / "entry.npz"

        def store(k: int) -> bool:
            return _store_npz(path, {"a": np.full(64, float(k))})

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(store, range(32)))
        assert all(results)
        final = _load_npz(path)
        value = final["a"]
        assert np.all(value == value[0]) and 0 <= value[0] < 32
        assert [p.name for p in tmp_path.iterdir()] == ["entry.npz"]

    def test_oserror_is_failsoft(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        assert not _store_npz(blocker / "entry.npz", {"a": np.ones(2)})

    def test_non_oserror_propagates_without_stray_tmp(self, tmp_path):
        """A bad payload is a caller bug, not a fail-soft case — the
        exception propagates, but the torn temp file is removed."""

        class Evil:
            def __array__(self, dtype=None, copy=None):
                raise ValueError("cannot serialise")

        path = tmp_path / "entry.npz"
        with pytest.raises(ValueError, match="cannot serialise"):
            _store_npz(path, {"a": Evil()})
        assert list(tmp_path.iterdir()) == []


class TestCachePaths:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(diskcache.CACHE_DIR_ENV, raising=False)
        assert diskcache.cache_dir() is None

    def test_table_roundtrip_via_env(self, tmp_path, monkeypatch, grid33):
        from repro.efit.tables import cached_boundary_tables

        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
        tables = cached_boundary_tables(grid33)
        assert diskcache.store_tables(tables)
        loaded = diskcache.load_tables(grid33)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.gpc, tables.gpc)
