"""Tests of the magnetic-axis and plasma-boundary search (steps_)."""

import numpy as np
import pytest

from repro.efit.boundary import find_axis, find_boundary, find_xpoints
from repro.efit.grid import RZGrid
from repro.efit.machine import Limiter
from repro.errors import BoundaryError


@pytest.fixture(scope="module")
def grid():
    return RZGrid(41, 49, rmin=0.9, rmax=2.5, zmin=-1.5, zmax=1.5)


@pytest.fixture(scope="module")
def wide_limiter():
    theta = np.linspace(0, 2 * np.pi, 48, endpoint=False)
    return Limiter(1.7 + 0.65 * np.cos(theta), 1.1 * np.sin(theta))


def gaussian_psi(grid, r0=1.7, z0=0.0, amp=1.0, width=0.35):
    return amp * np.exp(-((grid.rr - r0) ** 2 + (grid.zz - z0) ** 2) / (2 * width**2))


class TestAxis:
    def test_finds_gaussian_peak(self, grid, wide_limiter):
        psi = gaussian_psi(grid, r0=1.72, z0=0.13)
        r, z, val = find_axis(grid, psi, wide_limiter)
        assert r == pytest.approx(1.72, abs=grid.dr / 2)
        assert z == pytest.approx(0.13, abs=grid.dz / 2)
        assert val == pytest.approx(1.0, abs=1e-2)

    def test_subgrid_refinement_beats_node_resolution(self, grid, wide_limiter):
        """The quadratic refinement localises the peak to << one cell."""
        r0 = grid.r[20] + 0.37 * grid.dr
        psi = gaussian_psi(grid, r0=r0, z0=0.0, width=0.5)
        r, _, _ = find_axis(grid, psi, wide_limiter)
        assert abs(r - r0) < 0.15 * grid.dr

    def test_negative_current_convention(self, grid, wide_limiter):
        psi = -gaussian_psi(grid)
        r, z, val = find_axis(grid, psi, wide_limiter, sign=-1)
        assert val == pytest.approx(-1.0, abs=1e-2)

    def test_extremum_outside_limiter_ignored(self, grid):
        theta = np.linspace(0, 2 * np.pi, 24, endpoint=False)
        small = Limiter(1.3 + 0.15 * np.cos(theta), 0.15 * np.sin(theta))
        psi = gaussian_psi(grid, r0=2.2, z0=1.0) + 0.3 * gaussian_psi(grid, r0=1.3, z0=0.0)
        r, z, _ = find_axis(grid, psi, small)
        assert abs(r - 1.3) < 0.1 and abs(z) < 0.1

    def test_invalid_sign(self, grid, wide_limiter):
        with pytest.raises(BoundaryError):
            find_axis(grid, gaussian_psi(grid), wide_limiter, sign=2)

    def test_disjoint_limiter(self, grid):
        far = Limiter(np.array([10.0, 11.0, 10.5]), np.array([0.0, 0.0, 1.0]))
        with pytest.raises(BoundaryError):
            find_axis(grid, gaussian_psi(grid), far)


class TestXpoints:
    def test_finds_saddle_of_two_blobs(self, grid):
        """Two stacked Gaussians create a saddle between them."""
        psi = gaussian_psi(grid, z0=0.6) + gaussian_psi(grid, z0=-0.6)
        xs = find_xpoints(grid, psi, max_points=4)
        assert any(abs(r - 1.7) < 0.1 and abs(z) < 0.1 for r, z, _ in xs)

    def test_pure_peak_has_no_interior_saddle(self, grid):
        xs = find_xpoints(grid, gaussian_psi(grid, width=0.6), max_points=2)
        # No candidate should sit near the peak itself.
        assert all((r - 1.7) ** 2 + z**2 > 0.3**2 for r, z, _ in xs)


class TestBoundary:
    def test_limited_plasma(self, grid, wide_limiter):
        psi = gaussian_psi(grid, width=0.6)
        res = find_boundary(grid, psi, wide_limiter)
        assert res.boundary_type == "limiter"
        assert res.psi_axis > res.psi_boundary
        # psiN is 0 at the axis, grows outward.
        assert res.psin.min() == pytest.approx(0.0, abs=0.01)

    def test_mask_inside_limiter(self, grid, wide_limiter):
        psi = gaussian_psi(grid, width=0.6)
        res = find_boundary(grid, psi, wide_limiter)
        inside = wide_limiter.contains(grid.rr, grid.zz)
        assert not (res.mask & ~inside).any()
        assert res.plasma_volume_cells > 50

    def test_mask_connected_to_axis(self, grid, wide_limiter):
        """A second flux blob outside the limiter must not enter the mask."""
        psi = gaussian_psi(grid, width=0.5) + 0.9 * gaussian_psi(grid, r0=2.4, z0=1.3, width=0.2)
        res = find_boundary(grid, psi, wide_limiter)
        # cells near the corner blob excluded
        corner = (grid.rr > 2.3) & (grid.zz > 1.2)
        assert not (res.mask & corner).any()

    def test_diverted_plasma_detects_xpoint(self, grid, wide_limiter):
        """Main blob plus a mirror blob below creates a lower X-point; the
        boundary should switch to xpoint type when the saddle flux exceeds
        the limiter flux."""
        psi = gaussian_psi(grid, z0=0.25, width=0.5) + 0.85 * gaussian_psi(
            grid, z0=-1.05, width=0.4
        )
        res = find_boundary(grid, psi, wide_limiter)
        if res.boundary_type == "xpoint":
            assert res.r_xpoint is not None
            assert res.psi_boundary < res.psi_axis
        else:  # geometry-dependent; at minimum the search must succeed
            assert res.boundary_type == "limiter"

    def test_psin_normalisation(self, grid, wide_limiter):
        psi = gaussian_psi(grid, width=0.6)
        res = find_boundary(grid, psi, wide_limiter)
        # At the boundary flux value, psin == 1 by construction.
        psin_at_b = (res.psi_boundary - res.psi_axis) / (res.psi_boundary - res.psi_axis)
        assert psin_at_b == 1.0
        assert (res.psin[res.mask] < 1.0).all()

    def test_shape_mismatch(self, grid, wide_limiter):
        with pytest.raises(BoundaryError):
            find_boundary(grid, np.zeros((3, 3)), wide_limiter)

    def test_flat_field_rejected(self, grid, wide_limiter):
        with pytest.raises(BoundaryError):
            find_boundary(grid, np.zeros(grid.shape), wide_limiter)

    def test_truth_boundary_on_shot(self, shot33):
        """The converged synthetic shot has a well-formed boundary."""
        b = shot33.truth.boundary
        assert b.boundary_type in ("limiter", "xpoint")
        assert abs(b.z_axis) < 0.05
        assert 1.4 < b.r_axis < 2.0
        assert b.plasma_volume_cells > 100
