"""Tests of g-EQDSK file I/O."""

import numpy as np
import pytest

from repro.efit.eqdsk import GEqdsk, read_geqdsk, write_geqdsk
from repro.errors import EqdskError


@pytest.fixture()
def sample(rng):
    nw, nh = 9, 7
    return GEqdsk(
        description="repro test equilibrium  #186610  2400ms",
        nw=nw,
        nh=nh,
        rdim=1.7,
        zdim=3.2,
        rcentr=1.6955,
        rleft=0.84,
        zmid=0.0,
        rmaxis=1.69,
        zmaxis=0.01,
        simag=0.51,
        sibry=0.12,
        bcentr=2.0,
        current=1.0e6,
        fpol=rng.normal(size=nw),
        pres=np.abs(rng.normal(size=nw)),
        ffprim=rng.normal(size=nw),
        pprime=rng.normal(size=nw),
        psirz=rng.normal(size=(nw, nh)),
        qpsi=np.linspace(1.0, 4.0, nw),
        rbbbs=np.linspace(1.0, 2.0, 12),
        zbbbs=np.linspace(-1.0, 1.0, 12),
        rlim=np.linspace(1.0, 2.3, 8),
        zlim=np.linspace(-1.2, 1.2, 8),
    )


class TestRoundTrip:
    def test_all_fields_preserved(self, sample, tmp_path):
        path = tmp_path / "g186610.02400"
        write_geqdsk(sample, path)
        back = read_geqdsk(path)
        assert back.nw == sample.nw and back.nh == sample.nh
        for name in ("rdim", "zdim", "rcentr", "rleft", "zmid", "rmaxis",
                     "zmaxis", "simag", "sibry", "bcentr", "current"):
            assert getattr(back, name) == pytest.approx(getattr(sample, name), rel=1e-9)
        for name in ("fpol", "pres", "ffprim", "pprime", "qpsi", "psirz",
                     "rbbbs", "zbbbs", "rlim", "zlim"):
            assert np.allclose(getattr(back, name), getattr(sample, name), rtol=1e-8)

    def test_description_preserved(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_geqdsk(sample, path)
        assert "186610" in read_geqdsk(path).description

    def test_file_is_five_columns(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_geqdsk(sample, path)
        body = path.read_text().splitlines()[1:]
        numeric = [ln for ln in body if "E" in ln]
        assert all(len(ln) <= 5 * 16 for ln in numeric)

    def test_psirz_orientation(self, sample, tmp_path):
        """psirz must come back (nw, nh), written Z-fastest."""
        path = tmp_path / "g.txt"
        write_geqdsk(sample, path)
        back = read_geqdsk(path)
        assert back.psirz.shape == (sample.nw, sample.nh)
        assert back.psirz[3, 2] == pytest.approx(sample.psirz[3, 2], rel=1e-8)


class TestValidation:
    def test_profile_length_checked(self, sample):
        with pytest.raises(EqdskError):
            GEqdsk(**{**sample.__dict__, "fpol": np.zeros(3)})

    def test_psirz_shape_checked(self, sample):
        with pytest.raises(EqdskError):
            GEqdsk(**{**sample.__dict__, "psirz": np.zeros((3, 3))})

    def test_boundary_length_mismatch(self, sample):
        with pytest.raises(EqdskError):
            GEqdsk(**{**sample.__dict__, "rbbbs": np.zeros(5), "zbbbs": np.zeros(4)})

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty"
        p.write_text("")
        with pytest.raises(EqdskError):
            read_geqdsk(p)

    def test_truncated_file_rejected(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        write_geqdsk(sample, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(EqdskError):
            read_geqdsk(path)

    def test_malformed_header(self, tmp_path):
        p = tmp_path / "g.bad"
        p.write_text("not a header line\n")
        with pytest.raises(EqdskError):
            read_geqdsk(p)
