"""Tests of current_ (current distribution) and green_ (response/LSQ)."""

import numpy as np
import pytest

from repro.efit.basis import PolynomialBasis
from repro.efit.current import basis_current_matrix, distribute_current
from repro.efit.grid import RZGrid
from repro.efit.response import (
    ResponseAssembly,
    assemble_response,
    chi_squared,
    solve_weighted_lsq,
)
from repro.errors import FittingError
from repro.utils.constants import MU0


@pytest.fixture(scope="module")
def setup():
    g = RZGrid(21, 25)
    rng = np.random.default_rng(3)
    psin = np.clip(((g.rr - 1.7) ** 2 + g.zz**2) / 0.5, 0, 2)
    mask = psin < 1.0
    return g, psin, mask, rng


class TestCurrentMatrix:
    def test_shape_and_mask(self, setup):
        g, psin, mask, _ = setup
        pp, ffp = PolynomialBasis(2), PolynomialBasis(3)
        jm = basis_current_matrix(g, psin, mask, pp, ffp)
        assert jm.shape == (g.size, 5)
        outside = ~g.flatten(mask.astype(bool))
        assert np.allclose(jm[outside], 0.0)

    def test_pp_column_formula(self, setup):
        g, psin, mask, _ = setup
        pp, ffp = PolynomialBasis(2), PolynomialBasis(2)
        jm = basis_current_matrix(g, psin, mask, pp, ffp)
        i, j = 10, 12
        assert mask[i, j]
        k = g.flat_index(i, j)
        x = np.clip(psin[i, j], 0, 1)
        # column 1: R * x * dA
        assert jm[k, 1] == pytest.approx(g.r[i] * x * g.cell_area)
        # column 2 (first FF'): dA / (mu0 R)
        assert jm[k, 2] == pytest.approx(g.cell_area / (MU0 * g.r[i]))

    def test_distribute_current_totals(self, setup):
        g, psin, mask, _ = setup
        pp, ffp = PolynomialBasis(2), PolynomialBasis(2)
        coeffs = np.array([1e5, -0.5e5, 0.8, -0.6])
        pcurr, jphi = distribute_current(g, psin, mask, pp, ffp, coeffs)
        assert pcurr.shape == g.shape
        assert np.allclose(pcurr / g.cell_area, jphi)
        assert pcurr[~mask].sum() == 0.0

    def test_coefficient_length_validated(self, setup):
        g, psin, mask, _ = setup
        with pytest.raises(FittingError):
            distribute_current(g, psin, mask, PolynomialBasis(2), PolynomialBasis(2), np.ones(3))

    def test_shape_validated(self, setup):
        g, psin, mask, _ = setup
        with pytest.raises(FittingError):
            basis_current_matrix(g, psin[:5], mask, PolynomialBasis(2), PolynomialBasis(2))


class TestAssembly:
    def _make(self, setup, noise=0.0):
        g, psin, mask, rng = setup
        pp, ffp = PolynomialBasis(2), PolynomialBasis(2)
        jm = basis_current_matrix(g, psin, mask, pp, ffp)
        n_meas, n_coils = 30, 4
        grid_resp = rng.normal(size=(n_meas, g.size))
        coil_resp = rng.normal(size=(n_meas, n_coils))
        coil_i = rng.normal(size=n_coils) * 1e3
        truth = np.array([2e5, -1e5, 1.0, -0.7])
        data = grid_resp @ (jm @ truth) + coil_resp @ coil_i
        sigma = np.full(n_meas, max(np.abs(data).max() * 1e-4, 1e-12))
        if noise:
            data = data + rng.normal(0.0, noise * np.abs(data).max(), n_meas)
        asm = assemble_response(grid_resp, jm, coil_resp, coil_i, data, sigma)
        return asm, truth

    def test_recovers_exact_coefficients(self, setup):
        asm, truth = self._make(setup)
        c = solve_weighted_lsq(asm)
        assert np.allclose(c, truth, rtol=1e-6)
        assert chi_squared(asm, c) < 1e-10 * chi_squared(asm, np.zeros_like(c))

    def test_ridge_does_not_crush_weak_columns(self, setup):
        """Regression test for the column-scaling bug: p' coefficients are
        ~1e5 while FF' are ~1; the equilibrated ridge must not bias them."""
        asm, truth = self._make(setup)
        c = solve_weighted_lsq(asm, ridge=1e-10)
        assert np.allclose(c, truth, rtol=1e-4)

    def test_lsq_never_beats_truth_by_construction(self, setup):
        asm, truth = self._make(setup, noise=1e-3)
        c = solve_weighted_lsq(asm)
        assert chi_squared(asm, c) <= chi_squared(asm, truth) * (1 + 1e-9)

    def test_weights_influence_solution(self, setup):
        asm, truth = self._make(setup, noise=5e-2)
        # Up-weight the first half of the measurements heavily.
        w = asm.weights.copy()
        w[: w.size // 2] *= 100.0
        asm2 = ResponseAssembly(asm.matrix, asm.data, w)
        c1 = solve_weighted_lsq(asm)
        c2 = solve_weighted_lsq(asm2)
        assert not np.allclose(c1, c2)

    def test_negative_ridge_rejected(self, setup):
        asm, _ = self._make(setup)
        with pytest.raises(FittingError):
            solve_weighted_lsq(asm, ridge=-1.0)

    def test_dimension_validation(self, setup):
        g, psin, mask, rng = setup
        jm = basis_current_matrix(g, psin, mask, PolynomialBasis(2), PolynomialBasis(2))
        grid_resp = rng.normal(size=(10, g.size))
        with pytest.raises(FittingError):
            assemble_response(grid_resp, jm[:-1], np.zeros((10, 2)), np.zeros(2), np.zeros(10), np.ones(10))
        with pytest.raises(FittingError):
            assemble_response(grid_resp, jm, np.zeros((10, 2)), np.zeros(2), np.zeros(9), np.ones(9))
        with pytest.raises(FittingError):
            assemble_response(grid_resp, jm, np.zeros((10, 2)), np.zeros(2), np.zeros(10), np.zeros(10))

    def test_assembly_validation(self):
        with pytest.raises(FittingError):
            ResponseAssembly(np.zeros((4, 2)), np.zeros(3), np.ones(4))
        with pytest.raises(FittingError):
            ResponseAssembly(np.zeros((4, 2)), np.zeros(4), -np.ones(4))
