"""Tests specific to the Buneman cyclic-reduction solver."""

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.solvers import make_solver
from repro.efit.solvers.cyclic import CyclicReductionSolver, _is_pow2_minus_1
from repro.errors import SolverError


class TestGridConstraint:
    @pytest.mark.parametrize("nh", [5, 9, 17, 33, 65])
    def test_accepts_power_of_two_plus_one(self, nh):
        CyclicReductionSolver(RZGrid(11, nh))

    @pytest.mark.parametrize("nh", [7, 10, 20, 31, 64, 100])
    def test_rejects_other_sizes(self, nh):
        with pytest.raises(SolverError):
            CyclicReductionSolver(RZGrid(11, nh))

    def test_paper_grids_all_qualify(self):
        """65, 129, 257, 513 = 2^k + 1: why EFIT picked these sizes."""
        for n in (65, 129, 257, 513):
            assert _is_pow2_minus_1(n - 2)

    def test_nw_unconstrained(self):
        CyclicReductionSolver(RZGrid(23, 17))
        CyclicReductionSolver(RZGrid(6, 17))


class TestAccuracy:
    @pytest.mark.parametrize("nh", [9, 33, 65, 129])
    def test_matches_direct_solver_to_roundoff(self, nh, rng):
        """The Buneman recurrences keep errors at machine precision — the
        plain cyclic-reduction RHS recursion loses ~8 digits by nh=65."""
        g = RZGrid(21, nh)
        rhs = rng.normal(size=g.shape)
        bdry = rng.normal(size=g.shape)
        cr = CyclicReductionSolver(g).solve(rhs, bdry)
        lu = make_solver("direct", g).solve(rhs, bdry)
        assert np.abs(cr - lu).max() < 1e-11

    def test_solovev_exact(self, solovev):
        g = RZGrid(33, 65)
        psi_exact = solovev.psi(g.rr, g.zz)
        psi = CyclicReductionSolver(g).solve(solovev.delta_star(g.rr, g.zz), psi_exact)
        assert np.abs(psi - psi_exact).max() < 1e-10

    def test_levels_count(self):
        s = CyclicReductionSolver(RZGrid(11, 65))
        assert s.k == 6 and s.m == 63

    def test_root_shifts_keep_factors_nonsingular(self):
        """Every shifted tridiagonal (T - t_i I) must be solvable: T has
        negative diagonal and t_i in (-2c, 2c)."""
        s = CyclicReductionSolver(RZGrid(11, 33))
        for r in range(s.k):
            shifts = s._shifts(r)
            assert np.all(np.abs(shifts) < 2.0 * s.c)
            # spot-check invertibility via a solve on random data
            b = np.random.default_rng(r).normal(size=s._ni)
            x = s._solve_a(r, b)
            assert np.all(np.isfinite(x))

    def test_usable_in_pflux(self, rng):
        """Drop-in behind pflux_ like every other solver."""
        from repro.efit.pflux import PfluxVectorized
        from repro.efit.tables import cached_boundary_tables

        g = RZGrid(17, 17)
        tables = cached_boundary_tables(g)
        pc = rng.normal(size=g.shape)
        a = PfluxVectorized(g, tables, make_solver("cyclic", g)).compute(pc)
        b = PfluxVectorized(g, tables, make_solver("dst", g)).compute(pc)
        assert np.allclose(a, b, rtol=1e-10)
