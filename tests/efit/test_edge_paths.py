"""Edge-path coverage: negative current, open surfaces, solver limits."""

import numpy as np
import pytest

from repro.efit.basis import PolynomialBasis
from repro.efit.contours import trace_flux_surface
from repro.efit.diagnostics import DiagnosticSet
from repro.efit.fitting import EfitSolver
from repro.efit.forward import solve_forward
from repro.efit.grid import RZGrid
from repro.efit.machine import diiid_like_machine
from repro.efit.measurements import _measure
from repro.efit.profiles import ProfileCoefficients
from repro.efit.solvers.iterative import ConjugateGradientSolver
from repro.errors import BoundaryError, ConvergenceError


class TestNegativeCurrent:
    """Reversed-Ip discharges flip every sign convention: psi has a
    *minimum* on axis and the boundary search runs with sign=-1."""

    @pytest.fixture(scope="class")
    def neg_shot(self):
        m = diiid_like_machine()
        g = m.make_grid(33)
        profiles = ProfileCoefficients(
            PolynomialBasis(2),
            PolynomialBasis(2),
            alpha=-np.array([2.0e5, -1.8e5]),
            beta=-np.array([0.55, -0.45]),
        )
        eq = solve_forward(m, g, profiles, ip=-1.0e6)
        d = DiagnosticSet.for_machine(m)
        meas = _measure(m, d, g, eq, noise=1e-3, seed=5)
        return m, g, d, eq, meas

    def test_forward_converges(self, neg_shot):
        _, _, _, eq, _ = neg_shot
        assert eq.ip == pytest.approx(-1.0e6, rel=1e-9)
        assert eq.boundary.psi_axis < eq.boundary.psi_boundary  # minimum on axis

    def test_reconstruction_recovers(self, neg_shot):
        m, g, d, eq, meas = neg_shot
        res = EfitSolver(m, d, g).fit(meas)
        assert res.converged
        assert res.ip == pytest.approx(-1.0e6, rel=5e-3)
        err = np.abs(res.psi - eq.psi).max() / np.ptp(eq.psi)
        assert err < 5e-3

    def test_psin_still_normalised(self, neg_shot):
        _, _, _, eq, _ = neg_shot
        assert eq.boundary.psin.min() == pytest.approx(0.0, abs=0.02)
        assert (eq.boundary.psin[eq.boundary.mask] < 1.0).all()

    def test_surfaces_traceable(self, neg_shot):
        _, g, _, eq, _ = neg_shot
        surf = trace_flux_surface(g, eq.boundary, 0.5)
        assert surf.area > 0


class TestOpenSurface:
    def test_unbracketed_level_raises(self, shot33):
        """Asking for a surface outside the plasma (a psiN the rays never
        reach before the box edge in some direction) must raise, not loop."""
        b = shot33.truth.boundary
        # Construct a pathological psin: cap it below 0.5 so level 0.9
        # never brackets.
        import dataclasses

        capped = dataclasses.replace(b, psin=np.minimum(b.psin, 0.45))
        with pytest.raises(BoundaryError):
            trace_flux_surface(shot33.grid, capped, 0.9)


class TestSolverLimits:
    def test_cg_iteration_cap_raises(self, rng):
        g = RZGrid(21, 21)
        solver = ConjugateGradientSolver(g, maxiter=2)
        with pytest.raises(ConvergenceError):
            solver.solve(rng.normal(size=g.shape), rng.normal(size=g.shape))

    def test_forward_max_iters_raises(self):
        m = diiid_like_machine()
        g = m.make_grid(33)
        profiles = ProfileCoefficients(
            PolynomialBasis(2), PolynomialBasis(2),
            np.array([2.0e5, -1.8e5]), np.array([0.55, -0.45]),
        )
        with pytest.raises(ConvergenceError):
            solve_forward(m, g, profiles, max_iters=2)


class TestTablesChunking:
    def test_chunked_build_matches(self, grid_rect, tables_rect):
        from repro.efit.tables import build_boundary_tables

        rebuilt = build_boundary_tables(grid_rect, chunk=3)
        assert np.array_equal(rebuilt.gpc, tables_rect.gpc)
