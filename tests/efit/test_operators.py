"""Tests of the discrete Delta* operator."""

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.operators import GradShafranovOperator
from repro.errors import GridError


@pytest.fixture(scope="module")
def op():
    return GradShafranovOperator(RZGrid(25, 31))


class TestNullSpace:
    """Delta* annihilates 1, Z, R^2, R^4-4R^2Z^2 and ZR^2 exactly; the
    conservative stencil preserves this discretely."""

    @pytest.mark.parametrize(
        "name",
        ["one", "z", "r2", "quartic", "zr2"],
    )
    def test_annihilated(self, op, name):
        g = op.grid
        fields = {
            "one": np.ones(g.shape),
            "z": g.zz,
            "r2": g.rr**2,
            "quartic": g.rr**4 - 4.0 * g.rr**2 * g.zz**2,
            "zr2": g.zz * g.rr**2,
        }
        res = op.apply(fields[name])
        scale = max(np.abs(fields[name]).max(), 1.0)
        assert np.abs(res[1:-1, 1:-1]).max() < 1e-10 * scale


class TestExactness:
    def test_r4_term(self, op):
        """Delta*(R^4/8) = R^2 — exact for the conservative stencil."""
        g = op.grid
        res = op.apply(g.rr**4 / 8.0)
        assert np.allclose(res[1:-1, 1:-1], g.rr[1:-1, 1:-1] ** 2, rtol=1e-10)

    def test_z2_term(self, op):
        """Delta*(Z^2/2) = 1 — exact."""
        res = op.apply(op.grid.zz**2 / 2.0)
        assert np.allclose(res[1:-1, 1:-1], 1.0)

    def test_solovev_rhs(self, op, solovev):
        g = op.grid
        res = op.apply(solovev.psi(g.rr, g.zz))
        expected = solovev.delta_star(g.rr, g.zz)
        assert np.allclose(res[1:-1, 1:-1], expected[1:-1, 1:-1], rtol=1e-8)


class TestConvergenceOrder:
    def test_second_order_on_smooth_field(self):
        """Truncation error drops ~4x per mesh doubling on sin/cos data."""
        errors = []
        for n in (17, 33, 65):
            g = RZGrid(n, n)
            op = GradShafranovOperator(g)
            psi = np.sin(2.0 * g.rr) * np.cos(1.5 * g.zz)
            # Analytic Delta* of the test function.
            ds = (
                -4.0 * np.sin(2.0 * g.rr)
                - 2.0 * np.cos(2.0 * g.rr) / g.rr
                - 2.25 * np.sin(2.0 * g.rr)
            ) * np.cos(1.5 * g.zz)
            err = np.abs(op.apply(psi) - ds)[1:-1, 1:-1].max()
            errors.append(err)
        assert errors[0] / errors[1] > 3.4
        assert errors[1] / errors[2] > 3.4


class TestMatrixForm:
    def test_matrix_matches_matrix_free(self, rng):
        g = RZGrid(9, 12)
        op = GradShafranovOperator(g)
        psi = rng.normal(size=g.shape)
        psi_zero_edge = psi.copy()
        psi_zero_edge[0, :] = psi_zero_edge[-1, :] = 0.0
        psi_zero_edge[:, 0] = psi_zero_edge[:, -1] = 0.0
        interior = psi_zero_edge[1:-1, 1:-1].reshape(-1)
        via_matrix = op.interior_matrix @ interior
        via_apply = op.apply(psi_zero_edge)[1:-1, 1:-1].reshape(-1)
        assert np.allclose(via_matrix, via_apply, rtol=1e-12, atol=1e-12)

    def test_dirichlet_correction_consistency(self, rng):
        """A @ x_int + correction == apply(x) on the interior for any x."""
        g = RZGrid(8, 10)
        op = GradShafranovOperator(g)
        psi = rng.normal(size=g.shape)
        interior = psi[1:-1, 1:-1].reshape(-1)
        corr = op.dirichlet_rhs_correction(psi)
        full = op.apply(psi)[1:-1, 1:-1].reshape(-1)
        assert np.allclose(op.interior_matrix @ interior + corr, full, atol=1e-10)

    def test_matrix_diagonal_negative(self, op):
        assert (op.interior_matrix.diagonal() < 0).all()

    def test_weighted_symmetry(self):
        """diag(1/R) A is symmetric — the property CG relies on."""
        g = RZGrid(7, 8)
        op = GradShafranovOperator(g)
        import scipy.sparse as sp

        r_int = np.repeat(g.r[1:-1], g.nh - 2)
        w = sp.diags(1.0 / r_int)
        m = (w @ op.interior_matrix).toarray()
        assert np.allclose(m, m.T, atol=1e-14)


class TestValidation:
    def test_shape_mismatch(self, op):
        with pytest.raises(GridError):
            op.apply(np.zeros((3, 3)))
        with pytest.raises(GridError):
            op.residual(np.zeros(op.grid.shape), np.zeros((3, 3)))

    def test_residual_zero_for_consistent_pair(self, op, solovev):
        g = op.grid
        psi = solovev.psi(g.rr, g.zz)
        rhs = solovev.delta_star(g.rr, g.zz)
        res = op.residual(psi, rhs)
        assert np.abs(res[1:-1, 1:-1]).max() < 1e-8
