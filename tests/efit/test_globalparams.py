"""Tests of the global parameters (beta_p, li, stored energy)."""

import numpy as np
import pytest

from repro.efit.globalparams import compute_global_parameters
from repro.efit.measurements import synthetic_shot_186610
from repro.efit.profiles import ProfileCoefficients
from repro.errors import BoundaryError


@pytest.fixture(scope="module")
def eq65():
    shot = synthetic_shot_186610(65)
    return shot, shot.truth


class TestPlausibility:
    def test_diiid_scale_values(self, eq65):
        shot, tr = eq65
        g = compute_global_parameters(shot.grid, tr.psi, tr.boundary, tr.profiles, tr.ip)
        assert 0.1 < g.beta_poloidal < 2.0
        assert 0.3 < g.internal_inductance < 2.0
        assert 5.0 < g.volume_m3 < 30.0  # DIII-D plasma ~ 17 m^3
        assert 1e4 < g.stored_energy_joules < 1e7
        assert 3.0 < g.lcfs_perimeter_m < 8.0

    def test_pressure_positive(self, eq65):
        shot, tr = eq65
        g = compute_global_parameters(shot.grid, tr.psi, tr.boundary, tr.profiles, tr.ip)
        assert g.average_pressure_pa > 0
        assert g.bp_average_tesla > 0


class TestScalings:
    def test_betap_linear_in_pressure(self, eq65):
        """At fixed fields, scaling p' scales beta_p and W linearly."""
        shot, tr = eq65
        base = compute_global_parameters(shot.grid, tr.psi, tr.boundary, tr.profiles, tr.ip)
        doubled = ProfileCoefficients(
            tr.profiles.pp_basis,
            tr.profiles.ffp_basis,
            2.0 * tr.profiles.alpha,
            tr.profiles.beta,
        )
        scaled = compute_global_parameters(shot.grid, tr.psi, tr.boundary, doubled, tr.ip)
        assert scaled.beta_poloidal == pytest.approx(2.0 * base.beta_poloidal, rel=1e-9)
        assert scaled.stored_energy_joules == pytest.approx(
            2.0 * base.stored_energy_joules, rel=1e-9
        )
        assert scaled.internal_inductance == pytest.approx(base.internal_inductance)

    def test_betap_inverse_square_in_current(self, eq65):
        """beta_p ~ 1/Ip^2 at fixed pressure and geometry."""
        shot, tr = eq65
        base = compute_global_parameters(shot.grid, tr.psi, tr.boundary, tr.profiles, tr.ip)
        half = compute_global_parameters(
            shot.grid, tr.psi, tr.boundary, tr.profiles, tr.ip / 2.0
        )
        assert half.beta_poloidal == pytest.approx(4.0 * base.beta_poloidal, rel=1e-9)

    def test_fit_reproduces_truth_globals(self, eq65):
        """The reconstruction's global parameters match the ground truth's."""
        from repro.efit.fitting import EfitSolver

        shot, tr = eq65
        res = EfitSolver(shot.machine, shot.diagnostics, shot.grid).fit(shot.measurements)
        g_fit = compute_global_parameters(
            shot.grid, res.psi, res.boundary, res.profiles, res.ip
        )
        g_true = compute_global_parameters(shot.grid, tr.psi, tr.boundary, tr.profiles, tr.ip)
        assert g_fit.beta_poloidal == pytest.approx(g_true.beta_poloidal, rel=0.05)
        assert g_fit.internal_inductance == pytest.approx(
            g_true.internal_inductance, rel=0.05
        )


class TestValidation:
    def test_zero_current_rejected(self, eq65):
        shot, tr = eq65
        with pytest.raises(BoundaryError):
            compute_global_parameters(shot.grid, tr.psi, tr.boundary, tr.profiles, 0.0)


class TestResolutionSweep:
    def test_accuracy_improves_with_resolution(self):
        from repro.efit.resolution import resolution_sweep

        pts = resolution_sweep((33, 65))
        assert pts[1].psi_rms_vs_truth < pts[0].psi_rms_vs_truth
        # chi^2 approaches the statistical expectation as the grid refines
        assert pts[1].chi2 < pts[0].chi2

    def test_derived_quantities_stable(self):
        from repro.efit.resolution import resolution_sweep

        pts = resolution_sweep((33, 65))
        assert pts[0].q95 == pytest.approx(pts[1].q95, rel=0.05)
        assert pts[0].kappa == pytest.approx(pts[1].kappa, rel=0.05)
        assert pts[0].beta_poloidal == pytest.approx(pts[1].beta_poloidal, rel=0.05)

    def test_validation(self):
        from repro.efit.resolution import resolution_sweep
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            resolution_sweep((65,))
        with pytest.raises(ReproError):
            resolution_sweep((65, 33))
