"""Property tests of X-point/limiter classification under perturbation.

``steps_`` must classify the magnetic topology *stably*: a smooth flux
perturbation well below the plasma's flux span cannot flip a clearly
limited plasma to diverted, cannot lose a double-null's two X-points,
and cannot teleport the axis.  Hypothesis drives smooth trigonometric
perturbations of (a) a shaped analytic Solov'ev equilibrium bounded by a
circular limiter and (b) the double-null scenario's ground-truth flux
map, and asserts the classification invariants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.efit.boundary import find_boundary, find_xpoints
from repro.efit.grid import RZGrid
from repro.efit.machine import Limiter
from repro.efit.solovev import SolovevEquilibrium

GRID = RZGrid(33, 33)

_EQ = SolovevEquilibrium.shaped(
    r0=1.7, minor_radius=0.5, elongation=1.5, triangularity=0.3
)
PSI_SOLOVEV = _EQ.psi_grid(GRID)
SPAN = float(PSI_SOLOVEV.max() - PSI_SOLOVEV.min())

_theta = np.linspace(0.0, 2.0 * np.pi, 24, endpoint=False)
#: Circular wall comfortably outside the a=0.5 plasma but inside the box.
LIMITER = Limiter(1.7 + 0.62 * np.cos(_theta), 0.93 * np.sin(_theta))


def smooth_perturbation(grid, amplitude, kr, kz, phase_r, phase_z):
    """A smooth standing wave of relative ``amplitude`` (units of the
    unperturbed flux span)."""
    u = (grid.rr - grid.rmin) / (grid.rmax - grid.rmin)
    v = (grid.zz - grid.zmin) / (grid.zmax - grid.zmin)
    return amplitude * np.cos(kr * np.pi * u + phase_r) * np.cos(kz * np.pi * v + phase_z)


perturbations = {
    "kr": st.integers(min_value=1, max_value=3),
    "kz": st.integers(min_value=1, max_value=3),
    "phase_r": st.floats(min_value=0.0, max_value=2.0 * np.pi),
    "phase_z": st.floats(min_value=0.0, max_value=2.0 * np.pi),
}


class TestLimitedPlasma:
    """A clearly limited Solov'ev plasma stays limited."""

    # Classification stability has a real threshold: in the weak-field
    # gap between the plasma edge and the wall, a standing wave can
    # create a *genuine* saddle whose flux beats the limiter-contact
    # flux, at which point "xpoint" is the correct answer, not a bug.
    # Measured over a dense kr/kz/phase sweep at 33^2 the first such
    # flip appears at amp = 0.01 (kr = kz = 3); the property only
    # holds below it, so drive amplitudes to 0.008.
    @given(amp=st.floats(min_value=-0.008, max_value=0.008), **perturbations)
    @settings(max_examples=40, deadline=None)
    def test_classification_stable(self, amp, kr, kz, phase_r, phase_z):
        psi = PSI_SOLOVEV + SPAN * smooth_perturbation(
            GRID, amp, kr, kz, phase_r, phase_z
        )
        result = find_boundary(GRID, psi, LIMITER)
        assert result.boundary_type == "limiter"
        assert result.r_xpoint is None and result.z_xpoint is None

    @given(amp=st.floats(min_value=-0.02, max_value=0.02), **perturbations)
    @settings(max_examples=40, deadline=None)
    def test_axis_stays_near_core(self, amp, kr, kz, phase_r, phase_z):
        psi = PSI_SOLOVEV + SPAN * smooth_perturbation(
            GRID, amp, kr, kz, phase_r, phase_z
        )
        result = find_boundary(GRID, psi, LIMITER)
        # The core is flat, so a 2 % flux ripple can move the extremum a
        # few cells — but never out of the central plasma region.
        assert np.hypot(result.r_axis - 1.77, result.z_axis) < 0.25
        assert bool(LIMITER.contains(result.r_axis, result.z_axis))

    @given(amp=st.floats(min_value=-0.02, max_value=0.02), **perturbations)
    @settings(max_examples=20, deadline=None)
    def test_mask_well_formed(self, amp, kr, kz, phase_r, phase_z):
        from scipy import ndimage

        psi = PSI_SOLOVEV + SPAN * smooth_perturbation(
            GRID, amp, kr, kz, phase_r, phase_z
        )
        result = find_boundary(GRID, psi, LIMITER)
        inside = LIMITER.contains(GRID.rr, GRID.zz)
        assert result.mask.any()
        assert not (result.mask & ~inside).any()
        assert (result.psin[result.mask] < 1.0).all()
        _, n_components = ndimage.label(result.mask)
        assert n_components == 1


@pytest.fixture(scope="module")
def dn_truth():
    from repro.scenarios import get_scenario

    shot = get_scenario("double-null").make_shot(33)
    return shot.grid, shot.truth, shot.machine.limiter


class TestDivertedPlasma:
    """The double-null truth keeps both X-points under perturbation."""

    @given(amp=st.floats(min_value=-0.01, max_value=0.01), **perturbations)
    @settings(max_examples=40, deadline=None)
    def test_stays_double_null(self, dn_truth, amp, kr, kz, phase_r, phase_z):
        grid, truth, limiter = dn_truth
        span = truth.boundary.psi_axis - truth.boundary.psi_boundary
        psi = truth.psi + span * smooth_perturbation(
            grid, amp, kr, kz, phase_r, phase_z
        )
        result = find_boundary(grid, psi, limiter)
        assert result.boundary_type == "xpoint"
        xps = [
            (rx, zx)
            for rx, zx, _ in find_xpoints(grid, psi, max_points=6)
            if bool(limiter.contains(rx, zx))
        ]
        assert len(xps) == 2
        zs = sorted(z for _, z in xps)
        assert zs[0] < -0.5 and zs[1] > 0.5

    def test_refined_xpoints_are_true_saddles(self, dn_truth):
        """|grad psi| at each refined X-point is tiny against the
        field's typical gradient (sub-cell refinement actually lands on
        the saddle)."""
        grid, truth, limiter = dn_truth
        dpsi_dr = np.gradient(truth.psi, grid.dr, axis=0)
        dpsi_dz = np.gradient(truth.psi, grid.dz, axis=1)
        typical = float(np.median(np.hypot(dpsi_dr, dpsi_dz)))
        xps = [
            (rx, zx)
            for rx, zx, _ in find_xpoints(grid, truth.psi, max_points=6)
            if bool(limiter.contains(rx, zx))
        ]
        assert xps
        for rx, zx in xps:
            gr = grid.bilinear(dpsi_dr, np.array([rx]), np.array([zx])).item()
            gz = grid.bilinear(dpsi_dz, np.array([rx]), np.array([zx])).item()
            assert np.hypot(gr, gz) < 0.05 * typical
