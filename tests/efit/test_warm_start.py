"""The trusted warm-start path: seeding a fit from a prior equilibrium.

Pins the tentpole fix: ``psi_initial`` used to be clobbered by the fixed
parabolic warm-up shape for the first ``n_warmup`` iterations, and the
convergence check refused to fire before ``iteration > n_warmup`` — a
warm start could never be faster than a cold one.  Now a seed whose
boundary search succeeds skips the warm-up entirely and may converge
from the first iterate, with a guarded fallback if it misleads.
"""

import numpy as np
import pytest

from repro.efit.fitting import EfitSolver
from repro.errors import ConvergenceError, FittingError
from repro.obs import TraceHooks, TraceRecorder


@pytest.fixture(scope="module")
def solver33(shot33):
    return EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid)


@pytest.fixture(scope="module")
def cold(solver33, shot33):
    return solver33.fit(shot33.measurements)


class TestWarmStart:
    def test_warm_resolve_strictly_fewer_iterations(self, solver33, shot33, cold):
        """The tentpole pin: re-solving a converged slice from its own
        flux map must finish in strictly fewer iterations than cold."""
        warm = solver33.fit(shot33.measurements, psi_initial=cold.psi)
        assert warm.converged
        assert warm.warm_start
        assert warm.iterations < cold.iterations

    def test_warm_with_coefficients_chains(self, solver33, shot33, cold):
        warm = solver33.fit(
            shot33.measurements,
            psi_initial=cold.psi,
            coeffs_initial=cold.history[-1].coefficients,
        )
        assert warm.converged and warm.warm_start
        assert warm.iterations < cold.iterations

    def test_warm_result_matches_cold_physics(self, solver33, shot33, cold):
        warm = solver33.fit(shot33.measurements, psi_initial=cold.psi)
        span = float(np.ptp(cold.psi))
        assert np.max(np.abs(warm.psi - cold.psi)) / span < 1e-3
        assert warm.ip == pytest.approx(cold.ip, rel=1e-2)

    def test_cold_result_not_flagged_warm(self, cold):
        assert not cold.warm_start

    def test_warm_state_skips_warmup(self, solver33, shot33, cold):
        state = solver33.start_fit(shot33.measurements, psi_initial=cold.psi)
        assert state.warm_start and state.warmup_until == 0

    def test_cold_state_keeps_warmup(self, solver33, shot33):
        state = solver33.start_fit(shot33.measurements)
        assert not state.warm_start
        assert state.warmup_until == solver33.n_warmup

    def test_unusable_seed_degrades_to_cold(self, solver33, shot33, cold):
        """A seed with no findable boundary fails the trust probe and the
        fit proceeds exactly as a cold start (no exception, no flag)."""
        garbage = np.zeros_like(cold.psi)
        res = solver33.fit(shot33.measurements, psi_initial=garbage)
        assert res.converged
        assert not res.warm_start
        assert res.iterations == cold.iterations

    def test_divergence_guard_revokes_trust(self, shot33, cold):
        """A plausible-looking but wrong seed trips the guard: the warm
        flag is revoked, a fallback event fires, and the fit still
        converges through the re-armed warm-up."""
        recorder = TraceRecorder()
        s = EfitSolver(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            hooks=TraceHooks(recorder),
        )
        res = s.fit(shot33.measurements, psi_initial=1.5 * cold.psi)
        assert res.converged
        assert not res.warm_start
        events = [e.name for e in recorder.events()]
        assert "warm_start_fallback" in events

    def test_warm_start_visible_in_start_event(self, shot33, cold):
        recorder = TraceRecorder()
        s = EfitSolver(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            hooks=TraceHooks(recorder),
        )
        s.fit(shot33.measurements, psi_initial=cold.psi)
        starts = [e for e in recorder.events() if e.name == "start_fit"]
        assert starts and starts[0].attributes["warm_start"] is True


class TestValidation:
    def test_coeffs_initial_wrong_shape(self, solver33, shot33, cold):
        with pytest.raises(FittingError):
            solver33.fit(
                shot33.measurements,
                psi_initial=cold.psi,
                coeffs_initial=np.ones(3),
            )

    def test_coeffs_initial_non_finite(self, solver33, shot33, cold):
        bad = cold.history[-1].coefficients.copy()
        bad[0] = np.nan
        with pytest.raises(FittingError):
            solver33.fit(
                shot33.measurements, psi_initial=cold.psi, coeffs_initial=bad
            )

    def test_guard_must_be_positive(self, shot33):
        with pytest.raises(FittingError):
            EfitSolver(
                shot33.machine,
                shot33.diagnostics,
                shot33.grid,
                warm_start_guard=0.0,
            )

    def test_convergence_error_reports_actual_iterations(self, shot33):
        """The message must name the iterations actually run, not assume
        the loop exhausted max_iters (a finish() caller may stop early)."""
        s = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid, max_iters=3)
        with pytest.raises(ConvergenceError, match=r"after 3 iterations"):
            s.fit(shot33.measurements)

    def test_early_finish_reports_its_own_count(self, solver33, shot33):
        state = solver33.start_fit(shot33.measurements)
        pcurr, psi_ext = solver33.iterate_pre(state)
        solver33.iterate_post(state, solver33.pflux.compute(pcurr, psi_ext))
        with pytest.raises(ConvergenceError, match=r"after 1 iterations"):
            solver33.finish(state)
