"""Tests of the filament Green functions against physics ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.efit.greens import (
    greens_br,
    greens_bz,
    greens_psi,
    mutual_inductance,
    self_flux_per_radian,
)
from repro.errors import GreensError
from repro.utils.constants import MU0, TWO_PI

coords = st.floats(min_value=0.6, max_value=2.5)
zcoords = st.floats(min_value=-1.5, max_value=1.5)


class TestPsi:
    def test_positive_for_positive_current(self):
        assert greens_psi(1.5, 0.2, 1.2, -0.1) > 0.0

    def test_symmetry_source_observation(self):
        """Mutual inductance is symmetric under filament exchange."""
        a = greens_psi(1.8, 0.4, 1.1, -0.3)
        b = greens_psi(1.1, -0.3, 1.8, 0.4)
        assert a == pytest.approx(b, rel=1e-12)

    def test_updown_symmetry(self):
        a = greens_psi(1.5, 0.7, 1.2, 0.0)
        b = greens_psi(1.5, -0.7, 1.2, 0.0)
        assert a == pytest.approx(b, rel=1e-12)

    def test_decay_with_distance(self):
        vals = [greens_psi(1.5, z, 1.5, 0.0) for z in (0.3, 0.6, 1.2, 2.4)]
        assert all(v1 > v2 > 0 for v1, v2 in zip(vals, vals[1:]))

    def test_far_field_dipole_limit(self):
        """At large distance the loop looks like a dipole: on-axis-ish flux
        ~ mu0 * m / (4 pi d) * (r/d)^2-type scaling; check the flux through
        a small far loop matches the dipole Bz integral to a few %."""
        rs, a_obs, d = 1.0, 0.05, 60.0
        bz_dipole = MU0 * (np.pi * rs**2) / (2.0 * np.pi * d**3)
        psi_expected = bz_dipole * np.pi * a_obs**2 / TWO_PI
        psi = greens_psi(a_obs, d, rs, 0.0)
        assert psi == pytest.approx(psi_expected, rel=0.05)

    def test_coincident_raises(self):
        with pytest.raises(GreensError):
            greens_psi(1.5, 0.0, 1.5, 0.0)

    def test_nonpositive_radius_raises(self):
        with pytest.raises(GreensError):
            greens_psi(-1.0, 0.0, 1.5, 0.0)
        with pytest.raises(GreensError):
            greens_psi(1.0, 0.0, 0.0, 0.0)

    def test_broadcasting(self):
        r = np.linspace(1.0, 2.0, 7)
        z = np.zeros(7)
        out = greens_psi(r, z, 1.5, 0.9)
        assert out.shape == (7,)

    @given(coords, zcoords, coords, zcoords)
    @settings(max_examples=100, deadline=None)
    def test_reciprocity_property(self, r, z, rs, zs):
        if abs(r - rs) < 1e-3 and abs(z - zs) < 1e-3:
            return
        a = greens_psi(r, z, rs, zs)
        b = greens_psi(rs, zs, r, z)
        assert a == pytest.approx(b, rel=1e-9)


class TestFields:
    @pytest.mark.parametrize(
        "r,z,rs,zs",
        [(1.8, 0.3, 1.2, -0.4), (0.9, -0.8, 2.1, 0.5), (1.5, 1.2, 1.45, 1.1)],
    )
    def test_br_matches_flux_derivative(self, r, z, rs, zs):
        h = 1e-6
        fd = -(greens_psi(r, z + h, rs, zs) - greens_psi(r, z - h, rs, zs)) / (2 * h * r)
        assert greens_br(r, z, rs, zs) == pytest.approx(fd, rel=1e-6)

    @pytest.mark.parametrize(
        "r,z,rs,zs",
        [(1.8, 0.3, 1.2, -0.4), (0.9, -0.8, 2.1, 0.5), (1.5, 1.2, 1.45, 1.1)],
    )
    def test_bz_matches_flux_derivative(self, r, z, rs, zs):
        h = 1e-6
        fd = (greens_psi(r + h, z, rs, zs) - greens_psi(r - h, z, rs, zs)) / (2 * h * r)
        assert greens_bz(r, z, rs, zs) == pytest.approx(fd, rel=1e-6)

    def test_br_vanishes_on_source_midplane(self):
        assert greens_br(1.9, 0.0, 1.2, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_bz_center_of_loop_limit(self):
        """Near the axis, Bz approaches the textbook loop-center field
        mu0 I / (2 a)."""
        a = 1.3
        expected = MU0 / (2.0 * a)
        assert greens_bz(1e-4, 0.0, a, 0.0) == pytest.approx(expected, rel=1e-4)

    def test_bz_on_axis_height_formula(self):
        """Off-plane on-axis field: mu0 a^2 / (2 (a^2+z^2)^{3/2})."""
        a, z = 1.0, 0.8
        expected = MU0 * a**2 / (2.0 * (a**2 + z**2) ** 1.5)
        assert greens_bz(1e-4, z, a, 0.0) == pytest.approx(expected, rel=1e-4)

    @given(coords, zcoords, coords)
    @settings(max_examples=60, deadline=None)
    def test_br_antisymmetric_in_dz(self, r, dz, rs):
        if abs(dz) < 1e-3 or (abs(r - rs) < 1e-3):
            return
        up = greens_br(r, dz, rs, 0.0)
        dn = greens_br(r, -dz, rs, 0.0)
        assert up == pytest.approx(-dn, rel=1e-9, abs=1e-18)


class TestInductance:
    def test_mutual_is_2pi_psi(self):
        assert mutual_inductance(1.8, 0.2, 1.1, 0.0) == pytest.approx(
            TWO_PI * greens_psi(1.8, 0.2, 1.1, 0.0)
        )

    def test_self_flux_positive_and_increasing_with_radius(self):
        vals = [self_flux_per_radian(r, 0.01) for r in (0.8, 1.2, 1.8)]
        assert all(v > 0 for v in vals)
        assert vals[0] < vals[1] < vals[2]

    def test_self_flux_grows_as_wire_thins(self):
        thick = self_flux_per_radian(1.5, 0.05)
        thin = self_flux_per_radian(1.5, 0.001)
        assert thin > thick

    def test_self_flux_invalid_inputs(self):
        with pytest.raises(GreensError):
            self_flux_per_radian(1.0, 0.0)
        with pytest.raises(GreensError):
            self_flux_per_radian(1.0, 1.5)
        with pytest.raises(GreensError):
            self_flux_per_radian(-1.0, 0.01)

    def test_self_flux_exceeds_close_mutual(self):
        """Self inductance bounds the mutual inductance of nearby loops."""
        self_val = self_flux_per_radian(1.5, 0.01)
        near = greens_psi(1.5, 0.05, 1.5, 0.0)
        assert self_val > near
