"""Tests of pflux_: boundary Green sums and the full flux solve."""

import numpy as np
import pytest

from repro.efit.greens import greens_psi
from repro.efit.grid import RZGrid
from repro.efit.pflux import (
    PfluxReference,
    PfluxVectorized,
    boundary_flux_reference,
    boundary_flux_vectorized,
)
from repro.efit.solvers import make_solver
from repro.efit.tables import cached_boundary_tables
from repro.errors import GridError


@pytest.fixture(scope="module")
def small():
    g = RZGrid(11, 13)
    return g, cached_boundary_tables(g)


class TestBoundaryKernels:
    def test_reference_vs_vectorized_identical(self, small, rng):
        g, tables = small
        pcurr = rng.normal(size=g.shape)
        ref = boundary_flux_reference(
            tables.fortran_view(), g.flatten(pcurr), g.nw, g.nh
        )
        vec = boundary_flux_vectorized(tables, pcurr)
        assert np.allclose(g.unflatten(ref), vec, rtol=1e-12, atol=1e-15)

    def test_only_edges_filled(self, small, rng):
        g, tables = small
        vec = boundary_flux_vectorized(tables, rng.normal(size=g.shape))
        assert np.allclose(vec[1:-1, 1:-1], 0.0)
        assert not np.allclose(vec[0, :], 0.0)
        assert not np.allclose(vec[:, 0], 0.0)

    def test_single_filament_matches_green_function(self, small):
        """One unit of (negated) current at an interior node: the kernel's
        edge values equal the filament Green function at the edge."""
        g, tables = small
        i_s, j_s = 5, 6
        pcurr = np.zeros(g.shape)
        pcurr[i_s, j_s] = -1.0  # paper kernels carry a minus sign
        vec = boundary_flux_vectorized(tables, pcurr)
        for i_b, j_b in [(0, 3), (g.nw - 1, 8), (4, 0), (7, g.nh - 1)]:
            expected = greens_psi(
                g.r[i_b], g.z[j_b], g.r[i_s], g.z[j_s]
            )
            assert vec[i_b, j_b] == pytest.approx(expected, rel=1e-10)

    def test_corners_consistent(self, small, rng):
        """Corner nodes are computed by two edges; values must agree — the
        vectorized corner comes from the horizontal-edge tensordot, the
        reference kernel writes them twice."""
        g, tables = small
        pcurr = rng.normal(size=g.shape)
        ref = g.unflatten(
            boundary_flux_reference(tables.fortran_view(), g.flatten(pcurr), g.nw, g.nh)
        )
        vec = boundary_flux_vectorized(tables, pcurr)
        for i, j in [(0, 0), (0, g.nh - 1), (g.nw - 1, 0), (g.nw - 1, g.nh - 1)]:
            assert ref[i, j] == pytest.approx(vec[i, j], rel=1e-12)

    def test_linearity(self, small, rng):
        g, tables = small
        a = rng.normal(size=g.shape)
        b = rng.normal(size=g.shape)
        combo = boundary_flux_vectorized(tables, 2.0 * a - 3.0 * b)
        parts = 2.0 * boundary_flux_vectorized(tables, a) - 3.0 * boundary_flux_vectorized(tables, b)
        assert np.allclose(combo, parts, rtol=1e-10, atol=1e-18)

    def test_shape_validation(self, small):
        g, tables = small
        with pytest.raises(GridError):
            boundary_flux_vectorized(tables, np.zeros((3, 3)))
        with pytest.raises(GridError):
            boundary_flux_reference(tables.fortran_view(), np.zeros(5), g.nw, g.nh)
        with pytest.raises(GridError):
            boundary_flux_reference(np.zeros((4, 4)), np.zeros(g.size), g.nw, g.nh)


class TestFullPflux:
    def test_reference_and_vectorized_agree(self, small, rng):
        g, tables = small
        pcurr = rng.normal(size=g.shape) * 1e3
        solver = make_solver("direct", g)
        ref = PfluxReference(g, tables, solver).compute(pcurr)
        vec = PfluxVectorized(g, tables, solver).compute(pcurr)
        assert np.allclose(ref, vec, rtol=1e-12)

    def test_superposition_with_direct_green_sum(self):
        """The discrete pflux_ solution approximates the continuum
        superposition of filament fields: check the flux at points far
        from a compact current blob against the direct Green sum."""
        g = RZGrid(41, 41)
        tables = cached_boundary_tables(g)
        solver = make_solver("dst", g)
        pcurr = np.zeros(g.shape)
        ic, jc = 20, 20
        pcurr[ic - 1 : ic + 2, jc - 1 : jc + 2] = 1e4  # 9-cell blob
        psi = PfluxVectorized(g, tables, solver).compute(pcurr)
        src_i, src_j = np.nonzero(pcurr)
        for i, j in [(5, 33), (35, 6), (8, 8)]:
            direct = sum(
                pcurr[a, b] * greens_psi(g.r[i], g.z[j], g.r[a], g.z[b])
                for a, b in zip(src_i, src_j)
            )
            assert psi[i, j] == pytest.approx(direct, rel=2e-3)

    def test_positive_current_positive_flux(self, small):
        g, tables = small
        pcurr = np.zeros(g.shape)
        pcurr[5, 6] = 1e4
        psi = PfluxVectorized(g, tables, make_solver("direct", g)).compute(pcurr)
        assert (psi > 0).all()

    def test_external_flux_superposes(self, small, rng):
        g, tables = small
        solver = make_solver("direct", g)
        op = PfluxVectorized(g, tables, solver)
        pcurr = rng.normal(size=g.shape)
        ext = rng.normal(size=g.shape)
        assert np.allclose(op.compute(pcurr, ext), op.compute(pcurr) + ext)

    def test_grid_mismatch_rejected(self, small):
        g, tables = small
        other = RZGrid(9, 9)
        with pytest.raises(GridError):
            PfluxVectorized(other, tables, make_solver("direct", other))
        op = PfluxVectorized(g, tables, make_solver("direct", g))
        with pytest.raises(GridError):
            op.compute(np.zeros((3, 3)))
