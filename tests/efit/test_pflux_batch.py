"""Tests of the precomputed edge operator and the batched pflux_ path.

The edge operator factors the boundary Green sums into one dense
``(n_edge, nw*nh)`` matrix so a single GEMM serves a whole batch of
slices; the batched interior solve stacks every slice's RHS through one
multi-RHS Thomas sweep.  These tests pin both against the per-slice
kernels — including the pure-Python ``boundary_flux_reference`` loops —
at the paper's 65x65 production grid for batch sizes 1, 3 and 8.
"""

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.pflux import (
    PfluxOperator,
    PfluxVectorized,
    boundary_flux_operator,
    boundary_flux_reference,
    boundary_flux_vectorized,
    edge_flux_operator,
    edge_node_indices,
)
from repro.efit.solvers import make_solver
from repro.efit.tables import cached_boundary_tables
from repro.errors import GridError


@pytest.fixture(scope="module")
def grid65():
    return RZGrid(65, 65)


@pytest.fixture(scope="module")
def tables65(grid65):
    return cached_boundary_tables(grid65)


@pytest.fixture(scope="module")
def operator65(tables65):
    return edge_flux_operator(tables65)


@pytest.fixture(scope="module")
def batch8(grid65, tables65):
    """Eight random slices plus their reference-kernel boundary fluxes.

    The pure-Python reference loop costs ~1 s per 65x65 slice, so the
    B in {1, 3, 8} comparisons all draw from this one batch: the B=1 and
    B=3 cases are leading subsets of the B=8 columns.
    """
    rng = np.random.default_rng(20230565)
    g = grid65
    pcurr = rng.normal(size=(8,) + g.shape) * 1e3
    ref = np.stack(
        [
            g.unflatten(
                boundary_flux_reference(
                    tables65.fortran_view(), g.flatten(p), g.nw, g.nh
                )
            )
            for p in pcurr
        ]
    )
    return pcurr, ref


def scatter_edges(grid, edge_values):
    """Expand (n_edge, B) operator output back onto (B, nw, nh) grids."""
    ei, ej = edge_node_indices(grid.nw, grid.nh)
    out = np.zeros((edge_values.shape[1],) + grid.shape)
    out[:, ei, ej] = edge_values.T
    return out


class TestEdgeOperator:
    def test_operator_shape(self, grid65, operator65):
        n_edge = 2 * grid65.nw + 2 * grid65.nh - 4
        assert operator65.shape == (n_edge, grid65.size)

    def test_edge_indices_cover_rim_once(self, grid65):
        ei, ej = edge_node_indices(grid65.nw, grid65.nh)
        assert ei.size == 2 * grid65.nw + 2 * grid65.nh - 4
        mask = np.zeros(grid65.shape, dtype=int)
        mask[ei, ej] += 1
        rim = np.zeros(grid65.shape, dtype=bool)
        rim[0, :] = rim[-1, :] = rim[:, 0] = rim[:, -1] = True
        assert (mask[rim] == 1).all()
        assert (mask[~rim] == 0).all()

    @pytest.mark.parametrize("nb", [1, 3, 8])
    def test_matches_vectorized_kernel(self, grid65, operator65, batch8, nb):
        pcurr, _ = batch8
        flat = pcurr[:nb].reshape(nb, grid65.size).T
        psi = scatter_edges(grid65, boundary_flux_operator(operator65, flat))
        for k in range(nb):
            vec = boundary_flux_vectorized(cached_boundary_tables(grid65), pcurr[k])
            assert np.allclose(psi[k], vec, rtol=1e-12, atol=1e-18)

    @pytest.mark.parametrize("nb", [1, 3, 8])
    def test_matches_reference_kernel(self, grid65, operator65, batch8, nb):
        pcurr, ref = batch8
        flat = pcurr[:nb].reshape(nb, grid65.size).T
        psi = scatter_edges(grid65, boundary_flux_operator(operator65, flat))
        assert np.allclose(psi, ref[:nb], rtol=1e-12, atol=1e-18)

    def test_single_column_matches_matvec(self, grid65, operator65, rng):
        pcurr = rng.normal(size=grid65.size)
        single = boundary_flux_operator(operator65, pcurr)
        batched = boundary_flux_operator(operator65, pcurr[:, None])
        assert np.array_equal(single, batched[:, 0])

    def test_out_buffer_reused(self, grid65, operator65, rng):
        flat = rng.normal(size=(grid65.size, 3))
        out = np.empty((operator65.shape[0], 3))
        res = boundary_flux_operator(operator65, flat, out=out)
        assert res is out

    def test_shape_validation(self, grid65, operator65):
        with pytest.raises(GridError):
            boundary_flux_operator(operator65, np.zeros(7))
        with pytest.raises(GridError):
            boundary_flux_operator(
                operator65, np.zeros(grid65.size), out=np.zeros(3)
            )


class TestPfluxOperatorPipeline:
    def test_full_compute_matches_vectorized(self, rng):
        g = RZGrid(17, 23)
        tables = cached_boundary_tables(g)
        pcurr = rng.normal(size=g.shape) * 1e3
        ext = rng.normal(size=g.shape)
        vec = PfluxVectorized(g, tables, make_solver("dst", g)).compute(pcurr, ext)
        op = PfluxOperator(g, tables, make_solver("dst", g)).compute(pcurr, ext)
        assert np.allclose(op, vec, rtol=1e-12)


class TestSolveBatch:
    @pytest.mark.parametrize("nb", [1, 3, 8])
    def test_matches_per_slice_solve(self, nb, rng):
        g = RZGrid(33, 33)
        solver = make_solver("dst", g)
        rhs = rng.normal(size=(nb,) + g.shape)
        psi_b = np.zeros((nb,) + g.shape)
        rim = rng.normal(size=g.shape)
        rim[1:-1, 1:-1] = 0.0
        psi_b[:] = rim
        batched = solver.solve_batch(rhs, psi_b)
        for k in range(nb):
            assert np.array_equal(batched[k], solver.solve(rhs[k], psi_b[k]))

    def test_shape_validation(self):
        g = RZGrid(9, 9)
        solver = make_solver("dst", g)
        with pytest.raises(GridError):
            solver.solve_batch(np.zeros((2, 3, 3)), np.zeros((2, 3, 3)))
        with pytest.raises(GridError):
            solver.solve_batch(np.zeros((2,) + g.shape), np.zeros((3,) + g.shape))
