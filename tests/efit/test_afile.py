"""Tests of the a-file scalar-results record."""

import pytest

from repro.efit.afile import AFile, afile_from_fit, read_afile, write_afile
from repro.efit.fitting import EfitSolver
from repro.errors import EqdskError


@pytest.fixture(scope="module")
def afile(shot33):
    result = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid).fit(
        shot33.measurements
    )
    return afile_from_fit(shot33, result), result


class TestContent:
    def test_identifiers(self, afile):
        a, _ = afile
        assert a.shot == 186610
        assert a.time_ms == 2400.0

    def test_scalars_consistent_with_fit(self, afile):
        a, result = afile
        assert a.ipmeas == pytest.approx(result.ip)
        assert a.rmaxis == pytest.approx(result.boundary.r_axis)
        assert a.chisq == pytest.approx(result.chi2)
        assert a.iterations == result.iterations
        assert a.converged

    def test_physics_ranges(self, afile):
        a, _ = afile
        assert 1.4 < a.rgeo < 1.9
        assert 0.3 < a.aminor < 0.8
        assert 1.0 < a.kappa < 2.3
        assert 0.1 < a.betap < 2.0
        assert 0.3 < a.ali < 2.0
        assert a.q95 > 1.0
        assert a.wplasm > 0 and a.volume > 0


class TestRoundTrip:
    def test_file_roundtrip(self, afile, tmp_path):
        a, _ = afile
        path = tmp_path / "a186610.02400"
        write_afile(a, path)
        back = read_afile(path)
        for name in ("shot", "iterations", "converged"):
            assert getattr(back, name) == getattr(a, name)
        for name in ("ipmeas", "kappa", "betap", "q95", "wplasm"):
            assert getattr(back, name) == pytest.approx(getattr(a, name), rel=1e-8)

    def test_file_is_greppable(self, afile, tmp_path):
        a, _ = afile
        path = tmp_path / "a.txt"
        write_afile(a, path)
        text = path.read_text()
        assert "betap = " in text and "q95 = " in text
        assert "# m^3" in text  # units documented

    def test_malformed_line_rejected(self, tmp_path):
        p = tmp_path / "a.bad"
        p.write_text("this is not a record\n")
        with pytest.raises(EqdskError):
            read_afile(p)

    def test_missing_field_rejected(self, tmp_path):
        p = tmp_path / "a.partial"
        p.write_text("shot = 1\n")
        with pytest.raises(EqdskError):
            read_afile(p)
