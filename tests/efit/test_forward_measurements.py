"""Tests of the forward solve and the synthetic shot generator."""

import numpy as np
import pytest

from repro.efit.basis import PolynomialBasis
from repro.efit.forward import design_coil_currents, solve_forward
from repro.efit.measurements import MeasurementSet, synthetic_shot_186610
from repro.efit.profiles import ProfileCoefficients
from repro.errors import FittingError, MeasurementError


class TestCoilDesign:
    def test_reasonable_current_scale(self, machine):
        currents = design_coil_currents(machine, ip=1.0e6)
        assert currents.shape == (machine.n_coils,)
        assert np.abs(currents).max() < 5e6
        assert np.abs(currents).max() > 1e2

    def test_updown_symmetric_design(self, machine):
        """Symmetric target boundary -> symmetric coil currents in pairs."""
        currents = design_coil_currents(machine, ip=1.0e6)
        pairs = currents.reshape(-1, 2)  # (A, B) interleaved by factory
        assert np.allclose(pairs[:, 0], pairs[:, 1], rtol=1e-6, atol=1.0)

    def test_scales_with_ip(self, machine):
        c1 = design_coil_currents(machine, ip=0.5e6)
        c2 = design_coil_currents(machine, ip=1.0e6)
        assert np.allclose(2.0 * c1, c2, rtol=1e-9)

    def test_control_point_validation(self, machine):
        with pytest.raises(FittingError):
            design_coil_currents(machine, n_control=5)


class TestForwardSolve:
    def test_converges_and_hits_ip(self, shot33):
        eq = shot33.truth
        assert eq.residual < 1e-9
        assert eq.ip == pytest.approx(1.0e6, rel=1e-9)
        assert eq.iterations < 200

    def test_symmetric_equilibrium(self, shot33):
        psi = shot33.truth.psi
        assert np.allclose(psi, psi[:, ::-1], rtol=1e-6, atol=1e-9)

    def test_gs_equation_satisfied(self, shot33):
        """The converged flux solves the discrete GS equation with its own
        current distribution."""
        from repro.efit.operators import GradShafranovOperator
        from repro.utils.constants import MU0

        g = shot33.grid
        eq = shot33.truth
        op = GradShafranovOperator(g)
        # The plasma part only: total minus coil vacuum flux.
        psi_plasma = eq.psi - shot33.machine.psi_from_coils(g, eq.coil_currents)
        rhs = -(MU0 / g.cell_area) * g.rr * eq.pcurr
        res = op.residual(psi_plasma, rhs)
        scale = np.abs(rhs).max()
        assert np.abs(res[1:-1, 1:-1]).max() < 1e-6 * scale

    def test_relaxation_validation(self, machine, grid33):
        profiles = ProfileCoefficients(
            PolynomialBasis(2), PolynomialBasis(2), np.array([1.0, -0.5]), np.array([0.5, -0.3])
        )
        with pytest.raises(FittingError):
            solve_forward(machine, grid33, profiles, relax=0.0)


class TestSyntheticShot:
    def test_deterministic(self):
        a = synthetic_shot_186610(33)
        b = synthetic_shot_186610(33)
        assert a is b  # cached
        assert np.array_equal(a.measurements.values, b.measurements.values)

    def test_label_and_sizes(self, shot33):
        assert "186610" in shot33.label
        assert shot33.grid.nw == 33
        assert shot33.measurements.n_measurements == shot33.diagnostics.n_measurements

    def test_rogowski_reads_ip(self, shot33):
        assert shot33.measurements.ip == pytest.approx(1.0e6, rel=5e-3)

    def test_noise_free_measurements_exact(self):
        shot = synthetic_shot_186610(33, noise=0.0, seed=1)
        g = shot.grid
        exact = shot.diagnostics.response_to_grid(g) @ g.flatten(shot.truth.pcurr)
        exact = exact + shot.diagnostics.response_to_coils(shot.machine) @ shot.truth.coil_currents
        assert np.allclose(shot.measurements.values, exact)

    def test_too_coarse_rejected(self):
        with pytest.raises(MeasurementError):
            synthetic_shot_186610(9)

    def test_measurement_set_validation(self):
        with pytest.raises(MeasurementError):
            MeasurementSet(np.zeros(3), np.ones(2), np.zeros(2), ("a", "b", "c"))
        with pytest.raises(MeasurementError):
            MeasurementSet(np.zeros(3), np.zeros(3), np.zeros(2), ("a", "b", "c"))
        with pytest.raises(MeasurementError):
            MeasurementSet(np.zeros(3), np.ones(3), np.zeros(2), ("a", "b"))
