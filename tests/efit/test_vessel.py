"""Tests of vessel eddy-current modeling and fitting."""

import numpy as np
import pytest

from repro.efit.fitting import EfitSolver
from repro.efit.machine import Tokamak, VesselSegment, diiid_like_machine
from repro.efit.measurements import synthetic_shot_186610
from repro.errors import FittingError, MeasurementError


@pytest.fixture(scope="module")
def eddy_shot():
    return synthetic_shot_186610(33, eddy_ka=15.0)


class TestVesselGeometry:
    def test_diiid_like_has_vessel(self, machine):
        assert machine.n_vessel == 24
        # Vessel sits outside the limiter, inside the diagnostics ring.
        for seg in machine.vessel:
            assert not bool(machine.limiter.contains(seg.r, seg.z))

    def test_segment_validation(self):
        with pytest.raises(MeasurementError):
            VesselSegment("V", -1.0, 0.0)

    def test_duplicate_names_rejected(self, machine):
        with pytest.raises(MeasurementError):
            Tokamak(
                "x",
                machine.coils,
                machine.limiter,
                1.0,
                vessel=(machine.vessel[0], machine.vessel[0]),
            )

    def test_flux_tables_linearity(self, machine):
        g = machine.make_grid(17)
        currents = np.zeros(machine.n_vessel)
        currents[5] = 2.0e3
        psi = machine.psi_from_vessel(g, currents)
        assert np.allclose(psi, 2.0e3 * machine.vessel_flux_tables(g)[5])

    def test_current_length_validated(self, machine):
        g = machine.make_grid(17)
        with pytest.raises(MeasurementError):
            machine.psi_from_vessel(g, np.zeros(3))

    def test_vessel_response_shape(self, machine):
        from repro.efit.diagnostics import DiagnosticSet

        d = DiagnosticSet.for_machine(machine, n_flux_loops=8, n_probes=8)
        resp = d.response_to_vessel(machine)
        assert resp.shape == (d.n_measurements, machine.n_vessel)
        assert np.allclose(resp[-1], 0.0)  # Rogowski blind to the vessel


class TestEddyCurrentFitting:
    def test_quiescent_shot_fits_near_zero_vessel_currents(self, shot33):
        s = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid, fit_vessel=True)
        res = s.fit(shot33.measurements)
        assert res.converged
        assert np.abs(res.vessel_currents).max() < 2e3  # << the 15 kA eddy scale

    def test_eddy_shot_breaks_plain_fit(self, eddy_shot):
        """Unmodeled 15 kA eddy currents poison a magnetics-only fit —
        the motivation for EFIT's vessel option."""
        s = EfitSolver(eddy_shot.machine, eddy_shot.diagnostics, eddy_shot.grid)
        try:
            res = s.fit(eddy_shot.measurements, require_convergence=False)
        except Exception:
            return
        n = eddy_shot.measurements.n_measurements
        assert (not res.converged) or res.chi2 > 20 * n

    def test_vessel_fit_recovers_equilibrium_and_currents(self, eddy_shot):
        s = EfitSolver(
            eddy_shot.machine, eddy_shot.diagnostics, eddy_shot.grid, fit_vessel=True
        )
        res = s.fit(eddy_shot.measurements)
        assert res.converged
        err = np.abs(res.psi - eddy_shot.truth.psi).max() / np.ptp(eddy_shot.truth.psi)
        assert err < 5e-3
        truth_iv = eddy_shot.truth.vessel_currents
        rel = np.abs(res.vessel_currents - truth_iv).max() / np.abs(truth_iv).max()
        assert rel < 0.3

    def test_fit_vessel_requires_vessel(self, shot33):
        bare = diiid_like_machine(n_vessel=0)
        with pytest.raises(FittingError):
            EfitSolver(bare, shot33.diagnostics, shot33.grid, fit_vessel=True)

    def test_result_has_no_vessel_field_by_default(self, shot33):
        s = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid)
        res = s.fit(shot33.measurements)
        assert res.vessel_currents is None
