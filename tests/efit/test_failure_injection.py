"""Failure injection: corrupted inputs must fail loudly and cleanly.

A reconstruction code ingests hardware signals; sensor dropouts, railed
channels and wrong coil bookkeeping are routine.  The library must turn
them into typed errors or visibly bad fit statistics — never into silent
NaN propagation.
"""

import dataclasses

import numpy as np
import pytest

from repro.efit.fitting import EfitSolver
from repro.efit.measurements import MeasurementSet
from repro.errors import FittingError, MeasurementError, ReproError


@pytest.fixture()
def solver(shot33):
    return EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid)


def _with_values(measurements, values):
    return MeasurementSet(
        values=values,
        uncertainties=measurements.uncertainties.copy(),
        coil_currents=measurements.coil_currents.copy(),
        names=measurements.names,
    )


class TestCorruptMeasurements:
    def test_nan_rejected_at_construction(self, shot33):
        values = shot33.measurements.values.copy()
        values[3] = np.nan
        with pytest.raises(MeasurementError):
            _with_values(shot33.measurements, values)

    def test_inf_rejected_at_construction(self, shot33):
        values = shot33.measurements.values.copy()
        values[7] = np.inf
        with pytest.raises(MeasurementError):
            _with_values(shot33.measurements, values)

    def test_nan_coil_currents_rejected(self, shot33):
        m = shot33.measurements
        with pytest.raises(MeasurementError):
            MeasurementSet(
                values=m.values.copy(),
                uncertainties=m.uncertainties.copy(),
                coil_currents=np.full_like(m.coil_currents, np.nan),
                names=m.names,
            )

    def test_drifted_channel_shows_in_chi2(self, solver, shot33):
        """A probe with a moderate calibration drift: the fit survives and
        chi^2 exposes the outlier."""
        values = shot33.measurements.values.copy()
        values[45] = values[45] + 20.0 * shot33.measurements.uncertainties[45]
        bad = _with_values(shot33.measurements, values)
        res = solver.fit(bad, require_convergence=False)
        clean = solver.fit(shot33.measurements)
        assert res.chi2 > clean.chi2 + 100.0  # ~20-sigma outlier -> +O(400)

    def test_railed_channel_fails_loudly(self, solver, shot33):
        """A hard-railed probe (100x signal) drives the Picard loop into an
        unphysical state; the library must raise a typed error rather than
        return NaN garbage."""
        values = shot33.measurements.values.copy()
        values[45] = 100.0 * max(abs(values[45]), 1e-3)
        bad = _with_values(shot33.measurements, values)
        try:
            res = solver.fit(bad, require_convergence=False)
        except ReproError:
            return  # loud, typed failure: correct
        assert not res.converged or res.chi2 > 1e4

    def test_dead_rogowski_overridden_by_other_channels(self, solver, shot33):
        """Rogowski reads 0 while 100 other channels see a 1 MA plasma:
        the weighted fit must either fail loudly or side with the
        majority — recovering the true current and flagging the dead
        channel through an enormous chi^2."""
        values = shot33.measurements.values.copy()
        values[-1] = 0.0
        bad = _with_values(shot33.measurements, values)
        try:
            res = solver.fit(bad, require_convergence=False)
        except (FittingError, ReproError):
            return  # loud failure is acceptable
        clean = solver.fit(shot33.measurements)
        assert res.ip == pytest.approx(clean.ip, rel=0.05)  # majority wins
        assert res.chi2 > 100.0 * clean.chi2  # the dead channel is exposed

    def test_wrong_coil_sign_degrades_visibly(self, solver, shot33):
        """Sign-flipped coil bookkeeping: the fit cannot match the data."""
        m = shot33.measurements
        bad = MeasurementSet(
            values=m.values.copy(),
            uncertainties=m.uncertainties.copy(),
            coil_currents=-m.coil_currents,
            names=m.names,
        )
        try:
            res = solver.fit(bad, require_convergence=False)
        except ReproError:
            return  # failing loudly is acceptable
        clean = solver.fit(m)
        assert (not res.converged) or res.chi2 > 100.0 * clean.chi2


class TestCorruptConfiguration:
    def test_initial_psi_wrong_shape(self, solver, shot33):
        with pytest.raises(FittingError):
            solver.fit(shot33.measurements, psi_initial=np.zeros((5, 5)))

    def test_initial_psi_nonfinite(self, solver, shot33):
        bad = np.full(shot33.grid.shape, np.nan)
        with pytest.raises(FittingError):
            solver.fit(shot33.measurements, psi_initial=bad, require_convergence=False)
