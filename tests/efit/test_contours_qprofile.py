"""Tests of flux-surface tracing and the q profile."""

import numpy as np
import pytest

from repro.efit.contours import FluxSurface, trace_flux_surface
from repro.efit.measurements import synthetic_shot_186610
from repro.efit.qprofile import (
    QProfile,
    q_from_toroidal_flux,
    safety_factor,
    toroidal_flux,
)
from repro.errors import BoundaryError


@pytest.fixture(scope="module")
def shot65():
    return synthetic_shot_186610(65)


@pytest.fixture(scope="module")
def eq(shot65):
    tr = shot65.truth
    return shot65.grid, tr.psi, tr.boundary, shot65.machine.f_vacuum


class TestSurfaceTracing:
    def test_points_on_level(self, eq):
        g, psi, b, _ = eq
        surf = trace_flux_surface(g, b, 0.5, n_theta=64)
        vals = g.bilinear(b.psin, surf.r, surf.z)
        assert np.abs(vals - 0.5).max() < 1e-6

    def test_surfaces_nested(self, eq):
        g, psi, b, _ = eq
        inner = trace_flux_surface(g, b, 0.3)
        outer = trace_flux_surface(g, b, 0.8)
        assert inner.area < outer.area
        assert inner.perimeter < outer.perimeter
        assert inner.volume < outer.volume

    def test_surface_encloses_axis(self, eq):
        g, psi, b, _ = eq
        surf = trace_flux_surface(g, b, 0.4)
        # Axis strictly inside the surface polygon bounding box.
        assert surf.r.min() < b.r_axis < surf.r.max()
        assert surf.z.min() < b.z_axis < surf.z.max()

    def test_area_scaling_near_axis(self, eq):
        """Near the axis, psiN ~ quadratic in minor radius: the area of
        the psiN = s surface scales ~ s."""
        g, psi, b, _ = eq
        a1 = trace_flux_surface(g, b, 0.1).area
        a2 = trace_flux_surface(g, b, 0.2).area
        assert a2 / a1 == pytest.approx(2.0, rel=0.25)

    def test_invalid_levels_rejected(self, eq):
        g, psi, b, _ = eq
        for bad in (0.0, -0.5, 1.2):
            with pytest.raises(BoundaryError):
                trace_flux_surface(g, b, bad)
        with pytest.raises(BoundaryError):
            trace_flux_surface(g, b, 0.5, n_theta=4)

    def test_circle_geometry_analytics(self):
        """FluxSurface geometry on an exact circle polygon."""
        theta = np.linspace(0, 2 * np.pi, 400, endpoint=False)
        surf = FluxSurface(0.5, 2.0 + 0.5 * np.cos(theta), 0.5 * np.sin(theta))
        assert surf.perimeter == pytest.approx(2 * np.pi * 0.5, rel=1e-3)
        assert surf.area == pytest.approx(np.pi * 0.25, rel=1e-3)
        # Pappus: V = 2 pi R0 * A
        assert surf.volume == pytest.approx(2 * np.pi * 2.0 * np.pi * 0.25, rel=1e-3)


class TestQProfile:
    def test_methods_agree(self, eq):
        """Line-integral q vs toroidal-flux-derivative q: independent
        formulations must agree (mask quantisation limits the finite grid)."""
        g, psi, b, f_vac = eq
        levels = np.array([0.3, 0.5, 0.8])
        q_line = safety_factor(g, psi, b, lambda x: f_vac, levels)
        q_flux = q_from_toroidal_flux(
            g, b, np.vectorize(lambda x: f_vac), levels, dlevel=0.1
        )
        assert np.all(np.abs(q_flux / q_line - 1.0) < 0.12)

    def test_q_positive_and_increasing_outward(self, eq):
        g, psi, b, f_vac = eq
        prof = QProfile.compute(g, psi, b, lambda x: f_vac, n_levels=16)
        assert (prof.q > 0).all()
        # monotone outward for this peaked current profile
        assert prof.q[-1] > prof.q[0]

    def test_q_scales_with_field(self, eq):
        """q is linear in F at fixed equilibrium flux."""
        g, psi, b, f_vac = eq
        levels = np.array([0.5])
        q1 = safety_factor(g, psi, b, lambda x: f_vac, levels)[0]
        q2 = safety_factor(g, psi, b, lambda x: 2 * f_vac, levels)[0]
        assert q2 == pytest.approx(2 * q1, rel=1e-12)

    def test_q95_interpolation(self, eq):
        g, psi, b, f_vac = eq
        prof = QProfile.compute(g, psi, b, lambda x: f_vac, n_levels=16)
        assert prof.levels[0] < 0.95 < prof.levels[-1] + 0.03
        assert prof.q.min() <= prof.q95 <= prof.q.max() + 1e-9

    def test_uniform_grid_output(self, eq):
        g, psi, b, f_vac = eq
        prof = QProfile.compute(g, psi, b, lambda x: f_vac, n_levels=12)
        qpsi = prof.on_uniform_grid(65)
        assert qpsi.shape == (65,)
        assert np.all(np.isfinite(qpsi)) and np.all(qpsi > 0)

    def test_toroidal_flux_monotone(self, eq):
        g, psi, b, f_vac = eq
        f = np.vectorize(lambda x: f_vac)
        phis = [toroidal_flux(g, b, f, lv) for lv in (0.2, 0.5, 0.8, 1.0)]
        assert all(a < b2 for a, b2 in zip(phis, phis[1:]))

    def test_level_validation(self, eq):
        g, psi, b, f_vac = eq
        with pytest.raises(BoundaryError):
            safety_factor(g, psi, b, lambda x: f_vac, np.array([1.5]))
        with pytest.raises(BoundaryError):
            toroidal_flux(g, b, np.vectorize(lambda x: f_vac), -0.1)
