"""Tests of the complete g-file assembly from a reconstruction."""

import numpy as np
import pytest

from repro.efit.eqdsk import read_geqdsk, write_geqdsk
from repro.efit.fitting import EfitSolver
from repro.efit.output import geqdsk_from_fit


@pytest.fixture(scope="module")
def fitted(shot33):
    solver = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid)
    return shot33, solver.fit(shot33.measurements)


class TestGeqdskFromFit:
    def test_header_geometry(self, fitted):
        shot, result = fitted
        eq = geqdsk_from_fit(shot, result)
        g = shot.grid
        assert eq.nw == g.nw and eq.nh == g.nh
        assert eq.rleft == pytest.approx(g.rmin)
        assert eq.rdim == pytest.approx(g.rmax - g.rmin)
        assert eq.simag == pytest.approx(result.boundary.psi_axis)
        assert eq.sibry == pytest.approx(result.boundary.psi_boundary)
        assert eq.current == pytest.approx(result.ip)

    def test_profiles_physical(self, fitted):
        shot, result = fitted
        eq = geqdsk_from_fit(shot, result)
        assert (eq.fpol > 0).all()  # F never crosses zero in this device
        assert eq.pres[-1] == pytest.approx(0.0, abs=1e-8)  # p(1) = 0
        assert eq.pres[0] > 0  # finite core pressure
        assert (eq.qpsi > 0).all()

    def test_boundary_contour_closed_and_inside_limiter(self, fitted):
        shot, result = fitted
        eq = geqdsk_from_fit(shot, result)
        assert eq.rbbbs.size >= 64
        inside = shot.machine.limiter.contains(eq.rbbbs, eq.zbbbs)
        assert inside.all()

    def test_psirz_is_fit_flux(self, fitted):
        shot, result = fitted
        eq = geqdsk_from_fit(shot, result)
        assert np.array_equal(eq.psirz, result.psi)

    def test_roundtrips_through_file(self, fitted, tmp_path):
        shot, result = fitted
        eq = geqdsk_from_fit(shot, result, description="roundtrip test")
        path = tmp_path / "g.test"
        write_geqdsk(eq, path)
        back = read_geqdsk(path)
        assert np.allclose(back.psirz, eq.psirz, rtol=1e-8)
        assert np.allclose(back.qpsi, eq.qpsi, rtol=1e-8)
        assert back.description.startswith("roundtrip")
