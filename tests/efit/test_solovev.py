"""Tests of the analytic Solov'ev verification equilibria."""

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.solovev import SolovevEquilibrium
from repro.errors import SolverError
from repro.utils.constants import MU0


class TestBasics:
    def test_delta_star_is_a_r2_plus_c(self, solovev):
        r = np.array([1.2, 1.8])
        z = np.array([0.3, -0.5])
        assert np.allclose(
            solovev.delta_star(r, z), solovev.a_coef * r**2 + solovev.c_coef
        )

    def test_profile_constants(self, solovev):
        assert solovev.pprime == pytest.approx(-solovev.a_coef / MU0)
        assert solovev.ffprime == pytest.approx(-solovev.c_coef)

    def test_j_phi_sign(self, solovev):
        """Negative A and C give positive current density."""
        assert solovev.j_phi(np.array([1.7]), np.array([0.0]))[0] > 0

    def test_coefficient_validation(self):
        with pytest.raises(SolverError):
            SolovevEquilibrium(1.0, 1.0, homogeneous=np.zeros(3))

    def test_grid_sampling_shapes(self, solovev, grid33):
        assert solovev.psi_grid(grid33).shape == grid33.shape
        assert solovev.rhs_grid(grid33).shape == grid33.shape


class TestShapedFactory:
    def test_boundary_points_on_zero_contour(self):
        eq = SolovevEquilibrium.shaped(
            r0=1.7, minor_radius=0.5, elongation=1.5, triangularity=0.3
        )
        for rp, zp in [(2.2, 0.0), (1.2, 0.0), (1.55, 0.75)]:
            assert eq.psi(np.array([rp]), np.array([zp]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_updown_symmetric(self):
        eq = SolovevEquilibrium.shaped()
        r = np.array([1.5, 1.9])
        assert np.allclose(eq.psi(r, 0.4), eq.psi(r, -0.4))

    def test_interior_flux_has_definite_sign(self):
        """Inside the zero contour psi keeps one sign (closed surfaces)."""
        eq = SolovevEquilibrium.shaped()
        g = RZGrid(41, 41, rmin=1.25, rmax=2.1, zmin=-0.5, zmax=0.5)
        vals = eq.psi(g.rr, g.zz)
        interior = vals[10:-10, 10:-10]
        assert (interior > 0).all() or (interior < 0).all()

    def test_invalid_minor_radius(self):
        with pytest.raises(SolverError):
            SolovevEquilibrium.shaped(r0=0.5, minor_radius=0.6)
