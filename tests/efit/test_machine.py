"""Tests of the tokamak machine description."""

import numpy as np
import pytest

from repro.efit.greens import greens_psi
from repro.efit.grid import RZGrid
from repro.efit.machine import Limiter, PoloidalFieldCoil, Tokamak, diiid_like_machine
from repro.errors import MeasurementError


class TestCoil:
    def test_filament_subdivision(self):
        coil = PoloidalFieldCoil("C", 1.5, 0.5, width=0.2, height=0.4, turns=10, nr=2, nz=3)
        rf, zf, wf = coil.filaments
        assert rf.size == 6
        assert wf.sum() == pytest.approx(10.0)
        assert rf.min() > 1.4 and rf.max() < 1.6
        assert zf.min() > 0.3 and zf.max() < 0.7

    def test_single_filament_matches_green(self):
        coil = PoloidalFieldCoil("C", 1.5, 0.5, nr=1, nz=1, turns=1)
        assert coil.psi_at(np.asarray(2.0), np.asarray(0.0)) == pytest.approx(
            greens_psi(2.0, 0.0, 1.5, 0.5)
        )

    def test_turns_scale_linearly(self):
        c1 = PoloidalFieldCoil("A", 1.5, 0.5, turns=1)
        c2 = PoloidalFieldCoil("B", 1.5, 0.5, turns=58)
        p = np.asarray(2.1), np.asarray(0.2)
        assert c2.psi_at(*p) == pytest.approx(58.0 * c1.psi_at(*p))
        assert c2.bz_at(*p) == pytest.approx(58.0 * c1.bz_at(*p))

    def test_crossing_axis_rejected(self):
        with pytest.raises(MeasurementError):
            PoloidalFieldCoil("bad", 0.02, 0.0, width=0.1)

    def test_field_consistency_with_flux(self):
        coil = PoloidalFieldCoil("C", 1.2, 0.8, nr=2, nz=2)
        r, z, h = 1.9, -0.1, 1e-6
        br_fd = -(coil.psi_at(np.asarray(r), np.asarray(z + h)) - coil.psi_at(np.asarray(r), np.asarray(z - h))) / (2 * h * r)
        assert coil.br_at(np.asarray(r), np.asarray(z)) == pytest.approx(br_fd, rel=1e-5)


class TestLimiter:
    @pytest.fixture()
    def square(self):
        return Limiter(np.array([1.0, 2.0, 2.0, 1.0]), np.array([-1.0, -1.0, 1.0, 1.0]))

    def test_contains_inside_outside(self, square):
        assert bool(square.contains(1.5, 0.0))
        assert not bool(square.contains(2.5, 0.0))
        assert not bool(square.contains(1.5, 1.5))

    def test_contains_vectorised(self, square):
        r = np.array([1.5, 0.5, 1.9])
        z = np.array([0.0, 0.0, 0.9])
        assert square.contains(r, z).tolist() == [True, False, True]

    def test_sample_points_on_perimeter(self, square):
        rs, zs = square.sample_points(5)
        assert rs.size == 20
        on_edge = (
            np.isclose(rs, 1.0) | np.isclose(rs, 2.0) | np.isclose(zs, -1.0) | np.isclose(zs, 1.0)
        )
        assert on_edge.all()

    def test_too_few_points_rejected(self):
        with pytest.raises(MeasurementError):
            Limiter(np.array([1.0, 2.0]), np.array([0.0, 0.0]))

    def test_bad_sampling(self, square):
        with pytest.raises(MeasurementError):
            square.sample_points(0)


class TestTokamak:
    def test_diiid_like_shape(self, machine):
        assert machine.n_coils == 18
        assert machine.limiter.n_points >= 32
        assert machine.f_vacuum == pytest.approx(1.69 * 2.0)

    def test_updown_symmetric_coils(self, machine):
        zs = sorted(c.z for c in machine.coils)
        assert np.allclose(zs, -np.array(zs[::-1]))

    def test_coil_index(self, machine):
        assert machine.coils[machine.coil_index("F5B")].name == "F5B"
        with pytest.raises(MeasurementError):
            machine.coil_index("F99")

    def test_duplicate_names_rejected(self, machine):
        with pytest.raises(MeasurementError):
            Tokamak("x", (machine.coils[0], machine.coils[0]), machine.limiter, 1.0)

    def test_limiter_inside_default_box(self, machine):
        rmin, rmax, zmin, zmax = machine.default_box
        assert machine.limiter.r.min() > rmin and machine.limiter.r.max() < rmax
        assert machine.limiter.z.min() > zmin and machine.limiter.z.max() < zmax

    def test_make_grid(self, machine):
        g = machine.make_grid(65)
        assert g.shape == (65, 65)
        assert (g.rmin, g.rmax) == machine.default_box[:2]

    def test_coil_flux_linearity(self, machine):
        g = machine.make_grid(17)
        tables = machine.coil_flux_tables(g)
        assert tables.shape == (18, 17, 17)
        currents = np.zeros(18)
        currents[3] = 2.5e3
        psi = machine.psi_from_coils(g, currents)
        assert np.allclose(psi, 2.5e3 * tables[3])

    def test_psi_from_coils_validates_length(self, machine):
        g = machine.make_grid(17)
        with pytest.raises(MeasurementError):
            machine.psi_from_coils(g, np.zeros(5))

    def test_symmetric_currents_symmetric_flux(self, machine):
        """Equal currents in A/B coil pairs give up-down symmetric flux on
        a symmetric grid."""
        g = RZGrid(17, 17, *machine.default_box)
        psi = machine.psi_from_coils(g, np.ones(machine.n_coils) * 1e3)
        assert np.allclose(psi, psi[:, ::-1], rtol=1e-10)
