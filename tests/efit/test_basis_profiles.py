"""Tests of the polynomial bases and fitted profile evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.efit.basis import PolynomialBasis
from repro.efit.profiles import ProfileCoefficients
from repro.errors import FittingError
from repro.utils.constants import MU0

coeff_arrays = st.lists(
    st.floats(min_value=-10, max_value=10), min_size=1, max_size=5
).map(np.array)


class TestBasis:
    def test_design_matrix_shape(self):
        b = PolynomialBasis(3)
        x = np.linspace(0, 1, 11)
        assert b.design_matrix(x).shape == (11, 3)

    def test_monomials(self):
        b = PolynomialBasis(4)
        x = np.array([0.5])
        assert np.allclose(b.design_matrix(x)[0], [1.0, 0.5, 0.25, 0.125])

    def test_edge_constrained_vanishes_at_one(self):
        b = PolynomialBasis(3, vanish_at_edge=True)
        assert np.allclose(b.design_matrix(np.array([1.0])), 0.0)

    def test_evaluate_matches_polyval(self, rng):
        b = PolynomialBasis(4)
        c = rng.normal(size=4)
        x = np.linspace(0, 1, 9)
        assert np.allclose(b.evaluate(c, x), np.polyval(c[::-1], x))

    def test_needs_one_term(self):
        with pytest.raises(FittingError):
            PolynomialBasis(0)

    def test_coefficient_length_checked(self):
        b = PolynomialBasis(3)
        with pytest.raises(FittingError):
            b.evaluate(np.ones(2), np.array([0.5]))

    @given(coeff_arrays, st.floats(min_value=0, max_value=1))
    @settings(max_examples=60, deadline=None)
    def test_antiderivative_fundamental_theorem(self, coeffs, x):
        """d/dx int_x^1 f = -f(x), checked by central differences."""
        b = PolynomialBasis(len(coeffs))
        h = 1e-6
        x = min(max(x, h), 1 - h)
        fd = (
            b.antiderivative(coeffs, np.array([x + h]))
            - b.antiderivative(coeffs, np.array([x - h]))
        ) / (2 * h)
        assert fd[0] == pytest.approx(-b.evaluate(coeffs, np.array([x]))[0], rel=1e-4, abs=1e-5)

    @given(coeff_arrays)
    @settings(max_examples=40, deadline=None)
    def test_antiderivative_zero_at_one(self, coeffs):
        b = PolynomialBasis(len(coeffs))
        assert b.antiderivative(coeffs, np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-12)

    @given(coeff_arrays)
    @settings(max_examples=40, deadline=None)
    def test_edge_constrained_antiderivative_zero_at_one(self, coeffs):
        b = PolynomialBasis(len(coeffs), vanish_at_edge=True)
        assert b.antiderivative(coeffs, np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_len(self):
        assert len(PolynomialBasis(3)) == 3


class TestProfiles:
    @pytest.fixture()
    def profiles(self):
        return ProfileCoefficients(
            PolynomialBasis(2), PolynomialBasis(3), np.array([2.0, -1.0]), np.array([0.5, 0.1, -0.4])
        )

    def test_vector_roundtrip(self, profiles):
        vec = profiles.as_vector()
        rebuilt = ProfileCoefficients.from_vector(
            profiles.pp_basis, profiles.ffp_basis, vec
        )
        assert np.array_equal(rebuilt.alpha, profiles.alpha)
        assert np.array_equal(rebuilt.beta, profiles.beta)

    def test_length_validation(self):
        with pytest.raises(FittingError):
            ProfileCoefficients(PolynomialBasis(2), PolynomialBasis(2), np.ones(3), np.ones(2))
        with pytest.raises(FittingError):
            ProfileCoefficients.from_vector(PolynomialBasis(2), PolynomialBasis(2), np.ones(5))

    def test_pressure_zero_at_boundary(self, profiles):
        p = profiles.pressure(np.array([1.0]), psi_axis=0.0, psi_boundary=-1.0)
        assert p[0] == pytest.approx(0.0, abs=1e-14)

    def test_pressure_derivative_consistency(self, profiles):
        """dp/dpsiN = -dpsi * (-p') ... i.e. p' in psi: finite difference of
        pressure against pprime."""
        psi_axis, psi_b = 0.3, -0.8
        dpsi = psi_b - psi_axis
        x = np.array([0.4])
        h = 1e-6
        fd = (
            profiles.pressure(x + h, psi_axis, psi_b) - profiles.pressure(x - h, psi_axis, psi_b)
        ) / (2 * h)
        # dp/dx = p'(x) * dpsi/dx = pprime * dpsi
        assert fd[0] == pytest.approx(profiles.pprime(x)[0] * dpsi, rel=1e-6)

    def test_f_squared_boundary_value(self, profiles):
        f2 = profiles.f_squared(np.array([1.0]), 0.2, -0.9, f_boundary=3.38)
        assert f2[0] == pytest.approx(3.38**2)

    def test_f_squared_derivative_consistency(self, profiles):
        psi_axis, psi_b, fb = 0.2, -0.9, 3.38
        dpsi = psi_b - psi_axis
        x = np.array([0.35])
        h = 1e-6
        fd = (
            profiles.f_squared(x + h, psi_axis, psi_b, fb)
            - profiles.f_squared(x - h, psi_axis, psi_b, fb)
        ) / (2 * h)
        # d(F^2)/dx = 2 F F' dpsi
        assert fd[0] == pytest.approx(2.0 * profiles.ffprime(x)[0] * dpsi, rel=1e-6)

    def test_current_density_formula(self, profiles):
        r = np.array([1.7])
        x = np.array([0.5])
        expected = r * profiles.pprime(x) + profiles.ffprime(x) / (MU0 * r)
        assert np.allclose(profiles.toroidal_current_density(r, x), expected)

    def test_n_coeffs(self, profiles):
        assert profiles.n_coeffs == 5
