"""Tests of the MSE (kinetic-constraint) extension."""

import numpy as np
import pytest

from repro.efit.diagnostics import DiagnosticSet, MSEChannel
from repro.efit.fitting import EfitSolver
from repro.efit.greens import greens_bz
from repro.efit.measurements import synthetic_shot_186610
from repro.errors import MeasurementError


@pytest.fixture(scope="module")
def mse_shot():
    return synthetic_shot_186610(33, n_mse=16)


class TestChannel:
    def test_response_is_normalised_bz(self, grid33):
        ch = MSEChannel("M", 2.0, 0.0, f_vacuum=3.38)
        resp = ch.response_to_grid(grid33)
        bz = greens_bz(2.0, 0.0, grid33.rr, grid33.zz)
        assert np.allclose(resp, bz * 2.0 / 3.38)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            MSEChannel("M", -1.0, 0.0, 3.38)
        with pytest.raises(MeasurementError):
            MSEChannel("M", 2.0, 0.0, 0.0)

    def test_channels_inside_plasma(self, mse_shot):
        """MSE is an *internal* diagnostic: channels sit inside the limiter
        (unlike the flux loops and probes)."""
        for ch in mse_shot.diagnostics.mse:
            assert bool(mse_shot.machine.limiter.contains(ch.r, ch.z))

    def test_row_ordering_keeps_rogowski_last(self, mse_shot):
        d = mse_shot.diagnostics
        assert d.names[-1] == "IP"
        assert d.n_measurements == 40 + 60 + 16 + 1
        assert mse_shot.measurements.ip == pytest.approx(1.0e6, rel=5e-3)


class TestKineticFit:
    def test_fit_converges_with_mse(self, mse_shot):
        s = EfitSolver(mse_shot.machine, mse_shot.diagnostics, mse_shot.grid)
        res = s.fit(mse_shot.measurements)
        assert res.converged
        assert res.chi2 < 4 * mse_shot.measurements.n_measurements

    def test_mse_sharpens_pprime_under_noise(self):
        """The kinetic constraint pins the p' coefficients far better than
        external magnetics alone — the reason EFIT-AI carries MSE.  The
        effect shows once measurement noise is realistic (0.5%): the
        p'/FF' split is the softest direction of the magnetics-only fit."""
        noise = 5e-3
        plain = synthetic_shot_186610(33, n_mse=0, noise=noise)
        kinetic = synthetic_shot_186610(33, n_mse=16, noise=noise)
        res_plain = EfitSolver(plain.machine, plain.diagnostics, plain.grid).fit(
            plain.measurements
        )
        res_mse = EfitSolver(kinetic.machine, kinetic.diagnostics, kinetic.grid).fit(
            kinetic.measurements
        )
        truth = plain.truth.profiles.alpha
        err_plain = abs(res_plain.profiles.alpha[0] / truth[0] - 1.0)
        err_mse = abs(res_mse.profiles.alpha[0] / truth[0] - 1.0)
        assert err_mse < err_plain / 2.5

    def test_mse_does_not_degrade_flux_map(self, mse_shot):
        s = EfitSolver(mse_shot.machine, mse_shot.diagnostics, mse_shot.grid)
        res = s.fit(mse_shot.measurements)
        err = np.abs(res.psi - mse_shot.truth.psi).max() / np.ptp(mse_shot.truth.psi)
        assert err < 4e-3

    def test_for_machine_zero_mse_default(self, machine):
        d = DiagnosticSet.for_machine(machine)
        assert d.mse == ()
