"""Tests of the boundary Green tables (the gridpc layout)."""

import numpy as np
import pytest

from repro.efit.greens import greens_psi, self_flux_per_radian
from repro.efit.grid import RZGrid
from repro.efit.tables import (
    BoundaryGreensTables,
    build_boundary_tables,
    cached_boundary_tables,
    effective_filament_radius,
)
from repro.errors import GreensError


class TestConstruction:
    def test_shape(self, grid_rect, tables_rect):
        assert tables_rect.gpc.shape == (grid_rect.nw, grid_rect.nh, grid_rect.nw)

    def test_wrong_shape_rejected(self, grid_rect):
        with pytest.raises(GreensError):
            BoundaryGreensTables(grid_rect, np.zeros((3, 3, 3)))

    def test_nbytes(self, grid_rect, tables_rect):
        assert tables_rect.nbytes == grid_rect.nw**2 * grid_rect.nh * 8

    def test_all_entries_positive(self, tables_rect):
        """Flux of a positive filament is positive everywhere, including
        the regularised self terms."""
        assert (tables_rect.gpc > 0).all()

    def test_cached_builder_returns_same_object(self, grid_rect):
        a = cached_boundary_tables(grid_rect)
        b = cached_boundary_tables(RZGrid(grid_rect.nw, grid_rect.nh))
        assert a is b


class TestEntries:
    def test_entry_matches_green_function(self, grid_rect, tables_rect):
        g = grid_rect
        for i_b, dj, ii in [(0, 3, 5), (g.nw - 1, 1, 0), (4, 7, 4), (2, 0, 9)]:
            expected = greens_psi(g.r[i_b], 0.0, g.r[ii], dj * g.dz)
            assert tables_rect.gpc[i_b, dj, ii] == pytest.approx(expected, rel=1e-12)

    def test_self_term_regularised(self, grid_rect, tables_rect):
        g = grid_rect
        a_eff = effective_filament_radius(g)
        for i_b in (0, 3, g.nw - 1):
            expected = self_flux_per_radian(g.r[i_b], a_eff)
            assert tables_rect.gpc[i_b, 0, i_b] == pytest.approx(expected, rel=1e-12)

    def test_decay_in_dz(self, tables_rect):
        """Entries decay monotonically with vertical separation."""
        col = tables_rect.gpc[0, 1:, 5]  # skip dj=0 (off-diagonal anyway)
        assert (np.diff(col) < 0).all()


class TestFortranView:
    def test_is_a_view(self, tables_rect):
        view = tables_rect.fortran_view()
        assert view.base is tables_rect.gpc or view.base is tables_rect.gpc.base

    def test_paper_indexing(self, grid_rect, tables_rect):
        """Row i_b*nh + mj, column ii — exactly the Figure 2/3 layout."""
        g = grid_rect
        view = tables_rect.fortran_view()
        assert view.shape == (g.nw * g.nh, g.nw)
        for i_b, mj, ii in [(0, 2, 3), (g.nw - 1, 5, 1)]:
            assert view[i_b * g.nh + mj, ii] == tables_rect.gpc[i_b, mj, ii]

    def test_edge_blocks(self, grid_rect, tables_rect):
        assert np.array_equal(tables_rect.left_block(), tables_rect.gpc[0])
        assert np.array_equal(
            tables_rect.right_block(), tables_rect.gpc[grid_rect.nw - 1]
        )


class TestBuild:
    def test_build_rejects_bad_chunk(self, grid_rect):
        with pytest.raises(GreensError):
            build_boundary_tables(grid_rect, chunk=0)

    def test_effective_radius_smaller_than_cell(self):
        g = RZGrid(9, 9)
        a = effective_filament_radius(g)
        assert 0.0 < a < max(g.dr, g.dz)
