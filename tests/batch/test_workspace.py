"""Tests of the preallocated workspace arena and its counters."""

import numpy as np
import pytest

from repro.batch.workspace import FitWorkspace
from repro.errors import FittingError
from repro.runtime.counters import WorkspaceCounters


class TestFitWorkspace:
    def test_same_request_returns_same_buffer(self):
        ws = FitWorkspace()
        a = ws.array("psi", (8, 8))
        b = ws.array("psi", (8, 8))
        assert a is b
        assert ws.counters.allocations == 1
        assert ws.counters.reuses == 1

    def test_zero_allocations_after_warmup(self):
        """The acceptance-criterion invariant: once every buffer exists,
        steady-state requests never allocate."""
        ws = FitWorkspace()
        names = [("pcurr", (64, 8)), ("rhs", (8, 33, 33)), ("edge", (128, 8))]
        for name, shape in names:
            ws.array(name, shape)
        warm_allocs = ws.counters.allocations
        for _ in range(100):
            for name, shape in names:
                ws.array(name, shape)
        assert ws.counters.allocations == warm_allocs
        assert ws.counters.reuses == 100 * len(names)
        assert ws.counters.reuse_fraction == pytest.approx(
            300 / (300 + warm_allocs)
        )

    def test_shape_change_reallocates(self):
        ws = FitWorkspace()
        a = ws.array("buf", (4, 4))
        b = ws.array("buf", (4, 5))
        assert a is not b
        assert b.shape == (4, 5)
        assert ws.counters.allocations == 2
        assert ws.counters.resident_bytes == b.nbytes

    def test_dtype_change_reallocates(self):
        ws = FitWorkspace()
        ws.array("buf", (4,))
        b = ws.array("buf", (4,), dtype=np.intp)
        assert b.dtype == np.intp
        assert ws.counters.allocations == 2

    def test_resident_bytes_tracks_arena(self):
        ws = FitWorkspace()
        ws.array("a", (10, 10))
        ws.array("b", (5,))
        assert ws.counters.resident_bytes == ws.nbytes == 100 * 8 + 5 * 8

    def test_external_counters_shared(self):
        counters = WorkspaceCounters()
        ws = FitWorkspace(counters)
        ws.array("x", (3,))
        assert counters.allocations == 1

    def test_empty_name_rejected(self):
        with pytest.raises(FittingError):
            FitWorkspace().array("", (3,))

    def test_introspection_and_clear(self):
        ws = FitWorkspace()
        ws.array("a", (2,))
        ws.array("b", (2,))
        assert "a" in ws and "c" not in ws
        assert len(ws) == 2
        assert set(ws.names()) == {"a", "b"}
        ws.clear()
        assert len(ws) == 0
        assert ws.nbytes == 0
        assert ws.counters.resident_bytes == 0
        assert ws.counters.allocations == 2  # history survives clear()
