"""Per-slice warm-start seeds through the batched engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.errors import FittingError


@pytest.fixture(scope="module")
def engine(shot33):
    return BatchFitEngine(
        shot33.machine, shot33.diagnostics, shot33.grid, batch_size=2
    )


@pytest.fixture(scope="module")
def slices(shot33):
    return synthetic_slice_sequence(shot33, 4, seed=3)


@pytest.fixture(scope="module")
def cold_batch(engine, slices):
    return engine.fit_many(slices)


class TestWarmBatch:
    def test_seeded_slices_converge_faster(self, engine, slices, cold_batch):
        seeds = [r.psi for r in cold_batch.results]
        warm = engine.fit_many(slices, psi_initial=seeds)
        for w, c in zip(warm.results, cold_batch.results):
            assert w.converged and w.warm_start
            assert w.iterations < c.iterations

    def test_sparse_seeding_mixes_warm_and_cold(self, engine, slices, cold_batch):
        """None entries stay cold; only the seeded slice goes warm."""
        seeds = [None, cold_batch.results[1].psi, None, None]
        mixed = engine.fit_many(slices, psi_initial=seeds)
        flags = [r.warm_start for r in mixed.results]
        assert flags == [False, True, False, False]
        assert mixed.results[1].iterations < cold_batch.results[1].iterations
        for k in (0, 2, 3):
            np.testing.assert_array_equal(
                mixed.results[k].psi, cold_batch.results[k].psi
            )

    def test_warm_batch_matches_warm_serial_solver(
        self, engine, slices, cold_batch
    ):
        """A warm batched slice runs the same op sequence as a warm
        serial fit up to GEMM-shape round-off: identical iteration
        counts, matching flux maps."""
        seeds = [r.psi for r in cold_batch.results]
        warm = engine.fit_many(slices, psi_initial=seeds)
        for m, seed, w in zip(slices, seeds, warm.results):
            serial = engine.solver.fit(m, psi_initial=seed)
            assert serial.iterations == w.iterations
            np.testing.assert_allclose(serial.psi, w.psi, rtol=1e-12, atol=1e-12)

    def test_seed_length_mismatch_rejected(self, engine, slices):
        with pytest.raises(FittingError):
            engine.fit_many(slices, psi_initial=[None, None])
