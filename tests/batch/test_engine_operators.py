"""BatchFitEngine boundary_method / edge_operator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.efit.operators import cached_edge_operator
from repro.efit.tables import cached_boundary_tables
from repro.errors import FittingError, OperatorError


@pytest.fixture(scope="module")
def slices4(shot33):
    return synthetic_slice_sequence(shot33, 4, seed=11)


@pytest.fixture(scope="module")
def dense_batch(shot33, slices4):
    engine = BatchFitEngine(
        shot33.machine, shot33.diagnostics, shot33.grid, batch_size=2
    )
    return engine.fit_many(slices4)


def _rel_dev(dense_batch, batch):
    worst = 0.0
    for a, b in zip(dense_batch.results, batch.results):
        scale = np.max(np.abs(a.psi))
        worst = max(worst, np.max(np.abs(a.psi - b.psi)) / scale)
    return worst


class TestBoundaryMethodKwarg:
    def test_default_is_dense(self, shot33):
        engine = BatchFitEngine(shot33.machine, shot33.diagnostics, shot33.grid)
        assert engine.boundary_method == "dense"
        assert engine.edge_op.method == "dense"

    @pytest.mark.parametrize("method,bound", [("lowrank", 1e-10), ("toeplitz", 1e-10)])
    def test_fp64_methods_track_dense(self, shot33, slices4, dense_batch, method, bound):
        engine = BatchFitEngine(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            batch_size=2,
            boundary_method=method,
        )
        batch = engine.fit_many(slices4)
        assert engine.boundary_method == method
        assert _rel_dev(dense_batch, batch) <= bound

    def test_fp32_refined_within_loose_bound(self, shot33, slices4, dense_batch):
        engine = BatchFitEngine(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            batch_size=2,
            boundary_method="lowrank-fp32",
        )
        assert _rel_dev(dense_batch, engine.fit_many(slices4)) <= 1e-5

    def test_unknown_method_rejected(self, shot33):
        with pytest.raises(OperatorError, match="dense"):
            BatchFitEngine(
                shot33.machine,
                shot33.diagnostics,
                shot33.grid,
                boundary_method="butterfly",
            )


class TestEdgeOperatorInstance:
    def test_prebuilt_operator_accepted(self, shot33, slices4, dense_batch):
        """Fleet workers inject the shared-arena operator this way."""
        op = cached_edge_operator(cached_boundary_tables(shot33.grid), "lowrank")
        engine = BatchFitEngine(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            batch_size=2,
            edge_operator=op,
            boundary_method="lowrank",
        )
        assert engine.edge_op is op
        assert _rel_dev(dense_batch, engine.fit_many(slices4)) <= 1e-10

    def test_method_mismatch_rejected(self, shot33):
        op = cached_edge_operator(cached_boundary_tables(shot33.grid), "lowrank")
        with pytest.raises(FittingError, match="boundary_method"):
            BatchFitEngine(
                shot33.machine,
                shot33.diagnostics,
                shot33.grid,
                edge_operator=op,
                boundary_method="toeplitz",
            )

    def test_raw_ndarray_back_compat(self, shot33, slices4, dense_batch):
        """Pre-operator callers passed the dense matrix; still bit-exact."""
        tables = cached_boundary_tables(shot33.grid)
        matrix = cached_edge_operator(tables, "dense").to_arrays()["matrix"]
        engine = BatchFitEngine(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            batch_size=2,
            edge_operator=np.array(matrix),
        )
        assert engine.boundary_method == "dense"
        batch = engine.fit_many(slices4)
        for a, b in zip(dense_batch.results, batch.results):
            np.testing.assert_array_equal(a.psi, b.psi)

    def test_wrong_shape_ndarray_rejected(self, shot33):
        with pytest.raises(FittingError, match="shape"):
            BatchFitEngine(
                shot33.machine,
                shot33.diagnostics,
                shot33.grid,
                edge_operator=np.zeros((3, 3)),
            )
