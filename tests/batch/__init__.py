"""Tests of the batched multi-slice reconstruction layer."""
