"""Tests of the batch engine against the serial single-slice driver."""

import numpy as np
import pytest

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.errors import ConvergenceError, FittingError, MeasurementError


@pytest.fixture(scope="module")
def slices6(shot33):
    return synthetic_slice_sequence(shot33, 6, seed=7)


@pytest.fixture(scope="module")
def serial_results(shot33, slices6):
    from repro.efit.fitting import EfitSolver

    solver = EfitSolver(shot33.machine, shot33.diagnostics, shot33.grid)
    return [solver.fit(m) for m in slices6]


@pytest.fixture(scope="module")
def engine(shot33):
    return BatchFitEngine(
        shot33.machine, shot33.diagnostics, shot33.grid, batch_size=4
    )


class TestEngineVsSerial:
    def test_psi_matches_serial(self, engine, slices6, serial_results):
        """Batched and serial reconstructions agree to <= 1e-10 relative
        (acceptance criterion; in practice they track to round-off)."""
        batch = engine.fit_many(slices6)
        assert len(batch.results) == len(slices6)
        for serial, batched in zip(serial_results, batch.results):
            scale = np.max(np.abs(serial.psi))
            assert np.max(np.abs(serial.psi - batched.psi)) <= 1e-10 * scale
            assert batched.converged == serial.converged
            assert len(batched.history) == len(serial.history)
            assert batched.chi2 == pytest.approx(serial.chi2, rel=1e-9)

    def test_ragged_final_batch(self, engine, slices6):
        """Six slices at batch_size=4 exercise the 4+2 split."""
        batch = engine.fit_many(slices6)
        assert batch.stats.n_slices == 6
        assert batch.stats.n_converged == 6

    def test_two_workers_match_single(self, shot33, slices6, serial_results):
        engine2 = BatchFitEngine(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            batch_size=2,
            n_workers=2,
        )
        batch = engine2.fit_many(slices6)
        for serial, batched in zip(serial_results, batch.results):
            scale = np.max(np.abs(serial.psi))
            assert np.max(np.abs(serial.psi - batched.psi)) <= 1e-10 * scale


class TestEngineSteadyState:
    def test_zero_allocations_after_warmup(self, engine, slices6):
        """Repeat runs reuse every workspace buffer: the allocation count
        is flat while the reuse count keeps climbing."""
        engine.fit_many(slices6)  # warm-up (may allocate)
        warm = engine.workspace_counters()
        engine.fit_many(slices6)
        engine.fit_many(slices6)
        steady = engine.workspace_counters()
        assert steady.allocations == warm.allocations
        assert steady.reuses > warm.reuses
        assert steady.resident_bytes == warm.resident_bytes

    def test_stats_sane(self, engine, slices6):
        stats = engine.fit_many(slices6).stats
        assert stats.n_slices == 6
        assert stats.wall_seconds > 0
        assert stats.slices_per_second > 0
        assert 0 < stats.latency_p50 <= stats.latency_p95 <= stats.wall_seconds * 1.01
        assert stats.total_iterations >= stats.n_slices
        assert "slices/s" in stats.summary()

    def test_latencies_returned_per_slice(self, engine, slices6):
        batch = engine.fit_many(slices6)
        assert batch.latencies.shape == (6,)
        assert (batch.latencies > 0).all()


class TestEngineValidation:
    def test_bad_construction(self, shot33):
        with pytest.raises(FittingError):
            BatchFitEngine(
                shot33.machine, shot33.diagnostics, shot33.grid, batch_size=0
            )
        with pytest.raises(FittingError):
            BatchFitEngine(
                shot33.machine, shot33.diagnostics, shot33.grid, n_workers=0
            )

    def test_empty_slices_rejected(self, engine):
        with pytest.raises(FittingError):
            engine.fit_many([])

    def test_unconverged_raises_unless_waived(self, shot33, slices6):
        tight = BatchFitEngine(
            shot33.machine,
            shot33.diagnostics,
            shot33.grid,
            batch_size=4,
            max_iters=3,
        )
        with pytest.raises(ConvergenceError):
            tight.fit_many(slices6[:2])
        batch = tight.fit_many(slices6[:2], require_convergence=False)
        assert not any(r.converged for r in batch.results)
        assert batch.stats.n_converged == 0


class TestSliceSequence:
    def test_slices_distinct_but_same_channels(self, shot33):
        slices = synthetic_slice_sequence(shot33, 3, seed=2)
        base = shot33.measurements
        for m in slices:
            assert m.names == base.names
            assert np.array_equal(m.uncertainties, base.uncertainties)
            assert not np.array_equal(m.values, base.values)
        assert not np.array_equal(slices[0].values, slices[1].values)

    def test_zero_noise_reproduces_base(self, shot33):
        m = synthetic_slice_sequence(shot33, 1, noise_scale=0.0)[0]
        assert np.array_equal(m.values, shot33.measurements.values)

    def test_validation(self, shot33):
        with pytest.raises(MeasurementError):
            synthetic_slice_sequence(shot33, 0)
        with pytest.raises(MeasurementError):
            synthetic_slice_sequence(shot33, 2, noise_scale=-0.1)
