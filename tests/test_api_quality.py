"""API quality gates: docstrings, __all__ hygiene, error taxonomy.

These meta-tests keep the library documentation honest as it grows:
every public module, class and function must carry a docstring, every
``__all__`` entry must exist, and every library error must derive from
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors

MODULES = sorted(
    m.name
    for m in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not m.name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_entries_resolve(module_name):
    mod = importlib.import_module(module_name)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    mod = importlib.import_module(module_name)
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{module_name}.{name} lacks a docstring"
            )


def test_error_taxonomy_rooted():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, Exception)
        if exc is not errors.ReproError:
            assert issubclass(exc, errors.ReproError), f"{name} escapes ReproError"


def test_every_error_class_exported():
    import inspect as _inspect

    classes = {
        name
        for name, obj in vars(errors).items()
        if _inspect.isclass(obj) and issubclass(obj, Exception)
    }
    assert classes == set(errors.__all__)


def test_version_consistent():
    from repro.version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
