"""Shared fixtures.

Expensive objects (the synthetic shot, Green tables, the reference
machine) are session-scoped: they are deterministic and read-only in every
test that uses them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.grid import RZGrid
from repro.efit.machine import diiid_like_machine
from repro.efit.measurements import synthetic_shot_186610
from repro.efit.solovev import SolovevEquilibrium
from repro.efit.tables import cached_boundary_tables


@pytest.fixture(scope="session")
def machine():
    return diiid_like_machine()


@pytest.fixture(scope="session")
def grid33():
    return RZGrid(33, 33)


@pytest.fixture(scope="session")
def grid_rect():
    """A deliberately non-square grid to catch nw/nh transposition bugs."""
    return RZGrid(17, 23)


@pytest.fixture(scope="session")
def tables_rect(grid_rect):
    return cached_boundary_tables(grid_rect)


@pytest.fixture(scope="session")
def solovev():
    return SolovevEquilibrium.shaped()


@pytest.fixture(scope="session")
def shot33():
    return synthetic_shot_186610(33)


@pytest.fixture()
def rng():
    return np.random.default_rng(20230513)
