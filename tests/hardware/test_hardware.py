"""Tests of the device models and the roofline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hardware import (
    a100,
    attainable_gflops,
    epyc_7763_milan,
    epyc_7a53_optimized,
    mi250x_gcd,
    pvc_stack,
    roofline_time,
    xeon_sapphire_rapids,
)
from repro.hardware.arch import CPUArchitecture, GPUArchitecture
from repro.hardware.roofline import occupancy_factor


class TestDeviceCatalog:
    def test_paper_flop_rate_relations(self):
        """Section 4.1: a PVC stack has ~1.5x the A100 FP64 rate and ~0.6x
        one MI250X GCD."""
        ratio_a100 = pvc_stack().peak_fp64_gflops / a100().peak_fp64_gflops
        ratio_gcd = pvc_stack().peak_fp64_gflops / mi250x_gcd().peak_fp64_gflops
        assert ratio_a100 == pytest.approx(1.5, rel=0.05)
        assert ratio_gcd == pytest.approx(0.6, rel=0.05)

    def test_bandwidths_comparable(self):
        """Section 4.1: comparable HBM bandwidth across the three devices."""
        bws = [a100().hbm_bw_gbs, mi250x_gcd().hbm_bw_gbs, pvc_stack().hbm_bw_gbs]
        assert max(bws) / min(bws) < 1.35

    def test_a100_datasheet(self):
        g = a100()
        assert g.peak_fp64_gflops == pytest.approx(9700, rel=0.01)
        assert g.compute_units == 108 and g.simd_width == 32
        assert g.unified_memory

    def test_mi250x_gcd_small_llc(self):
        """The 8 MB GCD L2 (vs 40 MB on A100) is the paper's data-reuse
        pain point."""
        assert mi250x_gcd().llc_mib < a100().llc_mib / 4

    def test_pvc_has_no_unified_memory(self):
        assert not pvc_stack().unified_memory

    def test_machine_balance_all_compute_rich(self):
        for g in (a100(), mi250x_gcd(), pvc_stack()):
            assert g.machine_balance > 5.0  # FLOPs/byte: all bandwidth-starved

    def test_validation(self):
        with pytest.raises(HardwareError):
            GPUArchitecture(
                name="x", vendor="X", peak_fp64_gflops=-1, hbm_bw_gbs=100,
                hbm_efficiency=0.8, llc_mib=1, compute_units=1, simd_width=1,
                threads_for_saturation=1, kernel_launch_us=1, host_link_gbs=1,
                page_kib=4, page_fault_us=1, fault_batch_pages=1, hbm_gib=40,
                unified_memory=True,
            )

    def test_hbm_capacities(self):
        assert a100().hbm_gib == 40.0
        assert mi250x_gcd().hbm_gib == 64.0


class TestCPUs:
    def test_three_percent_optimization(self):
        """Section 6: scalar reductions gave 3x on the CPU."""
        for cpu in (epyc_7763_milan(), epyc_7a53_optimized(), xeon_sapphire_rapids()):
            ratio = cpu.sustained_gflops_optimized / cpu.sustained_gflops_baseline
            assert ratio == pytest.approx(3.0, rel=0.01)

    def test_core_counts_match_paper(self):
        assert epyc_7763_milan().cores_per_node == 64
        assert epyc_7a53_optimized().cores_per_node == 64
        assert xeon_sapphire_rapids().cores_per_node == 104

    def test_sustained_selector(self):
        cpu = epyc_7763_milan()
        assert cpu.sustained_gflops(False) == cpu.sustained_gflops_baseline
        assert cpu.sustained_gflops(True) == cpu.sustained_gflops_optimized

    def test_validation(self):
        with pytest.raises(HardwareError):
            CPUArchitecture("x", "X", 2.0, 1.0, 20.0, 4.0, 1.0, 64)


class TestRoofline:
    def test_compute_bound_limit(self):
        g = a100()
        flops = 1e12
        t = roofline_time(g, flops, 1.0)
        assert t == pytest.approx(flops / (g.peak_fp64_gflops * 1e9))

    def test_memory_bound_limit(self):
        g = a100()
        nbytes = 1e10
        t = roofline_time(g, 1.0, nbytes)
        assert t == pytest.approx(nbytes / (g.hbm_bw_gbs * 1e9 * g.hbm_efficiency))

    def test_efficiencies_slow_things_down(self):
        g = mi250x_gcd()
        fast = roofline_time(g, 1e10, 1e9)
        slow = roofline_time(g, 1e10, 1e9, compute_efficiency=0.5, bandwidth_efficiency=0.5)
        assert slow > fast

    def test_validation(self):
        with pytest.raises(HardwareError):
            roofline_time(a100(), -1, 0)
        with pytest.raises(HardwareError):
            roofline_time(a100(), 1, 1, compute_efficiency=0.0)

    def test_attainable_ridge(self):
        g = a100()
        low = attainable_gflops(g, 0.1)
        high = attainable_gflops(g, 1e6)
        assert low < g.peak_fp64_gflops
        assert high == g.peak_fp64_gflops

    @given(st.floats(min_value=1, max_value=1e7))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded(self, threads):
        occ = occupancy_factor(a100(), threads)
        assert 0.02 <= occ <= 1.0

    def test_occupancy_monotone(self):
        g = mi250x_gcd()
        vals = [occupancy_factor(g, t) for t in (1e3, 1e4, 1e5, 1e6)]
        assert all(a <= b for a, b in zip(vals, vals[1:]))

    @given(st.floats(min_value=0, max_value=1e12), st.floats(min_value=0, max_value=1e12))
    @settings(max_examples=50, deadline=None)
    def test_roofline_monotone_in_work(self, flops, nbytes):
        g = pvc_stack()
        t1 = roofline_time(g, flops, nbytes)
        t2 = roofline_time(g, flops * 2, nbytes * 2)
        assert t2 >= t1
