"""Tests of compiler models: flag parsing, configuration, lowering."""

import pytest

from repro.compilers.cce import CceCompiler
from repro.compilers.flags import parse_flags
from repro.compilers.nvhpc import NvhpcCompiler
from repro.compilers.oneapi import OneApiCompiler
from repro.compilers.registry import compiler_for_vendor
from repro.config import frontier_env, perlmutter_env, sunspot_env
from repro.core.offload import build_pflux_registry
from repro.errors import CompilerError, UnsupportedTargetError
from repro.hardware.amd import mi250x_gcd
from repro.hardware.intel import pvc_stack
from repro.hardware.nvidia import a100
from repro.runtime.allocator import AllocationPolicy


class TestFlagParsing:
    @pytest.mark.parametrize(
        "line,model,managed,sysalloc",
        [
            ("-mp=gpu -gpu=cc80,managed", "openmp", True, False),
            ("-acc -gpu=cc80,managed", "openacc", True, False),
            ("-h omp -hsystem_alloc", "openmp", False, True),
            ("-h acc -hsystem_alloc", "openacc", False, True),
            ("-h omp", "openmp", False, False),
            ("-fopenmp -fopenmp-targets=spir64", "openmp", False, False),
        ],
    )
    def test_table3_lines(self, line, model, managed, sysalloc):
        f = parse_flags(line)
        assert f.model == model
        assert f.managed_memory is managed
        assert f.system_alloc is sysalloc

    def test_spir64_target_captured(self):
        assert parse_flags("-fopenmp -fopenmp-targets=spir64").target == "spir64"

    def test_unknown_flag_rejected(self):
        with pytest.raises(CompilerError):
            parse_flags("-O3")
        with pytest.raises(CompilerError):
            parse_flags("-h weird")
        with pytest.raises(CompilerError):
            parse_flags("-h")

    def test_no_model_rejected(self):
        with pytest.raises(CompilerError):
            parse_flags("-gpu=cc80")


class TestConfiguration:
    def test_nvhpc_requires_managed(self):
        c = NvhpcCompiler()
        with pytest.raises(CompilerError):
            c.configure(parse_flags("-mp=gpu -gpu=cc80"), perlmutter_env(), a100())

    def test_nvhpc_build(self):
        c = NvhpcCompiler()
        b = c.configure(parse_flags("-acc -gpu=cc80,managed"), perlmutter_env(), a100())
        assert b.unified_memory
        assert b.allocation_policy is AllocationPolicy.ARENA_REUSE
        assert b.model == "openacc"

    def test_cce_requires_unified_memory_env(self):
        c = CceCompiler()
        with pytest.raises(CompilerError):
            c.configure(parse_flags("-h omp -hsystem_alloc"), perlmutter_env(), mi250x_gcd())

    def test_cce_allocator_policy_from_flags(self):
        c = CceCompiler()
        fast = c.configure(parse_flags("-h omp -hsystem_alloc"), frontier_env(), mi250x_gcd())
        assert fast.allocation_policy is AllocationPolicy.ARENA_REUSE
        slow = c.configure(
            parse_flags("-h omp"), frontier_env(system_alloc=False), mi250x_gcd()
        )
        assert slow.allocation_policy is AllocationPolicy.TRIM_ON_FREE

    def test_oneapi_requires_spir64(self):
        c = OneApiCompiler()
        with pytest.raises(CompilerError):
            c.configure(parse_flags("-fopenmp"), sunspot_env(), pvc_stack())

    def test_oneapi_target_data_switch(self):
        c = OneApiCompiler()
        flags = parse_flags("-fopenmp -fopenmp-targets=spir64")
        assert c.configure(flags, sunspot_env(), pvc_stack()).use_target_data
        assert not c.configure(
            flags, sunspot_env(), pvc_stack(), use_target_data=False
        ).use_target_data

    def test_no_openacc_for_intel(self):
        """'OpenACC data on Intel GPUs are not available since there are no
        OpenACC compilers supporting Intel GPUs' (Section 6.1)."""
        c = OneApiCompiler()
        assert not c.supports("openacc", pvc_stack())
        with pytest.raises(UnsupportedTargetError):
            c.check_target("openacc", pvc_stack())

    def test_cross_vendor_rejected(self):
        with pytest.raises(UnsupportedTargetError):
            NvhpcCompiler().check_target("openmp", mi250x_gcd())
        with pytest.raises(UnsupportedTargetError):
            CceCompiler().check_target("openacc", a100())

    def test_registry(self):
        assert isinstance(compiler_for_vendor("NVIDIA"), NvhpcCompiler)
        assert isinstance(compiler_for_vendor("AMD"), CceCompiler)
        assert isinstance(compiler_for_vendor("Intel"), OneApiCompiler)
        with pytest.raises(UnsupportedTargetError):
            compiler_for_vendor("Imagination")


class TestLowering:
    @pytest.fixture(scope="class")
    def registry(self):
        return build_pflux_registry(129)

    def test_boundary_plan_shapes(self, registry):
        k = registry.get("boundary_lr")
        nv = NvhpcCompiler().lower(k, "openmp", a100())
        assert nv.teams == 129  # outer loop distributed
        assert nv.threads_per_team == 256
        assert nv.traffic_factor == pytest.approx(1.0)

    def test_acc_vs_omp_traffic_on_nvidia(self, registry):
        """Figure 5: OpenACC moves 1.6x more on NVIDIA."""
        k = registry.get("boundary_lr")
        c = NvhpcCompiler()
        acc = c.lower(k, "openacc", a100())
        omp = c.lower(k, "openmp", a100())
        assert acc.traffic_factor / omp.traffic_factor == pytest.approx(1.6)

    def test_cce_acc_pathology(self, registry):
        """CCE OpenACC: ~3.7x OpenMP traffic, occupancy-insensitive."""
        k = registry.get("boundary_tb")
        c = CceCompiler()
        acc = c.lower(k, "openacc", mi250x_gcd())
        omp = c.lower(k, "openmp", mi250x_gcd())
        assert acc.traffic_factor / omp.traffic_factor == pytest.approx(3.7, rel=0.02)
        assert not acc.occupancy_sensitive
        assert omp.occupancy_sensitive

    def test_solver_region_emits_multiple_launches(self, registry):
        plan = NvhpcCompiler().lower(registry.get("solver_fast"), "openmp", a100())
        assert plan.launches == 6

    def test_small_loops_pay_many_launches(self, registry):
        from repro.calibration import PFLUX_SMALL_LOOPS

        plan = NvhpcCompiler().lower(registry.get("small_loops"), "openmp", a100())
        assert plan.launches == PFLUX_SMALL_LOOPS

    def test_lowering_checks_target(self, registry):
        with pytest.raises(UnsupportedTargetError):
            OneApiCompiler().lower(registry.get("boundary_lr"), "openacc", pvc_stack())

    def test_unknown_complexity_rejected(self):
        from repro.directives.ir import Loop, LoopNest
        from repro.directives.registry import AnnotatedKernel

        weird = AnnotatedKernel(
            nest=LoopNest("w", (Loop("i", 4),), 1.0),
            acc_directives=(),
            omp_directives=(),
            complexity="O(N^9)",
        )
        with pytest.raises(CompilerError):
            NvhpcCompiler().lower(weird, "openmp", a100())
