"""Per-scenario magnetic-topology assertions on fresh reconstructions.

The golden tier pins exact numbers at 65^2; these tests assert the
*physics* every scenario declares — boundary type, X-point count and
placement, axis position — on cheap 33^2 reconstructions, so a topology
break surfaces in tier-1 even before the golden artifacts drift.

The Solov'ev scenario is absent: it needs 65^2 to converge (the analytic
profiles are stiff on coarse grids) and is fully covered by the golden
suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.boundary import find_xpoints
from repro.efit.fitting import EfitSolver
from repro.scenarios import get_scenario

N = 33

_RESULTS: dict[str, tuple] = {}


def reconstruct(name: str):
    """One cached 33^2 reconstruction per scenario for the whole module."""
    if name not in _RESULTS:
        sc = get_scenario(name)
        shot = sc.make_shot(N)
        result = EfitSolver.for_scenario(sc, shot=shot).fit(shot.measurements)
        _RESULTS[name] = (sc, shot, result)
    return _RESULTS[name]


def xpoints_in_limiter(shot, result):
    return [
        (rx, zx)
        for rx, zx, _ in find_xpoints(shot.grid, result.psi, max_points=6)
        if bool(shot.machine.limiter.contains(rx, zx))
    ]


@pytest.mark.parametrize(
    "name", ["g186610", "spherical-torus", "double-null", "single-null", "mse"]
)
def test_declared_topology(name):
    """Boundary type and X-point count match the scenario declaration."""
    sc, shot, result = reconstruct(name)
    assert result.converged
    assert result.boundary.boundary_type == sc.boundary_type
    assert len(xpoints_in_limiter(shot, result)) == sc.n_xpoints


class TestSphericalTorus:
    def test_limited_with_outboard_shifted_axis(self):
        sc, shot, result = reconstruct("spherical-torus")
        b = result.boundary
        assert b.boundary_type == "limiter"
        # Shafranov shift pushes the axis outboard of the geometric centre;
        # at A ~ 1.6 the shift is a sizeable fraction of the minor radius.
        assert b.r_axis > sc.r0 + 0.1
        assert abs(b.z_axis) < 0.05

    def test_strong_elongation(self):
        """The plasma mask is much taller than it is wide."""
        _, shot, result = reconstruct("spherical-torus")
        mask = result.boundary.mask
        rr, zz = shot.grid.rr, shot.grid.zz
        height = zz[mask].max() - zz[mask].min()
        width = rr[mask].max() - rr[mask].min()
        assert height / width > 2.0


class TestDoubleNull:
    def test_two_symmetric_xpoints(self):
        _, shot, result = reconstruct("double-null")
        xps = sorted(xpoints_in_limiter(shot, result), key=lambda p: p[1])
        assert len(xps) == 2
        (r_lo, z_lo), (r_hi, z_hi) = xps
        assert z_lo < -0.5 and z_hi > 0.5
        # Up-down symmetric machine: the two nulls mirror each other.
        assert z_hi == pytest.approx(-z_lo, abs=0.1)
        assert r_hi == pytest.approx(r_lo, abs=0.05)

    def test_axis_near_midplane(self):
        _, _, result = reconstruct("double-null")
        assert abs(result.boundary.z_axis) < 0.05


class TestSingleNull:
    def test_one_lower_xpoint(self):
        _, shot, result = reconstruct("single-null")
        xps = xpoints_in_limiter(shot, result)
        assert len(xps) == 1
        _, z_x = xps[0]
        assert z_x < -0.5

    def test_axis_pulled_below_midplane(self):
        """The lower null drags the axis down: the up-down asymmetry is
        visible in the reconstruction, not just the truth."""
        _, _, result = reconstruct("single-null")
        assert result.boundary.z_axis < -0.005

    def test_boundary_flux_is_xpoint_flux(self):
        _, _, result = reconstruct("single-null")
        b = result.boundary
        assert b.boundary_type == "xpoint"
        assert b.r_xpoint is not None and b.z_xpoint is not None
        assert b.z_xpoint < -0.5


def test_mask_is_single_component_inside_limiter():
    """No scenario's plasma mask leaks into private flux or off-limiter
    cells (the connected-component filter in steps_)."""
    from scipy import ndimage

    for name in ("g186610", "spherical-torus", "double-null", "single-null"):
        _, shot, result = reconstruct(name)
        mask = result.boundary.mask
        inside = shot.machine.limiter.contains(shot.grid.rr, shot.grid.zz)
        assert not (mask & ~inside).any(), name
        _, n_components = ndimage.label(mask)
        assert n_components == 1, name


def test_psin_normalisation():
    """psiN is 0 at the axis cell and below 1 across the plasma mask."""
    for name in ("g186610", "double-null", "single-null"):
        _, _, result = reconstruct(name)
        b = result.boundary
        assert (b.psin[b.mask] < 1.0).all(), name
        assert b.psin[b.mask].min() == pytest.approx(0.0, abs=5e-3), name


def test_convergence_envelope_at_coarse_grid():
    """Declared envelopes hold at 33^2 too (they are declared for 65^2,
    and coarser grids converge at least as fast in iterations)."""
    for name in ("g186610", "spherical-torus", "double-null", "single-null", "mse"):
        sc, _, result = reconstruct(name)
        assert result.iterations <= sc.max_iterations, name
        assert np.isfinite(result.chi2)
