"""Registry contracts: declaration validation, lookup errors, defaults.

These tests deliberately import only :mod:`repro.scenarios` (plus the
error types) — the registry promises to stay import-light so the CLI can
build its ``--scenario`` choice list at parser-construction time, and a
test that drags numpy in through the registry would mask a regression of
that promise (see ``test_registry_is_import_light``).
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.errors import ReproError, ScenarioError
from repro.scenarios import (
    DEFAULT_SCENARIO,
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)

EXPECTED = {
    "g186610",
    "solovev",
    "spherical-torus",
    "double-null",
    "single-null",
    "mse",
}


def _stub_factory(n, *, noise, seed):  # pragma: no cover - never called
    raise AssertionError("stub factory must not run")


def _scenario(**overrides) -> Scenario:
    base = dict(
        name="stub",
        description="a stub",
        machine="stub-machine",
        shot_factory=_stub_factory,
        boundary_type="limiter",
        n_xpoints=0,
        ip=1e6,
        r0=1.7,
        aspect_ratio=3.1,
        elongation=1.8,
        max_iterations=50,
        max_chi2=200.0,
    )
    base.update(overrides)
    return Scenario(**base)


class TestRegistryContents:
    def test_all_expected_scenarios_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_default_scenario_is_registered(self):
        assert DEFAULT_SCENARIO in scenario_names()

    def test_all_scenarios_matches_names(self):
        assert tuple(sc.name for sc in all_scenarios()) == scenario_names()

    def test_topology_declarations(self):
        assert get_scenario("double-null").n_xpoints == 2
        assert get_scenario("double-null").boundary_type == "xpoint"
        assert get_scenario("single-null").n_xpoints == 1
        assert get_scenario("spherical-torus").boundary_type == "limiter"
        assert get_scenario("mse").boundary_type == "limiter"

    def test_spherical_torus_declares_st_parameters(self):
        """The ST scenario carries the paper-style machine parameters."""
        st = get_scenario("spherical-torus")
        assert st.aspect_ratio < 2.0
        assert st.elongation > 2.0
        assert st.ip == pytest.approx(16.5e6)

    def test_golden_artifact_naming(self):
        assert (
            get_scenario("double-null").golden_artifact == "golden_double_null_65.json"
        )


class TestLookupAndRegistration:
    def test_unknown_scenario_raises_with_known_list(self):
        with pytest.raises(ScenarioError) as exc:
            get_scenario("no-such-machine")
        message = str(exc.value)
        for name in EXPECTED:
            assert name in message

    def test_scenario_error_is_a_repro_error(self):
        assert issubclass(ScenarioError, ReproError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register(_scenario(name=DEFAULT_SCENARIO))

    def test_register_returns_scenario(self, monkeypatch):
        from repro.scenarios import registry

        monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))
        sc = _scenario(name="stub-new")
        assert registry.register(sc) is sc
        assert registry.get_scenario("stub-new") is sc


class TestDeclarationValidation:
    @pytest.mark.parametrize("name", ["", "has space", "has/slash"])
    def test_bad_names_rejected(self, name):
        with pytest.raises(ScenarioError, match="invalid scenario name"):
            _scenario(name=name)

    def test_bad_boundary_type_rejected(self):
        with pytest.raises(ScenarioError, match="boundary_type"):
            _scenario(boundary_type="divertor")

    @pytest.mark.parametrize(
        ("boundary_type", "n_xpoints"),
        [("limiter", 1), ("xpoint", 0), ("limiter", -1)],
    )
    def test_inconsistent_topology_rejected(self, boundary_type, n_xpoints):
        with pytest.raises(ScenarioError, match="inconsistent|X-point"):
            _scenario(boundary_type=boundary_type, n_xpoints=n_xpoints)

    @pytest.mark.parametrize(
        "overrides", [{"max_iterations": 0}, {"max_chi2": 0.0}, {"max_chi2": -5.0}]
    )
    def test_nonpositive_envelope_rejected(self, overrides):
        with pytest.raises(ScenarioError, match="envelope"):
            _scenario(**overrides)


class TestShotDefaults:
    def test_make_shot_applies_declared_defaults(self):
        calls = []

        def spy(n, *, noise, seed):
            calls.append((n, noise, seed))
            return "shot"

        sc = _scenario(
            name="stub-spy", shot_factory=spy, default_noise=2e-3, default_seed=7
        )
        assert sc.make_shot(33) == "shot"
        assert sc.make_shot(33, noise=0.0, seed=1) == "shot"
        assert calls == [(33, 2e-3, 7), (33, 0.0, 1)]


def test_registry_is_import_light():
    """``import repro.scenarios`` must not pull in numpy (the CLI builds
    its ``--scenario`` choices from the registry before any heavy import)."""
    code = (
        "import sys; import repro.scenarios; "
        "sys.exit(1 if 'numpy' in sys.modules else 0)"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, "importing repro.scenarios loaded numpy"
