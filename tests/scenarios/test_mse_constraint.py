"""The MSE scenario must *do* something: pin the constraint's effect.

``mse`` is the exact twin of ``g186610`` — same machine, same ground
truth, same noise seed — except its diagnostic set carries 12 MSE
channels.  Any difference between the two fitted profiles is therefore
attributable to the MSE constraint alone.  These tests pin that the
difference exists (the channels reweight the current-profile split
between p' and FF') and that it stays small (MSE refines, it does not
drag the fit away from the magnetics solution).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.efit.fitting import EfitSolver
from repro.scenarios import get_scenario

N = 33


@pytest.fixture(scope="module")
def twin_fits():
    results = {}
    for name in ("g186610", "mse"):
        sc = get_scenario(name)
        shot = sc.make_shot(N)
        results[name] = (shot, EfitSolver.for_scenario(sc, shot=shot).fit(shot.measurements))
    return results


def test_twins_share_machine_and_truth(twin_fits):
    base_shot, _ = twin_fits["g186610"]
    mse_shot, _ = twin_fits["mse"]
    assert base_shot.machine.name == mse_shot.machine.name
    assert np.array_equal(base_shot.truth.psi, mse_shot.truth.psi)


def test_only_mse_channels_differ(twin_fits):
    base_shot, _ = twin_fits["g186610"]
    mse_shot, _ = twin_fits["mse"]
    assert len(base_shot.diagnostics.mse) == 0
    assert len(mse_shot.diagnostics.mse) == 12
    assert len(base_shot.diagnostics.flux_loops) == len(mse_shot.diagnostics.flux_loops)
    assert len(base_shot.diagnostics.probes) == len(mse_shot.diagnostics.probes)


def test_mse_changes_the_fitted_profile(twin_fits):
    """The constraint is live: fitted profile coefficients move by a
    measurable (but bounded) amount relative to the magnetics-only twin."""
    _, base = twin_fits["g186610"]
    _, mse = twin_fits["mse"]
    assert base.converged and mse.converged
    vb = base.profiles.as_vector()
    vm = mse.profiles.as_vector()
    rel = np.linalg.norm(vm - vb) / np.linalg.norm(vb)
    assert rel > 1e-3, "MSE channels had no effect on the fitted profile"
    assert rel < 0.2, "MSE channels dragged the fit away from the magnetics"


def test_mse_fit_still_recovers_flux_map(twin_fits):
    """Adding the constraint cannot wreck the reconstruction itself."""
    _, base = twin_fits["g186610"]
    _, mse = twin_fits["mse"]
    denom = np.linalg.norm(base.psi)
    assert np.linalg.norm(mse.psi - base.psi) / denom < 0.02
    assert mse.boundary.boundary_type == "limiter"
