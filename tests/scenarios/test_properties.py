"""Property tests over the scenario zoo: GS residuals and engine identity.

Two physics invariants hold for *every* scenario, whatever the noise
draw or the worker count:

* The ground-truth equilibrium satisfies the discrete Grad-Shafranov
  equation to discretisation accuracy inside the plasma (the coil flux
  is harmonic there, so the plasma current is the only source).
* The batch and parallel engines are invisible: their outputs are
  bit-identical to the serial solver on the same slices.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import ndimage

from repro.batch import BatchFitEngine, synthetic_slice_sequence
from repro.efit.fitting import EfitSolver
from repro.efit.operators import GradShafranovOperator
from repro.parallel import CRASH_RATE_ENV, ParallelFitEngine, SchedulerConfig
from repro.scenarios import get_scenario
from repro.utils.constants import MU0

N = 33
N_SLICES = 4
BATCH_SIZE = 2

#: Scenarios exercised here; g186610/solovev engine identity is already
#: pinned in tests/parallel, so this sweep focuses on the new machines.
SCENARIOS = ("spherical-torus", "double-null", "single-null")


@pytest.fixture(autouse=True)
def no_crash_env(monkeypatch):
    monkeypatch.delenv(CRASH_RATE_ENV, raising=False)


# ---------------------------------------------------------------- GS residual


def _plasma_interior(mask: np.ndarray) -> np.ndarray:
    """Plasma cells whose full 5-point stencil stays inside the plasma."""
    m = ndimage.binary_erosion(mask, iterations=2)
    m[0, :] = m[-1, :] = False
    m[:, 0] = m[:, -1] = False
    return m


@pytest.mark.parametrize(
    "name", ["g186610", "solovev", "spherical-torus", "double-null", "single-null"]
)
def test_truth_satisfies_gs_in_plasma(name):
    """Delta* psi = -mu0 R j_phi holds to O(h^2) inside every scenario's
    ground-truth plasma (the coil field is harmonic there)."""
    shot = get_scenario(name).make_shot(N)
    grid = shot.grid
    truth = shot.truth
    rhs = -(MU0 / grid.cell_area) * grid.rr * truth.pcurr
    residual = GradShafranovOperator(grid).residual(truth.psi, rhs)
    scale = np.abs(rhs).max()
    interior = _plasma_interior(truth.boundary.mask)
    assert interior.sum() > 50
    assert np.abs(residual[interior]).max() <= 5e-3 * scale


@given(
    noise=st.floats(min_value=1e-4, max_value=2e-3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=8, deadline=None)
def test_fitted_flux_satisfies_gs_for_any_noise(noise, seed):
    """Whatever the measurement noise, the reconstructed flux map still
    satisfies the discrete GS equation with its own fitted current."""
    sc = get_scenario("spherical-torus")
    shot = sc.make_shot(N, noise=noise, seed=seed)
    result = EfitSolver.for_scenario(sc, shot=shot).fit(shot.measurements)
    assert result.converged
    grid = shot.grid
    rhs = -(MU0 / grid.cell_area) * grid.rr * result.pcurr
    residual = GradShafranovOperator(grid).residual(result.psi, rhs)
    scale = np.abs(rhs).max()
    interior = _plasma_interior(result.boundary.mask)
    assert np.abs(residual[interior]).max() <= 5e-3 * scale


# ------------------------------------------------------------ engine identity

_SERIAL_CACHE: dict[str, tuple] = {}


def _serial_reference(name: str):
    if name not in _SERIAL_CACHE:
        sc = get_scenario(name)
        shot = sc.make_shot(N)
        slices = synthetic_slice_sequence(shot, N_SLICES, seed=3)
        engine = BatchFitEngine.for_scenario(sc, shot=shot, batch_size=BATCH_SIZE)
        _SERIAL_CACHE[name] = (sc, shot, slices, engine.fit_many(slices))
    return _SERIAL_CACHE[name]


@pytest.mark.parametrize("name", SCENARIOS)
def test_batch_grouping_is_invisible(name):
    """How slices are grouped into batches cannot change the numbers:
    any batch_size >= 2 is bit-identical to the batch_size=2 reference
    (stacked GEMMs contract each slice independently)."""
    sc, shot, slices, serial = _serial_reference(name)
    other = BatchFitEngine.for_scenario(
        sc, shot=shot, batch_size=N_SLICES
    ).fit_many(slices)
    for ours, ref in zip(other.results, serial.results):
        assert np.array_equal(ours.psi, ref.psi)
        assert ours.chi2 == ref.chi2
        assert ours.iterations == ref.iterations


@pytest.mark.parametrize("name", SCENARIOS)
def test_batch_engine_matches_single_solver(name):
    """A batched slice reproduces a plain EfitSolver fit to rounding
    error (the batched GEMM path reorders contractions, so bitwise
    equality is not promised across engine *kinds* — only within them)."""
    sc, shot, slices, serial = _serial_reference(name)
    solo = EfitSolver.for_scenario(sc, shot=shot).fit(slices[0])
    ref = serial.results[0]
    np.testing.assert_allclose(solo.psi, ref.psi, rtol=1e-10, atol=1e-12)
    assert solo.chi2 == pytest.approx(ref.chi2, rel=1e-9)
    assert solo.iterations == ref.iterations
    assert solo.converged and ref.converged


@given(
    name=st.sampled_from(SCENARIOS),
    workers=st.integers(min_value=1, max_value=3),
    order_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=9, deadline=None)
def test_parallel_is_bit_identical_to_serial(name, workers, order_seed):
    """For any scenario, worker count and completion order, the parallel
    merge returns the serial engine's exact numbers."""
    sc, shot, slices, serial = _serial_reference(name)
    config = SchedulerConfig(
        workers=workers, transport="inline", inline_order_seed=order_seed
    )
    with ParallelFitEngine.for_scenario(
        sc, shot=shot, batch_size=BATCH_SIZE, workers=workers, config=config
    ) as engine:
        parallel = engine.fit_many(slices)
    assert len(parallel.results) == len(serial.results) == N_SLICES
    for ours, ref in zip(parallel.results, serial.results):
        assert np.array_equal(ours.psi, ref.psi)  # bit-for-bit, not approx
        assert ours.chi2 == ref.chi2
        assert ours.iterations == ref.iterations
        assert ours.converged and ref.converged
    assert parallel.stats.total_iterations == serial.stats.total_iterations
