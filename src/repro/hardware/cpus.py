"""Host CPU models for the single-core baselines of Tables 1 and 2.

Sustained rates are calibrated against the paper's measured ``pflux_``
baseline times, which scale almost exactly as the kernel FLOP count
``8 N^3`` (two O(N^3) loop pairs at 4 FLOPs each): the original Fortran
runs at ~1 GFLOP/s per core on the EPYC machines.  Sapphire Rapids is
faster while the Green table fits its large per-core L2/L3 share and
slower once it spills (the paper's 65/129 vs 257/513 crossover).
"""

from __future__ import annotations

from repro.hardware.arch import CPUArchitecture

__all__ = ["epyc_7763_milan", "epyc_7a53_optimized", "xeon_sapphire_rapids"]


def epyc_7763_milan() -> CPUArchitecture:
    """AMD EPYC 7763 (Milan), 64 cores — Perlmutter GPU-node host."""
    return CPUArchitecture(
        name="EPYC-7763",
        vendor="AMD",
        sustained_gflops_baseline=1.03,
        sustained_gflops_optimized=3.09,
        core_bw_gbs=22.0,
        llc_mib=4.0,
        cache_boost=1.0,
        cores_per_node=64,
    )


def epyc_7a53_optimized() -> CPUArchitecture:
    """AMD "Optimized 3rd Gen EPYC" 7A53, 64 cores — Frontier host."""
    return CPUArchitecture(
        name="EPYC-7A53",
        vendor="AMD",
        sustained_gflops_baseline=1.03,
        sustained_gflops_optimized=3.09,
        core_bw_gbs=22.0,
        llc_mib=4.0,
        cache_boost=1.0,
        cores_per_node=64,
    )


def xeon_sapphire_rapids() -> CPUArchitecture:
    """Intel Xeon "Sapphire Rapids" — Sunspot host (2 x 52 cores/node)."""
    return CPUArchitecture(
        name="Xeon-SPR",
        vendor="Intel",
        sustained_gflops_baseline=0.90,
        sustained_gflops_optimized=2.70,
        core_bw_gbs=18.0,
        llc_mib=30.0,
        cache_boost=1.63,
        cores_per_node=104,
    )
