"""NVIDIA A100 (Ampere) device model — Perlmutter's GPU (Section 4.1)."""

from __future__ import annotations

from repro.hardware.arch import GPUArchitecture

__all__ = ["a100"]


def a100() -> GPUArchitecture:
    """One SXM4 A100 40 GB as deployed in Perlmutter GPU nodes.

    108 SMs x 4 schedulers x 8 FP64 pipes at ~1.41 GHz -> 9.7 TFLOP/s
    FP64 (vector); 40 MB L2; 1555 GB/s HBM2e; PCIe 4.0 x16 host link
    (~26 GB/s achieved); CUDA managed memory migrates 2 MiB chunks.
    """
    return GPUArchitecture(
        name="A100-SXM4-40GB",
        vendor="NVIDIA",
        peak_fp64_gflops=9700.0,
        hbm_bw_gbs=1555.0,
        hbm_efficiency=0.82,
        llc_mib=40.0,
        compute_units=108,
        simd_width=32,
        threads_for_saturation=110_000,
        kernel_launch_us=24.0,
        host_link_gbs=26.0,
        page_kib=2048.0,
        page_fault_us=22.0,
        fault_batch_pages=64,
        hbm_gib=40.0,
        unified_memory=True,
    )
