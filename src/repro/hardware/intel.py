"""Intel Ponte Vecchio device model — Sunspot's GPU, per stack (Section 4.1)."""

from __future__ import annotations

from repro.hardware.arch import GPUArchitecture

__all__ = ["pvc_stack"]


def pvc_stack() -> GPUArchitecture:
    """One stack (tile) of an Intel Data Center GPU Max "Ponte Vecchio".

    Per the paper's comparison: ~1.5x the A100's peak FP64 (~14.6 TFLOP/s
    per stack), comparable HBM bandwidth (~1.3 TB/s), and comparable host
    connectivity.  Crucially, the 2023 oneAPI stack offered *no unified
    memory* for Fortran offload, so every kernel's data must be mapped
    explicitly; runtime per-region overheads were also markedly higher
    than on CUDA/ROCm, which is what the paper's Intel results reflect.
    """
    return GPUArchitecture(
        name="PVC-1-stack",
        vendor="Intel",
        peak_fp64_gflops=14600.0,
        hbm_bw_gbs=1300.0,
        hbm_efficiency=0.78,
        llc_mib=204.0,
        compute_units=64,
        simd_width=32,
        threads_for_saturation=60_000,
        kernel_launch_us=100.0,
        host_link_gbs=20.0,
        page_kib=2048.0,
        page_fault_us=0.0,
        fault_batch_pages=1,
        hbm_gib=64.0,
        unified_memory=False,
    )
