"""Architecture parameter records for the device cost models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError

__all__ = ["GPUArchitecture", "CPUArchitecture"]


@dataclass(frozen=True)
class GPUArchitecture:
    """One programmable GPU device (a full A100, one MI250X GCD, one PVC stack).

    Parameters are peak values; the execution model applies per-kernel
    efficiencies on top.
    """

    name: str
    vendor: str
    #: Peak FP64 throughput [GFLOP/s] (vector units, no tensor/matrix cores
    #: — the paper notes EFIT cannot exploit the A100 DP tensor core).
    peak_fp64_gflops: float
    #: Peak HBM bandwidth [GB/s].
    hbm_bw_gbs: float
    #: Fraction of peak bandwidth a well-tuned streaming kernel attains.
    hbm_efficiency: float
    #: Last-level cache [MiB] — decides whether the Green-table working
    #: set can be reused on-chip.
    llc_mib: float
    #: Number of compute units (SMs / CUs / Xe-cores).
    compute_units: int
    #: SIMT execution width (warp 32 / wavefront 64 / EU-pair 16x2).
    simd_width: int
    #: Resident threads needed to saturate memory latency.
    threads_for_saturation: int
    #: Kernel launch + runtime overhead per offloaded region [us] — the
    #: "10us of latency will impede acceleration of the smaller loops"
    #: observation of Section 2.
    kernel_launch_us: float
    #: Effective host link bandwidth [GB/s] (PCIe 4.0 x16 / Infinity
    #: Fabric / PCIe 5.0), as achieved rather than nameplate.
    host_link_gbs: float
    #: Unified-memory page size [KiB] (CUDA/ROCm migrate 2 MiB chunks...
    #: modeled at migration granularity).
    page_kib: float
    #: Cost per page-fault-triggered migration batch [us], on top of the
    #: link transfer time.
    page_fault_us: float
    #: Maximum fault batches charged per array per touch — the driver
    #: coalesces faults on contiguous ranges, so large arrays do not pay
    #: per-page forever.
    fault_batch_pages: int
    #: Device memory capacity [GiB] — bounds the Green tables (1.08 GB at
    #: 513^2, 8.6 GB at 1025^2) and hence the largest grid per device.
    hbm_gib: float
    #: Whether the software stack offers unified (page-migrating) memory.
    unified_memory: bool

    def __post_init__(self) -> None:
        if self.peak_fp64_gflops <= 0 or self.hbm_bw_gbs <= 0:
            raise HardwareError(f"{self.name}: non-positive peak rates")
        if not (0.0 < self.hbm_efficiency <= 1.0):
            raise HardwareError(f"{self.name}: hbm_efficiency outside (0, 1]")
        if self.compute_units < 1 or self.simd_width < 1:
            raise HardwareError(f"{self.name}: invalid unit counts")

    @property
    def machine_balance(self) -> float:
        """FLOPs per byte at the roofline ridge point."""
        return self.peak_fp64_gflops / self.hbm_bw_gbs

    @property
    def page_bytes(self) -> float:
        return self.page_kib * 1024.0


@dataclass(frozen=True)
class CPUArchitecture:
    """A single host core, as used for the paper's baseline (1 CPU core).

    Two sustained rates model the two code versions of Section 6: the
    original Fortran (array-section temporaries, array reductions) and the
    optimized code (scalar reductions), which the paper reports as a 3x
    CPU-side improvement.
    """

    name: str
    vendor: str
    #: Sustained FP64 rate of the *original* code [GFLOP/s per core].
    sustained_gflops_baseline: float
    #: Sustained FP64 rate of the scalar-reduction optimized code.
    sustained_gflops_optimized: float
    #: Per-core streaming bandwidth [GB/s].
    core_bw_gbs: float
    #: Per-core last-level cache share [MiB].
    llc_mib: float
    #: Rate multiplier when the kernel working set fits in ``llc_mib``
    #: (Sapphire Rapids shows a pronounced in-cache boost; EPYC does not).
    cache_boost: float
    #: Cores per socket/node for throughput comparisons.
    cores_per_node: int

    def __post_init__(self) -> None:
        if self.sustained_gflops_baseline <= 0 or self.sustained_gflops_optimized <= 0:
            raise HardwareError(f"{self.name}: non-positive sustained rates")
        if self.sustained_gflops_optimized < self.sustained_gflops_baseline:
            raise HardwareError(f"{self.name}: optimized rate below baseline rate")
        if self.cores_per_node < 1:
            raise HardwareError(f"{self.name}: needs >= 1 core")

    def sustained_gflops(self, optimized: bool) -> float:
        return self.sustained_gflops_optimized if optimized else self.sustained_gflops_baseline
