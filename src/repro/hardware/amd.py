"""AMD MI250X (CDNA2) device model — Frontier's GPU, per GCD (Section 4.1)."""

from __future__ import annotations

from repro.hardware.arch import GPUArchitecture

__all__ = ["mi250x_gcd"]


def mi250x_gcd() -> GPUArchitecture:
    """One Graphics Compute Die of an MI250X — the paper's "nominal
    programmable device" on Frontier.

    110 CUs x 4 x 16-wide 64-bit SIMD -> ~24 TFLOP/s FP64 per GCD; only
    8 MB of L2 (5x less than A100 — the Green tables never fit, which is
    why lowering quality shows up directly as HBM traffic); 1638 GB/s HBM2e
    per GCD; Infinity-Fabric host link; XNACK page-fault migration at small
    granularity makes unified-memory faults comparatively expensive.
    """
    return GPUArchitecture(
        name="MI250X-GCD",
        vendor="AMD",
        peak_fp64_gflops=23950.0,
        hbm_bw_gbs=1638.0,
        hbm_efficiency=0.80,
        llc_mib=8.0,
        compute_units=110,
        simd_width=64,
        threads_for_saturation=120_000,
        kernel_launch_us=15.0,
        host_link_gbs=36.0,
        page_kib=4.0,
        page_fault_us=34.0,
        fault_batch_pages=10,
        hbm_gib=64.0,
        unified_memory=True,
    )
