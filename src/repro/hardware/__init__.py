"""Mechanistic hardware models of the paper's devices (Section 4.1).

Architecture parameters follow the vendor white papers the paper cites:
NVIDIA A100 (Ampere), AMD MI250X (CDNA2, modeled per GCD — "the nominal
programmable device"), Intel Data Center GPU Max / Ponte Vecchio (modeled
per stack), and the three host CPUs.
"""

from repro.hardware.arch import GPUArchitecture, CPUArchitecture
from repro.hardware.nvidia import a100
from repro.hardware.amd import mi250x_gcd
from repro.hardware.intel import pvc_stack
from repro.hardware.cpus import epyc_7763_milan, epyc_7a53_optimized, xeon_sapphire_rapids
from repro.hardware.roofline import roofline_time, attainable_gflops

__all__ = [
    "GPUArchitecture",
    "CPUArchitecture",
    "a100",
    "mi250x_gcd",
    "pvc_stack",
    "epyc_7763_milan",
    "epyc_7a53_optimized",
    "xeon_sapphire_rapids",
    "roofline_time",
    "attainable_gflops",
]
