"""Roofline performance model.

The paper leans on roofline reasoning throughout (its related work applies
the roofline methodology to directive ports; its analysis attributes the
AMD OpenACC gap to data movement).  The model here is the classic one:

.. math::

    t = \\max\\left(\\frac{F}{P_{eff}},\\; \\frac{B}{W_{eff}}\\right)

with ``F`` the kernel FLOPs, ``B`` the bytes actually moved from HBM,
``P_eff``/``W_eff`` the attainable compute and bandwidth after occupancy
and lowering-quality deratings.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hardware.arch import GPUArchitecture

__all__ = ["roofline_time", "attainable_gflops", "occupancy_factor"]


def occupancy_factor(arch: GPUArchitecture, exposed_threads: float) -> float:
    """Fraction of peak bandwidth reachable with ``exposed_threads``
    resident work-items.

    Memory latency hiding needs enough threads in flight; below
    ``threads_for_saturation`` attainable bandwidth falls roughly
    linearly (with a floor representing a single wave of work).
    """
    if exposed_threads <= 0:
        raise HardwareError("exposed_threads must be positive")
    frac = exposed_threads / arch.threads_for_saturation
    return max(min(frac, 1.0), 0.02)


def attainable_gflops(arch: GPUArchitecture, intensity_flops_per_byte: float) -> float:
    """Classic roofline: ``min(peak, AI * BW)`` in GFLOP/s."""
    if intensity_flops_per_byte < 0:
        raise HardwareError("negative arithmetic intensity")
    bw = arch.hbm_bw_gbs * arch.hbm_efficiency
    return min(arch.peak_fp64_gflops, intensity_flops_per_byte * bw)


def roofline_time(
    arch: GPUArchitecture,
    flops: float,
    bytes_moved: float,
    *,
    compute_efficiency: float = 1.0,
    bandwidth_efficiency: float = 1.0,
) -> float:
    """Kernel execution time [s] under the roofline with deratings.

    ``compute_efficiency`` and ``bandwidth_efficiency`` fold in occupancy
    and compiler-lowering quality; launch overheads are charged separately
    by the executor.
    """
    if flops < 0 or bytes_moved < 0:
        raise HardwareError("negative work")
    if not (0.0 < compute_efficiency <= 1.0) or not (0.0 < bandwidth_efficiency <= 1.0):
        raise HardwareError("efficiencies must be in (0, 1]")
    t_compute = flops / (arch.peak_fp64_gflops * 1e9 * compute_efficiency)
    t_memory = bytes_moved / (arch.hbm_bw_gbs * 1e9 * arch.hbm_efficiency * bandwidth_efficiency)
    return max(t_compute, t_memory)
