"""Scenario zoo: registered machine/shot configurations.

``from repro.scenarios import get_scenario`` is the single entry point
the CLI, the fitting engines, the golden-regression suite and the
benchmark suite share to address a workload by name::

    sc = get_scenario("double-null")
    shot = sc.make_shot(65)
    solver = EfitSolver.for_scenario(sc, shot=shot)

Importing the package registers the built-in zoo (see
:mod:`repro.scenarios.definitions`):

========================  ========  ==========  =======================
name                      topology  X-points    machine
========================  ========  ==========  =======================
``g186610``               limiter   0           DIII-D-like baseline
``solovev``               limiter   0           DIII-D-like, analytic
``spherical-torus``       limiter   0           NSTX-U-scale, 16.5 MA
``double-null``           xpoint    2           balanced double-null
``single-null``           xpoint    1           asymmetric lower null
``mse``                   limiter   0           baseline + 12 MSE chords
========================  ========  ==========  =======================
"""

from repro.scenarios.definitions import DEFAULT_SCENARIO
from repro.scenarios.registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)

__all__ = [
    "DEFAULT_SCENARIO",
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario_names",
]
