"""The scenario registry: declarative machine/shot configurations.

A :class:`Scenario` bundles everything one reconstruction workload needs
to be runnable *and checkable* from anywhere in the tree — CLI, batch
and parallel engines, golden-regression suite, benchmarks:

* a synthetic-shot factory (machine geometry + ground-truth equilibrium
  + diagnostic measurements),
* the expected magnetic topology (limited or diverted, how many
  X-points the converged reconstruction must find inside the limiter),
* a convergence envelope (iteration and chi^2 ceilings a healthy
  reconstruction stays inside), and
* solver keyword overrides the reconstruction needs for that machine
  (e.g. an off-midplane seed filament for up-down-asymmetric plasmas).

This module is import-light on purpose: registering and listing
scenarios touches no numpy, no Green functions, no solver tables — the
CLI builds its ``--scenario`` choices from :func:`scenario_names` at
parser-construction time.  All heavy work happens inside the shot
factory, which every concrete scenario defers until first call (and
caches thereafter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ScenarioError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.efit.measurements import SyntheticShot

__all__ = ["Scenario", "register", "get_scenario", "scenario_names", "all_scenarios"]


@dataclass(frozen=True)
class Scenario:
    """One registered machine/shot configuration.

    Parameters
    ----------
    shot_factory:
        ``(n, *, noise, seed) -> SyntheticShot``; must be deterministic
        for fixed arguments (golden artifacts depend on it).
    boundary_type:
        Expected converged topology: ``"limiter"`` or ``"xpoint"``.
    n_xpoints:
        X-points the converged reconstruction must place inside the
        limiter (0 for limited plasmas, 1 for single-null, 2 for
        double-null).
    max_iterations / max_chi2:
        Convergence envelope at the default grid and noise: a healthy
        reconstruction converges within ``max_iterations`` Picard
        iterations with ``chi2 <= max_chi2``.
    solver_kwargs:
        Extra :class:`~repro.efit.fitting.EfitSolver` keywords this
        machine needs (engines and golden reconstructions apply them).
    golden:
        Whether the golden-regression suite maintains an artifact for
        this scenario.
    """

    name: str
    description: str
    machine: str
    shot_factory: Callable[..., "SyntheticShot"]
    boundary_type: str
    n_xpoints: int
    ip: float
    r0: float
    aspect_ratio: float
    elongation: float
    max_iterations: int
    max_chi2: float
    default_noise: float = 1e-3
    default_seed: int = 0
    solver_kwargs: dict[str, Any] = field(default_factory=dict)
    golden: bool = True

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or " " in self.name:
            raise ScenarioError(f"invalid scenario name {self.name!r}")
        if self.boundary_type not in ("limiter", "xpoint"):
            raise ScenarioError(
                f"scenario {self.name!r}: boundary_type must be 'limiter' or "
                f"'xpoint', got {self.boundary_type!r}"
            )
        if self.n_xpoints < 0 or (self.boundary_type == "limiter") != (self.n_xpoints == 0):
            raise ScenarioError(
                f"scenario {self.name!r}: {self.n_xpoints} X-point(s) is "
                f"inconsistent with boundary_type {self.boundary_type!r}"
            )
        if self.max_iterations < 1 or self.max_chi2 <= 0.0:
            raise ScenarioError(
                f"scenario {self.name!r}: convergence envelope must be positive"
            )

    def make_shot(
        self, n: int = 65, *, noise: float | None = None, seed: int | None = None
    ) -> "SyntheticShot":
        """Build (or fetch from cache) the synthetic shot at grid ``n``."""
        return self.shot_factory(
            n,
            noise=self.default_noise if noise is None else noise,
            seed=self.default_seed if seed is None else seed,
        )

    @property
    def golden_artifact(self) -> str:
        """Filename of the committed golden snapshot for this scenario."""
        return f"golden_{self.name.replace('-', '_')}_65.json"


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (rejects duplicate names)."""
    if scenario.name in _REGISTRY:
        raise ScenarioError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raises :class:`ScenarioError` with the full list."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ScenarioError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_names() -> tuple[str, ...]:
    """Registered names in registration order (the CLI's choice list)."""
    return tuple(_REGISTRY)


def all_scenarios() -> tuple[Scenario, ...]:
    """Every registered scenario, in registration order."""
    return tuple(_REGISTRY.values())
