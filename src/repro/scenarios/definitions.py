"""The scenario zoo: every registered machine/shot configuration.

Importing this module (or the :mod:`repro.scenarios` package) populates
the registry.  Declared geometry is the *machine design* value; the
convergence envelopes are ceilings a healthy reconstruction stays well
inside at the default 65^2 grid and noise level — chosen roughly 2x
above the observed converged values so BLAS jitter never trips them
while a physics regression still does.
"""

from __future__ import annotations

from repro.scenarios.registry import Scenario, register

__all__ = ["DEFAULT_SCENARIO"]

#: The scenario CLI commands fall back to when ``--scenario`` is absent.
DEFAULT_SCENARIO = "g186610"


# Shot factories import their machinery on first call so that importing
# the registry (e.g. to build the CLI's --scenario choice list) stays
# free of numpy/scipy and the efit table caches.
def _shot_186610(n, *, noise, seed):
    from repro.efit.measurements import synthetic_shot_186610

    return synthetic_shot_186610(n, noise=noise, seed=seed)


def _shot_solovev(n, *, noise, seed):
    from repro.efit.measurements import synthetic_solovev_shot

    return synthetic_solovev_shot(n, noise=noise, seed=seed)


def _shot_spherical_torus(n, *, noise, seed):
    from repro.scenarios.shots import spherical_torus_shot

    return spherical_torus_shot(n, noise=noise, seed=seed)


def _shot_double_null(n, *, noise, seed):
    from repro.scenarios.shots import double_null_shot

    return double_null_shot(n, noise=noise, seed=seed)


def _shot_single_null(n, *, noise, seed):
    from repro.scenarios.shots import single_null_shot

    return single_null_shot(n, noise=noise, seed=seed)


def _shot_mse(n, *, noise, seed):
    from repro.scenarios.shots import mse_shot

    return mse_shot(n, noise=noise, seed=seed)


register(
    Scenario(
        name="g186610",
        description="DIII-D-like baseline: the paper's shot #186610 analog",
        machine="DIII-D-like",
        shot_factory=_shot_186610,
        boundary_type="limiter",
        n_xpoints=0,
        ip=1.0e6,
        r0=1.69,
        aspect_ratio=2.9,
        elongation=1.8,
        max_iterations=60,
        max_chi2=250.0,
        default_seed=186610,
    )
)

register(
    Scenario(
        name="solovev",
        description="Analytic Solov'ev truth on the DIII-D-like machine",
        machine="DIII-D-like",
        shot_factory=_shot_solovev,
        boundary_type="limiter",
        n_xpoints=0,
        ip=1.0e6,
        r0=1.69,
        aspect_ratio=3.4,
        elongation=1.3,
        max_iterations=90,
        max_chi2=1100.0,
        default_seed=20260806,
    )
)

register(
    Scenario(
        name="spherical-torus",
        description="NSTX-U-scale spherical torus: 16.5 MA, kappa ~ 2.8, limited",
        machine="spherical-torus",
        shot_factory=_shot_spherical_torus,
        boundary_type="limiter",
        n_xpoints=0,
        ip=16.5e6,
        r0=2.5,
        aspect_ratio=1.6,
        elongation=2.8,
        max_iterations=80,
        max_chi2=600.0,
        default_seed=20260801,
    )
)

register(
    Scenario(
        name="double-null",
        description="Balanced double-null diverted discharge (two X-points)",
        machine="double-null",
        shot_factory=_shot_double_null,
        boundary_type="xpoint",
        n_xpoints=2,
        ip=1.0e6,
        r0=1.69,
        aspect_ratio=2.8,
        elongation=2.4,
        max_iterations=100,
        max_chi2=400.0,
        default_seed=20260802,
    )
)

register(
    Scenario(
        name="single-null",
        description="Up-down-asymmetric lower single-null diverted discharge",
        machine="single-null",
        shot_factory=_shot_single_null,
        boundary_type="xpoint",
        n_xpoints=1,
        ip=1.0e6,
        r0=1.69,
        aspect_ratio=2.8,
        elongation=2.1,
        max_iterations=100,
        max_chi2=500.0,
        default_seed=20260803,
        # The asymmetric plasma sits below the midplane; seed the initial
        # filament there so the first boundary search starts near it.
        solver_kwargs={"initial_filament_z": -0.05},
    )
)

register(
    Scenario(
        name="mse",
        description="g186610 baseline re-fit with 12 MSE internal-field channels",
        machine="DIII-D-like",
        shot_factory=_shot_mse,
        boundary_type="limiter",
        n_xpoints=0,
        ip=1.0e6,
        r0=1.69,
        aspect_ratio=2.9,
        elongation=1.8,
        max_iterations=60,
        max_chi2=400.0,
        default_seed=186610,
    )
)
