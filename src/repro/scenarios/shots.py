"""Forward-solved synthetic shots for the non-DIII-D scenarios.

Each factory runs the free-boundary forward solve on its machine with
the scenario's settled shaping parameters and measures the full
diagnostic complement from the converged truth.  Factories are cached:
scenario-addressable code paths (CLI, engines, golden suite, property
tests) can call them repeatedly without re-paying the Picard loop.

The shaping parameters below are *load-bearing*: they were tuned so
each truth equilibrium (a) converges under plain Picard with the listed
stabilisers, (b) lands in the declared topology on both the 33^2 and
65^2 grids, and (c) is a *natural* equilibrium of its coil set — for
the up-down-asymmetric single-null this required a vertical
force-balance row in the coil design plus a centroid target at the
secant root of the residual feedback shift (see ``design_coil_currents``
and ``solve_forward``); without those the plasma is held displaced by a
persistent rigid shift that no flux-function current basis can fit.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.efit.basis import PolynomialBasis
from repro.efit.diagnostics import DiagnosticSet
from repro.efit.forward import design_coil_currents, solve_forward
from repro.efit.machine import (
    double_null_machine,
    single_null_machine,
    spherical_torus_machine,
)
from repro.efit.measurements import (
    SyntheticShot,
    measure_equilibrium,
    synthetic_shot_186610,
)
from repro.efit.profiles import ProfileCoefficients
from repro.errors import MeasurementError

__all__ = [
    "spherical_torus_shot",
    "double_null_shot",
    "single_null_shot",
    "mse_shot",
]

#: Peaked p' / FF' shapes shared by the forward-solved scenarios (the
#: same family as the g186610 baseline; the forward solve rescales the
#: vector so the total current hits each scenario's Ip).
_ALPHA = (2.0e5, -1.8e5)
_BETA = (0.55, -0.45)


def _profiles() -> ProfileCoefficients:
    return ProfileCoefficients(
        PolynomialBasis(2),
        PolynomialBasis(2),
        alpha=np.array(_ALPHA),
        beta=np.array(_BETA),
    )


def _check_grid(n: int) -> None:
    if n < 17:
        raise MeasurementError("grid too coarse for a meaningful reconstruction")


def _finish(machine, grid, equilibrium, *, noise, seed, name, n_mse=0) -> SyntheticShot:
    diagnostics = DiagnosticSet.for_machine(machine, n_mse=n_mse)
    measurements = measure_equilibrium(
        machine, diagnostics, grid, equilibrium, noise=noise, seed=seed
    )
    return SyntheticShot(
        machine=machine,
        diagnostics=diagnostics,
        grid=grid,
        truth=equilibrium,
        measurements=measurements,
        name=name,
    )


@lru_cache(maxsize=4)
def _cached_spherical_torus(n: int, noise: float, seed: int) -> SyntheticShot:
    machine = spherical_torus_machine()
    grid = machine.make_grid(n)
    ip = 16.5e6
    # Aim the vacuum-field shaping below the machine's declared kappa —
    # the quadrupole field acting on the full profile over-elongates a
    # tight-aspect-ratio plasma even more than a conventional one.
    coil_currents = design_coil_currents(
        machine,
        r0=2.1,
        minor_radius=1.35,
        elongation=2.4,
        triangularity=0.45,
        ip=ip,
    )
    equilibrium = solve_forward(
        machine, grid, _profiles(), ip=ip, coil_currents=coil_currents
    )
    return _finish(
        machine, grid, equilibrium, noise=noise, seed=seed, name="spherical-torus"
    )


def spherical_torus_shot(
    n: int = 65, *, noise: float = 1e-3, seed: int = 20260801
) -> SyntheticShot:
    """An NSTX-U-scale spherical torus: 16.5 MA, kappa ~ 2.8, limited."""
    _check_grid(n)
    return _cached_spherical_torus(n, noise, seed)


@lru_cache(maxsize=4)
def _cached_double_null(n: int, noise: float, seed: int) -> SyntheticShot:
    machine = double_null_machine()
    grid = machine.make_grid(n)
    ip = 1.0e6
    r0, a_t, kappa_t, delta_t = 1.69, 0.6, 1.9, 0.5
    zx = kappa_t * a_t
    rx = r0 - a_t * np.sin(delta_t)
    coil_currents = design_coil_currents(
        machine,
        r0=r0,
        minor_radius=a_t,
        elongation=kappa_t,
        triangularity=delta_t,
        ip=ip,
        x_points=((rx, zx), (rx, -zx)),
        x_point_weight=4.0,
    )
    # The sharp psiN < 1 current cutoff makes the mask discontinuous in
    # the separatrix position; current blending (relax_current) damps
    # the resulting limit cycle for this up-down-symmetric case.
    equilibrium = solve_forward(
        machine,
        grid,
        _profiles(),
        ip=ip,
        coil_currents=coil_currents,
        relax_current=0.5,
        max_iters=500,
    )
    return _finish(
        machine, grid, equilibrium, noise=noise, seed=seed, name="double-null"
    )


def double_null_shot(
    n: int = 65, *, noise: float = 1e-3, seed: int = 20260802
) -> SyntheticShot:
    """A balanced double-null diverted discharge (two active X-points)."""
    _check_grid(n)
    return _cached_double_null(n, noise, seed)


@lru_cache(maxsize=4)
def _cached_single_null(n: int, noise: float, seed: int) -> SyntheticShot:
    machine = single_null_machine()
    grid = machine.make_grid(n)
    ip = 1.0e6
    r0, a_t = 1.69, 0.55
    kappa_u, kappa_l = 1.6, 1.9
    delta_u, delta_l = 0.35, 0.55
    zx = kappa_l * a_t
    rx = r0 - a_t * np.sin(delta_l)
    # force_balance_weight adds the Br = 0 row at the filament: without
    # it the designed field pushes the asymmetric plasma vertically and
    # the nearest natural equilibrium is a limited plasma far above the
    # midplane.  hold_z_centroid is the secant root of the persistent
    # feedback shift for this coil set — at that target the converged
    # truth carries no rigid displacement, so it lies exactly in the
    # span of the reconstruction's flux-function current basis.
    coil_currents = design_coil_currents(
        machine,
        r0=r0,
        minor_radius=a_t,
        elongation=kappa_u,
        triangularity=delta_u,
        elongation_lower=kappa_l,
        triangularity_lower=delta_l,
        ip=ip,
        x_points=((rx, -zx),),
        x_point_weight=4.0,
        filament_z=-0.05,
        force_balance_weight=10.0,
    )
    z_settle = -0.056465
    equilibrium = solve_forward(
        machine,
        grid,
        _profiles(),
        ip=ip,
        coil_currents=coil_currents,
        edge_smooth=0.01,
        relax_current=0.5,
        max_iters=2000,
        symmetrize=False,
        hold_z_centroid=z_settle,
        initial_z=z_settle,
    )
    return _finish(
        machine, grid, equilibrium, noise=noise, seed=seed, name="single-null"
    )


def single_null_shot(
    n: int = 65, *, noise: float = 1e-3, seed: int = 20260803
) -> SyntheticShot:
    """An up-down-asymmetric lower single-null diverted discharge."""
    _check_grid(n)
    return _cached_single_null(n, noise, seed)


def mse_shot(n: int = 65, *, noise: float = 1e-3, seed: int = 186610) -> SyntheticShot:
    """The g186610 baseline with 12 MSE channels constraining the fit.

    Same machine, truth equilibrium and magnetics seed as the baseline
    scenario, so the fitted-profile difference between the two isolates
    exactly the effect of the internal-field constraint.
    """
    _check_grid(n)
    return synthetic_shot_186610(n, noise=noise, seed=seed, n_mse=12)
