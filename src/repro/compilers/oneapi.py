"""Intel oneAPI compiler model (Sunspot, Table 3).

oneAPI's ifx supports OpenMP target offload only (no OpenACC compiler
exists for Intel GPUs — the reason Figure 5 has no Intel OpenACC bar).
Unified memory is unavailable for this Fortran stack, so performance
depends on explicit ``!$omp target data`` regions; without them the
runtime copies each kernel's operands both ways on every launch
(Section 6.2).
"""

from __future__ import annotations

from repro.compilers.base import Compiler, OffloadBuild
from repro.compilers.flags import CompilerFlags
from repro.config import Environment
from repro.errors import CompilerError
from repro.hardware.arch import GPUArchitecture
from repro.runtime.allocator import AllocationPolicy

__all__ = ["OneApiCompiler"]


class OneApiCompiler(Compiler):
    """Intel oneAPI ifx model: OpenMP-target-only offload for PVC."""

    name = "oneapi"
    version = "2023.05.15.003"
    vendors = ("Intel",)
    models = ("openmp",)

    def configure(
        self,
        flags: CompilerFlags,
        env: Environment,
        arch: GPUArchitecture,
        *,
        use_target_data: bool = True,
    ) -> OffloadBuild:
        self.check_target(flags.model, arch)
        if flags.target != "spir64":
            raise CompilerError(
                "Intel GPU offload requires -fopenmp-targets=spir64 (Table 3)"
            )
        return OffloadBuild(
            compiler=self,
            model=flags.model,
            arch=arch,
            allocation_policy=AllocationPolicy.ARENA_REUSE,
            unified_memory=False,
            use_target_data=use_target_data,
        )
