"""HPE/Cray CCE compiler model (Frontier, Table 3).

CCE 14 builds both OpenACC (2.0 subset) and OpenMP target offload for
MI250X.  Unified memory requires ``CRAY_ACC_USE_UNIFIED_MEM=1`` plus
``HSA_XNACK=1`` in the environment; allocator behaviour follows
``-hsystem_alloc`` / ``CRAY_MALLOPT_OFF`` (Figure 4) — without them CCE's
default mallopt trims freed work arrays back to the OS and every
``pflux_`` call re-faults its pages onto the GPU.
"""

from __future__ import annotations

from repro.compilers.base import Compiler, OffloadBuild
from repro.compilers.flags import CompilerFlags
from repro.config import Environment
from repro.errors import CompilerError
from repro.hardware.arch import GPUArchitecture
from repro.runtime.allocator import AllocationPolicy

__all__ = ["CceCompiler"]


class CceCompiler(Compiler):
    """HPE/Cray CCE 14 model: OpenACC + OpenMP offload for MI250X."""

    name = "cce"
    version = "14.0.2"
    vendors = ("AMD",)
    models = ("openacc", "openmp")

    def configure(
        self, flags: CompilerFlags, env: Environment, arch: GPUArchitecture
    ) -> OffloadBuild:
        self.check_target(flags.model, arch)
        if not env.unified_memory_requested:
            raise CompilerError(
                "the paper's Frontier builds rely on unified memory: set "
                "CRAY_ACC_USE_UNIFIED_MEM=1 and HSA_XNACK=1 (Table 3)"
            )
        system_alloc = flags.system_alloc and env.cray_mallopt_off
        policy = (
            AllocationPolicy.ARENA_REUSE if system_alloc else AllocationPolicy.TRIM_ON_FREE
        )
        return OffloadBuild(
            compiler=self,
            model=flags.model,
            arch=arch,
            allocation_policy=policy,
            unified_memory=True,
            use_target_data=False,
        )
