"""Compiler models: NVHPC, HPE/Cray CCE, and Intel oneAPI (Table 3).

A compiler model does two jobs:

* **configuration** — parse the build flags and environment of Table 3
  into runtime behaviour (managed memory, allocator policy, data-region
  strategy);
* **lowering** — turn a directive-annotated loop nest into an
  :class:`~repro.runtime.kernel.ExecutionPlan` whose quality constants
  come from :mod:`repro.calibration`.
"""

from repro.compilers.base import Compiler, OffloadBuild
from repro.compilers.flags import parse_flags, CompilerFlags
from repro.compilers.nvhpc import NvhpcCompiler
from repro.compilers.cce import CceCompiler
from repro.compilers.oneapi import OneApiCompiler
from repro.compilers.registry import compiler_for_vendor

__all__ = [
    "Compiler",
    "OffloadBuild",
    "parse_flags",
    "CompilerFlags",
    "NvhpcCompiler",
    "CceCompiler",
    "OneApiCompiler",
    "compiler_for_vendor",
]
