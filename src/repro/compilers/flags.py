"""Compiler-flag parsing for the build lines of Table 3.

Recognised forms::

    -mp=gpu -gpu=cc80,managed          (NVHPC OpenMP)
    -acc -gpu=cc80,managed             (NVHPC OpenACC)
    -h omp -hsystem_alloc              (CCE OpenMP)
    -h acc -hsystem_alloc              (CCE OpenACC)
    -fopenmp -fopenmp-targets=spir64   (oneAPI OpenMP)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilerError

__all__ = ["CompilerFlags", "parse_flags"]


@dataclass(frozen=True)
class CompilerFlags:
    """Normalised view of one build line."""

    model: str  # "openacc" | "openmp"
    managed_memory: bool = False
    system_alloc: bool = False
    gpu_options: tuple[str, ...] = ()
    target: str | None = None

    def __post_init__(self) -> None:
        if self.model not in ("openacc", "openmp"):
            raise CompilerError(f"unknown programming model {self.model!r}")


def parse_flags(flag_string: str) -> CompilerFlags:
    """Parse one flag string into a :class:`CompilerFlags`."""
    model: str | None = None
    managed = False
    system_alloc = False
    gpu_options: list[str] = []
    target: str | None = None

    tokens = flag_string.split()
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok in ("-acc",):
            model = "openacc"
        elif tok.startswith("-mp"):
            model = "openmp"
        elif tok == "-fopenmp":
            model = "openmp"
        elif tok.startswith("-fopenmp-targets="):
            target = tok.split("=", 1)[1]
        elif tok == "-h":
            i += 1
            if i >= len(tokens):
                raise CompilerError("dangling -h flag")
            sub = tokens[i]
            if sub == "acc":
                model = "openacc"
            elif sub == "omp":
                model = "openmp"
            else:
                raise CompilerError(f"unknown Cray -h option {sub!r}")
        elif tok == "-hsystem_alloc":
            system_alloc = True
        elif tok.startswith("-gpu="):
            opts = tok.split("=", 1)[1].split(",")
            gpu_options.extend(opts)
            if "managed" in opts:
                managed = True
        else:
            raise CompilerError(f"unrecognised flag {tok!r}")
        i += 1
    if model is None:
        raise CompilerError(f"no offload model selected by flags {flag_string!r}")
    return CompilerFlags(
        model=model,
        managed_memory=managed,
        system_alloc=system_alloc,
        gpu_options=tuple(gpu_options),
        target=target,
    )
