"""NVIDIA HPC SDK compiler model (Perlmutter, Table 3).

NVHPC 22.7 supports both OpenACC and OpenMP target offload for NVIDIA
GPUs.  ``-gpu=managed`` routes every allocation through the CUDA managed
pool allocator, which retains pages across Fortran ALLOCATE/DEALLOCATE
cycles — so Perlmutter never exhibits the Figure 4 allocator pathology.
"""

from __future__ import annotations

from repro.compilers.base import Compiler, OffloadBuild
from repro.compilers.flags import CompilerFlags
from repro.config import Environment
from repro.errors import CompilerError
from repro.hardware.arch import GPUArchitecture
from repro.runtime.allocator import AllocationPolicy

__all__ = ["NvhpcCompiler"]


class NvhpcCompiler(Compiler):
    """NVIDIA HPC SDK 22.7 model: OpenACC + OpenMP offload for A100."""

    name = "nvhpc"
    version = "22.7"
    vendors = ("NVIDIA",)
    models = ("openacc", "openmp")

    def configure(
        self, flags: CompilerFlags, env: Environment, arch: GPUArchitecture
    ) -> OffloadBuild:
        self.check_target(flags.model, arch)
        if not flags.managed_memory:
            raise CompilerError(
                "the paper's NVHPC builds require -gpu=managed (Table 3); "
                "explicit data clauses were not written for the NVIDIA port"
            )
        return OffloadBuild(
            compiler=self,
            model=flags.model,
            arch=arch,
            allocation_policy=AllocationPolicy.ARENA_REUSE,
            unified_memory=True,
            use_target_data=False,
        )
