"""Vendor -> compiler resolution, as the three facilities provide them."""

from __future__ import annotations

from repro.compilers.base import Compiler
from repro.compilers.cce import CceCompiler
from repro.compilers.nvhpc import NvhpcCompiler
from repro.compilers.oneapi import OneApiCompiler
from repro.errors import UnsupportedTargetError

__all__ = ["compiler_for_vendor"]

_BY_VENDOR: dict[str, type[Compiler]] = {
    "NVIDIA": NvhpcCompiler,
    "AMD": CceCompiler,
    "Intel": OneApiCompiler,
}


def compiler_for_vendor(vendor: str) -> Compiler:
    """The production compiler of each facility (Table 3)."""
    try:
        return _BY_VENDOR[vendor]()
    except KeyError:
        raise UnsupportedTargetError(f"no compiler model for vendor {vendor!r}") from None
