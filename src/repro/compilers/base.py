"""Compiler model base class and the build-configuration record."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.calibration import KernelClass, lowering_quality
from repro.compilers.flags import CompilerFlags
from repro.config import Environment
from repro.directives.registry import AnnotatedKernel
from repro.errors import CompilerError, UnsupportedTargetError
from repro.hardware.arch import GPUArchitecture
from repro.runtime.allocator import AllocationPolicy
from repro.runtime.kernel import ExecutionPlan

__all__ = ["OffloadBuild", "Compiler"]


@dataclass(frozen=True)
class OffloadBuild:
    """What a compile + environment pair means for the runtime."""

    compiler: "Compiler"
    model: str
    arch: GPUArchitecture
    allocation_policy: AllocationPolicy
    unified_memory: bool
    use_target_data: bool

    @property
    def label(self) -> str:
        return f"{self.compiler.name}-{self.model}-{self.arch.vendor}"


class Compiler(abc.ABC):
    """A vendor compiler: flag semantics + directive lowering."""

    #: Short id used by the calibration table ("nvhpc", "cce", "oneapi").
    name: str
    version: str
    #: GPU vendors this compiler can target.
    vendors: tuple[str, ...]
    #: Programming models supported for GPU offload.
    models: tuple[str, ...]

    def supports(self, model: str, arch: GPUArchitecture) -> bool:
        return model in self.models and arch.vendor in self.vendors

    def check_target(self, model: str, arch: GPUArchitecture) -> None:
        if not self.supports(model, arch):
            raise UnsupportedTargetError(
                f"{self.name} cannot build {model} for {arch.vendor} GPUs "
                f"(supported: models={self.models}, vendors={self.vendors})"
            )

    # -- configuration ------------------------------------------------------------
    @abc.abstractmethod
    def configure(
        self, flags: CompilerFlags, env: Environment, arch: GPUArchitecture
    ) -> OffloadBuild:
        """Combine flags and environment into runtime behaviour."""

    # -- lowering -------------------------------------------------------------------
    def lower(
        self, kernel: AnnotatedKernel, model: str, arch: GPUArchitecture
    ) -> ExecutionPlan:
        """Produce the execution plan for one annotated kernel.

        The shared implementation reads the calibrated lowering quality;
        subclasses may override team shaping.
        """
        self.check_target(model, arch)
        kc = self._kernel_class(kernel)
        quality = lowering_quality(self.name, model, arch.vendor, kc)
        teams = max(1, kernel.nest.outer_iterations)
        threads = min(quality.threads_per_team, max(1, kernel.nest.inner_iterations))
        return ExecutionPlan(
            kernel_name=kernel.name,
            teams=teams,
            threads_per_team=threads,
            traffic_factor=quality.traffic_factor,
            compute_efficiency=quality.compute_efficiency,
            bandwidth_efficiency=quality.bandwidth_efficiency,
            launches=kernel.launches,
            occupancy_sensitive=quality.occupancy_sensitive,
            launch_overhead=quality.launch_overhead,
        )

    @staticmethod
    def _kernel_class(kernel: AnnotatedKernel) -> KernelClass:
        mapping = {
            "O(N^3)": KernelClass.BOUNDARY_N3,
            "solver": KernelClass.SOLVER,
            "O(N^2)": KernelClass.GRID_N2,
            "small": KernelClass.SMALL,
        }
        try:
            return mapping[kernel.complexity]
        except KeyError:
            raise CompilerError(
                f"kernel {kernel.name!r} has unknown complexity tag "
                f"{kernel.complexity!r}"
            ) from None
