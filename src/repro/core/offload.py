"""The GPU-offloaded ``pflux_``: kernel decomposition and annotations.

This is the paper's Section 5 in executable form.  ``pflux_`` decomposes
into six offloadable regions:

====================  =========  ========================================
region                class      annotation (OpenACC / OpenMP)
====================  =========  ========================================
``boundary_lr``       O(N^3)     ``parallel loop gang worker`` + ``loop
                                 vector reduction``  /  ``target teams
                                 distribute reduction`` + ``parallel do
                                 reduction collapse(2)``  (Figures 2/3)
``boundary_tb``       O(N^3)     same pair
``rhs_build``         O(N^2)     ``kernel`` region / fused ``target teams
                                 distribute parallel do collapse(2)``
``solver_fast``       solver     same (6 device launches: DST passes +
                                 tridiagonal sweeps)
``small_loops``       small      same (the "dozens of smaller loops"
                                 where launch latency dominates)
``assemble``          O(N^2)     same
====================  =========  ========================================

The directive census over this registry reproduces Tables 4 and 5
*exactly* (4x ``kernel`` + 4x ``end kernel`` + 2+2 loop directives for
OpenACC; 4+2+2 for OpenMP — the "eight lines, ~2% of the routine").

:class:`OffloadedPflux` plugs into :class:`~repro.efit.fitting.EfitSolver`
in place of the CPU implementation: it produces *numerically identical*
fluxes (the payload is the vectorised NumPy kernel) while charging modeled
device time to a virtual clock and profiler counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.calibration import PFLUX_SMALL_LOOPS, TEMP_WORK_ARRAYS
from repro.compilers.base import OffloadBuild
from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.directives.openacc import AccEndKernels, AccKernels, AccLoop, AccParallelLoop
from repro.directives.openmp import OmpParallelDo, OmpTargetTeamsDistribute
from repro.directives.registry import AnnotatedKernel, KernelRegistry
from repro.efit.grid import RZGrid
from repro.efit.pflux import PfluxBase, boundary_flux_vectorized
from repro.efit.solvers.base import GSInteriorSolver
from repro.efit.tables import BoundaryGreensTables
from repro.obs.hooks import NULL_HOOKS, ObservationHooks
from repro.runtime.executor import OffloadExecutor
from repro.runtime.kernel import ExecutionPlan
from repro.runtime.memory import DeviceArray, Direction

__all__ = [
    "PFLUX_SOURCE_LINES",
    "build_pflux_registry",
    "pflux_device_arrays",
    "PfluxOffloadModel",
    "OffloadedPflux",
]

#: Source lines of the pflux_ routine being annotated.  Table 4 reports
#: each 4-line directive group as 1.0% of the routine -> ~400 lines.
PFLUX_SOURCE_LINES = 400

_REDUCTIONS = ("tempsum1", "tempsum2")


def _boundary_directives(num_workers: int, vector_length: int):
    """The Figure 2 / Figure 3 annotation pair for one O(N^3) nest."""
    acc = (
        AccParallelLoop(
            gang=True,
            worker=True,
            num_workers=num_workers,
            vector_length=vector_length,
        ),
        AccLoop(vector=True, reduction=_REDUCTIONS),
    )
    omp = (
        OmpTargetTeamsDistribute(reduction=_REDUCTIONS),
        OmpParallelDo(reduction=_REDUCTIONS, collapse=2),
    )
    return acc, omp


def _kernels_region_directives():
    """Annotation of one simple region: ``!$acc kernel`` pair vs the fused
    OpenMP form (the Table 4 <-> Table 5 row mapping)."""
    return (AccKernels(), AccEndKernels()), (
        OmpTargetTeamsDistribute(parallel_do=True, collapse=2),
    )


def build_pflux_registry(
    nw: int,
    nh: int | None = None,
    *,
    num_workers: int = 4,
    vector_length: int = 32,
) -> KernelRegistry:
    """Assemble the annotated-kernel registry of the offloaded ``pflux_``.

    ``vector_length`` follows the paper: 32 (warp) on NVIDIA, 64
    (wavefront) on AMD.
    """
    nh = nh if nh is not None else nw
    n2 = nw * nh
    registry = KernelRegistry("pflux_", PFLUX_SOURCE_LINES)

    acc_b, omp_b = _boundary_directives(num_workers, vector_length)
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="boundary_lr",
                loops=(Loop("j", nh), Loop("ii", nw), Loop("jj", nh)),
                flops_per_iteration=4.0,
                arrays=(
                    ArrayRef("gridpc", 2 * nh * nw, AccessMode.READ, 2.0),
                    ArrayRef("pcurr", n2, AccessMode.READ, 1.0),
                    ArrayRef("psi", 2 * nh, AccessMode.WRITE, 2.0 / n2),
                ),
                n_outer=1,
                reductions=_REDUCTIONS,
            ),
            acc_directives=acc_b,
            omp_directives=omp_b,
            complexity="O(N^3)",
        )
    )
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="boundary_tb",
                loops=(Loop("i", nw), Loop("ii", nw), Loop("jj", nh)),
                flops_per_iteration=4.0,
                arrays=(
                    ArrayRef("gridpc", nw * nh * nw, AccessMode.READ, 2.0),
                    ArrayRef("pcurr", n2, AccessMode.READ, 1.0),
                    ArrayRef("psi", 2 * nw, AccessMode.WRITE, 2.0 / n2),
                ),
                n_outer=1,
                reductions=_REDUCTIONS,
            ),
            acc_directives=acc_b,
            omp_directives=omp_b,
            complexity="O(N^3)",
        )
    )

    acc_k, omp_k = _kernels_region_directives()
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="rhs_build",
                loops=(Loop("i", nw), Loop("j", nh)),
                flops_per_iteration=3.0,
                arrays=(
                    ArrayRef("pcurr", n2, AccessMode.READ, 1.0),
                    ArrayRef("rgrid", nw, AccessMode.READ, 1.0),
                    ArrayRef("work", n2, AccessMode.WRITE, 1.0),
                ),
                n_outer=2,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="O(N^2)",
        )
    )
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="solver_fast",
                loops=(Loop("i", max(nw - 2, 1)), Loop("j", max(nh - 2, 1))),
                flops_per_iteration=5.0 * math.log2(max(nh, 2)) + 16.0,
                arrays=(
                    ArrayRef("work", n2, AccessMode.READWRITE, 6.0),
                    ArrayRef("psi", n2, AccessMode.WRITE, 1.0),
                ),
                n_outer=2,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="solver",
            launches=6,
        )
    )
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="small_loops",
                loops=(Loop("i", max(nw, nh)), Loop("k", PFLUX_SMALL_LOOPS)),
                flops_per_iteration=2.0,
                arrays=(
                    ArrayRef("work", PFLUX_SMALL_LOOPS * max(nw, nh), AccessMode.READWRITE, 2.0),
                ),
                n_outer=1,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="small",
            launches=PFLUX_SMALL_LOOPS,
        )
    )
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="assemble",
                loops=(Loop("i", nw), Loop("j", nh)),
                flops_per_iteration=1.0,
                arrays=(
                    ArrayRef("psi", n2, AccessMode.READWRITE, 2.0),
                    ArrayRef("psi_ext", n2, AccessMode.READ, 1.0),
                ),
                n_outer=2,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="O(N^2)",
        )
    )
    return registry


def pflux_device_arrays(nw: int, nh: int | None = None) -> list[DeviceArray]:
    """The arrays one ``pflux_`` invocation touches, for data management.

    The Green table is staged once and stays device-resident; ``pcurr`` is
    host-rewritten every Picard iterate (H2D each call); ``psi`` is read
    back by ``steps_`` every iterate (D2H each call); the Fortran work
    arrays are allocated/freed per call — the population whose residency
    the Cray default mallopt destroys (Figure 4).
    """
    nh = nh if nh is not None else nw
    n2_bytes = float(nw * nh * 8)
    arrays = [
        DeviceArray("gridpc", float(nw * nh * nw * 8), Direction.RESIDENT, persistent=True),
        DeviceArray("psi_ext", n2_bytes, Direction.RESIDENT, persistent=True),
        DeviceArray("rgrid", float(nw * 8), Direction.RESIDENT, persistent=True),
        DeviceArray("pcurr", n2_bytes, Direction.IN, persistent=True),
        DeviceArray("psi", n2_bytes, Direction.OUT, persistent=True),
    ]
    for k in range(TEMP_WORK_ARRAYS):
        arrays.append(
            DeviceArray(f"work{k:02d}", n2_bytes, Direction.SCRATCH, persistent=False)
        )
    return arrays


@dataclass
class PfluxOffloadModel:
    """Cost-only model of one offloaded ``pflux_`` (no numerics needed).

    Usable at any grid size — including 513^2, where building the real
    Green tables costs a gigabyte — because it only manipulates counts.
    """

    nw: int
    nh: int
    build: OffloadBuild
    #: Observation hooks forwarded to the executor: each modeled kernel
    #: launch becomes a device-clock span tagged with the directive flavor.
    hooks: ObservationHooks = NULL_HOOKS

    def __post_init__(self) -> None:
        arch = self.build.arch
        working_set = sum(a.nbytes for a in pflux_device_arrays(self.nw, self.nh))
        capacity = arch.hbm_gib * 1024**3
        if working_set > capacity:
            from repro.errors import RuntimeModelError

            raise RuntimeModelError(
                f"pflux_ working set {working_set / 1e9:.1f} GB (Green tables "
                f"dominate, O(N^3)) exceeds {arch.name}'s {arch.hbm_gib:.0f} GiB "
                f"device memory at {self.nw}x{self.nh}"
            )
        vector_length = 64 if arch.vendor == "AMD" else 32
        self.registry = build_pflux_registry(
            self.nw, self.nh, vector_length=vector_length
        )
        self.plans: dict[str, ExecutionPlan] = {
            k.name: self.build.compiler.lower(k, self.build.model, self.build.arch)
            for k in self.registry
        }
        self.executor = OffloadExecutor(
            arch=self.build.arch,
            allocation_policy=self.build.allocation_policy,
            use_target_data=self.build.use_target_data,
            hooks=self.hooks,
            model=self.build.model,
        )
        self.arrays = pflux_device_arrays(self.nw, self.nh)

    def invoke(self) -> dict[str, float]:
        """Model one ``pflux_`` call; returns per-kernel seconds plus the
        ``__total__`` wall time including data management."""
        clock = self.executor.clock
        start = clock.now()
        self.executor.begin_invocation(self.arrays)
        per_kernel: dict[str, float] = {}
        for kernel in self.registry:
            per_kernel[kernel.name] = self.executor.launch(
                kernel.nest, self.plans[kernel.name]
            )
        self.executor.end_invocation()
        per_kernel["__total__"] = clock.now() - start
        return per_kernel

    def steady_state_seconds(self, *, warmup: int = 1) -> float:
        """Per-call time after the Green tables are resident — the paper's
        per-invocation numbers average over hundreds of Picard iterations,
        so the one-time staging cost is amortised away."""
        for _ in range(max(warmup, 1)):
            self.invoke()
        return self.invoke()["__total__"]


class OffloadedPflux(PfluxBase):
    """Drop-in ``pflux_`` that runs the real numerics while charging
    modeled GPU time — the reproduction's equivalent of running the
    directive build on a real device."""

    def __init__(
        self,
        grid: RZGrid,
        tables: BoundaryGreensTables,
        solver: GSInteriorSolver,
        build: OffloadBuild,
        hooks: ObservationHooks | None = None,
    ) -> None:
        # PfluxBase is a dataclass; initialise its fields explicitly.
        PfluxBase.__init__(self, grid, tables, solver)
        self.model = PfluxOffloadModel(
            grid.nw, grid.nh, build, hooks=hooks if hooks is not None else NULL_HOOKS
        )

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        return boundary_flux_vectorized(self.tables, pcurr)

    def compute(self, pcurr: np.ndarray, psi_external: np.ndarray | None = None) -> np.ndarray:
        self.last_invocation = self.model.invoke()
        return super().compute(pcurr, psi_external)

    @property
    def modeled_seconds(self) -> float:
        """Total device-context virtual time accumulated so far."""
        return self.model.executor.clock.now()
