"""The GPU-offloaded ``pflux_``: kernel decomposition and annotations.

This is the paper's Section 5 in executable form.  ``pflux_`` decomposes
into six offloadable regions:

====================  =========  ========================================
region                class      annotation (OpenACC / OpenMP)
====================  =========  ========================================
``boundary_lr``       O(N^3)     ``parallel loop gang worker`` + ``loop
                                 vector reduction``  /  ``target teams
                                 distribute reduction`` + ``parallel do
                                 reduction collapse(2)``  (Figures 2/3)
``boundary_tb``       O(N^3)     same pair
``rhs_build``         O(N^2)     ``kernel`` region / fused ``target teams
                                 distribute parallel do collapse(2)``
``solver_fast``       solver     same (6 device launches: DST passes +
                                 tridiagonal sweeps)
``small_loops``       small      same (the "dozens of smaller loops"
                                 where launch latency dominates)
``assemble``          O(N^2)     same
====================  =========  ========================================

The directive census over this registry reproduces Tables 4 and 5
*exactly* (4x ``kernel`` + 4x ``end kernel`` + 2+2 loop directives for
OpenACC; 4+2+2 for OpenMP — the "eight lines, ~2% of the routine").

:class:`OffloadedPflux` plugs into :class:`~repro.efit.fitting.EfitSolver`
in place of the CPU implementation: it produces *numerically identical*
fluxes (the payload is the vectorised NumPy kernel) while charging modeled
device time to a virtual clock and profiler counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.calibration import PFLUX_SMALL_LOOPS, TEMP_WORK_ARRAYS
from repro.compilers.base import OffloadBuild
from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.directives.openacc import AccEndKernels, AccKernels, AccLoop, AccParallelLoop
from repro.directives.openmp import OmpParallelDo, OmpTargetTeamsDistribute
from repro.directives.registry import AnnotatedKernel, KernelRegistry
from repro.efit.grid import RZGrid
from repro.efit.operators import EDGE_METHODS as _BOUNDARY_METHODS
from repro.efit.pflux import PfluxBase, boundary_flux_vectorized
from repro.efit.solvers.base import GSInteriorSolver
from repro.efit.tables import BoundaryGreensTables
from repro.obs.hooks import NULL_HOOKS, ObservationHooks
from repro.runtime.executor import OffloadExecutor
from repro.runtime.kernel import ExecutionPlan
from repro.runtime.memory import DeviceArray, Direction

__all__ = [
    "PFLUX_SOURCE_LINES",
    "LOWRANK_RANK_FRACTION",
    "build_pflux_registry",
    "pflux_device_arrays",
    "PfluxOffloadModel",
    "OffloadedPflux",
]

#: Source lines of the pflux_ routine being annotated.  Table 4 reports
#: each 4-line directive group as 1.0% of the routine -> ~400 lines.
PFLUX_SOURCE_LINES = 400

#: Modeled mean per-offset rank fraction of the low-rank edge operator,
#: r̄ / (nw - 2).  Calibrated against the measured factorization at
#: 257^2 (total ~31 MB vs the 541 MB dense matrix); used so the cost
#: model stays count-only and never needs the real SVD (usable at any
#: grid size, including 513^2).
LOWRANK_RANK_FRACTION = 0.12

_REDUCTIONS = ("tempsum1", "tempsum2")


def _edge_embedding_length(nh: int) -> int:
    """Circulant embedding length of the Toeplitz vertical edges.

    Mirrors :mod:`repro.efit.operators.edge`: the next fast real-FFT
    length at or above ``2*nh - 1`` (a plain ``2*nh`` hits Bluestein on
    prime ``nh`` and forfeits the speedup).
    """
    import scipy.fft as sfft

    return int(sfft.next_fast_len(2 * nh - 1, real=True))


def _structured_boundary_nests(
    nw: int, nh: int, boundary_method: str
) -> tuple[LoopNest, LoopNest]:
    """The boundary nest pair under a compressed edge-operator apply.

    Keeps the ``boundary_lr`` / ``boundary_tb`` names (baseline
    fingerprints stay comparable across methods) but swaps the O(N^3)
    Green-table sweeps for the structured equivalents: a spectral
    pointwise product over the circulant embedding for the vertical
    edges, and either the thin Green-table GEMM (Toeplitz) or the
    rank-packed batched matmuls (low-rank) for the horizontal edges.
    The :class:`~repro.directives.ir.ArrayRef` byte counts are the
    *compressed* footprints — fp32 variants carry 4-byte elements —
    which is what the excess-traffic rule prices.
    """
    base, _, suffix = boundary_method.partition("-")
    bpe = 4.0 if suffix == "fp32" else 8.0
    # The fp32 variants apply in single precision but accumulate the
    # split-residual refinement in fp64; declaring it keeps the
    # precision-flow family quiet for the same reason the code is safe.
    acc_bytes = 8 if suffix == "fp32" else None
    m = _edge_embedding_length(nh)
    n_freq = m // 2 + 1
    # Vertical edges: psi_hat[e,f,b] = sum_i spectra[e,f,i] * pcurr_hat[i,f,b].
    # The even-symmetric embedding makes the spectra purely real (stored at
    # bpe bytes); the transformed current column is complex, priced as
    # interleaved re/im scalars at the operand width (same total bytes,
    # and the element width the precision-flow family sees is honest).
    lr = LoopNest(
        name="boundary_lr",
        loops=(Loop("e", 2), Loop("f", n_freq), Loop("i", nw)),
        flops_per_iteration=2.0,
        arrays=(
            ArrayRef("edge_spectra", 2 * n_freq * nw, AccessMode.READ, 1.0, bpe),
            ArrayRef("pcurr_hat", 2 * n_freq * nw, AccessMode.READ, 2.0, bpe),
            ArrayRef("psi", 2 * nh, AccessMode.WRITE, 2.0 / (n_freq * nw)),
        ),
        n_outer=1,
        reductions=_REDUCTIONS,
        accumulator_bytes=acc_bytes,
    )
    if base == "toeplitz":
        # Horizontal edges: one GEMM against the interior Green-table rows
        # (a view over gridpc — no extra storage, but 2 columns fewer).
        tb = LoopNest(
            name="boundary_tb",
            loops=(Loop("i", nw - 2), Loop("ii", nw), Loop("jj", nh)),
            flops_per_iteration=4.0,
            arrays=(
                ArrayRef("gridpc_edge", (nw - 2) * nh * nw, AccessMode.READ, 2.0, bpe),
                ArrayRef("pcurr", nw * nh, AccessMode.READ, 1.0, bpe),
                ArrayRef("psi", 2 * nw, AccessMode.WRITE, 2.0 / (nw * nh)),
            ),
            n_outer=1,
            reductions=_REDUCTIONS,
            accumulator_bytes=acc_bytes,
        )
    else:  # lowrank
        rbar = max(4, round(LOWRANK_RANK_FRACTION * max(nw - 2, 1)))
        tb = LoopNest(
            name="boundary_tb",
            loops=(Loop("d", nh), Loop("r", rbar), Loop("i", nw)),
            flops_per_iteration=4.0,
            arrays=(
                ArrayRef("edge_u", nh * rbar * (nw - 2), AccessMode.READ, 1.0, bpe),
                ArrayRef("edge_w", nh * rbar * nw, AccessMode.READ, 1.0, bpe),
                ArrayRef("pcurr", nw * nh, AccessMode.READ, 1.0, bpe),
                ArrayRef("psi", 2 * nw, AccessMode.WRITE, 2.0 / (nh * rbar * nw)),
            ),
            n_outer=1,
            reductions=_REDUCTIONS,
            accumulator_bytes=acc_bytes,
        )
    return lr, tb


def _boundary_directives(num_workers: int, vector_length: int):
    """The Figure 2 / Figure 3 annotation pair for one O(N^3) nest."""
    acc = (
        AccParallelLoop(
            gang=True,
            worker=True,
            num_workers=num_workers,
            vector_length=vector_length,
        ),
        AccLoop(vector=True, reduction=_REDUCTIONS),
    )
    omp = (
        OmpTargetTeamsDistribute(reduction=_REDUCTIONS),
        OmpParallelDo(reduction=_REDUCTIONS, collapse=2),
    )
    return acc, omp


def _kernels_region_directives():
    """Annotation of one simple region: ``!$acc kernel`` pair vs the fused
    OpenMP form (the Table 4 <-> Table 5 row mapping)."""
    return (AccKernels(), AccEndKernels()), (
        OmpTargetTeamsDistribute(parallel_do=True, collapse=2),
    )


def build_pflux_registry(
    nw: int,
    nh: int | None = None,
    *,
    num_workers: int = 4,
    vector_length: int = 32,
    boundary_method: str = "dense",
) -> KernelRegistry:
    """Assemble the annotated-kernel registry of the offloaded ``pflux_``.

    ``vector_length`` follows the paper: 32 (warp) on NVIDIA, 64
    (wavefront) on AMD.  ``boundary_method`` selects the boundary-flux
    representation the model prices (the same names
    :class:`~repro.efit.fitting.EfitSolver` accepts): ``dense`` is the
    paper's O(N^3) Green-table sweep; the structured methods swap the
    two boundary nests for their compressed equivalents so the
    excess-traffic rule sees compressed byte counts.
    """
    nh = nh if nh is not None else nw
    n2 = nw * nh
    if boundary_method not in _BOUNDARY_METHODS:
        from repro.errors import AnalysisError

        raise AnalysisError(
            f"unknown boundary_method {boundary_method!r}; "
            f"known: {', '.join(_BOUNDARY_METHODS)}"
        )
    registry = KernelRegistry("pflux_", PFLUX_SOURCE_LINES)

    acc_b, omp_b = _boundary_directives(num_workers, vector_length)
    if boundary_method == "dense":
        boundary_nests = (
            LoopNest(
                name="boundary_lr",
                loops=(Loop("j", nh), Loop("ii", nw), Loop("jj", nh)),
                flops_per_iteration=4.0,
                arrays=(
                    ArrayRef("gridpc", 2 * nh * nw, AccessMode.READ, 2.0),
                    ArrayRef("pcurr", n2, AccessMode.READ, 1.0),
                    ArrayRef("psi", 2 * nh, AccessMode.WRITE, 2.0 / n2),
                ),
                n_outer=1,
                reductions=_REDUCTIONS,
            ),
            LoopNest(
                name="boundary_tb",
                loops=(Loop("i", nw), Loop("ii", nw), Loop("jj", nh)),
                flops_per_iteration=4.0,
                arrays=(
                    ArrayRef("gridpc", nw * nh * nw, AccessMode.READ, 2.0),
                    ArrayRef("pcurr", n2, AccessMode.READ, 1.0),
                    ArrayRef("psi", 2 * nw, AccessMode.WRITE, 2.0 / n2),
                ),
                n_outer=1,
                reductions=_REDUCTIONS,
            ),
        )
    else:
        boundary_nests = _structured_boundary_nests(nw, nh, boundary_method)
    for nest in boundary_nests:
        registry.register(
            AnnotatedKernel(
                nest=nest,
                acc_directives=acc_b,
                omp_directives=omp_b,
                # Structured applies bring the boundary work down to the
                # grid class (O(N^2 log N) FFT / O(N^2 r) rank products).
                complexity="O(N^3)" if boundary_method == "dense" else "O(N^2)",
            )
        )

    acc_k, omp_k = _kernels_region_directives()
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="rhs_build",
                loops=(Loop("i", nw), Loop("j", nh)),
                flops_per_iteration=3.0,
                arrays=(
                    ArrayRef("pcurr", n2, AccessMode.READ, 1.0),
                    ArrayRef("rgrid", nw, AccessMode.READ, 1.0),
                    ArrayRef("work", n2, AccessMode.WRITE, 1.0),
                ),
                n_outer=2,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="O(N^2)",
        )
    )
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="solver_fast",
                loops=(Loop("i", max(nw - 2, 1)), Loop("j", max(nh - 2, 1))),
                flops_per_iteration=5.0 * math.log2(max(nh, 2)) + 16.0,
                arrays=(
                    ArrayRef("work", n2, AccessMode.READWRITE, 6.0),
                    ArrayRef("psi", n2, AccessMode.WRITE, 1.0),
                ),
                n_outer=2,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="solver",
            launches=6,
        )
    )
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="small_loops",
                loops=(Loop("i", max(nw, nh)), Loop("k", PFLUX_SMALL_LOOPS)),
                flops_per_iteration=2.0,
                arrays=(
                    ArrayRef("work", PFLUX_SMALL_LOOPS * max(nw, nh), AccessMode.READWRITE, 2.0),
                ),
                n_outer=1,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="small",
            launches=PFLUX_SMALL_LOOPS,
        )
    )
    registry.register(
        AnnotatedKernel(
            nest=LoopNest(
                name="assemble",
                loops=(Loop("i", nw), Loop("j", nh)),
                flops_per_iteration=1.0,
                arrays=(
                    ArrayRef("psi", n2, AccessMode.READWRITE, 2.0),
                    ArrayRef("psi_ext", n2, AccessMode.READ, 1.0),
                ),
                n_outer=2,
            ),
            acc_directives=acc_k,
            omp_directives=omp_k,
            complexity="O(N^2)",
        )
    )
    return registry


def pflux_device_arrays(
    nw: int, nh: int | None = None, *, boundary_method: str = "dense"
) -> list[DeviceArray]:
    """The arrays one ``pflux_`` invocation touches, for data management.

    The Green table is staged once and stays device-resident; ``pcurr`` is
    host-rewritten every Picard iterate (H2D each call); ``psi`` is read
    back by ``steps_`` every iterate (D2H each call); the Fortran work
    arrays are allocated/freed per call — the population whose residency
    the Cray default mallopt destroys (Figure 4).

    ``boundary_method`` swaps the resident Green table for the compressed
    edge-operator arrays — the working-set capacity check then reflects
    the method actually staged (low-rank fits grids the 8-byte dense
    table does not).
    """
    nh = nh if nh is not None else nw
    n2_bytes = float(nw * nh * 8)
    if boundary_method == "dense":
        boundary = [
            DeviceArray(
                "gridpc", float(nw * nh * nw * 8), Direction.RESIDENT, persistent=True
            ),
        ]
    else:
        base, _, suffix = boundary_method.partition("-")
        bpe = 4.0 if suffix == "fp32" else 8.0
        n_freq = _edge_embedding_length(nh) // 2 + 1
        boundary = [
            DeviceArray(
                "edge_spectra",
                float(2 * n_freq * nw) * bpe,
                Direction.RESIDENT,
                persistent=True,
            ),
            # The transformed current column: recomputed per call, complex.
            DeviceArray(
                "pcurr_hat",
                float(n_freq * nw) * 2.0 * bpe,
                Direction.SCRATCH,
                persistent=False,
            ),
        ]
        if base == "toeplitz":
            boundary.append(
                DeviceArray(
                    "gridpc_edge",
                    float((nw - 2) * nh * nw) * bpe,
                    Direction.RESIDENT,
                    persistent=True,
                )
            )
        else:
            rbar = max(4, round(LOWRANK_RANK_FRACTION * max(nw - 2, 1)))
            boundary.extend(
                (
                    DeviceArray(
                        "edge_u",
                        float(nh * rbar * (nw - 2)) * bpe,
                        Direction.RESIDENT,
                        persistent=True,
                    ),
                    DeviceArray(
                        "edge_w",
                        float(nh * rbar * nw) * bpe,
                        Direction.RESIDENT,
                        persistent=True,
                    ),
                )
            )
    arrays = [
        *boundary,
        DeviceArray("psi_ext", n2_bytes, Direction.RESIDENT, persistent=True),
        DeviceArray("rgrid", float(nw * 8), Direction.RESIDENT, persistent=True),
        DeviceArray("pcurr", n2_bytes, Direction.IN, persistent=True),
        DeviceArray("psi", n2_bytes, Direction.OUT, persistent=True),
    ]
    for k in range(TEMP_WORK_ARRAYS):
        arrays.append(
            DeviceArray(f"work{k:02d}", n2_bytes, Direction.SCRATCH, persistent=False)
        )
    return arrays


@dataclass
class PfluxOffloadModel:
    """Cost-only model of one offloaded ``pflux_`` (no numerics needed).

    Usable at any grid size — including 513^2, where building the real
    Green tables costs a gigabyte — because it only manipulates counts.
    """

    nw: int
    nh: int
    build: OffloadBuild
    #: Observation hooks forwarded to the executor: each modeled kernel
    #: launch becomes a device-clock span tagged with the directive flavor.
    hooks: ObservationHooks = NULL_HOOKS

    def __post_init__(self) -> None:
        arch = self.build.arch
        working_set = sum(a.nbytes for a in pflux_device_arrays(self.nw, self.nh))
        capacity = arch.hbm_gib * 1024**3
        if working_set > capacity:
            from repro.errors import RuntimeModelError

            raise RuntimeModelError(
                f"pflux_ working set {working_set / 1e9:.1f} GB (Green tables "
                f"dominate, O(N^3)) exceeds {arch.name}'s {arch.hbm_gib:.0f} GiB "
                f"device memory at {self.nw}x{self.nh}"
            )
        vector_length = 64 if arch.vendor == "AMD" else 32
        self.registry = build_pflux_registry(
            self.nw, self.nh, vector_length=vector_length
        )
        self.plans: dict[str, ExecutionPlan] = {
            k.name: self.build.compiler.lower(k, self.build.model, self.build.arch)
            for k in self.registry
        }
        self.executor = OffloadExecutor(
            arch=self.build.arch,
            allocation_policy=self.build.allocation_policy,
            use_target_data=self.build.use_target_data,
            hooks=self.hooks,
            model=self.build.model,
        )
        self.arrays = pflux_device_arrays(self.nw, self.nh)

    def invoke(self) -> dict[str, float]:
        """Model one ``pflux_`` call; returns per-kernel seconds plus the
        ``__total__`` wall time including data management."""
        clock = self.executor.clock
        start = clock.now()
        self.executor.begin_invocation(self.arrays)
        per_kernel: dict[str, float] = {}
        for kernel in self.registry:
            per_kernel[kernel.name] = self.executor.launch(
                kernel.nest, self.plans[kernel.name]
            )
        self.executor.end_invocation()
        per_kernel["__total__"] = clock.now() - start
        return per_kernel

    def steady_state_seconds(self, *, warmup: int = 1) -> float:
        """Per-call time after the Green tables are resident — the paper's
        per-invocation numbers average over hundreds of Picard iterations,
        so the one-time staging cost is amortised away."""
        for _ in range(max(warmup, 1)):
            self.invoke()
        return self.invoke()["__total__"]


class OffloadedPflux(PfluxBase):
    """Drop-in ``pflux_`` that runs the real numerics while charging
    modeled GPU time — the reproduction's equivalent of running the
    directive build on a real device."""

    def __init__(
        self,
        grid: RZGrid,
        tables: BoundaryGreensTables,
        solver: GSInteriorSolver,
        build: OffloadBuild,
        hooks: ObservationHooks | None = None,
    ) -> None:
        # PfluxBase is a dataclass; initialise its fields explicitly.
        PfluxBase.__init__(self, grid, tables, solver)
        self.model = PfluxOffloadModel(
            grid.nw, grid.nh, build, hooks=hooks if hooks is not None else NULL_HOOKS
        )

    def _boundary_flux(self, pcurr: np.ndarray) -> np.ndarray:
        return boundary_flux_vectorized(self.tables, pcurr)

    def compute(self, pcurr: np.ndarray, psi_external: np.ndarray | None = None) -> np.ndarray:
        self.last_invocation = self.model.invoke()
        return super().compute(pcurr, psi_external)

    @property
    def modeled_seconds(self) -> float:
        """Total device-context virtual time accumulated so far."""
        return self.model.executor.clock.now()
