"""Speedup accounting: Amdahl limits and node-throughput break-even.

Two analyses frame the paper's results:

* **Amdahl** — with ``pflux_`` at 90 % of ``fit_``, infinite acceleration
  of ``pflux_`` alone caps the whole-code speedup at 10x-16x; once the GPU
  port lands, the *other* routines dominate (Figure 6, Conclusions).
* **Node throughput** — EFIT parallelises time slices across cores (or
  devices), so a GPU port pays off only when one device beats
  ``cores/devices`` CPU cores: 16x on Perlmutter, 8x on Frontier, 8.7x on
  Sunspot (Section 4, Section 6.2).
"""

from __future__ import annotations

from repro.errors import CalibrationError
from repro.machines.site import MachineSite

__all__ = ["amdahl_limit", "amdahl_speedup", "node_throughput_ratio", "meets_threshold"]


def amdahl_limit(accelerated_fraction: float) -> float:
    """Whole-code speedup cap for infinite acceleration of a fraction."""
    if not (0.0 <= accelerated_fraction < 1.0):
        raise CalibrationError("accelerated fraction must be in [0, 1)")
    return 1.0 / (1.0 - accelerated_fraction)


def amdahl_speedup(accelerated_fraction: float, kernel_speedup: float) -> float:
    """Whole-code speedup for a finite kernel speedup."""
    if kernel_speedup <= 0.0:
        raise CalibrationError("kernel speedup must be positive")
    if not (0.0 <= accelerated_fraction <= 1.0):
        raise CalibrationError("accelerated fraction must be in [0, 1]")
    return 1.0 / (
        (1.0 - accelerated_fraction) + accelerated_fraction / kernel_speedup
    )


def node_throughput_ratio(site: MachineSite, per_device_speedup: float) -> float:
    """Node GPU throughput over node CPU throughput.

    One device processes time slices ``per_device_speedup`` times faster
    than one core; the node has ``devices_per_node`` devices vs
    ``cores_per_node`` cores.  Ratio > 1 means the GPU port wins.
    """
    if per_device_speedup <= 0.0:
        raise CalibrationError("per-device speedup must be positive")
    gpu_throughput = site.devices_per_node * per_device_speedup
    return gpu_throughput / site.cpu.cores_per_node


def meets_threshold(site: MachineSite, per_device_speedup: float) -> bool:
    """Whether the configuration clears the Section 4 break-even bar."""
    return per_device_speedup >= site.acceleration_threshold
