"""The portability study driver: every sweep behind Tables 1-7, Figures 1-7.

CPU-side times come from the calibrated analytic model (FLOP counts of the
actual kernels over per-core sustained rates — see
:mod:`repro.calibration`); GPU-side times come from running the offload
model (:class:`~repro.core.offload.PfluxOffloadModel`) on the simulated
device of each site.  Everything is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calibration import (
    CPU_OPTIMIZATION_SPEEDUP,
    NONPFLUX_GPU_BUILD_SPEEDUP,
    NONPFLUX_SECONDS_PER_N2,
    NONPFLUX_SPLIT,
)
from repro.compilers.flags import parse_flags
from repro.compilers.oneapi import OneApiCompiler
from repro.core.offload import PfluxOffloadModel
from repro.core.paper import GRID_SIZES
from repro.errors import CalibrationError, UnsupportedTargetError
from repro.machines.site import MachineSite
from repro.utils.constants import MIB

__all__ = [
    "cpu_pflux_seconds",
    "cpu_nonpflux_seconds",
    "cpu_fit_seconds",
    "fit_breakdown_cpu",
    "PfluxGpuResult",
    "PortabilityStudy",
]

#: FLOPs of one pflux_ call: two O(N^3) boundary loop pairs at 4 FLOPs per
#: inner iteration (8 N^3 total) plus the O(N^2) remainder (RHS build,
#: fast solver, assembly) at ~40 FLOPs per grid point.
def _pflux_flops(n: int) -> float:
    return 8.0 * float(n) ** 3 + 40.0 * float(n) ** 2


def cpu_pflux_seconds(site: MachineSite, n: int, *, optimized: bool = False) -> float:
    """Single-core ``pflux_`` time (Table 2 baseline / optimized variant)."""
    cpu = site.cpu
    rate = cpu.sustained_gflops(optimized) * 1e9
    if float(n) ** 3 * 8.0 <= cpu.llc_mib * MIB:
        rate *= cpu.cache_boost
    return _pflux_flops(n) / rate


def cpu_nonpflux_seconds(site: MachineSite, n: int) -> float:
    """Everything in ``fit_`` except ``pflux_`` — calibrated O(N^2)."""
    try:
        coeff = NONPFLUX_SECONDS_PER_N2[site.name]
    except KeyError:
        raise CalibrationError(f"no non-pflux calibration for site {site.name!r}") from None
    return coeff * float(n) ** 2


def cpu_fit_seconds(site: MachineSite, n: int, *, optimized: bool = False) -> float:
    """Full ``fit_`` invocation time on one core (Table 1)."""
    return cpu_pflux_seconds(site, n, optimized=optimized) + cpu_nonpflux_seconds(site, n)


def fit_breakdown_cpu(site: MachineSite, n: int) -> dict[str, float]:
    """Per-subroutine shares of ``fit_`` on the CPU (Figure 1 pies)."""
    pflux = cpu_pflux_seconds(site, n)
    nonpflux = cpu_nonpflux_seconds(site, n)
    total = pflux + nonpflux
    shares = {"pflux_": pflux / total}
    for name, frac in NONPFLUX_SPLIT.items():
        shares[name] = frac * nonpflux / total
    return shares


@dataclass(frozen=True)
class PfluxGpuResult:
    """One offloaded configuration at one grid size."""

    site: str
    model: str
    n: int
    seconds: float
    speedup: float
    per_kernel: dict[str, float]
    boundary_dram_bytes: float
    h2d_bytes: float
    d2h_bytes: float
    page_faults: int

    @property
    def boundary_seconds(self) -> float:
        return self.per_kernel.get("boundary_lr", 0.0) + self.per_kernel.get(
            "boundary_tb", 0.0
        )


@dataclass
class PortabilityStudy:
    """Runs the paper's sweeps over one or more sites."""

    sites: tuple[MachineSite, ...]
    grid_sizes: tuple[int, ...] = GRID_SIZES
    _cache: dict = field(default_factory=dict, repr=False)

    def site(self, name: str) -> MachineSite:
        for s in self.sites:
            if s.name == name:
                return s
        raise CalibrationError(f"study has no site named {name!r}")

    # -- GPU runs -------------------------------------------------------------------
    def _build(self, site: MachineSite, model: str, *, use_target_data: bool = True):
        flags = parse_flags(site.flags(model))
        if isinstance(site.compiler, OneApiCompiler):
            return site.compiler.configure(
                flags, site.env, site.gpu, use_target_data=use_target_data
            )
        return site.compiler.configure(flags, site.env, site.gpu)

    def gpu_pflux(
        self, site: MachineSite, model: str, n: int, *, use_target_data: bool = True
    ) -> PfluxGpuResult:
        """Steady-state offloaded ``pflux_`` at one configuration."""
        key = (site.name, site.env.variables.get("CRAY_MALLOPT_OFF"), model, n, use_target_data)
        if key in self._cache:
            return self._cache[key]
        build = self._build(site, model, use_target_data=use_target_data)
        offload = PfluxOffloadModel(n, n, build)
        offload.invoke()  # warm-up: stages the Green tables
        counters = offload.executor.counters
        before = {
            "dram": counters.kernel("boundary_lr").dram_bytes
            + counters.kernel("boundary_tb").dram_bytes,
            "h2d": counters.h2d_bytes,
            "d2h": counters.d2h_bytes,
            "faults": counters.page_faults,
        }
        per_kernel = offload.invoke()
        result = PfluxGpuResult(
            site=site.name,
            model=model,
            n=n,
            seconds=per_kernel["__total__"],
            speedup=cpu_pflux_seconds(site, n) / per_kernel["__total__"],
            per_kernel={k: v for k, v in per_kernel.items() if k != "__total__"},
            boundary_dram_bytes=(
                counters.kernel("boundary_lr").dram_bytes
                + counters.kernel("boundary_tb").dram_bytes
                - before["dram"]
            ),
            h2d_bytes=counters.h2d_bytes - before["h2d"],
            d2h_bytes=counters.d2h_bytes - before["d2h"],
            page_faults=counters.page_faults - before["faults"],
        )
        self._cache[key] = result
        return result

    def gpu_fit_seconds(self, site: MachineSite, model: str, n: int) -> float:
        """``fit_`` per-invocation time in the GPU build: offloaded
        ``pflux_`` plus the host-resident remainder (which also gained the
        general code optimisations — see calibration)."""
        pflux = self.gpu_pflux(site, model, n).seconds
        host = cpu_nonpflux_seconds(site, n) / NONPFLUX_GPU_BUILD_SPEEDUP[site.name]
        return pflux + host

    def fit_breakdown_gpu(self, site: MachineSite, model: str, n: int) -> dict[str, float]:
        """Figure 6: per-subroutine shares of ``fit_`` after offload."""
        pflux = self.gpu_pflux(site, model, n).seconds
        host = cpu_nonpflux_seconds(site, n) / NONPFLUX_GPU_BUILD_SPEEDUP[site.name]
        total = pflux + host
        shares = {"pflux_": pflux / total}
        for name, frac in NONPFLUX_SPLIT.items():
            shares[name] = frac * host / total
        return shares

    # -- sweeps ----------------------------------------------------------------------
    def sweep_models(self, site: MachineSite) -> dict[str, dict[int, PfluxGpuResult]]:
        """All buildable models at one site over all grid sizes."""
        out: dict[str, dict[int, PfluxGpuResult]] = {}
        for model in ("openacc", "openmp"):
            try:
                self._build(site, model)
            except (UnsupportedTargetError, Exception) as exc:
                if model not in site.models or model not in site.flag_lines:
                    continue
                raise exc
            out[model] = {n: self.gpu_pflux(site, model, n) for n in self.grid_sizes}
        return out

    def speedup_summary(self, site: MachineSite) -> dict[str, dict[int, float]]:
        """Figure 7 series for one site: optimized CPU + each GPU model
        (baseline CPU is the 1x reference)."""
        series: dict[str, dict[int, float]] = {
            "cpu_optimized": {
                n: cpu_pflux_seconds(site, n)
                / cpu_pflux_seconds(site, n, optimized=True)
                for n in self.grid_sizes
            }
        }
        for model, results in self.sweep_models(site).items():
            series[model] = {n: r.speedup for n, r in results.items()}
        # Consistency: the optimized-CPU series is the 3x of Section 6.
        assert all(
            abs(v - CPU_OPTIMIZATION_SPEEDUP) < 0.5
            for v in series["cpu_optimized"].values()
        )
        return series
