"""Every number published in the paper's evaluation, transcribed.

The benchmark harness prints these beside the model's output
(EXPERIMENTS.md records both), and the calibration tests assert the model
lands within tolerance.  Grid sizes are indexed by N in {65, 129, 257,
513}; all times are seconds per call.
"""

from __future__ import annotations

GRID_SIZES: tuple[int, ...] = (65, 129, 257, 513)

# --- Table 1: baseline CPU fit_ time per invocation (one core) -------------
TABLE1_FIT_CPU: dict[str, dict[int, float]] = {
    "perlmutter": {65: 0.004, 129: 0.024, 257: 0.17, 513: 1.15},
    "frontier": {65: 0.004, 129: 0.023, 257: 0.16, 513: 1.15},
    "sunspot": {65: 0.003, 129: 0.02, 257: 0.21, 513: 1.34},
}

# --- Table 2: baseline CPU pflux_ time per call and share of fit_ ----------
TABLE2_PFLUX_CPU: dict[str, dict[int, float]] = {
    "perlmutter": {65: 2.4e-3, 129: 1.6e-2, 257: 1.4e-1, 513: 1.04},
    "frontier": {65: 2.2e-3, 129: 1.7e-2, 257: 1.4e-1, 513: 1.05},
    "sunspot": {65: 1.5e-3, 129: 1.2e-2, 257: 1.8e-1, 513: 1.18},
}

TABLE2_PFLUX_SHARE: dict[str, dict[int, float]] = {
    "perlmutter": {65: 0.57, 129: 0.72, 257: 0.84, 513: 0.90},
    "frontier": {65: 0.61, 129: 0.75, 257: 0.85, 513: 0.92},
    "sunspot": {65: 0.47, 129: 0.61, 257: 0.84, 513: 0.88},
}

# --- Table 4: OpenACC directive census over pflux_ --------------------------
TABLE4_ACC_CENSUS: dict[str, int] = {
    "!$acc kernel": 4,
    "!$acc end kernel": 4,
    "!$acc parallel loop gang worker": 2,
    "!$acc loop vector reduction": 2,
}

# --- Table 5: OpenMP directive census over pflux_ ---------------------------
TABLE5_OMP_CENSUS: dict[str, int] = {
    "!$omp target teams distribute parallel do collapse": 4,
    "!$omp target teams distribute reduction": 2,
    "!$omp parallel do reduction collapse": 2,
}

# --- Table 6: OpenACC pflux_ time and speedup --------------------------------
TABLE6_ACC_TIME: dict[str, dict[int, float]] = {
    "perlmutter": {65: 9.10e-4, 129: 1.80e-3, 257: 4.45e-3, 513: 1.63e-2},
    "frontier": {65: 1.6e-3, 129: 3.4e-3, 257: 1.2e-2, 513: 8.4e-2},
}

TABLE6_ACC_SPEEDUP: dict[str, dict[int, float]] = {
    "perlmutter": {65: 2.4, 129: 10.0, 257: 31.0, 513: 65.0},
    "frontier": {65: 1.4, 129: 5.0, 257: 12.0, 513: 13.0},
}

# --- Table 7: OpenMP pflux_ time and speedup ---------------------------------
TABLE7_OMP_TIME: dict[str, dict[int, float]] = {
    "perlmutter": {65: 1.05e-3, 129: 1.39e-3, 257: 3.42e-3, 513: 1.48e-2},
    "frontier": {65: 6.9e-4, 129: 2.16e-3, 257: 4.6e-3, 513: 1.89e-2},
    "sunspot": {65: 4.2e-3, 129: 6.73e-3, 257: 1.6e-2, 513: 8.84e-2},
}

TABLE7_OMP_SPEEDUP: dict[str, dict[int, float]] = {
    "perlmutter": {65: 2.0, 129: 11.0, 257: 41.0, 513: 70.0},
    "frontier": {65: 3.0, 129: 8.0, 257: 30.0, 513: 56.0},
    "sunspot": {65: 0.35, 129: 2.0, 257: 11.0, 513: 13.0},
}

# --- Figure 5: HBM data movement of the O(N^3) kernels at 513^2 --------------
# The paper prints ratios, not absolute bytes: OpenACC moves 1.6x more than
# OpenMP on NVIDIA and 3.7x more on AMD; OpenMP movement is comparable on
# NVIDIA, AMD and Intel.
FIG5_ACC_OVER_OMP: dict[str, float] = {"perlmutter": 1.6, "frontier": 3.7}

# --- Figure 6: pflux_ share of fit_ after OpenMP offload (513^2) --------------
FIG6_PFLUX_SHARE_GPU: dict[str, float] = {
    "perlmutter": 0.16,
    "frontier": 0.27,
    "sunspot": 0.44,
}

# --- Figure 4: effect of -hsystem_alloc on Frontier --------------------------
# "the run-time for small size problems got between 10x to 2x faster".
FIG4_SYSTEM_ALLOC_GAIN_65: float = 10.0
FIG4_SYSTEM_ALLOC_GAIN_257: float = 2.0

# --- Section 4 / 6.2: node-throughput break-even thresholds -------------------
ACCELERATION_THRESHOLDS: dict[str, float] = {
    "perlmutter": 16.0,
    "frontier": 8.0,
    "sunspot": 8.7,
}

# --- Section 6: CPU-side optimization ----------------------------------------
CPU_OPT_SPEEDUP: float = 3.0
