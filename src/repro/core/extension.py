"""Extension study: offloading the rest of ``fit_`` (the paper's future work).

The paper closes with: "Further GPU acceleration of EFIT will require
similar optimization of the other routines in ``fit_``".  This module
projects that next step with the same machinery used for ``pflux_``:

* ``green_``  — the response contraction ``G_meas_grid @ J_basis`` is a
  dense (n_meas x N^2) x (N^2 x n_coeff) matmul: large, regular,
  bandwidth-bound — an ideal offload target;
* ``current_`` — the basis-current evaluation is an O(N^2) streaming
  kernel;
* ``steps_``  — the psiN build and convergence reductions offload, but the
  axis/X-point searches and the LSQ stay on the host (serial logic), so a
  host remainder survives.

The projection answers the question the conclusions raise: with the full
pipeline offloaded, do Perlmutter and Sunspot finally clear their
node-throughput break-even bars at high resolution?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import NONPFLUX_GPU_BUILD_SPEEDUP, NONPFLUX_SPLIT
from repro.core.study import PortabilityStudy, cpu_nonpflux_seconds, cpu_pflux_seconds
from repro.core.speedup import meets_threshold, node_throughput_ratio
from repro.directives.ir import AccessMode, ArrayRef, Loop, LoopNest
from repro.directives.openmp import OmpTargetTeamsDistribute
from repro.directives.registry import AnnotatedKernel
from repro.errors import CalibrationError
from repro.machines.site import MachineSite
from repro.runtime.kernel import ExecutionPlan

__all__ = ["FullOffloadProjection", "project_full_offload"]

#: Typical diagnostic count of the DIII-D setup (green_ row dimension).
N_MEASUREMENTS = 101
#: Fitted coefficients (p' + FF' bases).
N_COEFFS = 4
#: Fraction of steps_ that is serial host logic (axis/X-point search,
#: LSQ triangularisation) and cannot be offloaded.
STEPS_HOST_FRACTION = 0.35


def _green_kernel(n: int) -> AnnotatedKernel:
    """The response contraction: (n_meas x N^2) @ (N^2 x n_coeff)."""
    n2 = n * n
    return AnnotatedKernel(
        nest=LoopNest(
            name="green_response",
            loops=(Loop("m", N_MEASUREMENTS), Loop("k", n2)),
            flops_per_iteration=2.0 * N_COEFFS,
            arrays=(
                ArrayRef("g_meas", N_MEASUREMENTS * n2, AccessMode.READ, 1.0),
                ArrayRef("jbasis", n2 * N_COEFFS, AccessMode.READ, float(N_COEFFS)),
                ArrayRef("a_matrix", N_MEASUREMENTS * N_COEFFS, AccessMode.WRITE, 0.001),
            ),
            n_outer=1,
        ),
        acc_directives=(),
        omp_directives=(OmpTargetTeamsDistribute(parallel_do=True, collapse=2),),
        complexity="O(N^2)",
    )


def _current_kernel(n: int) -> AnnotatedKernel:
    n2 = n * n
    return AnnotatedKernel(
        nest=LoopNest(
            name="current_basis",
            loops=(Loop("i", n), Loop("j", n)),
            flops_per_iteration=4.0 * N_COEFFS,
            arrays=(
                ArrayRef("psin", n2, AccessMode.READ, 1.0),
                ArrayRef("jbasis", n2 * N_COEFFS, AccessMode.WRITE, float(N_COEFFS)),
            ),
            n_outer=2,
        ),
        acc_directives=(),
        omp_directives=(OmpTargetTeamsDistribute(parallel_do=True, collapse=2),),
        complexity="O(N^2)",
    )


def _steps_kernel(n: int) -> AnnotatedKernel:
    n2 = n * n
    return AnnotatedKernel(
        nest=LoopNest(
            name="steps_psin",
            loops=(Loop("i", n), Loop("j", n)),
            flops_per_iteration=5.0,
            arrays=(
                ArrayRef("psi", n2, AccessMode.READ, 2.0),
                ArrayRef("psin", n2, AccessMode.WRITE, 1.0),
            ),
            n_outer=2,
            reductions=("residual",),
        ),
        acc_directives=(),
        omp_directives=(OmpTargetTeamsDistribute(parallel_do=True, collapse=2),),
        complexity="O(N^2)",
    )


@dataclass(frozen=True)
class FullOffloadProjection:
    """fit_ timing with the whole pipeline offloaded, per configuration."""

    site: str
    n: int
    pflux_seconds: float
    other_device_seconds: float
    host_remainder_seconds: float
    fit_seconds_pflux_only: float
    fit_seconds_full: float
    fit_speedup_pflux_only: float
    fit_speedup_full: float
    clears_threshold: bool
    node_ratio: float

    @property
    def additional_gain(self) -> float:
        return self.fit_seconds_pflux_only / self.fit_seconds_full


def project_full_offload(
    study: PortabilityStudy, site: MachineSite, model: str, n: int
) -> FullOffloadProjection:
    """Project ``fit_`` with ``green_``/``current_``/``steps_`` offloaded too.

    Device time for the new kernels comes from the same compiler lowering
    and executor cost model used for ``pflux_``; the serial share of
    ``steps_`` (plus the LSQ) stays on the optimized host.
    """
    if model not in site.models:
        raise CalibrationError(f"{site.name} has no {model} build")
    pflux = study.gpu_pflux(site, model, n)
    build = study._build(site, model)

    # Lower and cost the three new kernel groups on the same executor
    # context (Green tables and grid fields already resident).
    from repro.runtime.executor import OffloadExecutor

    executor = OffloadExecutor(
        arch=build.arch,
        allocation_policy=build.allocation_policy,
        use_target_data=build.use_target_data,
    )
    kernels = [_green_kernel(n), _current_kernel(n), _steps_kernel(n)]
    executor.begin_invocation([])
    device_seconds = 0.0
    for kernel in kernels:
        plan: ExecutionPlan = build.compiler.lower(kernel, model, build.arch)
        device_seconds += executor.launch(kernel.nest, plan)
    executor.end_invocation()

    nonpflux_host = cpu_nonpflux_seconds(site, n) / NONPFLUX_GPU_BUILD_SPEEDUP[site.name]
    # The host keeps the serial slice of steps_ and the 'other' bucket.
    host_remainder = nonpflux_host * (
        NONPFLUX_SPLIT["steps_"] * STEPS_HOST_FRACTION + NONPFLUX_SPLIT["other"]
    )
    fit_pflux_only = pflux.seconds + nonpflux_host
    fit_full = pflux.seconds + device_seconds + host_remainder
    baseline = cpu_pflux_seconds(site, n) + cpu_nonpflux_seconds(site, n)
    speedup_full = baseline / fit_full
    return FullOffloadProjection(
        site=site.name,
        n=n,
        pflux_seconds=pflux.seconds,
        other_device_seconds=device_seconds,
        host_remainder_seconds=host_remainder,
        fit_seconds_pflux_only=fit_pflux_only,
        fit_seconds_full=fit_full,
        fit_speedup_pflux_only=baseline / fit_pflux_only,
        fit_speedup_full=speedup_full,
        clears_threshold=meets_threshold(site, speedup_full),
        node_ratio=node_throughput_ratio(site, speedup_full),
    )
