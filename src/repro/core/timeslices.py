"""Node-level time-slice scheduling: EFIT's production parallelism.

"EFIT's typical usage will MPI parallelize multiple time steps across
multiple cores (or GPUs in an accelerated framework)" (Section 4).  This
module simulates that embarrassingly parallel dispatch so node throughput
can be compared honestly: slices have *heterogeneous* iteration counts
("ten or hundreds" per slice), so the makespan depends on scheduling, not
just on the mean rate.

Workers pull the next slice when free (greedy list scheduling / LPT when
sorted) — exactly how an MPI task farm over time slices behaves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["TimeSlice", "ScheduleResult", "schedule_slices", "synthetic_slice_counts"]


@dataclass(frozen=True)
class TimeSlice:
    """One time slice: its index and the fit_ iterations it needs."""

    index: int
    iterations: int

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ReproError(f"slice {self.index}: needs >= 1 iteration")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of dispatching a shot's slices onto one node."""

    makespan_seconds: float
    worker_seconds: np.ndarray  # busy time per worker
    assignments: tuple[tuple[int, ...], ...]  # slice indices per worker

    @property
    def n_workers(self) -> int:
        return int(self.worker_seconds.size)

    @property
    def utilisation(self) -> float:
        """Mean busy fraction over the makespan (1.0 = perfectly packed)."""
        if self.makespan_seconds == 0.0:
            return 1.0
        return float(self.worker_seconds.mean() / self.makespan_seconds)


def synthetic_slice_counts(
    n_slices: int, *, mean_iterations: int = 40, spread: float = 0.5, seed: int = 186610
) -> tuple[TimeSlice, ...]:
    """Deterministic heterogeneous iteration counts.

    Log-normal-ish spread reproduces the paper's "ten or hundreds of
    iterations" range: early-shot slices (plasma formation) converge
    slowly, flat-top slices quickly.
    """
    if n_slices < 1:
        raise ReproError("need at least one time slice")
    if not (0.0 <= spread < 2.0):
        raise ReproError("spread outside [0, 2)")
    rng = np.random.default_rng(seed)
    counts = np.exp(rng.normal(np.log(mean_iterations), spread, n_slices))
    counts = np.clip(np.round(counts), 10, 400).astype(int)
    return tuple(TimeSlice(i, int(c)) for i, c in enumerate(counts))


def schedule_slices(
    slices: tuple[TimeSlice, ...],
    n_workers: int,
    seconds_per_iteration: float,
    *,
    sort_longest_first: bool = True,
) -> ScheduleResult:
    """Greedy dispatch of slices onto ``n_workers`` identical workers.

    ``sort_longest_first=True`` is LPT scheduling (what a work-stealing
    task farm approximates); ``False`` dispatches in time order (a naive
    static round-robin driver).
    """
    if n_workers < 1:
        raise ReproError("need at least one worker")
    if seconds_per_iteration <= 0.0:
        raise ReproError("seconds_per_iteration must be positive")
    if not slices:
        raise ReproError("no slices to schedule")
    order = (
        sorted(slices, key=lambda s: -s.iterations) if sort_longest_first else list(slices)
    )
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    busy = np.zeros(n_workers)
    assignments: list[list[int]] = [[] for _ in range(n_workers)]
    for s in order:
        t, w = heapq.heappop(heap)
        cost = s.iterations * seconds_per_iteration
        busy[w] += cost
        assignments[w].append(s.index)
        heapq.heappush(heap, (t + cost, w))
    return ScheduleResult(
        makespan_seconds=float(busy.max()),
        worker_seconds=busy,
        assignments=tuple(tuple(a) for a in assignments),
    )
