"""Table/figure generation: renders each paper artifact, model vs paper.

Every function returns a :class:`~repro.utils.tables.Table` ready to
print, plus (where useful) the raw data dict for programmatic use.  The
benchmark harness under ``benchmarks/`` calls these and tees the output
into EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core import paper
from repro.core.offload import build_pflux_registry
from repro.core.speedup import meets_threshold
from repro.core.study import (
    PortabilityStudy,
    cpu_fit_seconds,
    cpu_pflux_seconds,
    fit_breakdown_cpu,
)
from repro.machines.site import MachineSite, frontier
from repro.utils.tables import Table, format_bytes, format_seconds, format_speedup

__all__ = [
    "table1_report",
    "table2_report",
    "table4_5_report",
    "table6_report",
    "table7_report",
    "fig1_report",
    "fig4_report",
    "fig5_report",
    "fig6_report",
    "fig7_report",
    "roofline_report",
]


def _grid_header(study: PortabilityStudy) -> list[str]:
    return [f"{n}x{n}" for n in study.grid_sizes]


def table1_report(study: PortabilityStudy) -> Table:
    """Table 1: baseline CPU ``fit_`` seconds per invocation."""
    t = Table(
        ["system", "quantity", *_grid_header(study)],
        title="Table 1 — fit_ time per invocation, one CPU core (model vs paper)",
    )
    for site in study.sites:
        t.add_row(
            [site.name, "model", *(format_seconds(cpu_fit_seconds(site, n)) for n in study.grid_sizes)]
        )
        t.add_row(
            [site.name, "paper", *(format_seconds(paper.TABLE1_FIT_CPU[site.name][n]) for n in study.grid_sizes)]
        )
    return t


def table2_report(study: PortabilityStudy) -> Table:
    """Table 2: baseline CPU ``pflux_`` seconds per call and share of fit_."""
    t = Table(
        ["system", "quantity", *_grid_header(study)],
        title="Table 2 — pflux_ time per call and % of fit_ (model vs paper)",
    )
    for site in study.sites:
        model_t = {n: cpu_pflux_seconds(site, n) for n in study.grid_sizes}
        model_share = {
            n: model_t[n] / cpu_fit_seconds(site, n) for n in study.grid_sizes
        }
        t.add_row([site.name, "model time", *(format_seconds(model_t[n]) for n in study.grid_sizes)])
        t.add_row([site.name, "paper time", *(format_seconds(paper.TABLE2_PFLUX_CPU[site.name][n]) for n in study.grid_sizes)])
        t.add_row([site.name, "model % fit_", *(f"{100 * model_share[n]:.0f}%" for n in study.grid_sizes)])
        t.add_row([site.name, "paper % fit_", *(f"{100 * paper.TABLE2_PFLUX_SHARE[site.name][n]:.0f}%" for n in study.grid_sizes)])
    return t


def table4_5_report() -> tuple[Table, Table]:
    """Tables 4 and 5: the directive census over the offloaded pflux_."""
    registry = build_pflux_registry(65)
    out = []
    for model, title, paper_census in (
        ("openacc", "Table 4 — OpenACC directives over pflux_", paper.TABLE4_ACC_CENSUS),
        ("openmp", "Table 5 — OpenMP directives over pflux_", paper.TABLE5_OMP_CENSUS),
    ):
        t = Table(["directive", "count (ours)", "% of routine", "count (paper)"], title=title)
        for pragma, count, pct in registry.census_table(model):
            t.add_row([pragma, count, f"{pct:.1f}%", paper_census.get(pragma, "-")])
        out.append(t)
    return out[0], out[1]


def _gpu_table(
    study: PortabilityStudy,
    model: str,
    site_names: tuple[str, ...],
    title: str,
    paper_time: dict,
    paper_speedup: dict,
) -> Table:
    t = Table(["GPU", "quantity", *_grid_header(study)], title=title)
    for name in site_names:
        site = study.site(name)
        results = {n: study.gpu_pflux(site, model, n) for n in study.grid_sizes}
        t.add_row([site.gpu.vendor, "model time (s)", *(format_seconds(results[n].seconds) for n in study.grid_sizes)])
        t.add_row([site.gpu.vendor, "paper time (s)", *(format_seconds(paper_time[name][n]) for n in study.grid_sizes)])
        t.add_row([site.gpu.vendor, "model speedup", *(format_speedup(results[n].speedup) for n in study.grid_sizes)])
        t.add_row([site.gpu.vendor, "paper speedup", *(format_speedup(paper_speedup[name][n]) for n in study.grid_sizes)])
    return t


def table6_report(study: PortabilityStudy) -> Table:
    """Table 6: OpenACC pflux_ time and speedup on NVIDIA and AMD."""
    return _gpu_table(
        study,
        "openacc",
        ("perlmutter", "frontier"),
        "Table 6 — pflux_ with OpenACC (model vs paper)",
        paper.TABLE6_ACC_TIME,
        paper.TABLE6_ACC_SPEEDUP,
    )


def table7_report(study: PortabilityStudy) -> Table:
    """Table 7: OpenMP pflux_ time and speedup on all three vendors."""
    return _gpu_table(
        study,
        "openmp",
        ("perlmutter", "frontier", "sunspot"),
        "Table 7 — pflux_ with OpenMP (model vs paper)",
        paper.TABLE7_OMP_TIME,
        paper.TABLE7_OMP_SPEEDUP,
    )


def fig1_report(study: PortabilityStudy, n: int = 513) -> Table:
    """Figure 1: CPU fit_ breakdown pies at 513^2."""
    t = Table(
        ["system", "pflux_", "green_", "current_", "steps_", "other"],
        title=f"Figure 1 — fit_ breakdown on one CPU core at {n}x{n} (pflux_ ~90% in paper)",
    )
    for site in study.sites:
        shares = fit_breakdown_cpu(site, n)
        t.add_row(
            [site.name]
            + [f"{100 * shares[k]:.0f}%" for k in ("pflux_", "green_", "current_", "steps_", "other")]
        )
    return t


def fig4_report(study_fast: PortabilityStudy | None = None) -> Table:
    """Figure 4: AMD MI250X with and without -hsystem_alloc."""
    fast = study_fast if study_fast is not None else PortabilityStudy((frontier(),))
    slow = PortabilityStudy((frontier(system_alloc=False),))
    t = Table(
        ["model", "quantity", *(f"{n}x{n}" for n in fast.grid_sizes)],
        title="Figure 4 — pflux_ on one MI250X GCD with/without -hsystem_alloc "
        "(paper: 10x-2x gains, mainly small grids)",
    )
    for model in ("openacc", "openmp"):
        f = {n: fast.gpu_pflux(fast.sites[0], model, n).seconds for n in fast.grid_sizes}
        s = {n: slow.gpu_pflux(slow.sites[0], model, n).seconds for n in fast.grid_sizes}
        t.add_row([model, "with (s)", *(format_seconds(f[n]) for n in fast.grid_sizes)])
        t.add_row([model, "without (s)", *(format_seconds(s[n]) for n in fast.grid_sizes)])
        t.add_row([model, "gain", *(format_speedup(s[n] / f[n]) for n in fast.grid_sizes)])
    return t


def fig5_report(study: PortabilityStudy, n: int = 513) -> Table:
    """Figure 5: HBM data movement of the O(N^3) kernels at 513^2."""
    t = Table(
        ["configuration", "boundary-kernel HBM bytes", "vs own OpenMP"],
        title=f"Figure 5 — GPU data movement of the O(N^3) kernels at {n}x{n} "
        "(paper: OpenACC = 1.6x OpenMP on NVIDIA, 3.7x on AMD)",
    )
    omp_bytes = {}
    rows = []
    for name, model in (
        ("perlmutter", "openmp"),
        ("perlmutter", "openacc"),
        ("frontier", "openmp"),
        ("frontier", "openacc"),
        ("sunspot", "openmp"),
    ):
        site = study.site(name)
        r = study.gpu_pflux(site, model, n)
        if model == "openmp":
            omp_bytes[name] = r.boundary_dram_bytes
        rows.append((f"{site.gpu.vendor} {model}", r.boundary_dram_bytes, name, model))
    for label, nbytes, name, model in rows:
        ratio = nbytes / omp_bytes[name]
        t.add_row([label, format_bytes(nbytes), f"{ratio:.2f}x"])
    return t


def fig6_report(study: PortabilityStudy, n: int = 513) -> Table:
    """Figure 6: fit_ breakdown after OpenMP offload."""
    t = Table(
        ["system", "pflux_ (model)", "pflux_ (paper)", "green_", "current_", "steps_", "other"],
        title=f"Figure 6 — fit_ breakdown with OpenMP-offloaded pflux_ at {n}x{n}",
    )
    for site in study.sites:
        shares = study.fit_breakdown_gpu(site, "openmp", n)
        t.add_row(
            [
                site.name,
                f"{100 * shares['pflux_']:.0f}%",
                f"{100 * paper.FIG6_PFLUX_SHARE_GPU[site.name]:.0f}%",
                *(f"{100 * shares[k]:.0f}%" for k in ("green_", "current_", "steps_", "other")),
            ]
        )
    return t


def roofline_report(study: PortabilityStudy, site_name: str, model: str, n: int = 513) -> Table:
    """Per-kernel roofline placement for one offloaded configuration.

    The methodology of the paper's related work (Mehta et al., the SNAP
    study): for each kernel, compare achieved FLOP rate against the
    roofline bound at its arithmetic intensity.  Achieved rates come from
    the simulated counters (flops / device seconds); the AI uses the
    *moved* bytes, i.e. the lowering's traffic, not the ideal footprint.
    """
    from repro.core.offload import build_pflux_registry
    from repro.hardware.roofline import attainable_gflops

    site = study.site(site_name)
    result = study.gpu_pflux(site, model, n)
    registry = build_pflux_registry(n, n)
    t = Table(
        ["kernel", "class", "AI (F/B)", "attainable GF/s", "achieved GF/s", "% roofline"],
        title=f"Roofline placement — {site.gpu.vendor} {model} at {n}x{n}",
    )
    for kernel in registry:
        seconds = result.per_kernel.get(kernel.name)
        if not seconds:
            continue
        plan_traffic = kernel.nest.streaming_bytes
        # Reconstruct moved bytes from the counters ratio is awkward; use
        # modeled seconds directly for the achieved rate.
        achieved = kernel.nest.total_flops / seconds / 1e9
        moved = plan_traffic  # streaming as the AI denominator baseline
        ai = kernel.nest.total_flops / moved if moved else float("inf")
        attainable = attainable_gflops(site.gpu, ai)
        t.add_row(
            [
                kernel.name,
                kernel.complexity,
                f"{ai:.3f}",
                f"{attainable:.0f}",
                f"{achieved:.1f}",
                f"{100 * achieved / attainable:.1f}%",
            ]
        )
    return t


def fig7_report(study: PortabilityStudy) -> Table:
    """Figure 7: the speedup summary across sites, models, grids."""
    t = Table(
        ["system", "series", *_grid_header(study)],
        title="Figure 7 — pflux_ speedup vs one baseline CPU core "
        "(threshold column: node break-even, Section 4)",
    )
    for site in study.sites:
        series = study.speedup_summary(site)
        t.add_row([site.name, "cpu baseline", *(["1.0x"] * len(study.grid_sizes))])
        t.add_row(
            [site.name, "cpu optimized", *(format_speedup(series["cpu_optimized"][n]) for n in study.grid_sizes)]
        )
        for model in ("openacc", "openmp"):
            if model not in series:
                continue
            cells = []
            for n in study.grid_sizes:
                s = series[model][n]
                mark = "*" if meets_threshold(site, s) else ""
                cells.append(format_speedup(s) + mark)
            t.add_row([site.name, model, *cells])
    return t


def extension_report(study: PortabilityStudy, n: int = 513) -> Table:
    """The paper's future work, projected: fit_ with everything offloaded.

    "Further GPU acceleration of EFIT will require similar optimization of
    the other routines in fit_" (Conclusions) — this table quantifies the
    payoff using the same cost model, and marks which nodes then clear
    their break-even bars for the *whole* reconstruction.
    """
    from repro.core.extension import project_full_offload

    t = Table(
        ["system", "fit_ (pflux_-only offload)", "fit_ (full offload)",
         "extra gain", "fit_ speedup", "clears node bar?"],
        title=f"Extension — projected full-fit_ offload at {n}x{n} (OpenMP)",
    )
    for site in study.sites:
        p = project_full_offload(study, site, "openmp", n)
        t.add_row(
            [
                site.name,
                format_seconds(p.fit_seconds_pflux_only),
                format_seconds(p.fit_seconds_full),
                f"{p.additional_gain:.1f}x",
                format_speedup(p.fit_speedup_full),
                "yes" if p.clears_threshold else "no",
            ]
        )
    return t
