"""The paper's study: offloaded ``pflux_``, sweeps, and report generation."""

from repro.core.offload import (
    build_pflux_registry,
    pflux_device_arrays,
    OffloadedPflux,
    PFLUX_SOURCE_LINES,
)
from repro.core.study import (
    PortabilityStudy,
    PfluxGpuResult,
    cpu_pflux_seconds,
    cpu_fit_seconds,
    cpu_nonpflux_seconds,
)
from repro.core.speedup import amdahl_limit, node_throughput_ratio
from repro.core.extension import project_full_offload, FullOffloadProjection
from repro.core.timeslices import schedule_slices, synthetic_slice_counts
from repro.core import paper

__all__ = [
    "build_pflux_registry",
    "pflux_device_arrays",
    "OffloadedPflux",
    "PFLUX_SOURCE_LINES",
    "PortabilityStudy",
    "PfluxGpuResult",
    "cpu_pflux_seconds",
    "cpu_fit_seconds",
    "cpu_nonpflux_seconds",
    "amdahl_limit",
    "node_throughput_ratio",
    "project_full_offload",
    "FullOffloadProjection",
    "schedule_slices",
    "synthetic_slice_counts",
    "paper",
]
