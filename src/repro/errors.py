"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GridError",
    "GreensError",
    "SolverError",
    "ConvergenceError",
    "BoundaryError",
    "FittingError",
    "MeasurementError",
    "ScenarioError",
    "OperatorError",
    "OperatorStructureError",
    "DirectiveError",
    "DirectiveParseError",
    "TranslationError",
    "HardwareError",
    "CompilerError",
    "UnsupportedTargetError",
    "RuntimeModelError",
    "MemoryModelError",
    "MapError",
    "LaunchError",
    "CalibrationError",
    "EqdskError",
    "AnalysisError",
    "ObservabilityError",
    "BenchGateError",
    "ParallelError",
    "ArenaError",
    "JobQuarantinedError",
    "ServeError",
    "AdmissionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridError(ReproError):
    """Invalid grid specification (non-positive extents, bad shape...)."""


class GreensError(ReproError):
    """Green-function evaluation failure (coincident filaments, R<=0...)."""


class SolverError(ReproError):
    """Interior Grad-Shafranov solver failure."""


class ConvergenceError(SolverError):
    """An iterative procedure failed to reach its tolerance."""


class BoundaryError(ReproError):
    """Plasma boundary / magnetic axis search failure."""


class FittingError(ReproError):
    """Equilibrium fitting (``fit_``) failure."""


class MeasurementError(ReproError):
    """Invalid measurement set or diagnostic specification."""


class ScenarioError(ReproError):
    """Unknown scenario name or invalid scenario declaration."""


class OperatorError(ReproError):
    """Edge-operator construction or application failure (unknown
    ``boundary_method``, malformed serialized arrays, shape mismatch)."""


class OperatorStructureError(OperatorError):
    """The Green table violates the structural assumption a compressed
    edge operator relies on (z-translation invariance of ``gridpc``);
    callers must fall back to ``boundary_method='dense'``."""


class DirectiveError(ReproError):
    """Invalid directive construction or application.

    Carries the owning ``kernel`` and ``subroutine`` when known, and
    prefixes the message with the same ``subroutine::kernel`` location
    format the portability linter uses for its findings, so hand-raised
    validation errors and linter output read identically.
    """

    def __init__(
        self,
        message: str,
        *,
        kernel: str | None = None,
        subroutine: str | None = None,
    ) -> None:
        self.kernel = kernel
        self.subroutine = subroutine
        if subroutine and kernel:
            message = f"{subroutine}::{kernel}: {message}"
        elif kernel:
            message = f"{kernel}: {message}"
        elif subroutine:
            message = f"{subroutine}: {message}"
        super().__init__(message)


class DirectiveParseError(DirectiveError):
    """A pragma string could not be parsed."""


class TranslationError(DirectiveError):
    """A directive could not be translated between OpenACC and OpenMP."""


class HardwareError(ReproError):
    """Invalid hardware model parameters."""


class CompilerError(ReproError):
    """Compiler-model failure (unknown flags, bad lowering request...)."""


class UnsupportedTargetError(CompilerError):
    """The (compiler, programming model, architecture) combination is not
    supported -- e.g. OpenACC on Intel PVC, for which no compiler exists."""


class RuntimeModelError(ReproError):
    """Offload-runtime simulation failure."""


class MemoryModelError(RuntimeModelError):
    """Unified-memory / data-environment model failure."""


class MapError(MemoryModelError):
    """Invalid explicit data mapping (``target data map``)."""


class LaunchError(RuntimeModelError):
    """Kernel launch failure (no device, plan/loop-nest mismatch...)."""


class CalibrationError(ReproError):
    """Calibration table lookup failure."""


class EqdskError(ReproError):
    """G-EQDSK file format error."""


class AnalysisError(ReproError):
    """Static-analysis (portability linter) failure: malformed baseline
    file, unscannable source, inconsistent analyzer configuration."""


class ObservabilityError(ReproError):
    """Tracing/metrics misuse: mismatched span nesting, merging
    histograms with different bucket bounds, duplicate metric names."""


class BenchGateError(ObservabilityError):
    """Benchmark-gate failure that is not a regression: missing or
    malformed baseline file, unknown benchmark names.

    ``outcomes`` carries any per-case verdicts computed before the
    failure was detected, so the CLI can still print the ratio table on
    the exit-2 path (an empty tuple when the failure preceded
    evaluation, e.g. an unreadable baseline).
    """

    def __init__(self, message: str, *, outcomes: tuple = ()) -> None:
        super().__init__(message)
        self.outcomes = tuple(outcomes)


class ParallelError(ReproError):
    """Multi-process scheduler failure: invalid configuration, a dead
    worker pool, or a run that could not be completed."""


class ArenaError(ParallelError):
    """Shared-memory table-arena failure: creation, attachment or
    reference-counting misuse."""


class JobQuarantinedError(ParallelError):
    """One or more jobs exhausted their retry budget (or raised a
    deterministic error) and were quarantined; carries the failures."""

    def __init__(self, message: str, failures: tuple = ()) -> None:
        self.failures = failures
        super().__init__(message)


class ServeError(ReproError):
    """Streaming-service failure: invalid configuration, a stopped
    service, or misuse of the stream lifecycle."""


class AdmissionError(ServeError):
    """A new stream was refused: the service is at its concurrent-stream
    capacity (admission control, not a transient queue overflow)."""
