"""Structured span/event tracing of a reconstruction run.

The paper's entire evaluation is built from ``omp_get_wtime()`` regions
around ``fit_``'s callees (Figures 1/6, Tables 1/2/6/7).
:class:`TraceRecorder` is the machine-readable generalisation: every
region becomes a *span* with a monotonic start timestamp, a duration, a
nesting depth and free-form attributes (Picard iteration, chi^2, grid
size, modeled HBM bytes, ...); point-in-time facts become *instant
events*.  Exporters in :mod:`repro.obs.export` turn the record stream
into a Chrome-trace JSON (``about:tracing`` / Perfetto) or JSONL.

Design constraints:

* **Zero overhead when disabled** — a disabled recorder hands out one
  shared no-op context manager and never touches the clock;
* **Thread safe** — batch workers trace concurrently; each thread keeps
  its own span stack, the record list is lock-protected, and every
  record carries a stable small thread id;
* **Profiler-compatible** — :meth:`TraceRecorder.region_totals` computes
  *exclusive* per-name totals with exactly the child-subtraction rule of
  :class:`~repro.profiling.regions.RegionProfiler`, so trace totals and
  profiler reports agree on the same run.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.errors import ObservabilityError
from repro.profiling.timer import Clock, WallClock

__all__ = [
    "SpanRecord",
    "EventRecord",
    "TraceRecorder",
    "NULL_CONTEXT",
]


class SpanRecord:
    """One timed region: a named interval with nesting and attributes."""

    __slots__ = (
        "name",
        "category",
        "start",
        "duration",
        "child_duration",
        "thread_id",
        "depth",
        "parent_index",
        "index",
        "attributes",
    )

    kind = "span"

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        thread_id: int,
        depth: int,
        parent_index: int | None,
        index: int,
        attributes: dict[str, Any],
    ) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.duration: float | None = None  # open until the span closes
        self.child_duration = 0.0
        self.thread_id = thread_id
        self.depth = depth
        self.parent_index = parent_index
        self.index = index
        self.attributes = attributes

    @property
    def closed(self) -> bool:
        return self.duration is not None

    @property
    def end(self) -> float:
        if self.duration is None:
            raise ObservabilityError(f"span {self.name!r} is still open")
        return self.start + self.duration

    @property
    def exclusive(self) -> float:
        """Duration minus time spent in child spans (profiler semantics)."""
        if self.duration is None:
            raise ObservabilityError(f"span {self.name!r} is still open")
        return self.duration - self.child_duration

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "exclusive": self.exclusive if self.closed else None,
            "thread_id": self.thread_id,
            "depth": self.depth,
            "parent": self.parent_index,
            "index": self.index,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dur = f"{self.duration:.3e}s" if self.closed else "open"
        return f"SpanRecord({self.name!r}, {dur}, depth={self.depth})"


class EventRecord:
    """One instant event: a named timestamp with attributes."""

    __slots__ = ("name", "timestamp", "thread_id", "parent_index", "index", "attributes")

    kind = "event"

    def __init__(
        self,
        name: str,
        timestamp: float,
        thread_id: int,
        parent_index: int | None,
        index: int,
        attributes: dict[str, Any],
    ) -> None:
        self.name = name
        self.timestamp = timestamp
        self.thread_id = thread_id
        self.parent_index = parent_index
        self.index = index
        self.attributes = attributes

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "event",
            "name": self.name,
            "timestamp": self.timestamp,
            "thread_id": self.thread_id,
            "parent": self.parent_index,
            "index": self.index,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventRecord({self.name!r}, t={self.timestamp:.3e})"


class _NullContext:
    """The shared no-op context manager of disabled recorders/hooks."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_CONTEXT = _NullContext()


class _SpanHandle:
    """Context manager closing one open :class:`SpanRecord`."""

    __slots__ = ("_recorder", "_record")

    def __init__(self, recorder: "TraceRecorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self._record = record

    @property
    def record(self) -> SpanRecord:
        return self._record

    def close(self, now: float | None = None) -> None:
        """Close the span at ``now`` (default: read the recorder clock)."""
        self._recorder._end_span(self._record, now)

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, *exc: object) -> bool:
        self._recorder._end_span(self._record)
        return False


class TraceRecorder:
    """Accumulates span/event records on an injectable clock.

    Parameters
    ----------
    clock:
        Any :class:`~repro.profiling.timer.Clock`; defaults to the wall
        clock (``time.perf_counter``), the ``omp_get_wtime()`` analog.
        Property tests and the simulated executors inject a
        :class:`~repro.profiling.timer.VirtualClock`.
    enabled:
        ``False`` builds a recorder whose :meth:`span` returns one shared
        no-op context manager and whose :meth:`instant`/:meth:`complete`
        return immediately — the zero-overhead-off switch.
    """

    def __init__(self, clock: Clock | None = None, *, enabled: bool = True) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.enabled = enabled
        self._records: list[SpanRecord | EventRecord] = []
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._thread_ids: dict[int, int] = {}

    # -- bookkeeping ---------------------------------------------------------------
    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _thread_id(self) -> int:
        """Stable small integer id of the calling thread (0, 1, 2, ...)."""
        ident = threading.get_ident()
        tid = self._thread_ids.get(ident)
        if tid is None:
            # Registration is rare (once per thread); take the lock.
            with self._lock:
                tid = self._thread_ids.setdefault(ident, len(self._thread_ids))
        return tid

    def _append(self, record: SpanRecord | EventRecord) -> None:
        with self._lock:
            record.index = len(self._records)
            self._records.append(record)

    # -- recording API -------------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "region",
        start_at: float | None = None,
        **attributes: Any,
    ):
        """Open a span; use as ``with recorder.span("steps_") as s:``.

        The yielded :class:`SpanRecord` is live — handlers may add result
        attributes to ``s.attributes`` before the span closes.
        ``start_at`` supplies an explicit start timestamp (used by the
        paired profiler+trace instrumentation to share one clock read).
        """
        if not self.enabled:
            return NULL_CONTEXT
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = SpanRecord(
            name=name,
            category=category,
            start=0.0,
            thread_id=self._thread_id(),
            depth=len(stack),
            parent_index=parent.index if parent is not None else None,
            index=-1,
            attributes=attributes,
        )
        self._append(record)
        stack.append(record)
        handle = _SpanHandle(self, record)
        # Clock read last: the recorder's own bookkeeping stays outside
        # the span (it lands in the parent's exclusive time instead of
        # polluting this span's duration).
        record.start = self.clock.now() if start_at is None else start_at
        return handle

    def _end_span(self, record: SpanRecord, now: float | None = None) -> None:
        if now is None:
            now = self.clock.now()  # first: keep teardown out of the span
        stack = self._stack()
        if not stack or stack[-1] is not record:
            raise ObservabilityError(
                f"span {record.name!r} closed out of order (mismatched nesting)"
            )
        stack.pop()
        elapsed = now - record.start
        if elapsed < 0.0:
            raise ObservabilityError(
                f"span {record.name!r} has negative duration (clock went backwards)"
            )
        record.duration = elapsed
        if stack:
            stack[-1].child_duration += elapsed

    def instant(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event at the current clock reading."""
        if not self.enabled:
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = EventRecord(
            name=name,
            timestamp=self.clock.now(),
            thread_id=self._thread_id(),
            parent_index=parent.index if parent is not None else None,
            index=-1,
            attributes=attributes,
        )
        self._append(record)

    def complete(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        category: str = "kernel",
        **attributes: Any,
    ) -> None:
        """Record an already-finished span with an explicit duration.

        The simulated executors use this: modeled kernel time advances a
        virtual clock, so the span's extent is known at record time.  The
        span nests under the caller's currently-open span (if any) but
        does **not** contribute to its ``child_duration`` — modeled device
        time and measured host time live on different clocks.
        """
        if not self.enabled:
            return
        if duration < 0.0:
            raise ObservabilityError(f"span {name!r} has negative duration")
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = SpanRecord(
            name=name,
            category=category,
            start=start,
            thread_id=self._thread_id(),
            depth=len(stack),
            parent_index=parent.index if parent is not None else None,
            index=-1,
            attributes=attributes,
        )
        record.duration = duration
        self._append(record)

    # -- inspection ----------------------------------------------------------------
    @property
    def records(self) -> tuple[SpanRecord | EventRecord, ...]:
        """Snapshot of every record, in start order."""
        with self._lock:
            return tuple(self._records)

    def spans(self, *, category: str | None = None) -> Iterator[SpanRecord]:
        """Closed spans, optionally filtered by category."""
        for record in self.records:
            if isinstance(record, SpanRecord) and record.closed:
                if category is None or record.category == category:
                    yield record

    def events(self) -> Iterator[EventRecord]:
        for record in self.records:
            if isinstance(record, EventRecord):
                yield record

    @property
    def open_span_count(self) -> int:
        """Spans started but not yet closed (should be 0 between runs)."""
        return sum(
            1
            for record in self.records
            if isinstance(record, SpanRecord) and not record.closed
        )

    def region_totals(self, *, category: str = "region") -> dict[str, float]:
        """Per-name **exclusive** totals — the pie-chart quantity.

        Matches :meth:`~repro.profiling.regions.RegionProfiler.report`
        totals when both instrument the same regions.
        """
        totals: dict[str, float] = {}
        for span in self.spans(category=category):
            totals[span.name] = totals.get(span.name, 0.0) + span.exclusive
        return totals

    def inclusive_totals(self, *, category: str | None = None) -> dict[str, float]:
        """Per-name wall-time totals including children."""
        totals: dict[str, float] = {}
        for span in self.spans(category=category):
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def reset(self) -> None:
        """Drop every record.  Only valid with no open spans on the
        calling thread (other threads' stacks cannot be safely cleared)."""
        if self._stack():
            raise ObservabilityError("cannot reset a recorder with open spans")
        with self._lock:
            self._records.clear()
            self._thread_ids.clear()
