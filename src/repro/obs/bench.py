"""The CLI benchmark suite and its regression gate.

``repro bench`` runs a small, fixed set of real wall-clock benchmarks —
the CLI-sized distillations of ``benchmarks/bench_fit.py``,
``bench_batch.py`` and ``bench_kernels.py`` — and reports the median of
``repeats`` timed samples per case.  ``repro bench --gate`` compares
those medians against a committed baseline
(:data:`DEFAULT_BASELINE_NAME`) and exits nonzero when any case exceeds
``baseline * (1 + tolerance)``: performance regressions fail CI instead
of waiting for a reviewer to eyeball a table.

Medians (not means) because the first post-warm-up samples still carry
cache noise; a handicap hook (``REPRO_BENCH_HANDICAP`` or the
``handicap=`` argument) multiplies measured times so the gate's failure
path is itself testable.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.errors import BenchGateError, ObservabilityError
from repro.utils.jsonio import dump_json

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_TOLERANCE",
    "HANDICAP_ENV",
    "LARGE_ENV",
    "BenchCase",
    "BenchResult",
    "GateOutcome",
    "bench_cases",
    "large_case_names",
    "run_benchmarks",
    "results_payload",
    "save_baseline",
    "load_baseline",
    "evaluate_gate",
    "render_gate_table",
]

BENCH_SCHEMA_VERSION = 1

#: Baseline file ``repro bench --gate`` reads when ``--baseline`` is omitted.
DEFAULT_BASELINE_NAME = "bench-baseline.json"

#: Default allowed slowdown (50 %) — generous enough for same-machine
#: jitter, tight enough to catch an accidental O(N^3) Python loop.
DEFAULT_TOLERANCE = 0.5

#: Environment variable multiplying every measured median — the
#: synthetic-slowdown hook the gate's own tests use.
HANDICAP_ENV = "REPRO_BENCH_HANDICAP"

#: Environment variable opting the *default* run into the large
#: (129^2 / 257^2) cases.  Naming them explicitly with ``--only`` always
#: works — the flag only changes what an unqualified run covers, so the
#: quick per-commit lane and a local ``repro bench`` stay fast while the
#: ``bench-gate-large`` CI lane sets it (or passes the names).
LARGE_ENV = "REPRO_BENCH_LARGE"


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark: a setup returning the zero-arg payload."""

    name: str
    #: Which benchmark family the case distils (fit / batch / kernels).
    group: str
    #: Builds fixtures and returns the callable to time.
    setup: Callable[[], Callable[[], object]]
    #: Inner repetitions per timed sample (for sub-ms payloads).
    inner_loops: int = 1
    #: Large-grid case: excluded from the default run unless
    #: :data:`LARGE_ENV` is set or the name is given explicitly.
    large: bool = False


@dataclass(frozen=True)
class BenchResult:
    """Median-of-samples timing of one case."""

    name: str
    group: str
    median_seconds: float
    samples: tuple[float, ...]

    def to_dict(self) -> dict:
        return {
            "group": self.group,
            "median_seconds": self.median_seconds,
            "samples": list(self.samples),
        }


@dataclass(frozen=True)
class GateOutcome:
    """One case's verdict against the baseline."""

    name: str
    baseline_seconds: float
    current_seconds: float
    limit_seconds: float
    ok: bool

    @property
    def ratio(self) -> float:
        return (
            self.current_seconds / self.baseline_seconds
            if self.baseline_seconds > 0
            else float("inf")
        )


# -- the suite ---------------------------------------------------------------------
def _setup_fit_65() -> Callable[[], object]:
    from repro.efit.fitting import EfitSolver
    from repro.efit.measurements import synthetic_shot_186610

    shot = synthetic_shot_186610(65)
    solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid)
    solver.fit(shot.measurements)  # warm the table cache + BLAS
    return lambda: solver.fit(shot.measurements)


def _setup_fit_dn_33() -> Callable[[], object]:
    # A diverted scenario in the timed suite: the X-point boundary path
    # (connectivity labelling, dilated mask) has its own cost profile
    # and regressions there would be invisible to the limiter cases.
    from repro.efit.fitting import EfitSolver
    from repro.scenarios import get_scenario

    sc = get_scenario("double-null")
    shot = sc.make_shot(33)
    solver = EfitSolver.for_scenario(sc, shot=shot)
    solver.fit(shot.measurements)  # warm the table cache + BLAS
    return lambda: solver.fit(shot.measurements)


def _setup_batch_65_b8() -> Callable[[], object]:
    from repro.batch import BatchFitEngine, synthetic_slice_sequence
    from repro.efit.measurements import synthetic_shot_186610

    shot = synthetic_shot_186610(65)
    slices = synthetic_slice_sequence(shot, 8, seed=3)
    engine = BatchFitEngine(shot.machine, shot.diagnostics, shot.grid, batch_size=8)
    engine.fit_many(slices)  # warm the workspace arenas
    return lambda: engine.fit_many(slices)


def _setup_parallel_65_w4() -> Callable[[], object]:
    from repro.batch import synthetic_slice_sequence
    from repro.efit.measurements import synthetic_shot_186610
    from repro.parallel import ParallelFitEngine

    shot = synthetic_shot_186610(65)
    slices = synthetic_slice_sequence(shot, 16, seed=3)
    engine = ParallelFitEngine(
        shot.machine, shot.diagnostics, shot.grid, batch_size=4, workers=4
    )
    engine.fit_many(slices)  # warm: spawns the pool, builds worker engines
    # The engine (pool + arena) lives in the closure; the process-wide
    # arena manager unlinks the shared memory at interpreter exit.
    return lambda: engine.fit_many(slices)


def _setup_kernel_boundary_65() -> Callable[[], object]:
    import numpy as np

    from repro.efit.grid import RZGrid
    from repro.efit.pflux import boundary_flux_vectorized
    from repro.efit.tables import cached_boundary_tables

    grid = RZGrid(65, 65)
    tables = cached_boundary_tables(grid)
    pcurr = np.random.default_rng(1).normal(size=grid.shape)
    boundary_flux_vectorized(tables, pcurr)  # warm
    return lambda: boundary_flux_vectorized(tables, pcurr)


def _setup_kernel_dst_solve_65() -> Callable[[], object]:
    import numpy as np

    from repro.efit.grid import RZGrid
    from repro.efit.solvers import make_solver

    grid = RZGrid(65, 65)
    solver = make_solver("dst", grid)
    rng = np.random.default_rng(3)
    rhs = rng.normal(size=grid.shape)
    boundary = rng.normal(size=grid.shape)
    solver.solve(rhs, boundary)  # warm
    return lambda: solver.solve(rhs, boundary)


def _setup_fit_129() -> Callable[[], object]:
    from repro.efit.fitting import EfitSolver
    from repro.efit.measurements import synthetic_shot_186610

    shot = synthetic_shot_186610(129)
    solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid)
    solver.fit(shot.measurements)  # warm the table cache + BLAS
    return lambda: solver.fit(shot.measurements)


def _setup_batch_129_b8() -> Callable[[], object]:
    from repro.batch import BatchFitEngine, synthetic_slice_sequence
    from repro.efit.measurements import synthetic_shot_186610

    shot = synthetic_shot_186610(129)
    slices = synthetic_slice_sequence(shot, 8, seed=3)
    engine = BatchFitEngine(shot.machine, shot.diagnostics, shot.grid, batch_size=8)
    engine.fit_many(slices)  # warm the workspace arenas
    return lambda: engine.fit_many(slices)


def _setup_kernel_boundary_257() -> Callable[[], object]:
    # The structured (low-rank) edge-operator apply at the grid size
    # where operator compression pays: the dense GEMM reads 541 MB per
    # apply here, the compressed apply ~31 MB.  Gating the compressed
    # path keeps the >=5x advantage over dense from silently eroding.
    import numpy as np

    from repro.efit.grid import RZGrid
    from repro.efit.operators import cached_edge_operator
    from repro.efit.tables import cached_boundary_tables

    grid = RZGrid(257, 257)
    op = cached_edge_operator(cached_boundary_tables(grid), "lowrank")
    pcurr = np.random.default_rng(1).normal(size=grid.size)
    op.apply(pcurr)  # warm
    return lambda: op.apply(pcurr)


_CASES: tuple[BenchCase, ...] = (
    BenchCase("fit_65", "fit", _setup_fit_65),
    BenchCase("fit_dn_33", "fit", _setup_fit_dn_33),
    BenchCase("batch_65_b8", "batch", _setup_batch_65_b8),
    BenchCase("parallel_65_w4", "parallel", _setup_parallel_65_w4),
    BenchCase("kernel_boundary_65", "kernels", _setup_kernel_boundary_65, inner_loops=20),
    BenchCase("kernel_dst_solve_65", "kernels", _setup_kernel_dst_solve_65, inner_loops=20),
    BenchCase("fit_129", "fit", _setup_fit_129, large=True),
    BenchCase("batch_129_b8", "batch", _setup_batch_129_b8, large=True),
    BenchCase(
        "kernel_boundary_257", "kernels", _setup_kernel_boundary_257,
        inner_loops=5, large=True,
    ),
)


def bench_cases() -> tuple[BenchCase, ...]:
    """The registered suite, in execution order."""
    return _CASES


def large_case_names() -> tuple[str, ...]:
    """Names of the large-grid cases (the ``bench-gate-large`` set)."""
    return tuple(case.name for case in _CASES if case.large)


def _resolve(names: Iterable[str] | None) -> tuple[BenchCase, ...]:
    if names is None:
        if os.environ.get(LARGE_ENV, "").strip() not in ("", "0"):
            return _CASES
        return tuple(case for case in _CASES if not case.large)
    by_name = {case.name: case for case in _CASES}
    missing = [n for n in names if n not in by_name]
    if missing:
        raise BenchGateError(
            f"unknown benchmark(s) {', '.join(sorted(missing))}; "
            f"known: {', '.join(by_name)}"
        )
    return tuple(by_name[n] for n in names)


def run_benchmarks(
    names: Iterable[str] | None = None,
    *,
    repeats: int = 5,
    handicap: float | None = None,
) -> dict[str, BenchResult]:
    """Time each case ``repeats`` times; returns name -> result.

    ``handicap`` (default: ``$REPRO_BENCH_HANDICAP`` or 1.0) multiplies
    every measured time — the documented synthetic-slowdown hook used to
    verify the gate actually fails.
    """
    if repeats < 1:
        raise ObservabilityError("repeats must be >= 1")
    if handicap is None:
        handicap = float(os.environ.get(HANDICAP_ENV, "1.0"))
    if handicap <= 0.0:
        raise ObservabilityError(f"handicap must be positive, got {handicap}")
    results: dict[str, BenchResult] = {}
    for case in _resolve(names):
        payload = case.setup()
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(case.inner_loops):
                payload()
            samples.append(
                handicap * (time.perf_counter() - t0) / case.inner_loops
            )
        results[case.name] = BenchResult(
            name=case.name,
            group=case.group,
            median_seconds=statistics.median(samples),
            samples=tuple(samples),
        )
    return results


# -- baseline I/O ------------------------------------------------------------------
def results_payload(
    results: Mapping[str, BenchResult], *, tolerance: float = DEFAULT_TOLERANCE
) -> dict:
    """The JSON-serialisable form shared by ``--json`` and the baseline."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tolerance": tolerance,
        "benchmarks": {name: r.to_dict() for name, r in results.items()},
    }


def save_baseline(
    results: Mapping[str, BenchResult],
    path: str | Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Path:
    """Write ``results`` as the gate's baseline file; returns the path."""
    path = Path(path)
    path.write_text(dump_json(results_payload(results, tolerance=tolerance)))
    return path


def load_baseline(path: str | Path) -> dict:
    """Read and validate a baseline; raises :class:`BenchGateError`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchGateError(f"baseline file {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise BenchGateError(f"baseline file {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("benchmarks"), dict
    ):
        raise BenchGateError(f"baseline file {path} lacks a 'benchmarks' table")
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise BenchGateError(
            f"baseline file {path} has schema "
            f"{payload.get('schema_version')!r}, expected {BENCH_SCHEMA_VERSION}"
        )
    for name, entry in payload["benchmarks"].items():
        if not isinstance(entry, dict) or "median_seconds" not in entry:
            raise BenchGateError(
                f"baseline entry {name!r} lacks a median_seconds field"
            )
    return payload


def evaluate_gate(
    current: Mapping[str, BenchResult],
    baseline: Mapping,
    *,
    tolerance: float | None = None,
    names: Iterable[str] | None = None,
) -> tuple[list[GateOutcome], bool]:
    """Compare current medians to the baseline.

    ``names`` restricts the gate to that subset of baseline entries (the
    ``--only`` / split-lane form: the quick lane gates the small cases,
    ``bench-gate-large`` gates the 129^2/257^2 cases — each against the
    same committed baseline).  With ``names=None`` every baseline entry
    must be present in ``current`` (a silently dropped benchmark would
    otherwise pass the gate forever).  Benchmarks present only in
    ``current`` are ignored — they gate once committed.

    A missing-coverage failure raises :class:`BenchGateError` carrying
    the outcomes evaluated up to that point, so callers can still print
    the partial ratio table.
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    if tolerance < 0.0:
        raise BenchGateError(f"tolerance must be >= 0, got {tolerance}")
    entries = baseline["benchmarks"]
    if names is not None:
        selected = tuple(dict.fromkeys(names))
        entries = {n: entries[n] for n in selected if n in entries}
    outcomes: list[GateOutcome] = []
    all_ok = True
    for name, entry in entries.items():
        base = float(entry["median_seconds"])
        if name not in current:
            raise BenchGateError(
                f"baseline benchmark {name!r} was not run — gate cannot pass "
                "with missing coverage",
                outcomes=tuple(outcomes),
            )
        cur = current[name].median_seconds
        limit = base * (1.0 + tolerance)
        ok = cur <= limit
        all_ok = all_ok and ok
        outcomes.append(
            GateOutcome(
                name=name,
                baseline_seconds=base,
                current_seconds=cur,
                limit_seconds=limit,
                ok=ok,
            )
        )
    return outcomes, all_ok


def render_gate_table(outcomes: Iterable[GateOutcome]) -> str:
    """The per-case ratio table ``repro bench --gate`` prints.

    Rendered on success *and* failure — a green gate whose margins are
    quietly eroding is exactly what the per-commit table is for.
    """
    lines = []
    for o in outcomes:
        verdict = "ok  " if o.ok else "FAIL"
        lines.append(
            f"gate {verdict} {o.name:<22} {o.current_seconds * 1e3:10.3f} ms "
            f"vs baseline {o.baseline_seconds * 1e3:.3f} ms "
            f"(x{o.ratio:.2f}, limit {o.limit_seconds * 1e3:.3f} ms)"
        )
    return "\n".join(lines)
