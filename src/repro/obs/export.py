"""Trace exporters: Chrome-trace JSON and JSONL.

The Chrome trace format (``chrome://tracing`` / Perfetto / Speedscope)
renders spans as nested horizontal bars per thread — the timeline view
of the paper's Figure 1/6 pie charts.  The JSONL export is the flat
machine-readable stream CI jobs archive and post-process.

:func:`region_totals` recovers per-region **exclusive** totals from an
exported Chrome payload (re-deriving the nesting from timestamps), so a
trace file alone is enough to rebuild the profiler breakdown — that
round trip is the subsystem's acceptance check.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ObservabilityError
from repro.obs.trace import EventRecord, SpanRecord, TraceRecorder
from repro.utils.jsonio import dump_json

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "region_totals",
]

#: Bumped whenever a record field is added/renamed; consumers key on it.
TRACE_SCHEMA_VERSION = 1

_US = 1e6  # Chrome trace timestamps/durations are microseconds


def chrome_trace(recorder: TraceRecorder, *, process_name: str = "repro") -> dict[str, Any]:
    """The ``about:tracing`` payload: one complete ("X") event per closed
    span, one instant ("i") event per event record, plus metadata."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for record in recorder.records:
        if isinstance(record, SpanRecord):
            if not record.closed:
                continue  # open spans have no extent yet
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": record.thread_id,
                    "name": record.name,
                    "cat": record.category,
                    "ts": record.start * _US,
                    "dur": record.duration * _US,
                    "args": dict(record.attributes),
                }
            )
        elif isinstance(record, EventRecord):
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": record.thread_id,
                    "name": record.name,
                    "cat": "event",
                    "ts": record.timestamp * _US,
                    "args": dict(record.attributes),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema_version": TRACE_SCHEMA_VERSION},
    }


def write_chrome_trace(
    recorder: TraceRecorder, path: str | Path, *, process_name: str = "repro"
) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(dump_json(chrome_trace(recorder, process_name=process_name)))
    return path


def jsonl_records(recorder: TraceRecorder) -> Iterator[str]:
    """One compact JSON object per record, schema-stamped."""
    for record in recorder.records:
        payload = record.to_dict()
        payload["schema_version"] = TRACE_SCHEMA_VERSION
        yield json.dumps(payload, allow_nan=False)


def write_jsonl(recorder: TraceRecorder, path: str | Path) -> Path:
    """Serialise :func:`jsonl_records` to ``path``; returns the path."""
    path = Path(path)
    path.write_text("".join(line + "\n" for line in jsonl_records(recorder)))
    return path


def region_totals(
    payload: dict[str, Any], *, category: str = "region"
) -> dict[str, float]:
    """Exclusive per-name totals [s] recomputed from a Chrome payload.

    Only the timestamps are used: per thread, "X" events of ``category``
    are re-nested by interval containment (an event whose extent lies
    inside a still-open earlier event is its child) and each child's
    duration is subtracted from its parent — the same exclusive-time rule
    as :class:`~repro.profiling.regions.RegionProfiler`.
    """
    try:
        events = payload["traceEvents"]
    except (TypeError, KeyError):
        raise ObservabilityError("payload is not a Chrome trace (no traceEvents)")
    spans = [
        e
        for e in events
        if e.get("ph") == "X" and e.get("cat", category) == category
    ]
    totals: dict[str, float] = {}
    by_tid: dict[int, list[dict[str, Any]]] = {}
    for e in spans:
        by_tid.setdefault(int(e.get("tid", 0)), []).append(e)
    # (name, duration_us, child_durations_us) per span; children lists
    # fill during the sweep, exclusive time settles afterwards.
    settled: list[tuple[str, float, list[float]]] = []
    for tid_spans in by_tid.values():
        # Start order; ties broken longest-first so parents open before
        # their zero-offset children.
        tid_spans.sort(key=lambda e: (float(e["ts"]), -float(e["dur"])))
        stack: list[tuple[float, list[float]]] = []  # (end_ts, child durations)
        for e in tid_spans:
            ts, dur = float(e["ts"]), float(e["dur"])
            while stack and ts >= stack[-1][0] - 1e-9:
                stack.pop()
            if stack:
                stack[-1][1].append(dur)
            children: list[float] = []
            stack.append((ts + dur, children))
            settled.append((str(e["name"]), dur, children))
    for name, dur, children in settled:
        totals[name] = totals.get(name, 0.0) + (dur - sum(children)) / _US
    return totals
