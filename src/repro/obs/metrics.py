"""Counters, gauges and histograms behind one registry.

Before this module the repo's runtime observability lived in silos:
:class:`~repro.runtime.counters.WorkspaceCounters` inside the batch
arenas, :class:`~repro.runtime.counters.CacheCounters` inside the table
cache, :class:`~repro.profiling.regions.RegionProfiler` inside the
solver.  :class:`MetricsRegistry` absorbs them as *sources* — live
callables sampled at :meth:`~MetricsRegistry.collect` time — so one
``collect()`` yields a flat ``name -> value`` mapping covering fresh
metrics (counters/gauges/histograms owned by the registry) and every
legacy counter, without any of the owners changing.

Histograms use fixed bucket bounds, which makes :meth:`Histogram.merge`
associative and commutative — the property the Hypothesis suite pins
down, and the reason per-worker histograms can be combined in any order.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ObservabilityError
from repro.profiling.regions import RegionProfiler
from repro.runtime.counters import (
    CacheCounters,
    CounterSet,
    SchedulerCounters,
    WorkspaceCounters,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BOUNDS",
    "workspace_source",
    "cache_source",
    "region_profiler_source",
    "counter_set_source",
    "scheduler_source",
]

#: Log-spaced bucket bounds [s] covering 1 us .. 100 s — wide enough for
#: a single kernel launch and a full 513^2 reconstruction alike.
DEFAULT_SECONDS_BOUNDS: tuple[float, ...] = tuple(
    10.0**e for e in range(-6, 3)
)


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ObservabilityError(f"counter {self.name!r}: negative increment")
        self.value += amount


class Gauge:
    """A point-in-time value (may move in both directions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise ObservabilityError(f"gauge {self.name!r}: non-finite value")
        self.value = float(value)


class Histogram:
    """Fixed-bound bucket histogram with count and sum.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(
        self, name: str, bounds: Iterable[float] = DEFAULT_SECONDS_BOUNDS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r}: needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r}: bounds must strictly increase"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ObservabilityError(f"histogram {self.name!r}: non-finite sample")
        # Bucket i holds values <= bounds[i]; the final bucket overflows.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both operands' samples.

        Requires identical bounds; associative and commutative, so
        per-worker histograms combine in any order.
        """
        if self.bounds != other.bounds:
            raise ObservabilityError(
                f"cannot merge histograms {self.name!r}/{other.name!r}: "
                "bucket bounds differ"
            )
        merged = Histogram(self.name, self.bounds)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.total = self.total + other.total
        merged.sum = self.sum + other.sum
        return merged

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q`` quantile (a
        conservative estimate; ``inf`` if it lands in the overflow)."""
        if not (0.0 <= q <= 1.0):
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        cumulative = 0
        for count, bound in zip(self.counts, self.bounds):
            cumulative += count
            # The extra cumulative > 0 guard only matters at q == 0
            # (target 0): skip empty leading buckets so the answer is
            # the minimum sample's bucket, not bounds[0].
            if cumulative >= target and cumulative > 0:
                return bound
        return math.inf

    def to_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named metrics plus live legacy-counter sources.

    Metric names are unique across kinds — asking for an existing name
    with a different kind is an error, asking with the same kind returns
    the existing instance (so call sites need no globals).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._sources: dict[str, Callable[[], Mapping[str, float]]] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_SECONDS_BOUNDS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def register_source(
        self, prefix: str, source: Callable[[], Mapping[str, float]]
    ) -> None:
        """Attach a live value source; its keys appear as ``prefix.key``.

        Sources are sampled at :meth:`collect` time, so the registry
        always reports the owners' *current* counters — absorption
        without ownership transfer.
        """
        if prefix in self._sources:
            raise ObservabilityError(f"metric source {prefix!r} already registered")
        self._sources[prefix] = source

    def collect(self) -> dict[str, float]:
        """Flat snapshot: own metrics, then each source under its prefix."""
        out: dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.total)
                out[f"{name}.sum"] = metric.sum
                out[f"{name}.mean"] = metric.mean
            else:
                out[name] = metric.value
        for prefix, source in self._sources.items():
            for key, value in source().items():
                out[f"{prefix}.{key}"] = float(value)
        return out

    def to_dict(self) -> dict[str, Any]:
        """Structured dump (histograms keep their buckets)."""
        metrics: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            metrics[name] = (
                metric.to_dict() if isinstance(metric, Histogram) else metric.value
            )
        return {"metrics": metrics, "collected": self.collect()}


# -- legacy-counter adapters -------------------------------------------------------
def workspace_source(counters: WorkspaceCounters) -> Callable[[], dict[str, float]]:
    """Live view of a :class:`WorkspaceCounters` (arena allocation/reuse)."""

    def sample() -> dict[str, float]:
        return {
            "allocations": float(counters.allocations),
            "reuses": float(counters.reuses),
            "allocated_bytes": float(counters.allocated_bytes),
            "resident_bytes": float(counters.resident_bytes),
            "reuse_fraction": counters.reuse_fraction,
        }

    return sample


def cache_source(counters: CacheCounters) -> Callable[[], dict[str, float]]:
    """Live view of a :class:`CacheCounters` (hit/miss/eviction)."""

    def sample() -> dict[str, float]:
        return {
            "hits": float(counters.hits),
            "misses": float(counters.misses),
            "evictions": float(counters.evictions),
            "stored_bytes": float(counters.stored_bytes),
            "hit_rate": counters.hit_rate,
        }

    return sample


def region_profiler_source(profiler: RegionProfiler) -> Callable[[], dict[str, float]]:
    """Live view of a :class:`RegionProfiler`: per-region seconds/calls."""

    def sample() -> dict[str, float]:
        report = profiler.report()
        out: dict[str, float] = {}
        for name, total in report.totals.items():
            out[f"{name}.seconds"] = total
            out[f"{name}.calls"] = float(report.calls[name])
        return out

    return sample


def scheduler_source(counters: SchedulerCounters) -> Callable[[], dict[str, float]]:
    """Live view of a :class:`SchedulerCounters` (job dispositions)."""

    def sample() -> dict[str, float]:
        return {
            "submitted": float(counters.submitted),
            "completed": float(counters.completed),
            "retries": float(counters.retries),
            "crashes": float(counters.crashes),
            "timeouts": float(counters.timeouts),
            "errors": float(counters.errors),
            "quarantined": float(counters.quarantined),
            "worker_restarts": float(counters.worker_restarts),
        }

    return sample


def counter_set_source(counters: CounterSet) -> Callable[[], dict[str, float]]:
    """Live view of a device :class:`CounterSet` (transfers, launches)."""

    def sample() -> dict[str, float]:
        return {
            "h2d_bytes": counters.h2d_bytes,
            "d2h_bytes": counters.d2h_bytes,
            "page_faults": float(counters.page_faults),
            "migrations": float(counters.migrations),
            "dram_bytes": counters.total_dram_bytes,
            "launches": float(counters.total_launches),
            "device_seconds": counters.total_device_seconds,
        }

    return sample
