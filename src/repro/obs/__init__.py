"""Observability: structured tracing, metrics and benchmark gating.

The paper argues from instrumentation — ``omp_get_wtime()`` regions
around ``fit_``'s callees feed every table and pie chart.  This package
is that discipline as a subsystem:

* :mod:`repro.obs.trace` — :class:`TraceRecorder`, structured span/event
  records with monotonic timestamps, nesting and attributes;
* :mod:`repro.obs.hooks` — the injectable, zero-overhead-when-disabled
  hook protocol the solver, batch engine and executor call;
* :mod:`repro.obs.export` — Chrome-trace (``about:tracing``/Perfetto)
  and JSONL exporters, plus trace-side region totals;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`
  (counters/gauges/histograms) absorbing the legacy
  ``WorkspaceCounters``/``CacheCounters``/``RegionProfiler`` as sources;
* :mod:`repro.obs.bench` — the ``repro bench --gate`` regression gate.

See ``docs/OBSERVABILITY.md`` for the span schema and workflows.
"""

from repro.obs.bench import (
    BenchCase,
    BenchResult,
    GateOutcome,
    bench_cases,
    evaluate_gate,
    load_baseline,
    run_benchmarks,
    save_baseline,
)
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    jsonl_records,
    region_totals,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hooks import NULL_HOOKS, NullHooks, ObservationHooks, TraceHooks
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_source,
    counter_set_source,
    region_profiler_source,
    workspace_source,
)
from repro.obs.trace import EventRecord, SpanRecord, TraceRecorder

__all__ = [
    "TraceRecorder",
    "SpanRecord",
    "EventRecord",
    "ObservationHooks",
    "NullHooks",
    "NULL_HOOKS",
    "TraceHooks",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "region_totals",
    "TRACE_SCHEMA_VERSION",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "workspace_source",
    "cache_source",
    "region_profiler_source",
    "counter_set_source",
    "BenchCase",
    "BenchResult",
    "GateOutcome",
    "bench_cases",
    "run_benchmarks",
    "evaluate_gate",
    "save_baseline",
    "load_baseline",
]
