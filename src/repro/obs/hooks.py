"""The injectable observation-hook protocol.

:class:`~repro.efit.fitting.EfitSolver`,
:class:`~repro.batch.engine.BatchFitEngine` and
:class:`~repro.runtime.executor.OffloadExecutor` all accept a ``hooks``
object and call it at their phase boundaries.  The default,
:data:`NULL_HOOKS`, is a stateless singleton whose every method is a
no-op returning a shared context manager — the instrumented hot paths
pay one attribute access and nothing else when tracing is off.

:class:`TraceHooks` is the production implementation, bridging the hook
calls onto a :class:`~repro.obs.trace.TraceRecorder`:

* ``region(name)``    -> a ``with``-able span (host wall/virtual time);
* ``event(name)``     -> an instant event (Picard iteration attributes);
* ``kernel(name)``    -> an explicit-duration span (modeled device time);
* ``profiled_region(profiler, name)`` -> one span feeding **both** the
  recorder and a :class:`~repro.profiling.regions.RegionProfiler` from a
  single pair of clock reads, so the two report *identical* totals (the
  trace-vs-profiler agreement the golden tests pin down).

Anything implementing the same methods plus ``enabled`` can be injected
instead — a metrics-only sink, a live progress bar, a flight recorder
ring buffer.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.obs.trace import NULL_CONTEXT, SpanRecord, TraceRecorder
from repro.profiling.regions import RegionProfiler

__all__ = ["ObservationHooks", "NullHooks", "NULL_HOOKS", "TraceHooks"]


@runtime_checkable
class ObservationHooks(Protocol):
    """What the instrumented subsystems require of a hooks object."""

    enabled: bool

    def region(self, name: str, **attributes: Any):
        """Return a context manager spanning one named region."""

    def event(self, name: str, **attributes: Any) -> None:
        """Record one point-in-time event."""

    def kernel(
        self, name: str, *, start: float, seconds: float, **attributes: Any
    ) -> None:
        """Record one finished (possibly modeled) kernel execution."""

    def profiled_region(
        self, profiler: RegionProfiler, name: str, **attributes: Any
    ):
        """Return a context manager timing ``name`` into ``profiler`` and
        (when enabled) the trace with shared clock reads."""


class NullHooks:
    """The zero-overhead default: every method is a no-op."""

    __slots__ = ()

    enabled = False

    def region(self, name: str, **attributes: Any):
        return NULL_CONTEXT

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def kernel(
        self, name: str, *, start: float, seconds: float, **attributes: Any
    ) -> None:
        return None

    def profiled_region(
        self, profiler: RegionProfiler, name: str, **attributes: Any
    ):
        # Tracing off: the region is timed exactly as before hooks existed.
        return profiler.region(name)


NULL_HOOKS = NullHooks()


class _PairedRegion:
    """One region timed into a profiler *and* a trace recorder.

    Entry reads the clock once and hands the same timestamp to both
    sinks; exit does the same.  Both apply the identical child-
    subtraction rule, so their exclusive totals agree bit-for-bit — no
    cross-attribution of instrumentation overhead, which a naive pair of
    nested context managers cannot avoid.
    """

    __slots__ = ("_recorder", "_profiler", "_name", "_attributes", "_handle")

    def __init__(
        self,
        recorder: TraceRecorder,
        profiler: RegionProfiler,
        name: str,
        attributes: dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self._profiler = profiler
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> SpanRecord:
        now = self._recorder.clock.now()
        self._handle = self._recorder.span(
            self._name, category="region", start_at=now, **self._attributes
        )
        self._profiler.begin(self._name, now)
        return self._handle.record

    def __exit__(self, *exc: object) -> bool:
        now = self._recorder.clock.now()
        self._profiler.end(now)
        self._handle.close(now)
        return False


class TraceHooks:
    """Hooks that forward every call to a :class:`TraceRecorder`."""

    __slots__ = ("recorder",)

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder

    @property
    def enabled(self) -> bool:
        return self.recorder.enabled

    def region(self, name: str, **attributes: Any):
        return self.recorder.span(name, category="region", **attributes)

    def event(self, name: str, **attributes: Any) -> None:
        self.recorder.instant(name, **attributes)

    def kernel(
        self, name: str, *, start: float, seconds: float, **attributes: Any
    ) -> None:
        self.recorder.complete(
            name, start=start, duration=seconds, category="kernel", **attributes
        )

    def profiled_region(
        self, profiler: RegionProfiler, name: str, **attributes: Any
    ):
        if not self.recorder.enabled:
            return profiler.region(name)
        return _PairedRegion(self.recorder, profiler, name, attributes)
