"""The real-time streaming reconstruction service.

:class:`ReconstructionService` multiplexes many concurrent shot streams
over one :class:`~repro.batch.engine.BatchFitEngine`'s per-grid state
(Green tables, edge operator, solver factorisation,
:class:`~repro.efit.fitting.GridStatics`) — the engine is the capital
investment, the service is the traffic layer on top:

* **admission control** — at most ``max_streams`` live streams; opening
  one past capacity raises :class:`~repro.errors.AdmissionError` (and
  counts ``serve.streams_rejected``) instead of degrading everyone;
* **backpressure** — each stream owns a bounded frame queue with a
  shed-oldest policy: when a producer outruns its solver the *stale*
  slices are dropped (``serve.frames_shed``), because in real-time
  reconstruction the newest frame is the valuable one;
* **deadline enforcement** — each frame's solve runs under the stream's
  per-slice budget inside a :class:`~repro.serve.session.ShotSession`,
  returning a partial result on expiry rather than blocking the stream;
* **observability** — every ``serve.*`` metric flows through one shared
  :class:`~repro.serve.metrics.ServeMetrics` /
  :class:`~repro.obs.metrics.MetricsRegistry`.

Solves run in a thread pool (the heavy GEMM/FFT kernels release the
GIL), one worker coroutine per stream, so K streams progress K solves
concurrently while the event loop stays responsive to submissions.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.batch.engine import BatchFitEngine
from repro.errors import AdmissionError, ServeError
from repro.serve.frames import Frame, SliceReport
from repro.serve.metrics import ServeMetrics
from repro.serve.session import ShotSession

__all__ = ["ReconstructionService", "ServeConfig", "StreamSummary"]


@dataclass(frozen=True)
class ServeConfig:
    """Service-level policy knobs."""

    #: Default per-slice solve budget [s] (``None`` = no deadline).
    deadline_s: float | None = 0.5
    #: Bounded per-stream queue depth; submissions past it shed oldest.
    queue_depth: int = 8
    #: Admission-control cap on concurrently open streams.
    max_streams: int = 8
    #: Chain warm starts across a stream's slices.
    warm_start: bool = True
    #: Thread-pool size shared by all stream workers (the concurrency of
    #: actual solves; streams beyond it interleave).
    executor_workers: int = 4

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ServeError("deadline_s must be positive (or None)")
        if self.queue_depth < 1:
            raise ServeError("queue_depth must be >= 1")
        if self.max_streams < 1:
            raise ServeError("max_streams must be >= 1")
        if self.executor_workers < 1:
            raise ServeError("executor_workers must be >= 1")


@dataclass(frozen=True)
class StreamSummary:
    """What :meth:`ReconstructionService.close_stream` returns."""

    stream_id: str
    reports: tuple[SliceReport, ...]
    frames_shed: int

    @property
    def deadline_misses(self) -> int:
        return sum(1 for r in self.reports if r.deadline_missed)

    @property
    def warm_slices(self) -> int:
        return sum(1 for r in self.reports if r.warm_start)


class _Stream:
    """One live stream: its session, bounded queue and worker task."""

    __slots__ = (
        "stream_id", "session", "pending", "depth", "wakeup",
        "closing", "reports", "shed", "task",
    )

    def __init__(self, stream_id: str, session: ShotSession, depth: int) -> None:
        self.stream_id = stream_id
        self.session = session
        #: (frame, enqueue-timestamp) pairs awaiting their solve.
        self.pending: deque[tuple[Frame, float]] = deque()
        self.depth = depth
        self.wakeup = asyncio.Event()
        self.closing = False
        self.reports: list[SliceReport] = []
        self.shed = 0
        self.task: asyncio.Task | None = None


class ReconstructionService:
    """Long-lived asyncio front end over a shared reconstruction engine.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop`).  The per-grid state comes from ``engine`` — its
    solver, statics and hooks are shared read-only across every stream's
    session, so opening a stream is O(1) in grid size.
    """

    def __init__(
        self,
        engine: BatchFitEngine,
        *,
        config: ServeConfig | None = None,
        metrics: ServeMetrics | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.clock = clock
        self._streams: dict[str, _Stream] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._running = False

    # -- lifecycle -----------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            raise ServeError("service already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="serve",
        )
        self._running = True
        self.engine.hooks.event(
            "serve_start",
            max_streams=self.config.max_streams,
            queue_depth=self.config.queue_depth,
            deadline_s=self.config.deadline_s or 0.0,
        )

    async def stop(self) -> dict[str, StreamSummary]:
        """Drain and close every open stream, then shut the pool down."""
        if not self._running:
            return {}
        summaries = {
            sid: await self.close_stream(sid) for sid in list(self._streams)
        }
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._executor = None
        self._running = False
        self.engine.hooks.event("serve_stop", streams_closed=len(summaries))
        return summaries

    async def __aenter__(self) -> "ReconstructionService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> bool:
        await self.stop()
        return False

    def _require_running(self) -> None:
        if not self._running:
            raise ServeError("service is not running (use 'async with' or start())")

    # -- the stream lifecycle ------------------------------------------------------
    async def open_stream(
        self, stream_id: str, *, deadline_s: float | None = None
    ) -> None:
        """Admit one new shot stream (or refuse it at capacity)."""
        self._require_running()
        if stream_id in self._streams:
            raise ServeError(f"stream {stream_id!r} already open")
        if len(self._streams) >= self.config.max_streams:
            self.metrics.streams_rejected.inc()
            raise AdmissionError(
                f"stream {stream_id!r} refused: {len(self._streams)} of "
                f"{self.config.max_streams} stream slots in use"
            )
        session = ShotSession(
            self.engine.solver,
            statics=self.engine.statics,
            deadline_s=(
                deadline_s if deadline_s is not None else self.config.deadline_s
            ),
            warm_start=self.config.warm_start,
            metrics=self.metrics,
            clock=self.clock,
        )
        stream = _Stream(stream_id, session, self.config.queue_depth)
        stream.task = asyncio.create_task(
            self._stream_worker(stream), name=f"serve-{stream_id}"
        )
        self._streams[stream_id] = stream
        self.metrics.streams_active.set(float(len(self._streams)))

    async def submit(self, stream_id: str, frame: Frame) -> bool:
        """Enqueue one frame; returns False when an older frame was shed.

        The queue is bounded at ``queue_depth``: a full queue drops its
        *oldest* pending frame to make room (counted in
        ``serve.frames_shed``) — under sustained overload the stream
        keeps reconstructing the freshest data instead of falling ever
        further behind real time.
        """
        self._require_running()
        stream = self._stream(stream_id)
        if stream.closing:
            raise ServeError(f"stream {stream_id!r} is closing")
        accepted = True
        if len(stream.pending) >= stream.depth:
            stream.pending.popleft()
            stream.shed += 1
            self.metrics.frames_shed.inc()
            accepted = False
        stream.pending.append((frame, self.clock()))
        stream.wakeup.set()
        return accepted

    async def close_stream(self, stream_id: str) -> StreamSummary:
        """Drain the stream's remaining frames and retire it."""
        self._require_running()
        stream = self._stream(stream_id)
        stream.closing = True
        stream.wakeup.set()
        assert stream.task is not None
        await stream.task
        del self._streams[stream_id]
        self.metrics.streams_active.set(float(len(self._streams)))
        return StreamSummary(
            stream_id=stream_id,
            reports=tuple(stream.reports),
            frames_shed=stream.shed,
        )

    def _stream(self, stream_id: str) -> _Stream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise ServeError(f"unknown stream {stream_id!r}") from None

    # -- the per-stream worker -----------------------------------------------------
    async def _stream_worker(self, stream: _Stream) -> None:
        """Pull frames off the bounded queue and solve them in the pool."""
        loop = asyncio.get_running_loop()
        while True:
            if not stream.pending:
                if stream.closing:
                    return
                stream.wakeup.clear()
                # Re-check under the cleared event: a submit/close that
                # raced the clear has already set it again.
                if stream.pending or stream.closing:
                    continue
                await stream.wakeup.wait()
                continue
            frame, t_enqueue = stream.pending.popleft()
            queue_seconds = max(0.0, self.clock() - t_enqueue)
            report = await loop.run_in_executor(
                self._executor, stream.session.reconstruct, frame, queue_seconds
            )
            stream.reports.append(report)
