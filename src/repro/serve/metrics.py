"""The serving metric family, built on :class:`~repro.obs.metrics.MetricsRegistry`.

One :class:`ServeMetrics` owns every ``serve.*`` metric the streaming
service emits (names documented in ``docs/SERVING.md``) and keeps direct
handles to its histograms, so latency quantiles (p50/p95/p99) can be
computed without reaching into the registry's internals.  Multiple
sessions and the service share one instance; all underlying primitives
mutate under the GIL (counter ``inc`` / histogram ``observe`` are single
bytecode-level updates), which is the same thread-safety story the batch
engine's shared trace recorder relies on.
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = ["ServeMetrics", "LATENCY_BOUNDS", "ITERATION_BOUNDS"]

#: 1-2-5 series from 100 us to 10 s — fine enough that p50/p95/p99 of a
#: ms-scale serving workload land in distinct buckets (the default
#: decade-spaced bounds cannot separate them).
LATENCY_BOUNDS: tuple[float, ...] = (
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1,
    1.0, 2.0, 5.0, 10.0,
)

#: Fibonacci-ish iteration-count buckets: warm-started slices land in the
#: low single digits, cold solves in the tens — the split the
#: warm-vs-cold savings assertion reads off.
ITERATION_BOUNDS: tuple[float, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144)


class ServeMetrics:
    """Every ``serve.*`` metric, registered once on a shared registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        #: Per-slice solve wall time [s].
        self.slice_seconds = reg.histogram("serve.slice_seconds", LATENCY_BOUNDS)
        #: Per-frame queue wait [s] (submit to dequeue).
        self.queue_seconds = reg.histogram("serve.queue_seconds", LATENCY_BOUNDS)
        #: Picard iterations of warm-started slices.
        self.warm_iterations = reg.histogram(
            "serve.warm_iterations", ITERATION_BOUNDS
        )
        #: Picard iterations of cold-started slices.
        self.cold_iterations = reg.histogram(
            "serve.cold_iterations", ITERATION_BOUNDS
        )
        self.slices = reg.counter("serve.slices")
        self.deadline_misses = reg.counter("serve.deadline_misses")
        self.frames_shed = reg.counter("serve.frames_shed")
        self.streams_rejected = reg.counter("serve.streams_rejected")
        self.warm_start_fallbacks = reg.counter("serve.warm_start_fallbacks")
        self.streams_active = reg.gauge("serve.streams_active")

    def summary(self) -> dict[str, Any]:
        """The serving scoreboard: latency quantiles, misses, savings."""
        warm = self.warm_iterations
        cold = self.cold_iterations
        return {
            "slices": self.slices.value,
            "deadline_misses": self.deadline_misses.value,
            "frames_shed": self.frames_shed.value,
            "streams_rejected": self.streams_rejected.value,
            "warm_start_fallbacks": self.warm_start_fallbacks.value,
            "latency_p50_s": self.slice_seconds.quantile(0.50),
            "latency_p95_s": self.slice_seconds.quantile(0.95),
            "latency_p99_s": self.slice_seconds.quantile(0.99),
            "queue_p95_s": self.queue_seconds.quantile(0.95),
            "warm_slices": warm.total,
            "cold_slices": cold.total,
            "warm_iterations_mean": warm.mean,
            "cold_iterations_mean": cold.mean,
            #: Positive when warm starts converge in fewer iterations —
            #: the serve-smoke CI lane asserts this stays > 0.
            "warm_iteration_savings": (
                cold.mean - warm.mean if warm.total and cold.total else 0.0
            ),
        }

    def to_dict(self) -> dict[str, Any]:
        """Structured export: the registry dump plus the scoreboard.

        Non-finite quantiles (overflow-bucket ``inf``) become ``None`` so
        the payload survives strict (``allow_nan=False``) JSON emission.
        """
        payload = self.registry.to_dict()
        payload["summary"] = {
            key: (
                None
                if isinstance(value, float) and not math.isfinite(value)
                else value
            )
            for key, value in self.summary().items()
        }
        return payload
