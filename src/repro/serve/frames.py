"""Frame and per-slice report records of the streaming service.

A :class:`Frame` is one diagnostic time slice of a live shot as the
acquisition system would hand it over: the stream it belongs to, its
slice index, the measurement vector and the per-slice latency budget.
A :class:`SliceReport` is what the service hands back — the (possibly
partial) reconstruction plus the latency/deadline/warm-start bookkeeping
the real-time literature reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.efit.fitting import FitResult
from repro.efit.measurements import MeasurementSet
from repro.errors import ServeError

__all__ = ["Frame", "SliceReport"]


@dataclass(frozen=True)
class Frame:
    """One time slice of one shot stream entering the service."""

    #: Stream this frame belongs to (one stream per live shot).
    stream_id: str
    #: Monotonically increasing slice index within the stream.
    index: int
    #: The slice's diagnostic data.
    measurements: MeasurementSet
    #: Per-slice solve budget [s]; ``None`` inherits the stream default.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.stream_id:
            raise ServeError("frame needs a non-empty stream_id")
        if self.index < 0:
            raise ServeError("frame index must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ServeError("frame deadline must be positive")


@dataclass(frozen=True)
class SliceReport:
    """One reconstructed (or deadline-aborted) slice leaving the service."""

    stream_id: str
    index: int
    #: The reconstruction — partial (``converged=False``) on a deadline
    #: abort, sealed through ``finish(require_convergence=False)``.
    result: FitResult
    #: Picard iterations actually run for this slice.
    iterations: int
    #: Whether the slice ran on a trusted warm start from its predecessor.
    warm_start: bool
    #: True when the per-slice deadline expired before convergence.
    deadline_missed: bool
    #: Wall-clock seconds spent inside the Picard solve.
    solve_seconds: float
    #: Seconds the frame waited in the stream queue before solving.
    queue_seconds: float = 0.0

    @property
    def converged(self) -> bool:
        return self.result.converged
