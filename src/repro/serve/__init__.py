"""Real-time streaming equilibrium reconstruction (``repro serve``).

The serving tier of the reproduction: long-lived shot streams of
diagnostic frames, each slice reconstructed under a latency deadline and
warm-started from its predecessor — the GPEC recipe for ms-scale
real-time reconstruction layered over this repo's step-machine solver
and batch-engine per-grid state.  See ``docs/SERVING.md``.
"""

from repro.serve.frames import Frame, SliceReport
from repro.serve.metrics import ITERATION_BOUNDS, LATENCY_BOUNDS, ServeMetrics
from repro.serve.service import ReconstructionService, ServeConfig, StreamSummary
from repro.serve.session import ShotSession

__all__ = [
    "Frame",
    "SliceReport",
    "ServeMetrics",
    "LATENCY_BOUNDS",
    "ITERATION_BOUNDS",
    "ReconstructionService",
    "ServeConfig",
    "StreamSummary",
    "ShotSession",
]
