"""Per-stream solve state: warm-start chaining under a deadline.

One :class:`ShotSession` follows one live shot.  Every frame runs the
exact Picard iterate sequence of a serial
:meth:`~repro.efit.fitting.EfitSolver.fit` — ``iterate_pre``, the
single-slice ``pflux_`` solve, ``iterate_post`` — so a slice that runs
to convergence is **bit-identical** to the serial solver on the same
inputs.  Two things are layered on top of the step machine, neither of
which touches the numerics:

* **warm-start chaining** — the previous slice's converged psi and
  profile coefficients seed the next
  :meth:`~repro.efit.fitting.EfitSolver.start_fit`, entering trusted
  warm-start mode (warm-up skipped, convergence allowed from the first
  iterate, guarded fallback on divergence);
* **deadline enforcement** — the clock is checked between iterates; when
  the budget expires the partial state is sealed through
  ``finish(require_convergence=False)`` and reported as a deadline miss.
  The first iterate always runs, so even a missed slice carries a
  boundary and a flux map.

The session is synchronous and single-threaded by design — the asyncio
service runs each session inside a worker thread, one session per
stream, sharing the solver's read-only per-grid state.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.efit.fitting import EfitSolver, GridStatics
from repro.errors import ServeError
from repro.profiling.regions import RegionProfiler
from repro.serve.frames import Frame, SliceReport
from repro.serve.metrics import ServeMetrics

__all__ = ["ShotSession"]


class ShotSession:
    """Reconstruct a stream of frames, warm-starting slice from slice.

    Parameters
    ----------
    solver:
        The shared per-grid :class:`EfitSolver` (typically
        ``engine.solver`` of the service's
        :class:`~repro.batch.engine.BatchFitEngine`).  The session only
        reads its per-grid state; all mutable Picard state lives in the
        per-slice :class:`~repro.efit.fitting.FitState`.
    statics:
        Optional :class:`GridStatics`; the service passes the engine's so
        sessions skip the per-slice limiter/coil-table rebuild.
    deadline_s:
        Default per-slice solve budget [s]; a frame's own ``deadline_s``
        overrides it.  ``None`` disables deadline enforcement.
    warm_start:
        Chain warm starts across slices (disable for A/B comparisons —
        every slice then solves cold, exactly like serial ``fit``).
    metrics:
        Shared :class:`ServeMetrics`; a private one is built if omitted.
    clock:
        Monotonic-seconds callable — injectable so deadline behaviour is
        testable against a fake clock.
    """

    def __init__(
        self,
        solver: EfitSolver,
        *,
        statics: GridStatics | None = None,
        deadline_s: float | None = None,
        warm_start: bool = True,
        metrics: ServeMetrics | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0.0:
            raise ServeError("deadline_s must be positive (or None)")
        self.solver = solver
        self.statics = statics
        self.deadline_s = deadline_s
        self.warm_start = warm_start
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.clock = clock
        #: Per-session profiler: RegionProfiler nesting is not
        #: thread-safe, so concurrent sessions must not share one.
        self.profiler = RegionProfiler()
        self.slices_done = 0
        self._prev_psi: np.ndarray | None = None
        self._prev_coeffs: np.ndarray | None = None

    def reconstruct(self, frame: Frame, queue_seconds: float = 0.0) -> SliceReport:
        """Solve one frame under its deadline; never raises on a miss."""
        solver = self.solver
        metrics = self.metrics
        deadline = frame.deadline_s if frame.deadline_s is not None else self.deadline_s
        t0 = self.clock()
        state = solver.start_fit(
            frame.measurements,
            psi_initial=self._prev_psi if self.warm_start else None,
            coeffs_initial=self._prev_coeffs if self.warm_start else None,
            statics=self.statics,
            profiler=self.profiler,
        )
        seeded = self.warm_start and self._prev_psi is not None
        hooks = state.hooks
        missed = False
        # The same iterate sequence as EfitSolver.fit — the deadline
        # check between iterates is the only addition, and the first
        # iterate always runs so a missed slice still has a boundary.
        for _ in range(solver.max_iters):
            with hooks.profiled_region(
                self.profiler, "fit_", iteration=state.iteration + 1
            ):
                pcurr, psi_ext_iter = solver.iterate_pre(state, statics=self.statics)
                with hooks.profiled_region(
                    self.profiler, "pflux_", iteration=state.iteration
                ):
                    psi_new = solver.pflux.compute(pcurr, psi_ext_iter)
                solver.iterate_post(state, psi_new)
            if state.converged:
                break
            if deadline is not None and self.clock() - t0 >= deadline:
                missed = True
                break
        result = solver.finish(state, require_convergence=False)
        solve_seconds = self.clock() - t0

        metrics.slices.inc()
        metrics.slice_seconds.observe(solve_seconds)
        metrics.queue_seconds.observe(queue_seconds)
        if missed:
            metrics.deadline_misses.inc()
        if result.warm_start:
            metrics.warm_iterations.observe(result.iterations)
        else:
            metrics.cold_iterations.observe(result.iterations)
            if seeded:
                # We offered a warm start but the solver revoked it (the
                # divergence guard) or refused it (boundary probe failed).
                metrics.warm_start_fallbacks.inc()
        if result.converged:
            # Chain the warm start: the *converged* psi and coefficients
            # seed the next slice.  Partial results are not chained — the
            # trust probe would usually accept them, but a deadline-
            # starved stream should degrade to known-good cold solves
            # rather than compound a half-converged state.
            self._prev_psi = result.psi
            self._prev_coeffs = result.history[-1].coefficients
        else:
            self._prev_psi = None
            self._prev_coeffs = None
        self.slices_done += 1
        return SliceReport(
            stream_id=frame.stream_id,
            index=frame.index,
            result=result,
            iterations=result.iterations,
            warm_start=result.warm_start,
            deadline_missed=missed,
            solve_seconds=solve_seconds,
            queue_seconds=queue_seconds,
        )
