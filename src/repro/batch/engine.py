"""The batched multi-slice reconstruction engine.

One :class:`BatchFitEngine` owns everything a grid's worth of
reconstructions can share — the boundary Green table, the dense edge-flux
operator factored out of ``pflux_``, the interior-solver factorisation,
the diagnostic response matrices and the :class:`~repro.efit.fitting.GridStatics`
(limiter mask, limiter contour, coil flux tables).  ``fit_many`` then
drives batches of ``B`` slices in lockstep Picard iteration:

* the per-slice halves (``steps_``, ``current_``, ``green_``) run through
  the same :class:`~repro.efit.fitting.EfitSolver` step machine the
  serial path uses, so per-slice results match a serial
  :meth:`~repro.efit.fitting.EfitSolver.fit` to round-off;
* the ``pflux_`` half is batched: one
  ``(n_edge, nw*nh) @ (nw*nh, B)`` GEMM computes every slice's boundary
  Green sums at once, and one multi-RHS sine-transform solve handles all
  interior systems;
* every batch-level array lives in a per-worker
  :class:`~repro.batch.workspace.FitWorkspace`, so steady-state iterates
  allocate nothing.

Worker threads (``n_workers``) pull batches from a queue; the heavy GEMM
and FFT kernels release the GIL, so multi-core hosts overlap batches.
Convergence is per-slice: a converged slice simply stops contributing
fresh columns while the rest of its batch iterates on (its stale columns
keep riding the fixed-shape GEMM, which keeps the steady state
allocation-free — at 65x65 the whole batched boundary GEMM costs less
than one slice's Python-side bookkeeping).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.markers import hot_path
from repro.batch.slices import BatchStats
from repro.batch.workspace import FitWorkspace
from repro.efit.diagnostics import DiagnosticSet
from repro.efit.fitting import EfitSolver, FitResult, GridStatics
from repro.efit.grid import RZGrid
from repro.efit.machine import Tokamak
from repro.efit.measurements import MeasurementSet
from repro.efit.operators import DenseEdgeOperator, EdgeOperator, cached_edge_operator
from repro.efit.pflux import edge_node_indices
from repro.errors import FittingError
from repro.obs.hooks import NULL_HOOKS, ObservationHooks
from repro.profiling.regions import RegionProfiler
from repro.runtime.counters import WorkspaceCounters
from repro.utils.constants import MU0

__all__ = ["BatchFitEngine", "BatchFitResult"]


@dataclass(frozen=True)
class BatchFitResult:
    """Everything ``fit_many`` produces for one slice sequence."""

    #: Per-slice reconstructions, in input order.
    results: tuple[FitResult, ...]
    #: Aggregate throughput statistics.
    stats: BatchStats
    #: Per-slice completion latency [s] measured from run start.
    latencies: np.ndarray


class BatchFitEngine:
    """Reconstruct many time slices of one machine+grid concurrently.

    Parameters
    ----------
    batch_size:
        Number of slices advanced in lockstep per batched ``pflux_``
        call (``B`` in the edge-operator GEMM).
    n_workers:
        Worker threads pulling batches off the queue.  Useful when BLAS
        releases the GIL and cores are available; the default of 1 keeps
        execution deterministic and single-core friendly.
    hooks:
        Optional :class:`~repro.obs.hooks.ObservationHooks` receiving the
        batch-level spans/events (``pflux_`` regions carry a ``batch``
        attribute; per-slice Picard events come from the solver).
    edge_operator:
        Optional precomputed edge-flux operator: either the dense
        ``(n_edge, nw*nh)`` matrix
        (:func:`~repro.efit.pflux.edge_flux_operator` of this grid's
        tables) or any ready-made
        :class:`~repro.efit.operators.EdgeOperator`.  The multi-process
        fleet passes shared-memory-backed operators here so workers skip
        the build entirely.
    boundary_method:
        Representation to build when ``edge_operator`` is not supplied —
        one of :data:`repro.efit.operators.EDGE_METHODS` (``"dense"``
        default; the compressed forms win on 129^2+ grids).
    solver_kwargs:
        Forwarded to the underlying :class:`EfitSolver` (bases, solver
        name, tolerances, ...).
    """

    def __init__(
        self,
        machine: Tokamak,
        diagnostics: DiagnosticSet,
        grid: RZGrid,
        *,
        batch_size: int = 8,
        n_workers: int = 1,
        hooks: ObservationHooks | None = None,
        edge_operator: "np.ndarray | EdgeOperator | None" = None,
        boundary_method: str = "dense",
        **solver_kwargs,
    ) -> None:
        if batch_size < 1:
            raise FittingError("batch_size must be >= 1")
        if n_workers < 1:
            raise FittingError("n_workers must be >= 1")
        self.batch_size = batch_size
        self.n_workers = n_workers
        self.hooks = hooks if hooks is not None else NULL_HOOKS
        #: The shared per-grid setup: Green tables, solver factorisation,
        #: response matrices — built once, reused by every worker.
        self.solver = EfitSolver(machine, diagnostics, grid, **solver_kwargs)
        self.statics = GridStatics.build(machine, grid)
        #: The boundary Green sums as an :class:`EdgeOperator`.  A raw
        #: ndarray (the historical contract, still what the fleet's dense
        #: arenas pass) wraps into the dense form, whose ``apply`` is the
        #: same GEMM as before — the default path stays bit-identical.
        if edge_operator is not None:
            if isinstance(edge_operator, EdgeOperator):
                if boundary_method != "dense" and edge_operator.method != boundary_method:
                    raise FittingError(
                        f"edge_operator method {edge_operator.method!r} != "
                        f"boundary_method {boundary_method!r}"
                    )
                self.edge_op = edge_operator
            else:
                expected = (2 * (grid.nw + grid.nh) - 4, grid.size)
                if edge_operator.shape != expected:
                    raise FittingError(
                        f"edge_operator shape {edge_operator.shape}, expected {expected}"
                    )
                self.edge_op = DenseEdgeOperator(grid, edge_operator)
        else:
            self.edge_op = cached_edge_operator(self.solver.tables, boundary_method)
        self.boundary_method = self.edge_op.method
        self._edge_i, self._edge_j = edge_node_indices(grid.nw, grid.nh)
        #: ``rhs = rhs_factor * pcurr`` — same association as the serial path.
        self._rhs_factor = -(MU0 / grid.cell_area) * grid.rr
        #: Per-worker arenas/profilers, persistent across ``fit_many``
        #: calls so the steady state allocates nothing.
        self._workspaces = [FitWorkspace() for _ in range(n_workers)]
        self._profilers = [RegionProfiler() for _ in range(n_workers)]

    @classmethod
    def for_scenario(cls, scenario, n: int = 65, *, shot=None, **kwargs) -> "BatchFitEngine":
        """Build an engine configured for a registered scenario.

        The scenario's ``solver_kwargs`` are forwarded to the underlying
        :class:`EfitSolver`; explicit ``kwargs`` win on conflict.
        """
        from repro.scenarios import get_scenario

        sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if shot is None:
            shot = sc.make_shot(n)
        merged = {**sc.solver_kwargs, **kwargs}
        return cls(shot.machine, shot.diagnostics, shot.grid, **merged)

    # -- observability ------------------------------------------------------------
    def workspace_counters(self) -> WorkspaceCounters:
        """Aggregate allocation/reuse counters across all workers."""
        agg = WorkspaceCounters()
        for ws in self._workspaces:
            c = ws.counters
            agg.allocations += c.allocations
            agg.reuses += c.reuses
            agg.allocated_bytes += c.allocated_bytes
            agg.resident_bytes += c.resident_bytes
        return agg

    def profiler_report(self):
        """Region report of worker 0 (representative breakdown)."""
        return self._profilers[0].report()

    # -- the batched Picard loop ---------------------------------------------------
    @hot_path
    def _fit_batch(
        self,
        batch: Sequence[MeasurementSet],
        ws: FitWorkspace,
        profiler: RegionProfiler,
        t_run0: float,
        require_convergence: bool,
        psi_initial: Sequence["np.ndarray | None"] | None = None,
    ) -> list[tuple[FitResult, float, int]]:
        """Advance one batch of slices in lockstep to convergence."""
        solver = self.solver
        grid = solver.grid
        hooks = self.hooks
        nw, nh = grid.nw, grid.nh
        nb = len(batch)
        n_edge = self._edge_i.size

        seeds = psi_initial if psi_initial is not None else [None] * nb
        states = [
            solver.start_fit(
                m,
                psi_initial=seed,
                statics=self.statics,
                profiler=profiler,
                hooks=hooks,
            )
            for m, seed in zip(batch, seeds)
        ]
        # Fixed-capacity batch buffers, reused across iterates and batches;
        # a ragged final batch takes views so the arena shapes never change.
        cap = self.batch_size
        pcurr_neg = ws.array("pcurr_neg", (grid.size, cap))[:, :nb]
        edge = ws.array("edge_flux", (n_edge, cap))[:, :nb]
        rhs = ws.array("rhs", (cap, nw, nh))[:nb]
        psi_bound = ws.array("psi_boundary", (cap, nw, nh))[:nb]
        psi_plasma = ws.array("psi_plasma", (cap, nw, nh))[:nb]
        psi_new = ws.array("psi_new", (cap, nw, nh))[:nb]
        psi_ext: list[np.ndarray | None] = [None] * nb

        latencies = [0.0] * nb
        active = list(range(nb))
        for _ in range(solver.max_iters):
            for k in active:
                pcurr, psi_ext[k] = solver.iterate_pre(states[k], statics=self.statics)
                # The serial path feeds ``-pcurr`` to the boundary kernel.
                np.multiply(pcurr.reshape(grid.size), -1.0, out=pcurr_neg[:, k])
                np.multiply(self._rhs_factor, pcurr, out=rhs[k])
            with hooks.profiled_region(profiler, "pflux_", batch=nb):
                # One operator apply for the whole batch's boundary Green
                # sums (a single GEMM on the dense path) ...
                self.edge_op.apply(pcurr_neg, out=edge)
                psi_bound[:, self._edge_i, self._edge_j] = edge.T
                # ... and one multi-RHS sweep for all interior solves.
                solver.solver.solve_batch(rhs, psi_bound, out=psi_plasma)
            now = time.perf_counter()
            for k in active:
                np.add(psi_plasma[k], psi_ext[k], out=psi_new[k])
                if solver.iterate_post(states[k], psi_new[k]):
                    latencies[k] = now - t_run0
            active = [k for k in active if not states[k].converged]
            if not active:
                break
        t_end = time.perf_counter()
        out: list[tuple[FitResult, float, int]] = []
        for k, state in enumerate(states):
            if not state.converged:
                latencies[k] = t_end - t_run0
            result = solver.finish(state, require_convergence=require_convergence)
            out.append((result, latencies[k], len(state.history)))
        return out

    def fit_many(
        self,
        slices: Sequence[MeasurementSet],
        *,
        psi_initial: Sequence["np.ndarray | None"] | None = None,
        require_convergence: bool = True,
    ) -> BatchFitResult:
        """Reconstruct every slice; returns per-slice results + stats.

        Slices are grouped into batches of ``batch_size`` in input order;
        ``n_workers`` threads drain the batch queue.  ``psi_initial``
        optionally supplies one warm-start flux per slice (``None``
        entries stay cold) — each seeds that slice's
        :meth:`~repro.efit.fitting.EfitSolver.start_fit` exactly as the
        serial path would, so warm-started batch output bit-matches a
        warm-started serial solve.  Raises
        :class:`~repro.errors.ConvergenceError` on the first unconverged
        slice unless ``require_convergence=False``.
        """
        slices = list(slices)
        if not slices:
            raise FittingError("fit_many needs at least one slice")
        if psi_initial is not None:
            psi_initial = list(psi_initial)
            if len(psi_initial) != len(slices):
                raise FittingError(
                    f"psi_initial has {len(psi_initial)} entries for "
                    f"{len(slices)} slices"
                )
        batches = [
            (start, slices[start : start + self.batch_size])
            for start in range(0, len(slices), self.batch_size)
        ]
        results: list[FitResult | None] = [None] * len(slices)
        latencies = np.zeros(len(slices))
        iteration_counts = np.zeros(len(slices), dtype=int)
        self.hooks.event(
            "fit_many_start",
            n_slices=len(slices),
            batch_size=self.batch_size,
            n_workers=self.n_workers,
        )
        t_run0 = time.perf_counter()

        def run_batch(worker: int, start: int, batch: Sequence[MeasurementSet]) -> None:
            outcomes = self._fit_batch(
                batch,
                self._workspaces[worker],
                self._profilers[worker],
                t_run0,
                require_convergence,
                psi_initial[start : start + len(batch)]
                if psi_initial is not None
                else None,
            )
            for offset, (result, latency, iters) in enumerate(outcomes):
                results[start + offset] = result
                latencies[start + offset] = latency
                iteration_counts[start + offset] = iters

        if self.n_workers == 1:
            for start, batch in batches:
                run_batch(0, start, batch)
        else:
            todo: queue.SimpleQueue = queue.SimpleQueue()
            for item in batches:
                todo.put(item)
            errors: list[BaseException] = []

            def worker_loop(worker: int) -> None:
                while True:
                    try:
                        start, batch = todo.get_nowait()
                    except queue.Empty:
                        return
                    try:
                        run_batch(worker, start, batch)
                    except BaseException as exc:  # propagate to the caller
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(target=worker_loop, args=(w,), name=f"batchfit-{w}")
                for w in range(min(self.n_workers, len(batches)))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]

        wall = time.perf_counter() - t_run0
        done = [r for r in results if r is not None]
        stats = BatchStats.from_latencies(
            latencies,
            wall,
            total_iterations=int(iteration_counts.sum()),
            n_converged=sum(1 for r in done if r.converged),
        )
        self.hooks.event(
            "fit_many_end",
            n_slices=len(slices),
            wall_seconds=wall,
            total_iterations=int(iteration_counts.sum()),
            n_converged=stats.n_converged,
        )
        return BatchFitResult(results=tuple(done), stats=stats, latencies=latencies)
