"""Preallocated workspace arenas for the reconstruction hot path.

NumPy's expression style allocates a fresh array per intermediate; at
thousands of Picard iterates per shot that is both allocator pressure and
cache churn.  :class:`FitWorkspace` holds named buffers that are
allocated once and reused across Picard iterates, slices and batches —
callers request ``ws.array(name, shape)`` and write into the result with
``out=``-style kernels.  Every request is counted through a
:class:`~repro.runtime.counters.WorkspaceCounters`, so the benchmark
suite can assert that steady-state iterates perform *zero* fresh
allocations: after warm-up, ``allocations`` stays flat while ``reuses``
keeps climbing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FittingError
from repro.runtime.counters import WorkspaceCounters

__all__ = ["FitWorkspace"]


class FitWorkspace:
    """A named-buffer arena with allocation/reuse accounting.

    Buffers are keyed by name; a request re-allocates only when the name
    is new or the requested shape/dtype changed (e.g. the batch engine
    was handed a different batch size).  Buffers are returned
    *uninitialised* on first allocation — callers own the fill.

    Not thread-safe: the batch engine keeps one workspace per worker.
    """

    def __init__(self, counters: WorkspaceCounters | None = None) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self.counters = counters if counters is not None else WorkspaceCounters()

    def array(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Return the buffer ``name``, (re)allocating only on shape change."""
        if not name:
            raise FittingError("workspace buffer needs a name")
        shape = tuple(int(s) for s in shape)
        arr = self._arrays.get(name)
        if arr is not None and arr.shape == shape and arr.dtype == np.dtype(dtype):
            self.counters.record_reuse()
            return arr
        freed = arr.nbytes if arr is not None else 0
        arr = np.empty(shape, dtype=dtype)
        self._arrays[name] = arr
        self.counters.record_allocation(arr.nbytes, freed_bytes=freed)
        return arr

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __len__(self) -> int:
        return len(self._arrays)

    @property
    def nbytes(self) -> int:
        """Total bytes currently resident in the arena."""
        return sum(a.nbytes for a in self._arrays.values())

    def names(self) -> tuple[str, ...]:
        """The currently allocated buffer names (diagnostic aid)."""
        return tuple(self._arrays)

    def clear(self) -> None:
        """Drop every buffer (counters keep their history)."""
        self._arrays.clear()
        self.counters.resident_bytes = 0
