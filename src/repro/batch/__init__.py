"""Batched multi-slice reconstruction (the throughput layer).

EFIT's production workload is not one reconstruction but a shot's worth
of them: hundreds of time slices through the same machine on the same
grid.  The single-slice driver re-derives per-call state every Picard
iterate — this package amortises all of it:

* :class:`~repro.batch.workspace.FitWorkspace` — preallocated buffer
  arenas keyed on shape, with allocation/reuse counters so benchmarks can
  assert a zero-allocation steady state;
* :class:`~repro.batch.engine.BatchFitEngine` — drives worker threads
  over a slice queue, shares one Green table, one precomputed edge
  operator and one solver factorisation per grid, computes the boundary
  flux of a whole batch with a single GEMM, and solves all interior
  systems in one multi-RHS sweep;
* :mod:`~repro.batch.slices` — throughput statistics (slices/s, latency
  percentiles) and synthetic slice-sequence generation for benchmarks.
"""

from repro.batch.engine import BatchFitEngine, BatchFitResult
from repro.batch.slices import BatchStats, synthetic_slice_sequence
from repro.batch.workspace import FitWorkspace

__all__ = [
    "BatchFitEngine",
    "BatchFitResult",
    "BatchStats",
    "FitWorkspace",
    "synthetic_slice_sequence",
]
