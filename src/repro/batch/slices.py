"""Slice-sequence utilities and throughput statistics.

A between-shot analysis reconstructs hundreds of time slices of the same
discharge: same machine, same grid, measurement vectors that drift
slowly in time.  :func:`synthetic_slice_sequence` manufactures such a
sequence from one synthetic shot (per-slice resampled measurement noise)
so benchmarks and examples can exercise the batch engine with realistic,
mutually distinct slices.  :class:`BatchStats` is the aggregate
throughput report the engine returns: slices/s plus latency percentiles,
the figures of merit of the real-time reconstruction literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efit.measurements import MeasurementSet, SyntheticShot
from repro.errors import MeasurementError

__all__ = ["BatchStats", "synthetic_slice_sequence"]


@dataclass(frozen=True)
class BatchStats:
    """Aggregate throughput statistics of one engine run."""

    n_slices: int
    n_converged: int
    total_iterations: int
    wall_seconds: float
    slices_per_second: float
    latency_p50: float
    latency_p95: float
    latency_mean: float

    @classmethod
    def from_latencies(
        cls,
        latencies: np.ndarray,
        wall_seconds: float,
        *,
        total_iterations: int,
        n_converged: int,
    ) -> "BatchStats":
        """Reduce per-slice completion latencies into the aggregate view."""
        latencies = np.asarray(latencies, dtype=float)
        if latencies.ndim != 1 or latencies.size == 0:
            raise MeasurementError("need a non-empty 1-D latency vector")
        return cls(
            n_slices=int(latencies.size),
            n_converged=int(n_converged),
            total_iterations=int(total_iterations),
            wall_seconds=float(wall_seconds),
            slices_per_second=float(latencies.size / wall_seconds) if wall_seconds > 0 else 0.0,
            latency_p50=float(np.percentile(latencies, 50)),
            latency_p95=float(np.percentile(latencies, 95)),
            latency_mean=float(latencies.mean()),
        )

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.n_slices} slices ({self.n_converged} converged, "
            f"{self.total_iterations} iterations) in {self.wall_seconds:.3f} s "
            f"= {self.slices_per_second:.1f} slices/s, "
            f"latency p50 {1e3 * self.latency_p50:.1f} ms / "
            f"p95 {1e3 * self.latency_p95:.1f} ms"
        )


def synthetic_slice_sequence(
    shot: SyntheticShot, n_slices: int, *, noise_scale: float = 0.3, seed: int = 0
) -> list[MeasurementSet]:
    """A shot's worth of mutually distinct time slices.

    Each slice re-samples the measurement noise of ``shot`` at
    ``noise_scale`` times the per-channel uncertainty — slices share the
    underlying equilibrium (like neighbouring times of a flat-top) but
    carry independent realisations, so every reconstruction follows its
    own Picard trajectory.
    """
    if n_slices < 1:
        raise MeasurementError("need at least one slice")
    if noise_scale < 0.0:
        raise MeasurementError("noise_scale must be non-negative")
    rng = np.random.default_rng(seed)
    base = shot.measurements
    out: list[MeasurementSet] = []
    for _ in range(n_slices):
        values = base.values + rng.normal(0.0, noise_scale * base.uncertainties)
        out.append(
            MeasurementSet(
                values=values,
                uncertainties=base.uncertainties.copy(),
                coil_currents=base.coil_currents.copy(),
                names=base.names,
            )
        )
    return out
