"""HPC facility node configurations (Section 4)."""

from repro.machines.site import MachineSite, perlmutter, frontier, sunspot, ALL_SITES

__all__ = ["MachineSite", "perlmutter", "frontier", "sunspot", "ALL_SITES"]
