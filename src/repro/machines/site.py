"""The three evaluation systems: Perlmutter, Frontier, Sunspot.

Each :class:`MachineSite` bundles the node architecture (host CPU, GPU
device, device count), the facility compiler, the default environment of
Table 3, and the node-throughput break-even threshold of Section 4: a GPU
port only beats CPU-filling MPI parallelism over time slices when each
device outruns ``cores_per_node / devices_per_node`` CPU cores — 16x on
Perlmutter (64 cores / 4 GPUs), 8x on Frontier (64 / 8 GCDs), ~8.7x on
Sunspot (104 / 12 stacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compilers.base import Compiler
from repro.compilers.registry import compiler_for_vendor
from repro.config import Environment, frontier_env, perlmutter_env, sunspot_env
from repro.errors import HardwareError
from repro.hardware.amd import mi250x_gcd
from repro.hardware.arch import CPUArchitecture, GPUArchitecture
from repro.hardware.cpus import (
    epyc_7763_milan,
    epyc_7a53_optimized,
    xeon_sapphire_rapids,
)
from repro.hardware.intel import pvc_stack
from repro.hardware.nvidia import a100

__all__ = ["MachineSite", "perlmutter", "frontier", "sunspot", "ALL_SITES"]


@dataclass(frozen=True)
class MachineSite:
    """One facility's node, as evaluated in the paper."""

    name: str
    facility: str
    cpu: CPUArchitecture
    gpu: GPUArchitecture
    #: Programmable devices per node (GPUs, GCDs or stacks).
    devices_per_node: int
    compiler: Compiler = field(repr=False, default=None)  # type: ignore[assignment]
    env: Environment = field(default_factory=Environment)
    #: Compiler flag lines from Table 3, keyed by programming model.
    flag_lines: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.devices_per_node < 1:
            raise HardwareError(f"{self.name}: needs >= 1 device per node")
        if self.compiler is None:
            object.__setattr__(self, "compiler", compiler_for_vendor(self.gpu.vendor))

    @property
    def acceleration_threshold(self) -> float:
        """Per-device speedup (vs one core) needed to beat the full host."""
        return self.cpu.cores_per_node / self.devices_per_node

    @property
    def models(self) -> tuple[str, ...]:
        """Programming models buildable at this site."""
        return self.compiler.models

    def flags(self, model: str) -> str:
        try:
            return self.flag_lines[model]
        except KeyError:
            raise HardwareError(f"{self.name} has no {model} build line") from None


def perlmutter() -> MachineSite:
    """NERSC Perlmutter GPU node: 1x EPYC 7763 + 4x A100."""
    return MachineSite(
        name="perlmutter",
        facility="NERSC",
        cpu=epyc_7763_milan(),
        gpu=a100(),
        devices_per_node=4,
        env=perlmutter_env(),
        flag_lines={
            "openmp": "-mp=gpu -gpu=cc80,managed",
            "openacc": "-acc -gpu=cc80,managed",
        },
    )


def frontier(*, system_alloc: bool = True) -> MachineSite:
    """OLCF Frontier node: 1x EPYC 7A53 + 4x MI250X (8 GCDs).

    ``system_alloc=False`` builds the slow Figure 4 configuration (no
    ``-hsystem_alloc`` / ``CRAY_MALLOPT_OFF``).
    """
    alloc_flag = " -hsystem_alloc" if system_alloc else ""
    return MachineSite(
        name="frontier",
        facility="OLCF",
        cpu=epyc_7a53_optimized(),
        gpu=mi250x_gcd(),
        devices_per_node=8,
        env=frontier_env(system_alloc=system_alloc),
        flag_lines={
            "openmp": f"-h omp{alloc_flag}",
            "openacc": f"-h acc{alloc_flag}",
        },
    )


def sunspot() -> MachineSite:
    """ALCF Sunspot node: 2x Xeon SPR (104 cores) + 6x PVC (12 stacks)."""
    return MachineSite(
        name="sunspot",
        facility="ALCF",
        cpu=xeon_sapphire_rapids(),
        gpu=pvc_stack(),
        devices_per_node=12,
        env=sunspot_env(),
        flag_lines={
            "openmp": "-fopenmp -fopenmp-targets=spir64",
        },
    )


def ALL_SITES() -> tuple[MachineSite, ...]:
    """The paper's three systems, in its presentation order."""
    return (perlmutter(), frontier(), sunspot())
