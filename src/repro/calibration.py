"""Every tunable constant of the performance model, in one place.

The device models in :mod:`repro.hardware` carry vendor-datasheet numbers;
this module carries the *achieved-fraction* constants that encode compiler
lowering quality, runtime overheads and code structure — the quantities
the paper actually measures.  Each constant states which paper artifact it
is calibrated against.  Tests in ``tests/core/test_reproduction.py`` check
that the assembled model lands within tolerance of the published tables.

Nothing outside this module hard-codes a model constant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CalibrationError

__all__ = [
    "KernelClass",
    "LoweringQuality",
    "lowering_quality",
    "PFLUX_N3_FLOPS_PER_ITER",
    "PFLUX_SMALL_LOOPS",
    "NONPFLUX_SECONDS_PER_N2",
    "NONPFLUX_SPLIT",
    "NONPFLUX_GPU_BUILD_SPEEDUP",
    "CPU_OPTIMIZATION_SPEEDUP",
    "TEMP_WORK_ARRAYS",
]


class KernelClass(enum.Enum):
    """Coarse kernel taxonomy used by the lowering-quality table."""

    #: The O(N^3) boundary Green-sum loop nests (paper Figures 2/3).
    BOUNDARY_N3 = "boundary_n3"
    #: The fast interior solver (DST + tridiagonals), O(N^2 log N).
    SOLVER = "solver"
    #: Simple full-grid O(N^2) loops (RHS build, flux assembly).
    GRID_N2 = "grid_n2"
    #: The "dozens of smaller loops" — O(N) utility loops where the ~10 us
    #: launch latency dominates (Section 2).
    SMALL = "small"


@dataclass(frozen=True)
class LoweringQuality:
    """How well a (compiler, model, vendor) combination lowers a kernel class.

    traffic_factor:
        HBM traffic as a multiple of the nest's streaming bytes
        (Figure 5: OpenACC moves 1.6x more than OpenMP on NVIDIA and 3.7x
        more on AMD; OpenMP traffic is comparable on all three vendors).
    bandwidth_efficiency / compute_efficiency:
        Achieved fraction of (hbm_efficiency-derated) peak, before the
        occupancy factor.
    threads_per_team:
        Work-items per team/gang the lowering produces; with the team
        count from the nest's outer loops this sets exposed parallelism
        and hence small-grid occupancy.
    """

    traffic_factor: float
    bandwidth_efficiency: float
    compute_efficiency: float
    threads_per_team: int
    #: False for lowerings whose throughput is capped by internal
    #: serialisation rather than exposed parallelism (CCE OpenACC's
    #: reduction path) — produces the Table 6 saturation at 257^2+.
    occupancy_sensitive: bool = True
    #: Per-launch runtime overhead multiplier relative to the device's
    #: native launch latency (CCE's OpenACC runtime adds bookkeeping on
    #: every region entry).
    launch_overhead: float = 1.0


# (compiler, programming model, GPU vendor) -> kernel class -> quality.
# Calibrated against Tables 6 and 7 and Figure 5; see each entry.
_LOWERING: dict[tuple[str, str, str], dict[KernelClass, LoweringQuality]] = {
    # --- NVHPC on A100: OpenACC and OpenMP "nearly perfectly match" -------
    # OpenACC moves 1.6x the data but streams it more efficiently; net
    # run times track each other within ~10% (Table 6 vs Table 7).
    ("nvhpc", "openacc", "NVIDIA"): {
        # gang x 4 workers x vector_length(32) = 128 threads/gang.
        KernelClass.BOUNDARY_N3: LoweringQuality(1.60, 0.95, 0.70, 128),
        KernelClass.SOLVER: LoweringQuality(1.30, 0.55, 0.50, 256),
        KernelClass.GRID_N2: LoweringQuality(1.20, 0.60, 0.60, 128),
        KernelClass.SMALL: LoweringQuality(1.50, 0.30, 0.30, 128),
    },
    ("nvhpc", "openmp", "NVIDIA"): {
        # teams distribute + parallel do collapse(2): 256-thread teams.
        KernelClass.BOUNDARY_N3: LoweringQuality(1.00, 0.42, 0.70, 256),
        KernelClass.SOLVER: LoweringQuality(1.30, 0.55, 0.50, 256),
        KernelClass.GRID_N2: LoweringQuality(1.10, 0.60, 0.60, 256),
        KernelClass.SMALL: LoweringQuality(1.40, 0.30, 0.30, 256),
    },
    # --- CCE on MI250X GCD: OpenACC lags badly, OpenMP is competitive -----
    ("cce", "openacc", "AMD"): {
        # CCE maps the gang level but the vector-reduction path serialises
        # internally (one wavefront per gang, spill/refill through HBM):
        # 3.7x the OpenMP data movement (Figure 5), throughput pinned at
        # ~300 GB/s regardless of grid size -> the O(N^3) nests dominate
        # and acceleration saturates at 257^2 (Table 6).
        KernelClass.BOUNDARY_N3: LoweringQuality(3.90, 0.234, 0.30, 64, occupancy_sensitive=False),
        KernelClass.SOLVER: LoweringQuality(1.60, 0.40, 0.35, 256, launch_overhead=3.0),
        KernelClass.GRID_N2: LoweringQuality(1.40, 0.45, 0.45, 64, launch_overhead=3.0),
        KernelClass.SMALL: LoweringQuality(1.60, 0.25, 0.25, 64, launch_overhead=3.0),
    },
    ("cce", "openmp", "AMD"): {
        # With "!$omp loop" on the O(N^3) nests (Section 6.2) CCE reaches
        # >70% of the NVIDIA performance; traffic comparable to NVIDIA.
        KernelClass.BOUNDARY_N3: LoweringQuality(1.05, 0.30, 0.60, 256),
        KernelClass.SOLVER: LoweringQuality(1.40, 0.45, 0.40, 256),
        KernelClass.GRID_N2: LoweringQuality(1.20, 0.50, 0.50, 256),
        KernelClass.SMALL: LoweringQuality(1.50, 0.25, 0.25, 256),
    },
    # --- oneAPI on PVC: OpenMP only; large per-region costs ---------------
    ("oneapi", "openmp", "Intel"): {
        # Figure 5: data movement comparable to the other OpenMP builds.
        # The 2023 stack's achieved bandwidth on directive-generated
        # reductions was nonetheless far lower (~86 GB/s on the boundary
        # nests), and per-region overheads larger — Table 7's 13x ceiling.
        KernelClass.BOUNDARY_N3: LoweringQuality(1.10, 0.085, 0.20, 256),
        KernelClass.SOLVER: LoweringQuality(1.50, 0.25, 0.20, 256),
        KernelClass.GRID_N2: LoweringQuality(1.30, 0.30, 0.30, 256),
        KernelClass.SMALL: LoweringQuality(1.50, 0.15, 0.15, 256),
    },
}


def lowering_quality(
    compiler: str, model: str, vendor: str, kernel_class: KernelClass
) -> LoweringQuality:
    """Look up the calibrated lowering quality; raises
    :class:`CalibrationError` for uncalibrated combinations."""
    try:
        return _LOWERING[(compiler, model, vendor)][kernel_class]
    except KeyError:
        raise CalibrationError(
            f"no calibration for compiler={compiler!r} model={model!r} "
            f"vendor={vendor!r} class={kernel_class}"
        ) from None


#: FLOPs per innermost iteration of each O(N^3) boundary loop pair: two
#: fused multiply-subtract reductions (paper Figures 2/3) = 4 FLOPs.  With
#: two such loop pairs the total is 8 N^3 — which reproduces the measured
#: baseline CPU times of Table 2 at ~1 GFLOP/s almost exactly.
PFLUX_N3_FLOPS_PER_ITER: float = 4.0

#: The "dozens of loop nests" in pflux_ beyond the big kernels (Section 2:
#: "there are opportunities to accelerate dozens of loop nests. However,
#: 10us of latency will impede acceleration of the smaller loops").
PFLUX_SMALL_LOOPS: int = 24

#: Non-pflux share of fit_ (green_ + current_ + steps_ + other), measured
#: to scale as N^2; seconds per grid point, calibrated from Table 2's
#: "% of fit_" rows: Perlmutter 0.116 s @ 513^2, Frontier 0.091 s,
#: Sunspot 0.161 s.
NONPFLUX_SECONDS_PER_N2: dict[str, float] = {
    "perlmutter": 4.4e-7,
    "frontier": 3.5e-7,
    "sunspot": 6.1e-7,
}

#: Split of the non-pflux time among the other fit_ subroutines, read off
#: the Figure 1 pie charts (approximate — the paper prints no numbers for
#: the minor slices).
NONPFLUX_SPLIT: dict[str, float] = {
    "green_": 0.45,
    "current_": 0.25,
    "steps_": 0.20,
    "other": 0.10,
}

#: In the GPU builds the host-side routines also benefit from the general
#: code optimisations applied during porting; calibrated from Figure 6's
#: post-offload pflux_ shares (16% / 27% / 44%) against Table 7 times.
NONPFLUX_GPU_BUILD_SPEEDUP: dict[str, float] = {
    "perlmutter": 1.50,
    "frontier": 1.78,
    "sunspot": 1.43,
}

#: "By doing reductions on scalar variables ... improved the performance
#: on only CPU by 3x" (Section 6).
CPU_OPTIMIZATION_SPEEDUP: float = 3.0

#: Fortran work arrays allocated/freed on every pflux_ call — the
#: population whose page residency the Cray default mallopt destroys
#: (Figure 4).  Each is O(N^2) bytes.
TEMP_WORK_ARRAYS: int = 20
