"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``study``
    Regenerate the paper's tables and figures (model vs paper).
``fit``
    Reconstruct a synthetic time slice and optionally write a g-file.
``census``
    Print the directive census (Tables 4/5).
``sites``
    Describe the modeled machines.
``analyze``
    Run the portability linter (directive rules + hot-path rules).

``census``, ``sites`` and ``analyze`` accept ``--json`` and share one
emitter (:mod:`repro.utils.jsonio`) so their machine-readable output has
a single formatting contract.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser", "DEFAULT_BASELINE"]

#: Baseline file ``repro analyze`` picks up from the working directory
#: when ``--baseline``/``--no-baseline`` are not given.
DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EFIT GPU performance-portability study, reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_study = sub.add_parser("study", help="regenerate the paper's tables and figures")
    p_study.add_argument(
        "--artifact",
        choices=["all", "table1", "table2", "table4", "table5", "table6", "table7",
                 "fig1", "fig4", "fig5", "fig6", "fig7"],
        default="all",
        help="which artifact to print (default: all)",
    )
    p_study.add_argument(
        "--grids",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="grid sizes to sweep (default: 65 129 257 513)",
    )

    p_fit = sub.add_parser("fit", help="reconstruct a synthetic time slice")
    p_fit.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_fit.add_argument("--noise", type=float, default=1e-3, help="measurement noise")
    p_fit.add_argument("--solver", default="dst",
                       choices=["direct", "dst", "cyclic", "cg"],
                       help="interior GS solver")
    p_fit.add_argument("--geqdsk", metavar="PATH", default=None,
                       help="write the result as a g-EQDSK file")
    p_fit.add_argument("--afile", metavar="PATH", default=None,
                       help="write the scalar results as an a-file")

    p_census = sub.add_parser("census", help="print the directive census (Tables 4/5)")
    p_census.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    p_sites = sub.add_parser("sites", help="describe the modeled machines")
    p_sites.add_argument("--json", action="store_true", help="emit JSON instead of text")

    p_an = sub.add_parser(
        "analyze",
        help="run the portability linter over the registered kernels and hot paths",
    )
    p_an.add_argument("--json", action="store_true", help="emit findings as JSON")
    p_an.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors",
    )
    p_an.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"suppression baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    p_an.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    p_an.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    p_an.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_an.add_argument(
        "--max-traffic-ratio",
        type=float,
        default=2.0,
        help="excess-traffic threshold as modeled/streaming bytes (default 2.0)",
    )

    sub.add_parser("version", help="print the package version")
    return parser


def _cmd_study(args) -> int:
    from repro.core import report
    from repro.core.study import PortabilityStudy
    from repro.machines.site import ALL_SITES

    kwargs = {}
    if args.grids:
        kwargs["grid_sizes"] = tuple(sorted(set(args.grids)))
    study = PortabilityStudy(ALL_SITES(), **kwargs)
    makers = {
        "table1": lambda: report.table1_report(study),
        "table2": lambda: report.table2_report(study),
        "table4": lambda: report.table4_5_report()[0],
        "table5": lambda: report.table4_5_report()[1],
        "table6": lambda: report.table6_report(study),
        "table7": lambda: report.table7_report(study),
        "fig1": lambda: report.fig1_report(study, n=study.grid_sizes[-1]),
        "fig4": lambda: report.fig4_report(),
        "fig5": lambda: report.fig5_report(study, n=study.grid_sizes[-1]),
        "fig6": lambda: report.fig6_report(study, n=study.grid_sizes[-1]),
        "fig7": lambda: report.fig7_report(study),
    }
    names = list(makers) if args.artifact == "all" else [args.artifact]
    for name in names:
        print(makers[name]().render())
        print()
    return 0


def _cmd_fit(args) -> int:
    import numpy as np

    from repro.efit import EfitSolver, synthetic_shot_186610

    shot = synthetic_shot_186610(args.grid, noise=args.noise)
    solver = EfitSolver(
        shot.machine, shot.diagnostics, shot.grid, solver_name=args.solver
    )
    result = solver.fit(shot.measurements)
    err = float(np.abs(result.psi - shot.truth.psi).max() / np.ptp(shot.truth.psi))
    print(f"converged: {result.converged} after {result.iterations} iterations")
    print(f"chi^2 = {result.chi2:.1f} over {shot.measurements.n_measurements} measurements")
    print(f"Ip = {result.ip / 1e6:.4f} MA; flux error vs truth = {err:.2e}")
    b = result.boundary
    print(f"axis: R = {b.r_axis:.3f} m, Z = {b.z_axis:+.4f} m ({b.boundary_type})")
    if args.geqdsk:
        from repro.efit.output import geqdsk_from_fit, write_geqdsk

        eq = geqdsk_from_fit(shot, result)
        write_geqdsk(eq, args.geqdsk)
        print(f"wrote {args.geqdsk}")
    if args.afile:
        from repro.efit.afile import afile_from_fit, write_afile

        write_afile(afile_from_fit(shot, result), args.afile)
        print(f"wrote {args.afile}")
    return 0


def _cmd_census(args) -> int:
    from repro.core.report import table4_5_report

    t4, t5 = table4_5_report()
    if args.json:
        from repro.utils.jsonio import dump_json, table_to_dict

        dump_json({"table4": table_to_dict(t4), "table5": table_to_dict(t5)}, sys.stdout)
        return 0
    print(t4.render())
    print()
    print(t5.render())
    return 0


def _cmd_sites(args) -> int:
    from repro.machines.site import ALL_SITES

    sites = ALL_SITES()
    if args.json:
        from repro.utils.jsonio import dump_json

        payload = [
            {
                "name": site.name,
                "facility": site.facility,
                "cpu": site.cpu.name,
                "gpu": site.gpu.name,
                "gpu_vendor": site.gpu.vendor,
                "devices_per_node": site.devices_per_node,
                "unified_memory": site.gpu.unified_memory,
                "compiler": f"{site.compiler.name} {site.compiler.version}",
                "models": list(site.models),
                "acceleration_threshold": site.acceleration_threshold,
            }
            for site in sites
        ]
        dump_json(payload, sys.stdout)
        return 0
    for site in sites:
        gpu = site.gpu
        print(f"{site.name} ({site.facility})")
        print(f"  host : {site.cpu.name}, {site.cpu.cores_per_node} cores/node")
        print(
            f"  gpu  : {site.devices_per_node} x {gpu.name} "
            f"({gpu.peak_fp64_gflops / 1000:.1f} TF FP64, {gpu.hbm_bw_gbs:.0f} GB/s HBM)"
        )
        print(f"  build: {site.compiler.name} {site.compiler.version}; "
              f"models: {', '.join(site.models)}")
        print(f"  break-even: {site.acceleration_threshold:.1f}x per device")
    return 0


def _cmd_analyze(args) -> int:
    from pathlib import Path

    from repro.analysis import Baseline
    from repro.analysis.engine import AnalysisConfig, analyze_repo

    config = AnalysisConfig(grid=args.grid, max_traffic_ratio=args.max_traffic_ratio)
    report = analyze_repo(config)

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    if args.write_baseline:
        Baseline.from_findings(
            report.findings, reason="accepted at baseline creation"
        ).save(baseline_path)
        print(f"wrote {len(report.findings)} suppression(s) to {baseline_path}")
        return 0
    if not args.no_baseline and (args.baseline or baseline_path.exists()):
        report.apply_baseline(Baseline.load(baseline_path))

    if args.json:
        from repro.utils.jsonio import dump_json

        dump_json(report.to_dict(), sys.stdout)
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` (default: process args) and dispatch."""
    args = build_parser().parse_args(argv)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "fit":
        return _cmd_fit(args)
    if args.command == "census":
        return _cmd_census(args)
    if args.command == "sites":
        return _cmd_sites(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "version":
        from repro.version import __version__

        print(__version__)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
