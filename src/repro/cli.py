"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``study``
    Regenerate the paper's tables and figures (model vs paper).
``fit``
    Reconstruct a synthetic time slice and optionally write a g-file.
``census``
    Print the directive census (Tables 4/5).
``sites``
    Describe the modeled machines.
``analyze``
    Run the portability linter — directive, hot-path, precision-flow
    and concurrency-lifecycle rule families (``--family`` selects a
    subset, ``--sarif`` exports CI annotations).
``trace``
    Run one traced workload and write a Chrome-trace JSON (plus an
    optional JSONL record stream).
``bench``
    Run the wall-clock benchmark suite; ``--gate`` compares medians
    against a committed baseline and exits nonzero on regression.
``operators``
    Compare the structured edge-flux operators against the dense
    ground truth at one grid size; ``--check`` turns the printed
    max-abs-error into a bounded drift gate (the nightly 257^2 step).
``pfleet``
    Shard a multi-slice reconstruction across worker processes through
    the :mod:`repro.parallel` scheduler; optionally write the merged
    per-worker Chrome trace and compare against the serial engine.
``serve``
    Stream concurrent synthetic shot streams through the real-time
    reconstruction service (:mod:`repro.serve`): per-slice deadlines,
    warm-started Picard solves, backpressure and ``serve.*`` metrics;
    ``--check`` turns the run into the serve-smoke CI gate.

``census``, ``sites``, ``analyze`` and ``bench`` accept ``--json`` and
share one emitter (:mod:`repro.utils.jsonio`) so their machine-readable
output has a single formatting contract.

Exit codes: 0 success; 1 failed ``--check`` gate (``operators`` drift,
``serve`` smoke); 2 environment/usage error (missing baseline,
unwritable output path); 3 benchmark-gate regression; 4 quarantined
parallel jobs.  argparse itself exits 2 on unknown commands/flags.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser", "DEFAULT_BASELINE"]

#: Baseline file ``repro analyze`` picks up from the working directory
#: when ``--baseline``/``--no-baseline`` are not given.
DEFAULT_BASELINE = "analysis-baseline.json"

#: Edge-operator method names, duplicated from
#: :data:`repro.efit.operators.EDGE_METHODS` so ``build_parser`` stays
#: import-light (the operators module pulls in numpy/scipy); a CLI test
#: pins the two lists equal.
_EDGE_METHODS = ("dense", "toeplitz", "lowrank", "toeplitz-fp32", "lowrank-fp32")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    # The scenario registry is import-light (no numpy / no efit tables):
    # the choice lists below come straight from it, so an unknown
    # --scenario fails argparse-style — exit 2 with the full list.
    from repro.scenarios import DEFAULT_SCENARIO, scenario_names

    scenarios = scenario_names()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EFIT GPU performance-portability study, reproduced.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_study = sub.add_parser("study", help="regenerate the paper's tables and figures")
    p_study.add_argument(
        "--artifact",
        choices=["all", "table1", "table2", "table4", "table5", "table6", "table7",
                 "fig1", "fig4", "fig5", "fig6", "fig7"],
        default="all",
        help="which artifact to print (default: all)",
    )
    p_study.add_argument(
        "--grids",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="grid sizes to sweep (default: 65 129 257 513)",
    )

    p_fit = sub.add_parser("fit", help="reconstruct a synthetic time slice")
    p_fit.add_argument(
        "--scenario",
        choices=scenarios,
        default=DEFAULT_SCENARIO,
        help=f"registered machine/shot scenario (default {DEFAULT_SCENARIO})",
    )
    p_fit.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_fit.add_argument("--noise", type=float, default=1e-3, help="measurement noise")
    p_fit.add_argument("--solver", default="dst",
                       choices=["direct", "dst", "cyclic", "cg"],
                       help="interior GS solver")
    p_fit.add_argument(
        "--boundary-method", choices=_EDGE_METHODS, default="dense",
        help="edge-flux operator representation (default dense)",
    )
    p_fit.add_argument("--geqdsk", metavar="PATH", default=None,
                       help="write the result as a g-EQDSK file")
    p_fit.add_argument("--afile", metavar="PATH", default=None,
                       help="write the scalar results as an a-file")

    p_census = sub.add_parser("census", help="print the directive census (Tables 4/5)")
    p_census.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    p_sites = sub.add_parser("sites", help="describe the modeled machines")
    p_sites.add_argument("--json", action="store_true", help="emit JSON instead of text")

    p_an = sub.add_parser(
        "analyze",
        help="run the portability linter over the registered kernels and hot paths",
    )
    p_an.add_argument("--json", action="store_true", help="emit findings as JSON")
    p_an.add_argument(
        "--family",
        action="append",
        choices=["directives", "hotpath", "precision", "lifecycle"],
        default=None,
        metavar="NAME",
        help="run only this rule family (repeatable; default: all four)",
    )
    p_an.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="also write a SARIF 2.1.0 log here (CI annotation artifact)",
    )
    p_an.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors",
    )
    p_an.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"suppression baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    p_an.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    p_an.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    p_an.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_an.add_argument(
        "--boundary-method", choices=_EDGE_METHODS, default="dense",
        help="edge-operator representation the directive registry prices "
        "(default dense)",
    )
    p_an.add_argument(
        "--max-traffic-ratio",
        type=float,
        default=2.0,
        help="excess-traffic threshold as modeled/streaming bytes (default 2.0)",
    )

    p_tr = sub.add_parser(
        "trace",
        help="run one traced workload and write a Chrome trace",
    )
    p_tr.add_argument(
        "case",
        choices=["g186610", "solovev", "batch", "offload"],
        help="workload: serial reconstruction (g186610/solovev), the "
        "batched engine, or the modeled GPU pflux_",
    )
    p_tr.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_tr.add_argument(
        "--out", metavar="PATH", default="trace.json",
        help="Chrome-trace output file (default trace.json)",
    )
    p_tr.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="also write the flat JSONL record stream here",
    )

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark suite; --gate fails on regression vs baseline",
    )
    p_bench.add_argument(
        "--gate", action="store_true",
        help="compare against the baseline; exit 3 on regression",
    )
    p_bench.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file (default: bench-baseline.json)",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional slowdown (default: the baseline's own, else 0.5)",
    )
    p_bench.add_argument(
        "--write-baseline", action="store_true",
        help="run the suite and (over)write the baseline file",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=5,
        help="timed samples per benchmark (median is kept; default 5)",
    )
    p_bench.add_argument(
        "--only", metavar="NAME", nargs="+", default=None,
        help="run only these benchmarks",
    )
    p_bench.add_argument("--json", action="store_true", help="emit results as JSON")
    p_bench.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the fresh results JSON here (CI artifact hook)",
    )

    p_pf = sub.add_parser(
        "pfleet",
        help="shard a multi-slice reconstruction across worker processes",
    )
    p_pf.add_argument(
        "case", nargs="?", choices=scenarios, default=None,
        help="scenario to reconstruct (positional form; default g186610)",
    )
    p_pf.add_argument(
        "--scenario",
        choices=scenarios,
        default=None,
        help="registered machine/shot scenario (same registry as the "
        "positional case; giving both conflicting forms is an error)",
    )
    p_pf.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_pf.add_argument("--workers", type=int, default=2, help="worker processes (default 2)")
    p_pf.add_argument("--slices", type=int, default=16, help="time slices (default 16)")
    p_pf.add_argument(
        "--batch", type=int, default=4,
        help="slices per job — the serial engine's batch_size (default 4)",
    )
    p_pf.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-job timeout in seconds (default 120)",
    )
    p_pf.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per crashed/timed-out job (default 2)",
    )
    p_pf.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the merged per-worker Chrome trace here",
    )
    p_pf.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the aggregated metrics snapshot here",
    )
    p_pf.add_argument(
        "--compare-serial", action="store_true",
        help="also run the serial BatchFitEngine and report speedup + equality",
    )
    p_pf.add_argument(
        "--boundary-method", choices=_EDGE_METHODS, default="dense",
        help="edge-flux operator the fleet stages in the shared arena "
        "(default dense)",
    )
    p_pf.add_argument(
        "--allow-failures", action="store_true",
        help="report quarantined jobs instead of aborting on them (still exits 4)",
    )

    p_sv = sub.add_parser(
        "serve",
        help="stream concurrent shot streams through the real-time service",
    )
    p_sv.add_argument(
        "--scenario",
        choices=scenarios,
        default=DEFAULT_SCENARIO,
        help=f"registered machine/shot scenario (default {DEFAULT_SCENARIO})",
    )
    p_sv.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_sv.add_argument(
        "--streams", type=int, default=4,
        help="concurrent shot streams (default 4)",
    )
    p_sv.add_argument(
        "--slices", type=int, default=8,
        help="frames per stream (default 8)",
    )
    p_sv.add_argument(
        "--deadline-ms", type=float, default=1000.0,
        help="per-slice solve budget in milliseconds; 0 disables "
        "deadline enforcement (default 1000)",
    )
    p_sv.add_argument(
        "--queue-depth", type=int, default=None,
        help="bounded per-stream frame queue; overflow sheds the oldest "
        "frame (default: slices, so the offline replay never sheds)",
    )
    p_sv.add_argument(
        "--executor-workers", type=int, default=None,
        help="solver thread pool size (default: number of streams, capped at 8)",
    )
    p_sv.add_argument(
        "--no-warm-start", action="store_true",
        help="solve every slice cold (A/B baseline for the warm savings)",
    )
    p_sv.add_argument(
        "--boundary-method", choices=_EDGE_METHODS, default="dense",
        help="edge-flux operator of the shared engine (default dense)",
    )
    p_sv.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the serve.* metrics snapshot (with summary) here",
    )
    p_sv.add_argument(
        "--compare-serial", action="store_true",
        help="re-run every stream through the serial solver with the same "
        "warm-start chaining and require bit-identical results",
    )
    p_sv.add_argument(
        "--check", action="store_true",
        help="exit 1 unless zero deadline misses and positive "
        "warm-start iteration savings (the serve-smoke CI gate)",
    )

    p_op = sub.add_parser(
        "operators",
        help="compare structured edge operators against the dense ground truth",
    )
    p_op.add_argument("--grid", type=int, default=65, help="grid size (default 65)")
    p_op.add_argument(
        "--method",
        choices=[m for m in _EDGE_METHODS if m != "dense"],
        action="append",
        default=None,
        metavar="NAME",
        help="structured method to compare (repeatable; default: all four)",
    )
    p_op.add_argument(
        "--vectors", type=int, default=4,
        help="random current vectors per comparison (default 4)",
    )
    p_op.add_argument(
        "--check", action="store_true",
        help="exit 1 when any method's relative error exceeds its bound",
    )
    p_op.add_argument(
        "--fp64-bound", type=float, default=1e-10,
        help="relative-error bound for exact-arithmetic methods (default 1e-10)",
    )
    p_op.add_argument(
        "--fp32-bound", type=float, default=1e-5,
        help="relative-error bound for fp32-refined methods (default 1e-5)",
    )
    p_op.add_argument("--json", action="store_true", help="emit results as JSON")

    sub.add_parser("version", help="print the package version")
    return parser


def _cmd_study(args) -> int:
    from repro.core import report
    from repro.core.study import PortabilityStudy
    from repro.machines.site import ALL_SITES

    kwargs = {}
    if args.grids:
        kwargs["grid_sizes"] = tuple(sorted(set(args.grids)))
    study = PortabilityStudy(ALL_SITES(), **kwargs)
    makers = {
        "table1": lambda: report.table1_report(study),
        "table2": lambda: report.table2_report(study),
        "table4": lambda: report.table4_5_report()[0],
        "table5": lambda: report.table4_5_report()[1],
        "table6": lambda: report.table6_report(study),
        "table7": lambda: report.table7_report(study),
        "fig1": lambda: report.fig1_report(study, n=study.grid_sizes[-1]),
        "fig4": lambda: report.fig4_report(),
        "fig5": lambda: report.fig5_report(study, n=study.grid_sizes[-1]),
        "fig6": lambda: report.fig6_report(study, n=study.grid_sizes[-1]),
        "fig7": lambda: report.fig7_report(study),
    }
    names = list(makers) if args.artifact == "all" else [args.artifact]
    for name in names:
        print(makers[name]().render())
        print()
    return 0


def _cmd_fit(args) -> int:
    import numpy as np

    from repro.efit import EfitSolver
    from repro.scenarios import get_scenario

    sc = get_scenario(args.scenario)
    shot = sc.make_shot(args.grid, noise=args.noise)
    solver = EfitSolver.for_scenario(
        sc, shot=shot, solver_name=args.solver, boundary_method=args.boundary_method
    )
    result = solver.fit(shot.measurements)
    err = float(np.abs(result.psi - shot.truth.psi).max() / np.ptp(shot.truth.psi))
    print(f"scenario: {sc.name} ({sc.description})")
    print(f"converged: {result.converged} after {result.iterations} iterations")
    print(f"chi^2 = {result.chi2:.1f} over {shot.measurements.n_measurements} measurements")
    print(f"Ip = {result.ip / 1e6:.4f} MA; flux error vs truth = {err:.2e}")
    b = result.boundary
    print(f"axis: R = {b.r_axis:.3f} m, Z = {b.z_axis:+.4f} m ({b.boundary_type})")
    expected = f"{sc.boundary_type}, {sc.n_xpoints} X-point(s)"
    if b.boundary_type != sc.boundary_type:
        print(f"warning: expected topology {expected}", file=sys.stderr)
    if args.geqdsk:
        from repro.efit.output import geqdsk_from_fit, write_geqdsk

        eq = geqdsk_from_fit(shot, result)
        write_geqdsk(eq, args.geqdsk)
        print(f"wrote {args.geqdsk}")
    if args.afile:
        from repro.efit.afile import afile_from_fit, write_afile

        write_afile(afile_from_fit(shot, result), args.afile)
        print(f"wrote {args.afile}")
    return 0


def _cmd_census(args) -> int:
    from repro.core.report import table4_5_report

    t4, t5 = table4_5_report()
    if args.json:
        from repro.utils.jsonio import dump_json, table_to_dict

        dump_json({"table4": table_to_dict(t4), "table5": table_to_dict(t5)}, sys.stdout)
        return 0
    print(t4.render())
    print()
    print(t5.render())
    return 0


def _cmd_sites(args) -> int:
    from repro.machines.site import ALL_SITES

    sites = ALL_SITES()
    if args.json:
        from repro.utils.jsonio import dump_json

        payload = [
            {
                "name": site.name,
                "facility": site.facility,
                "cpu": site.cpu.name,
                "gpu": site.gpu.name,
                "gpu_vendor": site.gpu.vendor,
                "devices_per_node": site.devices_per_node,
                "unified_memory": site.gpu.unified_memory,
                "compiler": f"{site.compiler.name} {site.compiler.version}",
                "models": list(site.models),
                "acceleration_threshold": site.acceleration_threshold,
            }
            for site in sites
        ]
        dump_json(payload, sys.stdout)
        return 0
    for site in sites:
        gpu = site.gpu
        print(f"{site.name} ({site.facility})")
        print(f"  host : {site.cpu.name}, {site.cpu.cores_per_node} cores/node")
        print(
            f"  gpu  : {site.devices_per_node} x {gpu.name} "
            f"({gpu.peak_fp64_gflops / 1000:.1f} TF FP64, {gpu.hbm_bw_gbs:.0f} GB/s HBM)"
        )
        print(f"  build: {site.compiler.name} {site.compiler.version}; "
              f"models: {', '.join(site.models)}")
        print(f"  break-even: {site.acceleration_threshold:.1f}x per device")
    return 0


def _cmd_analyze(args) -> int:
    from pathlib import Path

    from repro.analysis import Baseline
    from repro.analysis.engine import ALL_FAMILIES, AnalysisConfig, analyze_repo
    from repro.errors import AnalysisError

    families = tuple(dict.fromkeys(args.family)) if args.family else ALL_FAMILIES
    config = AnalysisConfig(
        grid=args.grid,
        boundary_method=args.boundary_method,
        max_traffic_ratio=args.max_traffic_ratio,
        families=families,
    )
    report = analyze_repo(config)

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    if args.write_baseline:
        # Regeneration preserves curated reasons for surviving entries
        # and prunes the stale ones.
        previous = None
        if baseline_path.exists():
            try:
                previous = Baseline.load(baseline_path)
            except AnalysisError:
                previous = None  # damaged file: regenerate from scratch
        try:
            Baseline.from_findings(
                report.findings,
                reason="accepted at baseline creation",
                previous=previous,
            ).save(baseline_path)
        except OSError as exc:
            print(f"error: cannot write baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {len(report.findings)} suppression(s) to {baseline_path}")
        return 0
    if not args.no_baseline and (args.baseline or baseline_path.exists()):
        try:
            report.apply_baseline(Baseline.load(baseline_path))
        except AnalysisError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if report.complete:
            for fp, reason in sorted(report.stale_suppressions.items()):
                note = f" ({reason})" if reason else ""
                print(
                    f"warning: stale baseline suppression matches nothing: "
                    f"{fp}{note} — regenerate with --write-baseline",
                    file=sys.stderr,
                )

    if args.sarif:
        from repro.analysis.sarif import write_sarif

        try:
            write_sarif(report, args.sarif)
        except OSError as exc:
            print(f"error: cannot write {args.sarif}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote SARIF log {args.sarif}", file=sys.stderr)

    if args.json:
        from repro.utils.jsonio import dump_json

        dump_json(report.to_dict(), sys.stdout)
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def _cmd_trace(args) -> int:
    from repro.obs import (
        TraceHooks,
        TraceRecorder,
        chrome_trace,
        region_totals,
        write_chrome_trace,
        write_jsonl,
    )

    recorder = TraceRecorder()
    hooks = TraceHooks(recorder)
    profiler_totals: dict[str, float] = {}

    if args.case == "offload":
        from repro.compilers.flags import parse_flags
        from repro.core.offload import PfluxOffloadModel
        from repro.machines.site import perlmutter

        site = perlmutter()
        model = site.models[0]
        build = site.compiler.configure(
            parse_flags(site.flags(model)), site.env, site.gpu
        )
        offload = PfluxOffloadModel(args.grid, args.grid, build, hooks=hooks)
        offload.invoke()  # staging pass
        offload.invoke()  # steady state
        label = f"{site.name}-{model}@{args.grid}x{args.grid}"
    elif args.case == "batch":
        from repro.batch import BatchFitEngine, synthetic_slice_sequence
        from repro.efit.measurements import synthetic_shot_186610

        shot = synthetic_shot_186610(args.grid)
        slices = synthetic_slice_sequence(shot, 8, seed=3)
        engine = BatchFitEngine(
            shot.machine, shot.diagnostics, shot.grid, batch_size=8, hooks=hooks
        )
        engine.fit_many(slices)
        report = engine.profiler_report()
        profiler_totals = dict(report.totals)
        label = f"{shot.label} x{len(slices)} slices"
    else:
        from repro.efit.fitting import EfitSolver
        from repro.efit.measurements import (
            synthetic_shot_186610,
            synthetic_solovev_shot,
        )

        shot = (
            synthetic_shot_186610(args.grid)
            if args.case == "g186610"
            else synthetic_solovev_shot(args.grid)
        )
        solver = EfitSolver(shot.machine, shot.diagnostics, shot.grid, hooks=hooks)
        result = solver.fit(shot.measurements)
        profiler_totals = dict(solver.profiler.report().totals)
        label = f"{shot.label}: {result.iterations} iterations, chi^2 {result.chi2:.1f}"

    try:
        write_chrome_trace(recorder, args.out, process_name=f"repro:{args.case}")
        if args.jsonl:
            write_jsonl(recorder, args.jsonl)
    except OSError as exc:
        print(f"error: cannot write trace: {exc}", file=sys.stderr)
        return 2

    n_spans = len([r for r in recorder.records if hasattr(r, "duration")])
    n_events = len(list(recorder.events()))
    print(f"{label}")
    print(f"wrote {args.out}: {n_spans} spans, {n_events} events")
    if args.jsonl:
        print(f"wrote {args.jsonl}")
    category = "kernel" if args.case == "offload" else "region"
    trace_totals = region_totals(chrome_trace(recorder), category=category)
    if trace_totals:
        print(f"exclusive totals by {category} [s]:")
        for name in sorted(trace_totals, key=trace_totals.get, reverse=True):
            line = f"  {name:<14} {trace_totals[name]:12.6f}"
            if name in profiler_totals and profiler_totals[name] > 0:
                ratio = trace_totals[name] / profiler_totals[name]
                line += f"   (profiler {profiler_totals[name]:.6f}, x{ratio:.4f})"
            print(line)
    return 0


def _cmd_bench(args) -> int:
    import os

    from repro.errors import BenchGateError, ObservabilityError
    from repro.obs.bench import (
        DEFAULT_BASELINE_NAME,
        DEFAULT_TOLERANCE,
        LARGE_ENV,
        evaluate_gate,
        large_case_names,
        load_baseline,
        render_gate_table,
        results_payload,
        run_benchmarks,
        save_baseline,
    )

    baseline_path = args.baseline if args.baseline else DEFAULT_BASELINE_NAME
    try:
        results = run_benchmarks(args.only, repeats=args.repeats)
    except (BenchGateError, ObservabilityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.out:
        from repro.utils.jsonio import dump_json

        try:
            with open(args.out, "w") as fh:
                dump_json(results_payload(results), fh)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        try:
            save_baseline(results, baseline_path, tolerance=tolerance)
        except OSError as exc:
            print(f"error: cannot write baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {baseline_path}: {len(results)} benchmark(s), tolerance {tolerance}")
        return 0

    if args.json:
        from repro.utils.jsonio import dump_json

        dump_json(results_payload(results), sys.stdout)
    else:
        for name, r in results.items():
            print(f"{name:<22} {r.median_seconds * 1e3:10.3f} ms  (group {r.group})")

    if not args.gate:
        return 0
    # The gate compares exactly the subset this invocation ran: --only
    # names when given, else every baseline entry except the large cases
    # (which the default run skips and the bench-gate-large lane covers).
    try:
        baseline = load_baseline(baseline_path)
        gate_names = args.only
        if gate_names is None and os.environ.get(LARGE_ENV, "").strip() in ("", "0"):
            # Subset from the *baseline* (not the run): a case deleted
            # from the registry but still committed keeps failing loudly.
            skip = set(large_case_names())
            gate_names = [n for n in baseline["benchmarks"] if n not in skip] or None
        outcomes, all_ok = evaluate_gate(
            results, baseline, tolerance=args.tolerance, names=gate_names
        )
    except BenchGateError as exc:
        # Print whatever partial ratio table exists even on the exit-2
        # path — diagnosing a broken gate without the numbers is worse.
        if getattr(exc, "outcomes", ()):
            print(render_gate_table(exc.outcomes))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The ratio table prints on success too: a green gate whose margins
    # are quietly eroding is exactly what the per-commit table catches.
    print(render_gate_table(outcomes))
    if not all_ok:
        print("benchmark gate: REGRESSION detected", file=sys.stderr)
        return 3
    worst = max(outcomes, key=lambda o: o.ratio, default=None)
    if worst is not None:
        print(
            f"benchmark gate: ok ({len(outcomes)} case(s), "
            f"worst ratio x{worst.ratio:.2f} on {worst.name})"
        )
    else:
        print("benchmark gate: ok")
    return 0


def _cmd_operators(args) -> int:
    import numpy as np

    from repro.efit.grid import RZGrid
    from repro.efit.operators import EDGE_METHODS, build_edge_operator
    from repro.efit.tables import cached_boundary_tables
    from repro.errors import OperatorError

    if args.grid < 5 or args.vectors < 1:
        print("error: --grid must be >= 5 and --vectors >= 1", file=sys.stderr)
        return 2
    methods = (
        tuple(dict.fromkeys(args.method))
        if args.method
        else tuple(m for m in EDGE_METHODS if m != "dense")
    )
    grid = RZGrid(args.grid, args.grid)
    tables = cached_boundary_tables(grid)
    try:
        dense = build_edge_operator(tables, "dense")
        rng = np.random.default_rng(7)
        x = rng.normal(size=(grid.size, args.vectors))
        ref = dense.apply(x)
        scale = float(np.max(np.abs(ref)))
        rows = []
        for method in methods:
            op = build_edge_operator(tables, method)
            err = float(np.max(np.abs(op.apply(x) - ref)))
            rel = err / scale
            bound = args.fp32_bound if method.endswith("-fp32") else args.fp64_bound
            rows.append(
                {
                    "method": method,
                    "variant": op.variant_tag,
                    "nbytes": op.nbytes,
                    "compression": dense.nbytes / op.nbytes if op.nbytes else 0.0,
                    "max_abs_error": err,
                    "rel_error": rel,
                    "bound": bound,
                    "ok": rel <= bound,
                }
            )
    except OperatorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        from repro.utils.jsonio import dump_json

        dump_json(
            {
                "grid": args.grid,
                "dense_nbytes": dense.nbytes,
                "vectors": args.vectors,
                "methods": rows,
            },
            sys.stdout,
        )
    else:
        print(
            f"edge operators @ {args.grid}x{args.grid}: dense matrix "
            f"{dense.nbytes / 1e6:.1f} MB, {args.vectors} probe vector(s)"
        )
        for row in rows:
            verdict = "ok  " if row["ok"] else "FAIL"
            print(
                f"{verdict} {row['method']:<14} {row['nbytes'] / 1e6:8.1f} MB "
                f"(x{row['compression']:.1f} smaller)  "
                f"max-abs-error {row['max_abs_error']:.3e}  "
                f"rel {row['rel_error']:.3e}  (bound {row['bound']:.1e})"
            )
    failed = [row["method"] for row in rows if not row["ok"]]
    if failed and args.check:
        print(
            f"operator drift check: FAIL ({', '.join(failed)} beyond bound)",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print(f"operator drift check: ok ({len(rows)} method(s))")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    import numpy as np

    from repro.batch import BatchFitEngine, synthetic_slice_sequence
    from repro.errors import ServeError
    from repro.scenarios import get_scenario
    from repro.serve import Frame, ReconstructionService, ServeConfig, ServeMetrics

    if args.streams < 1 or args.slices < 1 or args.grid < 17:
        print(
            "error: --streams and --slices must be >= 1, --grid >= 17",
            file=sys.stderr,
        )
        return 2
    if args.deadline_ms < 0:
        print("error: --deadline-ms must be >= 0", file=sys.stderr)
        return 2
    sc = get_scenario(args.scenario)
    shot = sc.make_shot(args.grid)
    engine = BatchFitEngine.for_scenario(
        sc, shot=shot, boundary_method=args.boundary_method
    )
    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms > 0 else None
    config = ServeConfig(
        deadline_s=deadline_s,
        queue_depth=args.queue_depth if args.queue_depth else args.slices,
        max_streams=args.streams,
        warm_start=not args.no_warm_start,
        executor_workers=(
            args.executor_workers
            if args.executor_workers
            else min(args.streams, 8)
        ),
    )
    metrics = ServeMetrics()
    service = ReconstructionService(engine, config=config, metrics=metrics)
    # One synthetic measurement sequence per stream (distinct noise
    # seeds): K shots' worth of frames replayed concurrently.
    frames = {
        f"{sc.name}-{k}": synthetic_slice_sequence(
            shot, args.slices, seed=3 + k
        )
        for k in range(args.streams)
    }
    print(
        f"serve {sc.name}@{args.grid}x{args.grid}: {args.streams} stream(s) x "
        f"{args.slices} slice(s), deadline "
        f"{'off' if deadline_s is None else f'{1e3 * deadline_s:.0f} ms'}, "
        f"warm start {'off' if args.no_warm_start else 'on'}"
    )

    async def replay():
        async with service as svc:
            for sid in frames:
                await svc.open_stream(sid)
            # Interleave submissions across streams (round-robin), the
            # arrival order a multi-shot acquisition system produces.
            for i in range(args.slices):
                for sid, slices in frames.items():
                    await svc.submit(
                        sid, Frame(stream_id=sid, index=i, measurements=slices[i])
                    )
            return await svc.stop()

    try:
        summaries = asyncio.run(replay())
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for sid, summary in summaries.items():
        iters = ",".join(str(r.iterations) for r in summary.reports)
        print(
            f"  {sid}: {len(summary.reports)} slice(s), iterations [{iters}], "
            f"{summary.warm_slices} warm, {summary.deadline_misses} deadline "
            f"miss(es), {summary.frames_shed} shed"
        )
    s = metrics.summary()
    print(
        f"latency p50/p95/p99: {1e3 * s['latency_p50_s']:.1f} / "
        f"{1e3 * s['latency_p95_s']:.1f} / {1e3 * s['latency_p99_s']:.1f} ms; "
        f"deadline misses: {s['deadline_misses']:.0f}/{s['slices']:.0f}; "
        f"frames shed: {s['frames_shed']:.0f}"
    )
    print(
        f"iterations to converge: cold {s['cold_iterations_mean']:.1f} "
        f"({s['cold_slices']} slice(s)) vs warm {s['warm_iterations_mean']:.1f} "
        f"({s['warm_slices']} slice(s)) -> savings "
        f"{s['warm_iteration_savings']:.1f} iteration(s)/slice"
    )

    if args.metrics_out:
        from repro.utils.jsonio import dump_json

        try:
            with open(args.metrics_out, "w") as fh:
                dump_json(metrics.to_dict(), fh)
        except OSError as exc:
            print(f"error: cannot write {args.metrics_out}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote metrics {args.metrics_out}")

    if args.compare_serial:
        # Replay every stream through the plain serial solver with the
        # *same* warm-start chaining decisions the service made; every
        # slice that ran to convergence under its deadline must be
        # bit-identical.
        solver = engine.solver
        compared = mismatched = 0
        for sid, summary in summaries.items():
            prev_psi = prev_coeffs = None
            for report, m in zip(summary.reports, frames[sid]):
                serial = solver.fit(
                    m,
                    psi_initial=prev_psi,
                    coeffs_initial=prev_coeffs,
                    require_convergence=False,
                )
                if report.converged:
                    compared += 1
                    if not (
                        np.array_equal(serial.psi, report.result.psi)
                        and serial.chi2 == report.result.chi2
                    ):
                        mismatched += 1
                    prev_psi, prev_coeffs = (
                        serial.psi,
                        serial.history[-1].coefficients,
                    )
                else:
                    prev_psi = prev_coeffs = None
        print(
            f"serial comparison: {compared} converged slice(s) compared, "
            f"{mismatched} mismatch(es)"
        )
        if mismatched:
            print("error: served results diverged from the serial solver",
                  file=sys.stderr)
            return 4

    if args.check:
        savings_ok = args.no_warm_start or s["warm_iteration_savings"] > 0.0
        if s["deadline_misses"] or not savings_ok:
            print(
                "serve check: FAIL "
                f"({s['deadline_misses']:.0f} deadline miss(es), "
                f"savings {s['warm_iteration_savings']:.1f})",
                file=sys.stderr,
            )
            return 1
        print(
            f"serve check: ok (0 misses across {s['slices']:.0f} slices, "
            f"warm savings {s['warm_iteration_savings']:.1f} iteration(s)/slice)"
        )
    return 0


def _cmd_pfleet(args) -> int:
    import numpy as np

    from repro.batch import BatchFitEngine, synthetic_slice_sequence
    from repro.errors import JobQuarantinedError, ParallelError
    from repro.obs import TraceHooks, TraceRecorder
    from repro.parallel import ParallelFitEngine, SchedulerConfig
    from repro.parallel.merge import write_merged_chrome_trace
    from repro.scenarios import DEFAULT_SCENARIO, get_scenario
    from repro.utils.jsonio import dump_json

    if args.workers < 1 or args.slices < 1 or args.batch < 1:
        print("error: --workers, --slices and --batch must be >= 1", file=sys.stderr)
        return 2
    if args.case and args.scenario and args.case != args.scenario:
        print(
            f"error: conflicting scenarios {args.case!r} (positional) and "
            f"{args.scenario!r} (--scenario)",
            file=sys.stderr,
        )
        return 2
    sc = get_scenario(args.scenario or args.case or DEFAULT_SCENARIO)
    shot = sc.make_shot(args.grid)
    slices = synthetic_slice_sequence(shot, args.slices, seed=3)
    recorder = TraceRecorder()
    hooks = TraceHooks(recorder)
    config = SchedulerConfig(
        workers=args.workers,
        timeout_seconds=args.timeout,
        max_retries=args.max_retries,
    )
    print(
        f"pfleet {sc.name}@{args.grid}x{args.grid}: {args.slices} slices "
        f"across {args.workers} worker(s), {args.batch} slices/job"
    )
    failures = ()
    try:
        with ParallelFitEngine.for_scenario(
            sc,
            shot=shot,
            batch_size=args.batch,
            workers=args.workers,
            boundary_method=args.boundary_method,
            hooks=hooks,
            config=config,
        ) as engine:
            arena_mb = engine.arena.nbytes / 1e6
            print(f"table arena: {engine.arena.spec.shm_name} ({arena_mb:.1f} MB shared)")
            try:
                result = engine.fit_many(slices, allow_failures=args.allow_failures)
            except JobQuarantinedError as exc:
                for f in exc.failures:
                    print(
                        f"quarantined job {f.index}: {f.reason} after "
                        f"{f.attempts} attempt(s)",
                        file=sys.stderr,
                    )
                print(f"error: {exc}", file=sys.stderr)
                return 4
            failures = result.failures
            print(result.stats.summary())
            counters = engine.scheduler.counters
            print(
                f"scheduler: {counters.completed} completed, {counters.retries} retries, "
                f"{counters.crashes} crashes, {counters.timeouts} timeouts, "
                f"{counters.quarantined} quarantined, "
                f"{counters.worker_restarts} worker restart(s)"
            )
            for report in result.worker_reports:
                print(
                    f"  worker {report.worker} (pid {report.pid}): "
                    f"{report.jobs_done} job(s), {len(report.records)} trace record(s)"
                )
            if args.trace_out:
                try:
                    write_merged_chrome_trace(
                        result.worker_reports, args.trace_out, parent=recorder
                    )
                except OSError as exc:
                    print(f"error: cannot write {args.trace_out}: {exc}", file=sys.stderr)
                    return 2
                print(f"wrote merged trace {args.trace_out}")
            if args.metrics_out:
                try:
                    with open(args.metrics_out, "w") as fh:
                        dump_json(engine.merged_metrics(), fh)
                except OSError as exc:
                    print(f"error: cannot write {args.metrics_out}: {exc}", file=sys.stderr)
                    return 2
                print(f"wrote merged metrics {args.metrics_out}")
            if args.compare_serial:
                serial = BatchFitEngine.for_scenario(
                    sc, shot=shot, batch_size=args.batch,
                    boundary_method=args.boundary_method,
                )
                serial_result = serial.fit_many(slices)
                identical = len(result.results) == len(serial_result.results) and all(
                    np.array_equal(a.psi, b.psi) and a.chi2 == b.chi2
                    for a, b in zip(result.results, serial_result.results)
                )
                speedup = serial_result.stats.wall_seconds / result.wall_seconds
                print(
                    f"serial engine: {serial_result.stats.wall_seconds:.3f} s -> "
                    f"speedup x{speedup:.2f}, bit-identical: {identical}"
                )
                if not identical:
                    print("error: parallel merge diverged from serial", file=sys.stderr)
                    return 4
    except ParallelError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if failures:
        for f in failures:
            print(
                f"quarantined job {f.index}: {f.reason} after {f.attempts} attempt(s)",
                file=sys.stderr,
            )
        return 4
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` (default: process args) and dispatch."""
    args = build_parser().parse_args(argv)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "fit":
        return _cmd_fit(args)
    if args.command == "census":
        return _cmd_census(args)
    if args.command == "sites":
        return _cmd_sites(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "operators":
        return _cmd_operators(args)
    if args.command == "pfleet":
        return _cmd_pfleet(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "version":
        from repro.version import __version__

        print(__version__)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
