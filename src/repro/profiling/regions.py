"""Named-region profiler for the ``fit_`` subroutine breakdowns.

The paper instruments ``fit_`` with ``omp_get_wtime()`` around its four
principal callees (``green_``, ``current_``, ``pflux_``, ``steps_``) and
plots the relative shares as pie charts (Figures 1 and 6).
:class:`RegionProfiler` does the same for our solver: regions nest, repeat
and accumulate; :meth:`RegionProfiler.report` yields totals, call counts
and percentage shares ready for the figure harnesses.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.profiling.timer import Clock, WallClock

__all__ = ["RegionProfiler", "RegionReport"]


@dataclass
class _RegionStats:
    total: float = 0.0
    calls: int = 0


@dataclass(frozen=True)
class RegionReport:
    """Immutable snapshot of the profiler state."""

    totals: dict[str, float]
    calls: dict[str, int]

    @property
    def grand_total(self) -> float:
        return sum(self.totals.values())

    def fraction(self, name: str) -> float:
        """Share of ``name`` in the grand total (0 when nothing recorded)."""
        total = self.grand_total
        if total <= 0.0:
            return 0.0
        return self.totals.get(name, 0.0) / total

    def percentages(self) -> dict[str, float]:
        """Region -> percentage of the grand total, the pie-chart data."""
        total = self.grand_total
        if total <= 0.0:
            return {name: 0.0 for name in self.totals}
        return {name: 100.0 * t / total for name, t in self.totals.items()}

    def time_per_call(self, name: str) -> float:
        calls = self.calls.get(name, 0)
        if calls == 0:
            return 0.0
        return self.totals[name] / calls


class RegionProfiler:
    """Accumulates exclusive time per named region on an injectable clock.

    Regions may nest; time spent in an inner region is *excluded* from the
    enclosing one (exclusive timing), matching how the paper attributes
    ``fit_`` time to its callees plus an ``other`` remainder.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self._stats: dict[str, _RegionStats] = {}
        # (name, inner time to subtract, start timestamp)
        self._stack: list[tuple[str, float, float]] = []

    def begin(self, name: str, now: float | None = None) -> None:
        """Open a region at ``now`` (default: read the clock).

        The explicit-timestamp form lets a co-instrumenting recorder (see
        :class:`~repro.obs.hooks.TraceHooks`) share one clock read with
        the profiler, so both report identical region totals.
        """
        if now is None:
            now = self.clock.now()
        self._stack.append((name, 0.0, now))

    def end(self, now: float | None = None) -> None:
        """Close the innermost open region at ``now`` and account it."""
        if not self._stack:
            raise ValueError("RegionProfiler.end() without a matching begin()")
        if now is None:
            now = self.clock.now()
        name, inner, start = self._stack.pop()
        elapsed = now - start
        stats = self._stats.setdefault(name, _RegionStats())
        stats.total += elapsed - inner
        stats.calls += 1
        if self._stack:
            outer_name, outer_inner, outer_start = self._stack[-1]
            self._stack[-1] = (outer_name, outer_inner + elapsed, outer_start)

    @contextmanager
    def region(self, name: str):
        self.begin(name)
        try:
            yield
        finally:
            self.end()

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record time directly (used by the simulated executors)."""
        if seconds < 0.0:
            raise ValueError("negative region time")
        stats = self._stats.setdefault(name, _RegionStats())
        stats.total += seconds
        stats.calls += calls

    def report(self) -> RegionReport:
        return RegionReport(
            totals={k: v.total for k, v in self._stats.items()},
            calls={k: v.calls for k, v in self._stats.items()},
        )

    def reset(self) -> None:
        self._stats.clear()
        self._stack.clear()
