"""Wall and virtual clocks behind one interface."""

from __future__ import annotations

import abc
import time

__all__ = ["Clock", "WallClock", "VirtualClock"]


class Clock(abc.ABC):
    """Monotonic seconds source."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds."""

    def advance(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` — a no-op on real clocks."""
        raise NotImplementedError(f"{type(self).__name__} cannot be advanced")


class WallClock(Clock):
    """``time.perf_counter`` — the ``omp_get_wtime()`` analog."""

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock(Clock):
    """A deterministic clock advanced explicitly by cost models.

    Every modeled kernel launch, page migration and host transfer calls
    :meth:`advance`; reading :meth:`now` at region boundaries produces
    simulated timings that are bit-reproducible across runs.
    """

    def __init__(self) -> None:
        self._t = 0.0

    def now(self) -> float:
        return self._t

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError(f"cannot advance a clock by {seconds} s")
        self._t += seconds

    def reset(self) -> None:
        self._t = 0.0
