"""Timing and counter instrumentation.

Two clocks coexist in this reproduction:

* a *wall clock* (:class:`WallClock`) wrapping ``time.perf_counter`` — the
  analog of the paper's ``omp_get_wtime()`` — used when really executing
  the Python kernels, and
* a *virtual clock* (:class:`VirtualClock`) advanced by the hardware cost
  models — used when simulating a run on Perlmutter / Frontier / Sunspot,
  so modeled results are exactly reproducible.

:class:`RegionProfiler` accumulates per-region time on either clock and
renders the ``fit_`` breakdowns of the paper's Figures 1 and 6.
"""

from repro.profiling.timer import Clock, WallClock, VirtualClock
from repro.profiling.regions import RegionProfiler, RegionReport

__all__ = [
    "Clock",
    "WallClock",
    "VirtualClock",
    "RegionProfiler",
    "RegionReport",
]
