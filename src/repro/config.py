"""Emulation of the job environment variables from Table 3 of the paper.

The paper's runs depend on a handful of environment variables —
``CRAY_ACC_USE_UNIFIED_MEM``, ``HSA_XNACK``, ``CRAY_MALLOPT_OFF`` and
``ZE_AFFINITY_MASK`` — that change runtime behaviour without touching the
code.  :class:`Environment` models that: an immutable-by-convention mapping
with typed accessors, plus the preset environments used on each system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "Environment",
    "perlmutter_env",
    "frontier_env",
    "sunspot_env",
]

# Variables the runtime model understands.  Anything else is carried but
# ignored, mirroring a real shell environment.
KNOWN_VARIABLES = frozenset(
    {
        "CRAY_ACC_USE_UNIFIED_MEM",
        "HSA_XNACK",
        "CRAY_MALLOPT_OFF",
        "ZE_AFFINITY_MASK",
        "OMP_NUM_THREADS",
    }
)

_TRUTHY = {"1", "true", "yes", "on"}


@dataclass(frozen=True)
class Environment:
    """A snapshot of environment variables for one run."""

    variables: Mapping[str, str] = field(default_factory=dict)

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.variables.get(name, default)

    def flag(self, name: str) -> bool:
        """Interpret a variable as a boolean flag (unset -> False)."""
        value = self.variables.get(name)
        if value is None:
            return False
        return value.strip().lower() in _TRUTHY

    def with_var(self, name: str, value: str) -> "Environment":
        """Return a copy with one variable set (functional update)."""
        merged = dict(self.variables)
        merged[name] = value
        return Environment(merged)

    def without_var(self, name: str) -> "Environment":
        merged = dict(self.variables)
        merged.pop(name, None)
        return Environment(merged)

    # -- semantic views used by the runtime model ---------------------------
    @property
    def unified_memory_requested(self) -> bool:
        """True when unified memory is enabled via environment.

        On Frontier this requires both ``CRAY_ACC_USE_UNIFIED_MEM`` and
        ``HSA_XNACK`` (the latter enables GPU page-fault retry on MI250X).
        """
        return self.flag("CRAY_ACC_USE_UNIFIED_MEM") and self.flag("HSA_XNACK")

    @property
    def cray_mallopt_off(self) -> bool:
        """True when the Cray default mallopt tuning is disabled."""
        return self.flag("CRAY_MALLOPT_OFF")


def perlmutter_env() -> Environment:
    """Perlmutter needs no special variables: ``-gpu=managed`` handles
    unified memory at compile time (Table 3)."""
    return Environment({})


def frontier_env(*, system_alloc: bool = True) -> Environment:
    """Frontier environment from Table 3.

    ``system_alloc=False`` models runs *without* ``CRAY_MALLOPT_OFF`` /
    ``-hsystem_alloc`` — the slow configuration of Figure 4.
    """
    variables = {
        "CRAY_ACC_USE_UNIFIED_MEM": "1",
        "HSA_XNACK": "1",
    }
    if system_alloc:
        variables["CRAY_MALLOPT_OFF"] = "1"
    return Environment(variables)


def sunspot_env() -> Environment:
    """Sunspot: one PVC stack selected via ``ZE_AFFINITY_MASK=0.0``;
    no unified memory is available (Section 4.2)."""
    return Environment({"ZE_AFFINITY_MASK": "0.0"})
