"""Concurrency-lifecycle rules: protocol checking over the parallel layer.

The shared-memory arena and the worker pool follow strict protocols
(``docs/PARALLEL.md``): an arena is *built* (or *attached*), its views
are *used*, the process-global table cache is *seeded* with them, and —
in exactly this order — the cache is *dropped* before the mapping is
*released/unlinked*.  PR 4 shipped a real segfault by violating the last
step: ``ParallelFitEngine.close()`` released the arena while the seeded
cache still held views over the unmapped pages.  That bug class is
invisible to tests that don't touch the freed view and to the
allocation/directive rules; this family catches it statically.

The checker is an intraprocedural abstract interpreter (shared core:
:mod:`repro.analysis.dataflow`) over every function of the parallel
modules, with a per-module fact pre-pass.  Arena handles move through a
three-state protocol lattice — ``live`` → ``closed`` → ``unlinked`` —
where ``unlink()`` after ``close()`` is legal (that *is* the teardown
order) but producing views from a closed or unlinked handle is not.

Rules (all documented in ``docs/ANALYSIS.md``):

``lifecycle-use-after-unlink``
    A view-producing call (``.tables()``, ``.edge_operator()``) on a
    handle that may already be closed/unlinked; **or** a
    ``.release(...)`` in a module that seeds the process-global table
    cache with no ``.drop(...)`` on any path before it — the exact PR 4
    use-after-unmap: the cache's views outlive the mapping and the next
    reader touches unmapped pages.
``lifecycle-attach-before-seed``
    A worker initialiser attaches an arena but constructs its engine
    before seeding the table cache with the shared view: the engine's
    table lookup silently rebuilds the O(N^3) table privately, paying
    the exact cost the arena exists to avoid.
``lifecycle-missing-drop``
    An arena created in a function neither escapes (returned / stored)
    nor is reliably cleaned up — on some path (typically the
    exceptional one) the handle is still live at exit, leaking the
    mapping.
``fork-unsafe-capture``
    A lambda, nested function, or live arena handle passed into a
    ``ProcessScheduler(...)`` / ``ctx.Process(...)`` construction:
    neither survives pickling under ``spawn``, and a bare handle would
    ship a process-private mapping instead of the picklable
    :class:`~repro.parallel.arena.ArenaSpec`.
``lifecycle-exit-before-flush``
    ``os._exit`` reachable while a queue this process has ``put()`` into
    has not been ``close()``d **and** ``join_thread()``ed: dying with
    the feeder thread mid-message wedges every other user of the queue
    (the fault-injection path in ``_worker_main`` shows the required
    sequence).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.dataflow import (
    BOTTOM,
    AbstractInterpreter,
    dotted_name,
)
from repro.analysis.findings import Finding, Location, Severity
from repro.errors import AnalysisError

__all__ = [
    "RULE_USE_AFTER_UNLINK",
    "RULE_ATTACH_BEFORE_SEED",
    "RULE_MISSING_DROP",
    "RULE_FORK_CAPTURE",
    "RULE_EXIT_FLUSH",
    "scan_lifecycle_source",
    "scan_lifecycle_paths",
]

RULE_USE_AFTER_UNLINK = "lifecycle-use-after-unlink"
RULE_ATTACH_BEFORE_SEED = "lifecycle-attach-before-seed"
RULE_MISSING_DROP = "lifecycle-missing-drop"
RULE_FORK_CAPTURE = "fork-unsafe-capture"
RULE_EXIT_FLUSH = "lifecycle-exit-before-flush"

#: Protocol states of an arena handle.
LIVE = "live"
CLOSED = "closed"
UNLINKED = "unlinked"

#: Callables whose result is a live arena handle, matched on the terminal
#: dotted component(s) of the callee.
_ATTACH_CONSTRUCTORS = ("attach_arena", "AttachedArena")
#: Methods that produce views over the mapped pages (illegal after
#: close/unlink).
_VIEW_METHODS = ("tables", "edge_operator")


def _is_arena_constructor(node: ast.expr) -> tuple[bool, bool]:
    """(is_constructor, is_attach) for the RHS of an assignment."""
    if not isinstance(node, ast.Call):
        return False, False
    dotted = dotted_name(node.func)
    if dotted is None:
        return False, False
    terminal = dotted.rsplit(".", 1)[-1]
    if terminal in _ATTACH_CONSTRUCTORS:
        return True, True
    if terminal == "acquire" or dotted.endswith("Arena.build"):
        return True, False
    return False, False


def _maximal_refs(node: ast.expr):
    """Yield (node, dotted) for each *maximal* Name/Attribute chain and
    each Lambda in ``node`` — sub-chains of a longer chain are not
    yielded (``self.arena.spec`` hides ``self.arena``)."""
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = dotted_name(node)
        if dotted is not None:
            yield node, dotted
            return
        # Chain broken by a call/subscript: recurse into children.
    if isinstance(node, ast.Lambda):
        yield node, "<lambda>"
        return
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            yield from _maximal_refs(child)


class _FunctionPrePass(ast.NodeVisitor):
    """One cheap pass before interpretation: queue receivers + escapes."""

    def __init__(self) -> None:
        #: Dotted receivers of ``.put(...)`` — queues this function feeds.
        self.queues: set[str] = set()
        #: Bare names whose value escapes the function (returned, yielded,
        #: or stored into a container/attribute) — ownership transferred.
        self.escaped: set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        if isinstance(node.func, ast.Attribute) and node.func.attr == "put":
            recv = dotted_name(node.func.value)
            if recv is not None:
                self.queues.add(recv)
        self.generic_visit(node)

    def _mark_names(self, node: ast.expr | None) -> None:
        if node is None:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                self.escaped.add(child.id)

    def visit_Return(self, node: ast.Return) -> None:  # noqa: N802
        self._mark_names(node.value)

    def visit_Yield(self, node: ast.Yield) -> None:  # noqa: N802
        self._mark_names(node.value)

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        if any(isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets):
            self._mark_names(node.value)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        pass  # nested scopes own their names

    visit_AsyncFunctionDef = visit_FunctionDef


class _LifecycleInterpreter(AbstractInterpreter):
    """Protocol checking of one function body."""

    def __init__(
        self,
        module: str,
        qualname: str,
        *,
        module_seeds_cache: bool,
        queues: set[str],
        escaped: set[str],
    ) -> None:
        super().__init__()
        self.module = module
        self.qualname = qualname
        self.module_seeds_cache = module_seeds_cache
        self.queues = queues
        self.escaped = escaped
        self.findings: list[Finding] = []
        #: Bare locals bound to a fresh handle here: name -> creation line.
        self.created: dict[str, int] = {}
        #: Names introduced by nested ``def`` in this scope (unpicklable
        #: under spawn when passed to a worker constructor).
        self._nested: set[str] = set()

    def _loc(self, node: ast.AST) -> Location:
        line = getattr(node, "lineno", None)
        return Location(module=self.module, qualname=self.qualname, line=line)

    def _emit(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
        fix: str,
        detail: str,
    ) -> None:
        self.findings.append(
            Finding(
                rule_id=rule,
                severity=severity,
                location=self._loc(node),
                message=message,
                fix_hint=fix,
                detail=detail,
            )
        )

    # -- transfer functions ---------------------------------------------------------
    def on_assign(self, target: str, value: ast.expr, node: ast.stmt) -> None:
        is_ctor, is_attach = _is_arena_constructor(value)
        if is_ctor:
            self.env[target] = frozenset({LIVE})
            if is_attach:
                self.env["%attached"] = frozenset({"yes"})
            if "." not in target:
                self.created.setdefault(target, getattr(node, "lineno", 0))
        elif target in self.env:
            del self.env[target]  # rebinding kills stale protocol facts

    def on_nested_def(self, node: ast.stmt) -> None:
        name = getattr(node, "name", None)
        if name:
            self._nested.add(name)

    def on_call(self, node: ast.Call) -> None:
        func = node.func
        dotted = dotted_name(func)
        if isinstance(func, ast.Attribute):
            method = func.attr
            recv = dotted_name(func.value)
            if recv is not None:
                self._method_call(node, method, recv)
            else:
                # Chained receiver (``boundary_table_cache().seed(...)``,
                # ``pop(key).unlink()``): no handle to track, but the
                # module-global cache facts still transfer.
                self._method_call(node, method, "<expr>", tracked=False)
        terminal = dotted.rsplit(".", 1)[-1] if dotted else None
        if dotted is not None and dotted.endswith("_exit"):
            self._check_exit(node)
        if terminal == "ProcessScheduler" or (
            isinstance(func, ast.Attribute) and func.attr == "Process"
        ):
            self._check_fork_site(node, terminal or "Process")
        if terminal is not None and terminal.endswith("Engine"):
            self._check_engine_ctor(node, terminal)

    def _method_call(
        self, node: ast.Call, method: str, recv: str, *, tracked: bool = True
    ) -> None:
        state = self.env.get(recv, BOTTOM) if tracked else BOTTOM
        if method in _VIEW_METHODS and (CLOSED in state or UNLINKED in state):
            dead = UNLINKED if UNLINKED in state else CLOSED
            self._emit(
                RULE_USE_AFTER_UNLINK,
                Severity.ERROR,
                node,
                f".{method}() on '{recv}' which may already be {dead}: the "
                f"view maps pages the segment no longer backs — reading them "
                f"is the PR 4 segfault",
                f"take the view before tearing '{recv}' down (or re-attach "
                f"from the spec)",
                f"{method}:{recv}",
            )
        if method == "close":
            if recv in self.env or recv in self.created:
                self.env[recv] = frozenset({CLOSED})
            if recv in self.queues:
                key = f"%flush:{recv}"
                self.env[key] = self.env.get(key, BOTTOM) | {CLOSED}
        elif method == "join_thread" and recv in self.queues:
            key = f"%flush:{recv}"
            self.env[key] = self.env.get(key, BOTTOM) | {"joined"}
        elif method == "unlink" and tracked:
            # unlink after close is the documented teardown order: legal.
            self.env[recv] = frozenset({UNLINKED})
        elif method == "drop":
            self.env["%dropped"] = frozenset({"done"})
        elif method == "seed":
            self.env["%seeded"] = frozenset({"done"})
        elif method == "release" and self.module_seeds_cache:
            if "done" not in self.env.get("%dropped", BOTTOM):
                self._emit(
                    RULE_USE_AFTER_UNLINK,
                    Severity.ERROR,
                    node,
                    f"'{recv}.release(...)' unlinks the arena in a module that "
                    f"seeds the process-global table cache, and no path "
                    f"through this function drops the cache first: the seeded "
                    f"views outlive the mapping and the next table lookup "
                    f"reads unmapped pages (the PR 4 use-after-unmap)",
                    "call boundary_table_cache().drop(grid) before "
                    f"'{recv}.release(...)'",
                    f"release:{recv}",
                )

    def _check_exit(self, node: ast.Call) -> None:
        for q in sorted(self.queues):
            flush = self.env.get(f"%flush:{q}", BOTTOM)
            if CLOSED in flush and "joined" in flush:
                continue
            self._emit(
                RULE_EXIT_FLUSH,
                Severity.ERROR,
                node,
                f"os._exit is reachable while queue '{q}' may have an "
                f"unflushed feeder thread: dying mid-message leaves the "
                f"queue's write lock held and wedges every other worker's "
                f"put() forever",
                f"call {q}.close() and {q}.join_thread() before os._exit",
                f"exit:{q}",
            )

    def _check_fork_site(self, node: ast.Call, kind: str) -> None:
        exprs = list(node.args) + [kw.value for kw in node.keywords]
        for expr in exprs:
            for ref_node, ref in _maximal_refs(expr):
                if ref == "<lambda>":
                    self._emit(
                        RULE_FORK_CAPTURE,
                        Severity.ERROR,
                        node,
                        f"lambda passed into {kind}(...): not picklable, so "
                        f"the pool breaks the moment start_method is 'spawn'",
                        "hoist the callable to module level",
                        f"{kind}:lambda",
                    )
                    continue
                bare = ref.split(".", 1)[0]
                if ref in self._nested or bare in self._nested:
                    self._emit(
                        RULE_FORK_CAPTURE,
                        Severity.ERROR,
                        node,
                        f"nested function '{ref}' passed into {kind}(...): "
                        f"not picklable under spawn (and closes over parent "
                        f"state under fork)",
                        f"move '{ref}' to module level with explicit "
                        f"arguments",
                        f"{kind}:{ref}",
                    )
                elif self.env.get(ref, BOTTOM) & {LIVE, CLOSED, UNLINKED}:
                    self._emit(
                        RULE_FORK_CAPTURE,
                        Severity.ERROR,
                        node,
                        f"arena handle '{ref}' passed into {kind}(...): the "
                        f"mapping is process-private — ship the picklable "
                        f"'{ref}.spec' and attach_arena() in the worker",
                        f"pass {ref}.spec instead of {ref}",
                        f"{kind}:{ref}",
                    )

    def _check_engine_ctor(self, node: ast.Call, terminal: str) -> None:
        if "yes" not in self.env.get("%attached", BOTTOM):
            return
        if "done" in self.env.get("%seeded", BOTTOM):
            return
        self._emit(
            RULE_ATTACH_BEFORE_SEED,
            Severity.WARNING,
            node,
            f"{terminal}(...) is constructed after attaching an arena but "
            f"before seeding the table cache with the shared view: the "
            f"engine's table lookup rebuilds the O(N^3) table privately, "
            f"paying the cost the arena exists to avoid",
            "seed boundary_table_cache() with arena.tables() before "
            "constructing the engine",
            f"ctor:{terminal}",
        )

    # -- end-of-function obligations -----------------------------------------------
    def finish(self, fn_node: ast.AST) -> None:
        for name, line in sorted(self.created.items()):
            if name in self.escaped:
                continue
            state = self.env.get(name, BOTTOM)
            if LIVE not in state:
                continue
            conditional = bool(state & {CLOSED, UNLINKED})
            self._emit(
                RULE_MISSING_DROP,
                Severity.WARNING,
                fn_node,
                (
                    f"arena handle '{name}' (created at line {line}) is only "
                    f"conditionally torn down: on some path — typically the "
                    f"exceptional one — it is still live at function exit, "
                    f"leaking the mapping"
                    if conditional
                    else f"arena handle '{name}' (created at line {line}) is "
                    f"neither closed/unlinked nor handed off: the mapping "
                    f"leaks when this function returns"
                ),
                f"tear '{name}' down in a finally block (or return it to a "
                f"caller that owns the lifecycle)",
                f"leak:{name}",
            )


class _LifecycleModuleScanner(ast.NodeVisitor):
    """Runs the interpreter over every function of one module."""

    def __init__(self, module: str, *, seeds_cache: bool) -> None:
        self.module = module
        self.seeds_cache = seeds_cache
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qualname = ".".join((*self._class_stack, node.name))
        prepass = _FunctionPrePass()
        for stmt in node.body:
            prepass.visit(stmt)
        interp = _LifecycleInterpreter(
            self.module,
            qualname,
            module_seeds_cache=self.seeds_cache,
            queues=prepass.queues,
            escaped=prepass.escaped,
        )
        interp.run(node.body)
        interp.finish(node)
        self.findings.extend(interp.findings)
        # Methods of nested classes still deserve scanning; plain nested
        # defs were already judged at their capture sites.
        for stmt in node.body:
            if isinstance(stmt, ast.ClassDef):
                self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        self._handle_function(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def _module_seeds_cache(tree: ast.Module) -> bool:
    """Does any call in this module seed the process-global table cache?"""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "seed"
        ):
            return True
    return False


def scan_lifecycle_source(source: str, module: str) -> list[Finding]:
    """Lifecycle rules over one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {module}: {exc}") from None
    scanner = _LifecycleModuleScanner(module, seeds_cache=_module_seeds_cache(tree))
    scanner.visit(tree)
    return scanner.findings


def scan_lifecycle_paths(paths, *, package_root: Path | None = None) -> list[Finding]:
    """Lifecycle rules over ``.py`` files or directories of them."""
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    findings: list[Finding] = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            if not f.exists():
                raise AnalysisError(f"cannot scan missing file {f}")
            module = (
                ".".join(("repro", *f.relative_to(package_root).with_suffix("").parts))
                if f.is_relative_to(package_root)
                else str(f)
            )
            findings.extend(scan_lifecycle_source(f.read_text(), module))
    return findings
