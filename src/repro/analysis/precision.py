"""Precision-flow rules: dtype-lattice inference over kernels and hot paths.

The ROADMAP's mixed-precision item (fp32 edge-flux/GEMM with fp64
refinement, the EXL-50U real-time recipe) only pays off if narrowing is
*deliberate*: a single fp64 operand silently promotes a whole fp32
pipeline back to double, a fp32 accumulator silently loses the digits the
refinement step was supposed to restore, and an atomics-based reduction
silently breaks the parallel fleet's bit-identity merge.  This family
makes each of those silent failure modes a :class:`Finding` before the
kernel runs.

Two inputs, one lattice.  Abstract values are frozensets of dtype names
(``float32``/``float64``...; see :func:`promote` for the join), shared
with the lifecycle family through :mod:`repro.analysis.dataflow`:

* **Registry IR** — every :class:`~repro.directives.ir.ArrayRef` carries
  a width (:attr:`~repro.directives.ir.ArrayRef.dtype_name`), reductions
  carry an optional
  :attr:`~repro.directives.ir.LoopNest.accumulator_bytes`, and each
  lowered :class:`~repro.runtime.kernel.ExecutionPlan` declares whether
  its reduction order is deterministic.
* **Hot-path AST** — the ``@hot_path`` functions the allocation pass
  already scans get a flow-sensitive dtype interpreter: dtypes enter
  through ``dtype=`` keywords, ``.astype`` and ``np.float32(...)``
  conversions, and propagate through assignments and arithmetic with
  NumPy's promotion semantics.

Rules (all documented in ``docs/ANALYSIS.md``):

``precision-mixed-gemm``
    A reduction kernel (IR) or a ``@``/``np.matmul``/``np.dot`` call
    (AST) mixes float32 and float64 operands: BLAS dispatches the mixed
    case to the fp64 path after converting the fp32 operand — all the
    bandwidth of fp32 storage, none of the speed.
``precision-silent-upcast``
    Mixed-width operands outside a declared reduction: every iteration
    pays a widening conversion nobody asked for (IR), or an arithmetic
    expression in a hot function promotes a float32 value to float64
    (AST).
``precision-unsafe-accumulate``
    float32 values folded into a float32 accumulator: O(n) rounding
    error growth with no fp64 refinement path.  Fires on IR reduction
    kernels whose operands are all fp32 without ``accumulator_bytes=8``,
    and on ``acc += x`` in a hot loop / ``np.sum(x)`` without ``dtype=``
    where both sides infer to float32.
``precision-nondet-reduction``
    A lowering combined this kernel's reduction partials in completion
    order (``deterministic_reduction=False``): run-to-run sums differ in
    the last bits, which breaks the fleet's bit-identical merge
    guarantee.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.dataflow import (
    BOTTOM,
    AbstractInterpreter,
    dotted_name,
)
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.hotpath import NUMPY_ALLOCATORS, _is_hot_decorator
from repro.directives.ir import AccessMode
from repro.directives.registry import KernelRegistry
from repro.errors import AnalysisError

__all__ = [
    "RULE_MIXED_GEMM",
    "RULE_SILENT_UPCAST",
    "RULE_UNSAFE_ACCUMULATE",
    "RULE_NONDET_REDUCTION",
    "F32",
    "F64",
    "promote",
    "check_registry_precision",
    "scan_precision_source",
    "scan_precision_paths",
]

RULE_MIXED_GEMM = "precision-mixed-gemm"
RULE_SILENT_UPCAST = "precision-silent-upcast"
RULE_UNSAFE_ACCUMULATE = "precision-unsafe-accumulate"
RULE_NONDET_REDUCTION = "precision-nondet-reduction"

F16 = "float16"
F32 = "float32"
F64 = "float64"

#: Width order of the promotion lattice (NumPy ``result_type`` on floats).
_WIDTH = {F16: 2, F32: 4, F64: 8}

#: NumPy namespace aliases (shared convention with the hot-path pass).
_NUMPY_NAMES = {"np", "numpy"}

#: Allocators whose default dtype is float64 when no ``dtype=`` is given.
_F64_DEFAULT_ALLOCATORS = frozenset(
    {"zeros", "empty", "ones", "full", "eye", "identity", "linspace", "arange"}
)

#: ``x_like`` constructors inherit the dtype of their first argument.
_LIKE_ALLOCATORS = frozenset({"zeros_like", "empty_like", "ones_like", "full_like"})

#: Dtype-preserving NumPy calls: result dtype = promotion of the args.
_DTYPE_PRESERVING = frozenset(
    {"matmul", "dot", "add", "subtract", "multiply", "maximum", "minimum",
     "abs", "absolute", "negative", "sqrt", "ascontiguousarray", "asarray"}
)

#: Calls that reduce their first argument (accumulator dtype matters).
_REDUCERS = frozenset({"sum", "dot", "einsum", "cumsum", "nansum"})


def promote(a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
    """NumPy ``result_type`` lifted to may-sets of dtype names.

    The empty set is *neutral*, not absorbing: ``f32_array * 2.0`` stays
    float32 under NumPy's value-based scalar rules, so an operand with no
    dtype information (a Python scalar, an untracked name) leaves the
    known side unchanged rather than poisoning it.
    """
    if not a:
        return b
    if not b:
        return a
    return frozenset(
        x if _WIDTH.get(x, 8) >= _WIDTH.get(y, 8) else y for x in a for y in b
    )


# ---------------------------------------------------------------------------
# Registry IR rules
# ---------------------------------------------------------------------------
def check_registry_precision(registry: KernelRegistry, *, sites=()) -> list[Finding]:
    """Precision rules over one kernel registry.

    ``sites`` (optional machine models) enables the
    ``precision-nondet-reduction`` check, which needs each site's
    compiler lowering to know the reduction order it produces.
    """
    findings: list[Finding] = []
    for kernel in registry:
        nest = kernel.nest
        loc = Location(subroutine=registry.subroutine, kernel=kernel.name)
        reads = [a for a in nest.arrays if a.mode is not AccessMode.WRITE]
        writes = [a for a in nest.arrays if a.mode is not AccessMode.READ]
        read_dtypes = {a.dtype_name for a in reads}
        mixed = F32 in read_dtypes and F64 in read_dtypes
        f32_reads = sorted(a.name for a in reads if a.dtype_name == F32)
        f64_reads = sorted(a.name for a in reads if a.dtype_name == F64)
        if nest.reductions:
            if mixed:
                findings.append(
                    Finding(
                        rule_id=RULE_MIXED_GEMM,
                        severity=Severity.ERROR,
                        location=loc,
                        message=(
                            f"reduction kernel mixes float32 operands "
                            f"({', '.join(f32_reads)}) with float64 operands "
                            f"({', '.join(f64_reads)}): BLAS/device GEMM converts "
                            f"the narrow side up-front, paying fp32 bandwidth with "
                            f"fp64 arithmetic"
                        ),
                        fix_hint=(
                            "store both operands at one width; for the "
                            "fp32-with-fp64-refinement pattern keep operands fp32 "
                            "and declare accumulator_bytes=8 on the nest"
                        ),
                        detail="reads:" + ",".join(f32_reads + f64_reads),
                    )
                )
            elif read_dtypes == {F32}:
                acc_bytes = nest.accumulator_bytes
                if acc_bytes is None or acc_bytes <= 4:
                    findings.append(
                        Finding(
                            rule_id=RULE_UNSAFE_ACCUMULATE,
                            severity=Severity.WARNING,
                            location=loc,
                            message=(
                                f"float32 operands are folded into float32 "
                                f"accumulators ({', '.join(nest.reductions)}) over "
                                f"{nest.total_iterations} iterations: rounding error "
                                f"grows O(n) with no fp64 refinement path"
                            ),
                            fix_hint=(
                                "declare accumulator_bytes=8 (accumulate in fp64, "
                                "store fp32) or add a compensated-summation pass"
                            ),
                            detail="acc:" + ",".join(nest.reductions),
                        )
                    )
            for site in sites:
                for model in site.models:
                    plan = site.compiler.lower(kernel, model, site.gpu)
                    if plan.deterministic_reduction:
                        continue
                    findings.append(
                        Finding(
                            rule_id=RULE_NONDET_REDUCTION,
                            severity=Severity.ERROR,
                            location=loc,
                            message=(
                                f"{model} lowering by {site.compiler.name} on "
                                f"{site.name} combines reduction partials "
                                f"({', '.join(nest.reductions)}) in completion order: "
                                f"run-to-run sums differ in the last bits, breaking "
                                f"the fleet's bit-identical merge guarantee"
                            ),
                            fix_hint=(
                                "force a tree/serialised reduction lowering (or "
                                "accept and document value drift for this site)"
                            ),
                            detail=f"{model}@{site.name}",
                            data={"reductions": list(nest.reductions)},
                        )
                    )
        else:
            write_f64 = sorted(a.name for a in writes if a.dtype_name == F64)
            if mixed:
                findings.append(
                    Finding(
                        rule_id=RULE_SILENT_UPCAST,
                        severity=Severity.WARNING,
                        location=loc,
                        message=(
                            f"nest mixes float32 ({', '.join(f32_reads)}) and "
                            f"float64 ({', '.join(f64_reads)}) operands outside a "
                            f"declared reduction: every iteration pays a silent "
                            f"widening conversion"
                        ),
                        fix_hint="store the operands at one width",
                        detail="reads:" + ",".join(f32_reads + f64_reads),
                    )
                )
            elif read_dtypes == {F32} and write_f64:
                findings.append(
                    Finding(
                        rule_id=RULE_SILENT_UPCAST,
                        severity=Severity.WARNING,
                        location=loc,
                        message=(
                            f"all operands are float32 but the nest writes float64 "
                            f"arrays ({', '.join(write_f64)}): the output width "
                            f"promises precision the inputs never had"
                        ),
                        fix_hint=(
                            f"narrow {', '.join(write_f64)} to float32 (or widen "
                            f"the inputs if the extra digits are real)"
                        ),
                        detail="writes:" + ",".join(write_f64),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Hot-path AST rules
# ---------------------------------------------------------------------------
def _numpy_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_NAMES
    ):
        return node.attr
    return None


def _dtype_token(node: ast.expr | None) -> frozenset[str]:
    """Abstract value of a ``dtype=`` argument / conversion target."""
    if node is None:
        return BOTTOM
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return frozenset({node.value}) if node.value in _WIDTH else BOTTOM
    name = _numpy_attr(node)
    if name is None and isinstance(node, ast.Name):
        name = node.id
    if name in _WIDTH:
        return frozenset({name})
    if name == "float":  # builtin float and np.float64 are both 8 bytes
        return frozenset({F64})
    return BOTTOM


def _ident(node: ast.expr) -> str:
    """Short stable token naming an operand (for fingerprints)."""
    dotted = dotted_name(node)
    if dotted is not None:
        return dotted
    if isinstance(node, ast.Call):
        inner = dotted_name(node.func)
        return f"{inner}()" if inner is not None else "call()"
    if isinstance(node, ast.Subscript):
        return _ident(node.value) + "[]"
    return type(node).__name__.lower()


class _DtypeInterpreter(AbstractInterpreter):
    """Per-function dtype inference + the three AST precision rules."""

    def __init__(self, module: str, qualname: str) -> None:
        super().__init__()
        self.module = module
        self.qualname = qualname
        self.findings: list[Finding] = []

    def _loc(self, node: ast.AST) -> Location:
        return Location(module=self.module, qualname=self.qualname, line=node.lineno)

    def _emit(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
        fix: str,
        detail: str,
    ) -> None:
        self.findings.append(
            Finding(
                rule_id=rule,
                severity=severity,
                location=self._loc(node),
                message=message,
                fix_hint=fix,
                detail=detail,
            )
        )

    # -- inference ----------------------------------------------------------------
    def infer(self, node: ast.expr) -> frozenset[str]:
        """Abstract dtype of an expression under the current environment."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_name(node)
            return self.env.get(dotted, BOTTOM) if dotted is not None else BOTTOM
        if isinstance(node, ast.Subscript):
            return self.infer(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return promote(self.infer(node.left), self.infer(node.right))
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        # Constants (Python scalars) carry no array dtype: neutral.
        return BOTTOM

    def _infer_call(self, node: ast.Call) -> frozenset[str]:
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        np_attr = _numpy_attr(node.func)
        if np_attr is not None:
            if np_attr in _WIDTH:  # np.float32(x) conversion
                return frozenset({np_attr})
            explicit = _dtype_token(kwargs.get("dtype"))
            if explicit:
                return explicit
            if np_attr in _F64_DEFAULT_ALLOCATORS:
                return frozenset({F64})
            if np_attr in _LIKE_ALLOCATORS and node.args:
                return self.infer(node.args[0])
            if np_attr in _DTYPE_PRESERVING or np_attr in _REDUCERS:
                out = BOTTOM
                for arg in node.args:
                    out = promote(out, self.infer(arg))
                return out
            if np_attr in NUMPY_ALLOCATORS:
                return BOTTOM  # np.array([...]) etc: data-dependent
            return BOTTOM
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "astype" and node.args:
                return _dtype_token(node.args[0])
            if node.func.attr in ("copy", "sum", "ravel", "reshape", "transpose"):
                return self.infer(node.func.value)
        return BOTTOM

    # -- rules ---------------------------------------------------------------------
    def _check_mixed(self, node: ast.AST, left: ast.expr, right: ast.expr, op: str) -> None:
        lt, rt = self.infer(left), self.infer(right)
        if not (len(lt) == 1 and len(rt) == 1 and lt != rt):
            return
        gemm = op in ("@", "np.matmul", "np.dot")
        l_id, r_id = _ident(left), _ident(right)
        if gemm:
            self._emit(
                RULE_MIXED_GEMM,
                Severity.ERROR,
                node,
                f"{op} mixes a {next(iter(lt))} operand ({l_id}) with a "
                f"{next(iter(rt))} operand ({r_id}): the GEMM runs at the wide "
                f"width after converting the narrow side on every call",
                "convert one operand once, outside the hot path, so both sides "
                "enter the GEMM at the same width",
                f"{op}:{l_id}|{r_id}",
            )
        else:
            self._emit(
                RULE_SILENT_UPCAST,
                Severity.WARNING,
                node,
                f"'{op}' between {next(iter(lt))} ({l_id}) and "
                f"{next(iter(rt))} ({r_id}) silently promotes the result to "
                f"{next(iter(promote(lt, rt)))} inside a hot function",
                "make the promotion explicit with .astype (or keep both "
                "operands at one width)",
                f"{op}:{l_id}|{r_id}",
            )

    def on_binop(self, node: ast.BinOp) -> None:
        op = "@" if isinstance(node.op, ast.MatMult) else type(node.op).__name__
        self._check_mixed(node, node.left, node.right, op)

    def on_call(self, node: ast.Call) -> None:
        np_attr = _numpy_attr(node.func)
        if np_attr in ("matmul", "dot") and len(node.args) >= 2:
            self._check_mixed(node, node.args[0], node.args[1], f"np.{np_attr}")
        elif np_attr in ("sum", "nansum", "cumsum") and node.args:
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            if "dtype" not in kwargs and self.infer(node.args[0]) == frozenset({F32}):
                arg_id = _ident(node.args[0])
                self._emit(
                    RULE_UNSAFE_ACCUMULATE,
                    Severity.WARNING,
                    node,
                    f"np.{np_attr}({arg_id}) accumulates float32 values in a "
                    f"float32 accumulator: rounding error grows O(n) with no "
                    f"fp64 refinement path",
                    f"pass dtype=np.float64 to np.{np_attr} (fp64 accumulate, "
                    f"fp32 storage)",
                    f"np.{np_attr}:{arg_id}",
                )

    def on_augassign(self, target: str, node: ast.AugAssign) -> None:
        acc = self.env.get(target, BOTTOM)
        value = self.infer(node.value)
        if (
            self.loop_depth > 0
            and isinstance(node.op, (ast.Add, ast.Sub))
            and acc == frozenset({F32})
            and value == frozenset({F32})
        ):
            self._emit(
                RULE_UNSAFE_ACCUMULATE,
                Severity.WARNING,
                node,
                f"'{target}' accumulates float32 values into a float32 "
                f"accumulator inside a loop: rounding error grows with the "
                f"trip count and no fp64 refinement path exists",
                f"accumulate into a float64 temporary and narrow '{target}' "
                f"once after the loop",
                f"aug:{target}",
            )
        self.env[target] = promote(acc, value)

    def on_assign(self, target: str, value: ast.expr, node: ast.stmt) -> None:
        inferred = self.infer(value)
        if inferred:
            self.env[target] = inferred
        else:
            self.env.pop(target, None)  # unknown overwrite kills stale facts


class _PrecisionModuleScanner(ast.NodeVisitor):
    """Finds ``@hot_path`` functions and runs the dtype interpreter."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if any(_is_hot_decorator(d) for d in node.decorator_list):
            qualname = ".".join((*self._class_stack, node.name))
            interp = _DtypeInterpreter(self.module, qualname)
            interp.run(node.body)
            self.findings.extend(interp.findings)
        else:
            self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        self._handle_function(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def scan_precision_source(source: str, module: str) -> list[Finding]:
    """Precision rules over one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {module}: {exc}") from None
    scanner = _PrecisionModuleScanner(module)
    scanner.visit(tree)
    return scanner.findings


def scan_precision_paths(paths, *, package_root: Path | None = None) -> list[Finding]:
    """Precision rules over ``.py`` files or directories of them."""
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    findings: list[Finding] = []
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            if not f.exists():
                raise AnalysisError(f"cannot scan missing file {f}")
            module = (
                ".".join(("repro", *f.relative_to(package_root).with_suffix("").parts))
                if f.is_relative_to(package_root)
                else str(f)
            )
            findings.extend(scan_precision_source(f.read_text(), module))
    return findings
