"""Linter orchestration: assemble rules into one repo-wide analysis.

:func:`analyze_repo` is what ``repro analyze`` runs: it builds the
registered ``pflux_`` kernel registry, lowers it against the paper's
three machine sites, scans the marked Python hot paths under
``repro/efit`` and ``repro/batch``, runs the precision-flow rules over
both, runs the concurrency-lifecycle rules over ``repro/parallel``, and
returns an :class:`AnalysisReport` — findings plus the *certification
set* (hot functions the linter proves allocation-free, which the
workspace counters must confirm at runtime).

The four rule *families* — ``directives``, ``hotpath``, ``precision``,
``lifecycle`` — are individually selectable
(:attr:`AnalysisConfig.families`, ``repro analyze --family``); a partial
run analyses less and therefore cannot judge baseline staleness (see
:attr:`AnalysisReport.complete`).

The report applies a :class:`~repro.analysis.baseline.Baseline` by
partitioning findings into kept and suppressed (recording suppressions
that matched nothing as *stale*); exit-code policy lives here too so the
CLI and CI share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.directive_rules import (
    DirectiveAnalysisContext,
    run_directive_rules,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.hotpath import HotPathScan, scan_paths
from repro.directives.registry import KernelRegistry
from repro.errors import AnalysisError

__all__ = [
    "ALL_FAMILIES",
    "ANALYSIS_SCHEMA_VERSION",
    "AnalysisConfig",
    "AnalysisReport",
    "analyze_registry",
    "analyze_hot_paths",
    "analyze_precision",
    "analyze_lifecycle",
    "analyze_repo",
]

#: Version stamp of the ``repro analyze --json`` payload (the same
#: convention as the Chrome-trace/JSONL exports).  Version 1 was the
#: unstamped pre-family payload; version 2 adds ``schema_version``,
#: ``families`` and stale-suppression reporting.
ANALYSIS_SCHEMA_VERSION = 2

#: Every selectable rule family, in documented run order.
ALL_FAMILIES: tuple[str, ...] = ("directives", "hotpath", "precision", "lifecycle")


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable knobs of one analysis run."""

    #: Grid size the registry is instantiated at (byte predictions only;
    #: verdicts are grid-independent for the registered kernels).
    grid: int = 65
    #: Edge-operator representation the registry prices (``dense`` is the
    #: paper's Green-table sweep; structured methods swap the boundary
    #: nests for compressed-byte-count equivalents).
    boundary_method: str = "dense"
    #: Threshold of the ``excess-traffic`` rule.
    max_traffic_ratio: float = 2.0
    #: Source roots of the hot-path pass, relative to the ``repro``
    #: package directory.
    hot_path_roots: tuple[str, ...] = ("efit", "batch")
    #: Source roots of the lifecycle pass, relative to the ``repro``
    #: package directory.
    lifecycle_roots: tuple[str, ...] = ("parallel",)
    #: Rule families this run executes (subset of :data:`ALL_FAMILIES`).
    families: tuple[str, ...] = ALL_FAMILIES

    def __post_init__(self) -> None:
        unknown = [f for f in self.families if f not in ALL_FAMILIES]
        if unknown:
            raise AnalysisError(
                f"unknown analysis families: {', '.join(unknown)} "
                f"(known: {', '.join(ALL_FAMILIES)})"
            )
        if not self.families:
            raise AnalysisError("at least one analysis family must be selected")


@dataclass
class AnalysisReport:
    """Everything one linter run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: ``module::qualname`` of every ``@hot_path`` function scanned.
    hot_functions: tuple[str, ...] = ()
    #: Hot functions with zero raw allocation findings (pre-baseline):
    #: the runtime counters must observe zero steady-state allocations
    #: for these (see ``bench_batch``).
    certified_allocation_free: tuple[str, ...] = ()
    #: Families this run executed (empty = legacy construction, treated
    #: as complete).
    families: tuple[str, ...] = ()
    #: Baseline suppressions that matched no finding of this run
    #: (fingerprint -> recorded reason).  Meaningful only when
    #: :attr:`complete` — a family-filtered run simply didn't look.
    stale_suppressions: dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every rule family ran (staleness is judgeable)."""
        return not self.families or set(self.families) == set(ALL_FAMILIES)

    def apply_baseline(self, baseline: Baseline) -> None:
        """Move baselined findings from :attr:`findings` to
        :attr:`suppressed` (idempotent), recording suppressions that
        matched nothing as :attr:`stale_suppressions`."""
        kept: list[Finding] = []
        for f in self.findings:
            (self.suppressed if baseline.is_suppressed(f) else kept).append(f)
        self.findings = kept
        self.stale_suppressions = baseline.stale_entries(
            [*self.findings, *self.suppressed]
        )

    # -- verdicts ------------------------------------------------------------------
    def count(self, severity: Severity) -> int:
        """Unsuppressed findings at ``severity``."""
        return sum(1 for f in self.findings if f.severity is severity)

    def exit_code(self, *, strict: bool = False) -> int:
        """0 when clean: errors always fail; ``strict`` fails warnings
        too, plus stale baseline suppressions on a complete run."""
        if self.count(Severity.ERROR):
            return 1
        if strict and (self.count(Severity.WARNING) or self.count(Severity.INFO)):
            return 1
        if strict and self.complete and self.stale_suppressions:
            return 1
        return 0

    # -- rendering -----------------------------------------------------------------
    def to_dict(self) -> dict:
        """The JSON payload of ``repro analyze --json``."""
        return {
            "schema_version": ANALYSIS_SCHEMA_VERSION,
            "summary": {
                "errors": self.count(Severity.ERROR),
                "warnings": self.count(Severity.WARNING),
                "suppressed": len(self.suppressed),
                "stale_suppressions": dict(sorted(self.stale_suppressions.items())),
                "families": list(self.families or ALL_FAMILIES),
                "hot_functions": list(self.hot_functions),
                "certified_allocation_free": list(self.certified_allocation_free),
            },
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def render(self) -> str:
        """Human-readable report."""
        lines: list[str] = []
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        for f in sorted(self.findings, key=lambda f: (order[f.severity], f.rule_id, f.location.ident)):
            lines.append(f.render())
        if self.complete:
            for fp in sorted(self.stale_suppressions):
                lines.append(f"stale   baseline suppression matches nothing: {fp}")
        lines.append(
            f"{self.count(Severity.ERROR)} error(s), {self.count(Severity.WARNING)} "
            f"warning(s), {len(self.suppressed)} baselined, "
            f"{len(self.certified_allocation_free)}/{len(self.hot_functions)} hot-path "
            f"function(s) certified allocation-free"
        )
        return "\n".join(lines)


def analyze_registry(
    registry: KernelRegistry,
    *,
    sites=None,
    data_env=None,
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Directive rules over one registry against ``sites``.

    ``sites`` defaults to the paper's three machines; ``data_env`` is the
    set of array names the offloaded subroutine's data region covers
    (``None`` = no enclosing region, which the ``missing-data-region``
    rule flags on explicit-memory sites).
    """
    from repro.machines.site import ALL_SITES

    config = config if config is not None else AnalysisConfig()
    ctx = DirectiveAnalysisContext(
        sites=tuple(sites) if sites is not None else ALL_SITES(),
        data_env=frozenset(data_env) if data_env is not None else None,
        max_traffic_ratio=config.max_traffic_ratio,
    )
    return run_directive_rules(registry, ctx)


def analyze_hot_paths(config: AnalysisConfig | None = None) -> HotPathScan:
    """AST pass over the configured hot-path source roots."""
    import repro

    config = config if config is not None else AnalysisConfig()
    package_root = Path(repro.__file__).parent
    roots = [package_root / r for r in config.hot_path_roots]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        raise AnalysisError(f"hot-path roots do not exist: {', '.join(missing)}")
    return scan_paths(roots, package_root=package_root)


def analyze_lifecycle(config: AnalysisConfig | None = None) -> list[Finding]:
    """Concurrency-lifecycle AST pass over the configured roots."""
    import repro
    from repro.analysis.lifecycle import scan_lifecycle_paths

    config = config if config is not None else AnalysisConfig()
    package_root = Path(repro.__file__).parent
    roots = [package_root / r for r in config.lifecycle_roots]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        raise AnalysisError(f"lifecycle roots do not exist: {', '.join(missing)}")
    return scan_lifecycle_paths(roots, package_root=package_root)


def analyze_precision(config: AnalysisConfig | None = None) -> list[Finding]:
    """Precision-flow pass: registry IR rules + hot-path AST rules."""
    import repro
    from repro.analysis.precision import (
        check_registry_precision,
        scan_precision_paths,
    )
    from repro.core.offload import build_pflux_registry
    from repro.machines.site import ALL_SITES

    config = config if config is not None else AnalysisConfig()
    registry = build_pflux_registry(
        config.grid, boundary_method=config.boundary_method
    )
    findings = check_registry_precision(registry, sites=ALL_SITES())
    package_root = Path(repro.__file__).parent
    roots = [package_root / r for r in config.hot_path_roots]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        raise AnalysisError(f"hot-path roots do not exist: {', '.join(missing)}")
    findings.extend(scan_precision_paths(roots, package_root=package_root))
    return findings


def analyze_repo(config: AnalysisConfig | None = None) -> AnalysisReport:
    """The full ``repro analyze`` run over the configured families."""
    config = config if config is not None else AnalysisConfig()
    findings: list[Finding] = []
    hot_functions: tuple[str, ...] = ()
    certified: tuple[str, ...] = ()
    if "directives" in config.families:
        from repro.core.offload import build_pflux_registry, pflux_device_arrays

        registry = build_pflux_registry(
            config.grid, boundary_method=config.boundary_method
        )
        data_env = frozenset(
            a.name
            for a in pflux_device_arrays(
                config.grid, boundary_method=config.boundary_method
            )
        )
        findings.extend(analyze_registry(registry, data_env=data_env, config=config))
    if "hotpath" in config.families:
        scan = analyze_hot_paths(config)
        findings.extend(scan.findings)
        hot_functions = tuple(scan.hot_functions)
        certified = scan.certified
    if "precision" in config.families:
        findings.extend(analyze_precision(config))
    if "lifecycle" in config.families:
        findings.extend(analyze_lifecycle(config))
    return AnalysisReport(
        findings=findings,
        hot_functions=hot_functions,
        certified_allocation_free=certified,
        families=tuple(config.families),
    )
