"""Shared dataflow core of the precision-flow and lifecycle analyses.

Both new rule families are *flow-sensitive*: what they flag depends on
the order of statements (a view read after the backing arena is
unlinked; an fp32 value accumulated after a silent promotion), not just
on which calls appear somewhere in a function.  This module provides the
one abstraction they share — a small abstract interpreter over Python
function bodies — so the two checkers only implement transfer functions.

The abstract domain is deliberately simple: every tracked name maps to a
**frozenset of tokens** ("may" facts — the set of states or dtypes the
value can have on some path reaching this point).  Joining two paths is
set union; the bottom element is the empty set.  This makes every
analysis monotone by construction and keeps loop handling to a single
widening join (execute the body once, then join with the pre-loop
state), which is exact for the protocol and dtype lattices used here —
both are finite and transfer functions only add tokens or overwrite.

:class:`AbstractInterpreter` walks one function body statement by
statement, maintaining the environment and handling control flow:

* ``if`` — both branches run from the pre-state; the post-state is
  their join;
* ``for``/``while`` — the body runs once, the post-state joins the
  zero-iteration path back in; :attr:`loop_depth` tells transfer hooks
  whether they are inside a (possibly hot) loop;
* ``try`` — handler bodies run from the join of the pre-state and the
  normal body exit (an exception can land anywhere in between);
  ``finally`` always runs; :attr:`finally_depth` tells hooks whether the
  current statement is exception-safe cleanup;
* nested ``def``/``lambda`` bodies are *not* charged to the enclosing
  function (matching the hot-path pass), but the hook
  :meth:`on_nested_def` sees them so closure-capture rules can record
  their names.

Subclasses override the ``on_*`` hooks; expressions are walked by
:meth:`visit_expr`, which dispatches every :class:`ast.Call` to
:meth:`on_call` in evaluation order.
"""

from __future__ import annotations

import ast

__all__ = [
    "BOTTOM",
    "join",
    "join_env",
    "dotted_name",
    "AbstractInterpreter",
]

#: The bottom abstract value: no information on any path.
BOTTOM: frozenset[str] = frozenset()


def join(a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
    """Least upper bound of two abstract values (may-union)."""
    return a | b


def join_env(a: dict[str, frozenset[str]], b: dict[str, frozenset[str]]) -> dict[str, frozenset[str]]:
    """Pointwise join of two environments (missing keys are bottom)."""
    out = dict(a)
    for name, value in b.items():
        out[name] = join(out.get(name, BOTTOM), value)
    return out


def dotted_name(node: ast.expr) -> str | None:
    """``self._manager`` / ``result_q`` as a dotted string, else None.

    Only pure Name/Attribute chains qualify — a call or subscript in the
    chain means the expression is not a stable storage location.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class AbstractInterpreter:
    """Flow-sensitive single-pass walker over one function body."""

    def __init__(self) -> None:
        #: name -> may-set of tokens.  Names are dotted paths
        #: (``dotted_name``); checkers may also use reserved ``%``-prefixed
        #: keys for function-global facts (obligations, flush states).
        self.env: dict[str, frozenset[str]] = {}
        #: How many ``for``/``while`` bodies enclose the current statement.
        self.loop_depth = 0
        #: How many ``finally`` blocks enclose the current statement.
        self.finally_depth = 0

    # -- hooks (override in checkers) ----------------------------------------------
    def on_assign(self, target: str, value: ast.expr, node: ast.stmt) -> None:
        """A binding ``target = value`` (also ``with ... as target``)."""

    def on_augassign(self, target: str, node: ast.AugAssign) -> None:
        """``target op= value`` — value expressions were already visited."""

    def on_call(self, node: ast.Call) -> None:
        """Every call expression, in evaluation order."""

    def on_binop(self, node: ast.BinOp) -> None:
        """Every binary operation, after both operands were visited."""

    def on_nested_def(self, node: ast.stmt) -> None:
        """A nested ``def``/``async def``/``class`` (body not walked)."""

    def on_return(self, node: ast.Return) -> None:
        """A ``return`` statement (value already visited)."""

    # -- expression walking ----------------------------------------------------------
    def visit_expr(self, node: ast.expr | None) -> None:
        """Dispatch calls/binops inside ``node`` in evaluation order."""
        if node is None:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self.on_call(child)
            elif isinstance(child, ast.BinOp):
                self.on_binop(child)
            elif isinstance(child, (ast.Lambda,)):
                pass  # bodies of lambdas are not charged to this function

    # -- statement walking -----------------------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        self.exec_block(body)

    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self.visit_expr(stmt.test)
            base = dict(self.env)
            self.exec_block(stmt.body)
            after_true = self.env
            self.env = dict(base)
            self.exec_block(stmt.orelse)
            self.env = join_env(after_true, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter)
            target = dotted_name(stmt.target)
            if target is not None:
                self.on_assign(target, stmt.iter, stmt)
            base = dict(self.env)
            self.loop_depth += 1
            self.exec_block(stmt.body)
            self.loop_depth -= 1
            self.env = join_env(base, self.env)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.visit_expr(stmt.test)
            base = dict(self.env)
            self.loop_depth += 1
            self.exec_block(stmt.body)
            self.loop_depth -= 1
            self.env = join_env(base, self.env)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            base = dict(self.env)
            self.exec_block(stmt.body)
            normal_exit = dict(self.env)
            # An exception may fire anywhere in the body: handlers start
            # from the join of "nothing ran" and "everything ran".
            mid = join_env(base, normal_exit)
            exits = [normal_exit]
            for handler in stmt.handlers:
                self.env = dict(mid)
                if handler.name:
                    self.env[handler.name] = BOTTOM
                self.exec_block(handler.body)
                exits.append(self.env)
            merged: dict[str, frozenset[str]] = {}
            for e in exits:
                merged = join_env(merged, e)
            self.env = merged
            self.exec_block(stmt.orelse)
            self.finally_depth += 1
            self.exec_block(stmt.finalbody)
            self.finally_depth -= 1
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    target = dotted_name(item.optional_vars)
                    if target is not None:
                        self.on_assign(target, item.context_expr, stmt)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value)
            for tgt in stmt.targets:
                target = dotted_name(tgt)
                if target is not None:
                    self.on_assign(target, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit_expr(stmt.value)
                target = dotted_name(stmt.target)
                if target is not None:
                    self.on_assign(target, stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value)
            target = dotted_name(stmt.target)
            if target is not None:
                self.on_augassign(target, stmt)
        elif isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.visit_expr(stmt.value)
            self.on_return(stmt)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.on_nested_def(stmt)
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                target = dotted_name(tgt)
                if target is not None:
                    self.env.pop(target, None)
        # Pass/Break/Continue/Import/Global/Nonlocal: no dataflow effect.
