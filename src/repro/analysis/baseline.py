"""Baseline file: accepted findings the linter stops reporting.

A baseline is a committed JSON file listing finding
:attr:`~repro.analysis.findings.Finding.fingerprint` strings that are
*known and accepted* — the paper's own intentional smells (the OpenACC
excess-traffic encoding of Figure 5) and the hot-path allocations that
are deliberate (warm-up branches, per-iteration history snapshots).  CI
runs ``repro analyze --strict`` against the committed baseline, so any
*new* finding fails the build while the accepted set stays quiet.

The format is deliberately dumb — a sorted list of fingerprints plus a
free-text reason per entry — so diffs review well::

    {
      "version": 1,
      "suppressions": {
        "excess-traffic@pflux_::boundary_lr#openacc@frontier": "Figure 5",
        ...
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class Baseline:
    """An accepted-findings set keyed by fingerprint."""

    def __init__(self, suppressions: dict[str, str] | None = None) -> None:
        self.suppressions: dict[str, str] = dict(suppressions or {})

    def __len__(self) -> int:
        return len(self.suppressions)

    def __contains__(self, item: Finding | str) -> bool:
        fingerprint = item.fingerprint if isinstance(item, Finding) else item
        return fingerprint in self.suppressions

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is baselined (accepted)."""
        return finding in self

    # -- staleness -----------------------------------------------------------------
    def stale_entries(self, findings) -> dict[str, str]:
        """Suppressions that matched no finding in ``findings``
        (fingerprint -> recorded reason).  A stale entry means the smell
        it accepted is gone — dead weight that would silently re-accept
        the finding if it ever came back for a different reason."""
        live = {f.fingerprint for f in findings}
        return {fp: r for fp, r in self.suppressions.items() if fp not in live}

    def pruned(self, findings) -> "Baseline":
        """A copy with stale entries removed (reasons preserved for the
        suppressions that still match)."""
        live = {f.fingerprint for f in findings}
        return Baseline({fp: r for fp, r in self.suppressions.items() if fp in live})

    # -- persistence ---------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; raises :class:`AnalysisError` on damage."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise AnalysisError(f"baseline file {path} does not exist") from None
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline file {path} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or "suppressions" not in payload:
            raise AnalysisError(f"baseline file {path} lacks a 'suppressions' table")
        if payload.get("version") != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline file {path} has version {payload.get('version')!r}; "
                f"this linter reads version {BASELINE_VERSION}"
            )
        sup = payload["suppressions"]
        if isinstance(sup, list):  # fingerprint list without reasons
            sup = {fp: "" for fp in sup}
        if not isinstance(sup, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in sup.items()
        ):
            raise AnalysisError(f"baseline file {path}: suppressions must map str -> str")
        return cls(sup)

    def save(self, path: str | Path) -> None:
        """Write the baseline, fingerprints sorted for stable diffs."""
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": {k: self.suppressions[k] for k in sorted(self.suppressions)},
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    @classmethod
    def from_findings(
        cls,
        findings,
        reason: str = "accepted at baseline creation",
        *,
        previous: "Baseline | None" = None,
    ) -> "Baseline":
        """Build a baseline accepting every finding in ``findings``.

        ``previous`` carries hand-written reasons forward for
        fingerprints that are still live; entries of ``previous`` that
        match nothing are pruned (``--write-baseline`` regeneration
        keeps the curated text, drops the dead weight)."""
        old = previous.suppressions if previous is not None else {}
        return cls(
            {f.fingerprint: old.get(f.fingerprint, reason) for f in findings}
        )
