"""Directive checkers: static rules over annotated kernel registries.

Each rule walks every :class:`~repro.directives.registry.AnnotatedKernel`
in a :class:`~repro.directives.registry.KernelRegistry` against its
:class:`~repro.directives.ir.LoopNest` IR and emits
:class:`~repro.analysis.findings.Finding` objects.  The rules encode the
paper's statically-detectable bug classes:

``directive-race``
    A nest that declares carried reductions must carry matching
    ``reduction`` clauses in each model's annotation; and a WRITE /
    READWRITE array with fewer unique elements than parallel iterations
    needs a reduction, privatisation or atomics (Figures 2/3).
``excess-traffic``
    The compiler lowering's modeled HBM movement must stay within a
    configurable ratio of the nest's streaming-byte bound — Figure 5's
    3.7x OpenACC-on-AMD excess is the motivating smell.
``implicit-transfer``
    Every array a nest touches must be covered by the enclosing data
    environment on explicit-memory sites, else each call implies
    host<->device transfers of the array's footprint (Section 6.2).
``missing-data-region``
    On sites without unified memory (Sunspot/oneAPI) a kernel needs an
    enclosing ``target data`` region at all.
``async-no-wait``
    An ``async`` clause with no matching ``!$acc wait`` in the kernel's
    directive set leaves the region's completion unordered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import Finding, Location, Severity
from repro.directives.ir import AccessMode
from repro.directives.openacc import AccWait
from repro.directives.openmp import OmpTargetData
from repro.directives.registry import AnnotatedKernel, KernelRegistry
from repro.errors import AnalysisError
from repro.machines.site import MachineSite
from repro.utils.tables import format_bytes

__all__ = [
    "RULE_RACE",
    "RULE_TRAFFIC",
    "RULE_IMPLICIT",
    "RULE_REGION",
    "RULE_ASYNC",
    "DirectiveAnalysisContext",
    "check_races",
    "check_async_wait",
    "check_traffic",
    "check_data_environment",
    "run_directive_rules",
]

RULE_RACE = "directive-race"
RULE_TRAFFIC = "excess-traffic"
RULE_IMPLICIT = "implicit-transfer"
RULE_REGION = "missing-data-region"
RULE_ASYNC = "async-no-wait"


@dataclass(frozen=True)
class DirectiveAnalysisContext:
    """What the directive rules need beyond the registry itself.

    Parameters
    ----------
    sites:
        Machine models to lower against (traffic and data-environment
        rules are site-dependent; race/async rules are not).
    data_env:
        Names of the arrays covered by the enclosing data region /
        device-array environment of the offloaded subroutine, or ``None``
        when no enclosing region exists.  A nest array named ``work``
        is considered covered by env entries ``work00``..``work19`` (the
        Fortran work-array family convention).
    max_traffic_ratio:
        Modeled-bytes / streaming-bytes ratio above which a lowering is
        flagged (default 2.0 — between the healthy 1.0-1.6 range of
        Figure 5 and the pathological 3.7x).
    """

    sites: tuple[MachineSite, ...] = ()
    data_env: frozenset[str] | None = None
    max_traffic_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.max_traffic_ratio <= 1.0:
            raise AnalysisError(
                f"max_traffic_ratio must exceed 1.0, got {self.max_traffic_ratio}"
            )


def _location(registry: KernelRegistry, kernel: AnnotatedKernel) -> Location:
    return Location(subroutine=registry.subroutine, kernel=kernel.name)


def _declared_reductions(kernel: AnnotatedKernel, model: str) -> set[str]:
    directives = kernel.acc_directives if model == "openacc" else kernel.omp_directives
    declared: set[str] = set()
    for d in directives:
        declared.update(getattr(d, "reduction", ()))
    return declared


def _env_covers(env: frozenset[str], name: str) -> bool:
    """Exact match, or the numbered work-array family (``work`` vs
    ``work00``..``work19``)."""
    if name in env:
        return True
    return any(e.startswith(name) and e[len(name) :].isdigit() for e in env)


# -- race rule ---------------------------------------------------------------------
def check_races(registry: KernelRegistry, *, models: tuple[str, ...] = ("openacc", "openmp")):
    """``directive-race``: shared writes under parallel mappings without
    ``reduction``/``private``/atomic protection."""
    findings: list[Finding] = []
    for kernel in registry:
        nest = kernel.nest
        for model in models:
            declared = _declared_reductions(kernel, model)
            missing = [r for r in nest.reductions if r not in declared]
            if missing:
                findings.append(
                    Finding(
                        rule_id=RULE_RACE,
                        severity=Severity.ERROR,
                        location=_location(registry, kernel),
                        message=(
                            f"nest carries reductions ({', '.join(nest.reductions)}) but the "
                            f"{model} annotation declares no reduction clause for "
                            f"{', '.join(missing)}: concurrent lanes race on the scalars"
                        ),
                        fix_hint=(
                            f"add reduction(+:{','.join(missing)}) to the inner "
                            + ("!$acc loop" if model == "openacc" else "!$omp parallel do")
                            + " directive"
                        ),
                        detail=f"{model}:reduction",
                    )
                )
                continue
            if nest.reductions or declared:
                continue  # reductions present and matched (or spurious clause)
            for arr in nest.arrays:
                if arr.mode is AccessMode.READ or arr.accesses_per_iteration <= 0:
                    continue
                if arr.elements < nest.total_iterations:
                    findings.append(
                        Finding(
                            rule_id=RULE_RACE,
                            severity=Severity.ERROR,
                            location=_location(registry, kernel),
                            message=(
                                f"array '{arr.name}' ({arr.mode.value}, {arr.elements} "
                                f"elements) is written from {nest.total_iterations} "
                                f"parallel-mapped iterations under the {model} annotation "
                                f"with no reduction/private/atomic protection"
                            ),
                            fix_hint=(
                                "reduce into scalars with a reduction clause, privatise "
                                f"'{arr.name}', or make the writes atomic"
                            ),
                            detail=f"{model}:{arr.name}",
                        )
                    )
    return findings


# -- async rule --------------------------------------------------------------------
def check_async_wait(registry: KernelRegistry):
    """``async-no-wait``: ``async(q)`` clauses with no ``!$acc wait``."""
    findings: list[Finding] = []
    for kernel in registry:
        queues = [
            d.async_queue
            for d in kernel.acc_directives
            if getattr(d, "async_queue", None) is not None
        ]
        if not queues:
            continue
        waits = [d for d in kernel.acc_directives if isinstance(d, AccWait)]
        waited = {w.queue for w in waits}
        for q in queues:
            if None in waited or q in waited:  # bare wait drains all queues
                continue
            findings.append(
                Finding(
                    rule_id=RULE_ASYNC,
                    severity=Severity.ERROR,
                    location=_location(registry, kernel),
                    message=(
                        f"directive uses async({q}) but the kernel's directive set has "
                        f"no matching '!$acc wait': host code may read results before "
                        f"the device writes them"
                    ),
                    fix_hint=f"append AccWait(queue={q}) (or a bare AccWait()) after the region",
                    detail=f"async:{q}",
                )
            )
    return findings


# -- traffic rule ------------------------------------------------------------------
def check_traffic(registry: KernelRegistry, ctx: DirectiveAnalysisContext):
    """``excess-traffic``: modeled HBM movement vs the streaming bound.

    For each (site, buildable model) pair the kernel is lowered through
    the site's compiler model and the plan's traffic factor — modeled
    bytes over the nest's zero-reuse streaming bytes — is compared
    against ``ctx.max_traffic_ratio``.  Reproduces the paper's Figure 5
    finding: the CCE OpenACC lowering of the O(N^3) boundary nests moves
    ~3.7x what the OpenMP build moves on MI250X.
    """
    findings: list[Finding] = []
    for site in ctx.sites:
        for model in site.models:
            for kernel in registry:
                plan = site.compiler.lower(kernel, model, site.gpu)
                if plan.traffic_factor <= ctx.max_traffic_ratio:
                    continue
                streaming = kernel.nest.streaming_bytes
                moved = streaming * plan.traffic_factor
                findings.append(
                    Finding(
                        rule_id=RULE_TRAFFIC,
                        severity=Severity.WARNING,
                        location=_location(registry, kernel),
                        message=(
                            f"{model} lowering by {site.compiler.name} on {site.gpu.vendor} "
                            f"moves {plan.traffic_factor:.2f}x the streaming-byte bound "
                            f"({format_bytes(moved)} vs {format_bytes(streaming)} per call; "
                            f"threshold {ctx.max_traffic_ratio:.1f}x) — the Figure 5 "
                            f"OpenACC-on-AMD excess-traffic smell"
                        ),
                        fix_hint=(
                            "restructure the mapping (e.g. '!$omp loop' descriptive "
                            "lowering, Section 6.2) or switch programming model on this site"
                        ),
                        detail=f"{model}@{site.name}",
                        data={
                            "traffic_factor": plan.traffic_factor,
                            "modeled_bytes": moved,
                            "streaming_bytes": streaming,
                        },
                    )
                )
    return findings


# -- data-environment rules --------------------------------------------------------
def check_data_environment(registry: KernelRegistry, ctx: DirectiveAnalysisContext):
    """``missing-data-region`` + ``implicit-transfer`` on explicit-memory
    sites (no unified memory: every uncovered operand transfers per call)."""
    findings: list[Finding] = []
    explicit_sites = [s for s in ctx.sites if not s.gpu.unified_memory]
    if not explicit_sites:
        return findings
    for site in explicit_sites:
        for kernel in registry:
            has_region = ctx.data_env is not None or any(
                isinstance(d, OmpTargetData) for d in kernel.omp_directives
            )
            nest = kernel.nest
            if not has_region:
                per_call = 2.0 * nest.footprint_bytes * kernel.launches
                findings.append(
                    Finding(
                        rule_id=RULE_REGION,
                        severity=Severity.ERROR,
                        location=_location(registry, kernel),
                        message=(
                            f"{site.name} ({site.gpu.name}) has no unified memory: without "
                            f"an enclosing 'target data' region every launch implicitly "
                            f"maps its operands (~{format_bytes(per_call)} per call)"
                        ),
                        fix_hint=(
                            "wrap the invocation in '!$omp target data "
                            "map(to:...) map(from:...)' or supply a device-array "
                            "environment (Section 6.2)"
                        ),
                        detail=f"region@{site.name}",
                        data={"implied_bytes_per_call": per_call},
                    )
                )
                continue
            # A region exists: check its coverage array by array.
            env = ctx.data_env if ctx.data_env is not None else frozenset(
                name
                for d in kernel.omp_directives
                if isinstance(d, OmpTargetData)
                for name in (*d.map_to, *d.map_from)
            )
            for arr in nest.arrays:
                if _env_covers(env, arr.name):
                    continue
                per_call = 2.0 * arr.footprint_bytes * kernel.launches
                findings.append(
                    Finding(
                        rule_id=RULE_IMPLICIT,
                        severity=Severity.ERROR,
                        location=_location(registry, kernel),
                        message=(
                            f"array '{arr.name}' ({format_bytes(arr.footprint_bytes)}) is "
                            f"touched by the nest but absent from the enclosing data "
                            f"environment: each call implies ~{format_bytes(per_call)} of "
                            f"H2D+D2H traffic on {site.name}"
                        ),
                        fix_hint=(
                            f"add '{arr.name}' to the target data map clauses (or the "
                            f"device-array list of the offloaded subroutine)"
                        ),
                        detail=f"{arr.name}@{site.name}",
                        data={"implied_bytes_per_call": per_call},
                    )
                )
    return findings


def run_directive_rules(
    registry: KernelRegistry, ctx: DirectiveAnalysisContext | None = None
) -> list[Finding]:
    """All directive rules over one registry, in documented rule order."""
    ctx = ctx if ctx is not None else DirectiveAnalysisContext()
    findings: list[Finding] = []
    findings.extend(check_races(registry))
    findings.extend(check_async_wait(registry))
    findings.extend(check_traffic(registry, ctx))
    findings.extend(check_data_environment(registry, ctx))
    return findings
