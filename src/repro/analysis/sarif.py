"""SARIF 2.1.0 export of an :class:`~repro.analysis.engine.AnalysisReport`.

SARIF (Static Analysis Results Interchange Format, OASIS 2.1.0) is what
CI forges ingest to annotate pull requests with linter findings.  The
emitted log has one run, one tool (``repro-analyze``), one rule entry
per distinct rule id, and one result per finding — including the
baselined ones, which carry a ``suppressions`` entry so the forge shows
them greyed out instead of hiding them.

Mapping notes:

* ``Location.module`` (``repro.analysis.engine``) becomes the artifact
  URI ``src/repro/analysis/engine.py`` — repo-relative, which is what
  PR annotation needs.  Registry findings (``subroutine::kernel``) have
  no physical file; they carry only a ``logicalLocations`` entry.
* ``partialFingerprints`` carries the finding's stable
  :attr:`~repro.analysis.findings.Finding.fingerprint`, so a forge's
  "new since last run" comparison matches the baseline semantics.
* Severities map ``ERROR -> error``, ``WARNING -> warning``,
  ``INFO -> note``.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.utils.jsonio import dump_json

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_payload", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning", Severity.INFO: "note"}

#: One-line rule descriptions for the SARIF rules table (kept short; the
#: full prose lives in ``docs/ANALYSIS.md``).
_RULE_DESCRIPTIONS = {
    "directive-race": "Shared writes under parallel mappings without protection",
    "excess-traffic": "Modeled HBM movement exceeds the streaming-byte bound",
    "implicit-transfer": "Array outside the enclosing data environment",
    "missing-data-region": "No target data region on an explicit-memory site",
    "async-no-wait": "async clause with no matching wait",
    "hot-alloc": "Allocating NumPy constructor inside @hot_path",
    "hot-copy": ".copy() inside @hot_path",
    "hot-ufunc-temp": "Ufunc without out= inside @hot_path",
    "workspace-alias": "Workspace buffer name requested twice",
    "precision-silent-upcast": "Silent fp32->fp64 promotion",
    "precision-mixed-gemm": "Mixed fp32/fp64 GEMM operands",
    "precision-unsafe-accumulate": "fp32 accumulation without fp64 refinement",
    "precision-nondet-reduction": "Order-dependent reduction breaks bit identity",
    "lifecycle-use-after-unlink": "Arena view used after drop/unlink",
    "lifecycle-attach-before-seed": "Engine built before the table cache is seeded",
    "lifecycle-missing-drop": "Arena handle leaks on an exceptional path",
    "fork-unsafe-capture": "Unpicklable or arena-handle capture in worker args",
    "lifecycle-exit-before-flush": "os._exit before queue feeder flush",
}


def _artifact_uri(finding: Finding) -> str | None:
    """Repo-relative source path of a module-located finding."""
    module = finding.location.module
    if not module or not module.startswith("repro"):
        return None
    return "src/" + module.replace(".", "/") + ".py"


def _result(finding: Finding, *, suppressed: bool) -> dict:
    loc: dict = {
        "logicalLocations": [
            {"fullyQualifiedName": finding.location.ident, "kind": "function"}
        ]
    }
    uri = _artifact_uri(finding)
    if uri is not None:
        physical: dict = {"artifactLocation": {"uri": uri}}
        if finding.location.line is not None:
            physical["region"] = {"startLine": finding.location.line}
        loc["physicalLocation"] = physical
    message = finding.message
    if finding.fix_hint:
        message += f" Fix: {finding.fix_hint}"
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVEL[finding.severity],
        "message": {"text": message},
        "locations": [loc],
        "partialFingerprints": {"reproFingerprint/v1": finding.fingerprint},
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def sarif_payload(report) -> dict:
    """The SARIF 2.1.0 log of one analysis run (kept + suppressed)."""
    rule_ids = sorted(
        {f.rule_id for f in (*report.findings, *report.suppressed)}
    )
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": _RULE_DESCRIPTIONS.get(rule_id, rule_id)
            },
            "helpUri": "docs/ANALYSIS.md",
        }
        for rule_id in rule_ids
    ]
    results = [_result(f, suppressed=False) for f in report.findings]
    results.extend(_result(f, suppressed=True) for f in report.suppressed)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(report, path) -> None:
    """Write the SARIF log of ``report`` to ``path``."""
    with open(path, "w") as fh:
        dump_json(sarif_payload(report), fh)
