"""The ``@hot_path`` marker for allocation-disciplined functions.

Functions on the reconstruction hot path — the Picard iterate halves,
the batched flux solve, the pflux GEMV — promise an allocation-free
steady state.  Marking them with :func:`hot_path` does two things:

* statically, the linter's AST pass (:mod:`repro.analysis.hotpath`)
  scans every marked function and flags allocating NumPy constructors,
  ``.copy()`` calls and ufunc calls without ``out=``;
* dynamically, the marker is a plain attribute (zero call overhead), so
  the runtime counters can cross-check the linter's verdict: a function
  the linter certifies allocation-free must show zero steady-state
  workspace allocations in ``bench_batch``.

The decorator is dependency-free by design — importing it from
``repro.efit`` or ``repro.batch`` must not drag the analyzer (or any of
the performance-model stack) into the physics import graph.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path", "is_hot_path", "HOT_PATH_ATTR"]

#: Attribute set on marked functions (and searched for by the AST pass
#: via the decorator *name*, so decoration order does not matter).
HOT_PATH_ATTR = "__hot_path__"

F = TypeVar("F", bound=Callable)


def hot_path(func: F) -> F:
    """Mark ``func`` as allocation-disciplined (no-op at runtime)."""
    setattr(func, HOT_PATH_ATTR, True)
    return func


def is_hot_path(func: Callable) -> bool:
    """Whether ``func`` carries the :func:`hot_path` marker."""
    return bool(getattr(func, HOT_PATH_ATTR, False))
