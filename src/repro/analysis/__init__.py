"""Static analysis of the portability layer: the ``repro`` linter.

The paper's central findings are statically detectable bug classes:
missing reduction clauses that leave shared arrays racy, kernels whose
operands fall outside the enclosing data environment (implicit per-call
transfers on Intel PVC), and clause sets whose lowering moves several
times the streaming-byte bound (the 3.7x OpenACC-on-AMD excess of
Figure 5).  PR 1 added an allocation-free hot path whose invariants were
only asserted at runtime.  This package proves all of these properties
*before anything runs*:

* :mod:`repro.analysis.findings` — the findings model (rule id,
  severity, location, fix hint);
* :mod:`repro.analysis.baseline` — accepted-findings suppression file;
* :mod:`repro.analysis.markers` — the ``@hot_path`` marker;
* :mod:`repro.analysis.directive_rules` — checkers over every
  :class:`~repro.directives.registry.AnnotatedKernel`;
* :mod:`repro.analysis.hotpath` — AST checkers over the marked Python
  hot paths;
* :mod:`repro.analysis.dataflow` — the shared set-lattice abstract
  interpreter the two flow-sensitive families build on;
* :mod:`repro.analysis.precision` — dtype-lattice rules (mixed GEMM,
  silent upcasts, unsafe fp32 accumulation, nondeterministic reductions)
  over the kernel IR and the hot-path AST;
* :mod:`repro.analysis.lifecycle` — protocol rules over the parallel
  layer (use-after-unlink, attach-before-seed, fork-unsafe captures);
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 export for CI forges;
* :mod:`repro.analysis.engine` — orchestration, family selection,
  certification and the report consumed by ``repro analyze``.

Only the dependency-light pieces are imported eagerly; the engine (which
pulls in the machine models) is imported on use::

    from repro.analysis.engine import analyze_repo
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.markers import hot_path, is_hot_path

__all__ = ["Baseline", "Finding", "Location", "Severity", "hot_path", "is_hot_path"]
