"""AST checkers for ``@hot_path`` allocation discipline.

The batched engine's throughput story rests on an allocation-free steady
state: the Picard iterate halves, the batched flux solve and the pflux
GEMV write into :class:`~repro.batch.workspace.FitWorkspace` arenas with
``out=``-style kernels.  PR 1 asserted this only at runtime through
workspace counters; this pass proves it statically.

Functions marked ``@hot_path`` (see :mod:`repro.analysis.markers`) are
scanned for:

``hot-alloc``
    Allocating NumPy constructors (``np.zeros``, ``np.empty``,
    ``np.concatenate``, ``np.tile``...).
``hot-copy``
    ``.copy()`` method calls (fresh buffer per call).
``hot-ufunc-temp``
    NumPy ufunc calls without ``out=`` — each one materialises a
    temporary the arena was built to avoid.
``workspace-alias``
    The same workspace buffer name requested twice in one function: the
    second request silently returns the first buffer's memory, aliasing
    two logical arrays.

The pass is purely syntactic (``ast``), needs no imports of the scanned
modules, and reports a *certification*: hot-path functions with zero raw
allocation findings, which the runtime counters cross-check in
``bench_batch`` (a certified function must show zero steady-state
workspace allocations).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, Location, Severity
from repro.errors import AnalysisError

__all__ = [
    "RULE_ALLOC",
    "RULE_COPY",
    "RULE_UFUNC",
    "RULE_ALIAS",
    "NUMPY_ALLOCATORS",
    "NUMPY_UFUNCS",
    "HotPathScan",
    "scan_source",
    "scan_paths",
]

RULE_ALLOC = "hot-alloc"
RULE_COPY = "hot-copy"
RULE_UFUNC = "hot-ufunc-temp"
RULE_ALIAS = "workspace-alias"

#: NumPy namespace aliases recognised by the pass.
_NUMPY_NAMES = {"np", "numpy"}

#: Constructors that always allocate a fresh array.
NUMPY_ALLOCATORS = frozenset(
    {
        "zeros", "empty", "ones", "full", "array", "copy",
        "zeros_like", "empty_like", "ones_like", "full_like",
        "arange", "linspace", "eye", "identity",
        "concatenate", "stack", "hstack", "vstack", "dstack",
        "tile", "repeat", "meshgrid", "gradient", "outer",
    }
)

#: Ufuncs with an ``out=`` parameter; calling them without one
#: materialises a temporary.
NUMPY_UFUNCS = frozenset(
    {
        "add", "subtract", "multiply", "divide", "true_divide",
        "floor_divide", "power", "mod", "negative", "abs", "absolute",
        "sqrt", "exp", "log", "maximum", "minimum", "clip", "matmul",
    }
)


@dataclass
class HotPathScan:
    """Result of scanning one or more source trees."""

    findings: list[Finding] = field(default_factory=list)
    #: ``module::qualname`` of every ``@hot_path`` function seen.
    hot_functions: list[str] = field(default_factory=list)

    @property
    def certified(self) -> tuple[str, ...]:
        """Hot-path functions with zero raw allocation findings — the set
        the runtime counters must confirm allocation-free."""
        dirty = {f.location.ident for f in self.findings}
        return tuple(fn for fn in self.hot_functions if fn not in dirty)

    def extend(self, other: "HotPathScan") -> None:
        self.findings.extend(other.findings)
        self.hot_functions.extend(other.hot_functions)


def _is_hot_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):  # tolerate @hot_path() spelled with parens
        node = node.func
    if isinstance(node, ast.Name):
        return node.id == "hot_path"
    if isinstance(node, ast.Attribute):
        return node.attr == "hot_path"
    return False


def _numpy_attr(node: ast.expr) -> str | None:
    """``np.zeros`` -> ``zeros``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_NAMES
    ):
        return node.attr
    return None


class _HotFunctionChecker(ast.NodeVisitor):
    """Checks the body of one ``@hot_path`` function."""

    def __init__(self, module: str, qualname: str) -> None:
        self.module = module
        self.qualname = qualname
        self.findings: list[Finding] = []
        self._workspace_names: dict[str, int] = {}

    def _loc(self, node: ast.AST) -> Location:
        return Location(module=self.module, qualname=self.qualname, line=node.lineno)

    def _emit(self, rule: str, node: ast.AST, message: str, fix: str, detail: str) -> None:
        self.findings.append(
            Finding(
                rule_id=rule,
                severity=Severity.WARNING if rule != RULE_ALIAS else Severity.ERROR,
                location=self._loc(node),
                message=message,
                fix_hint=fix,
                detail=detail,
            )
        )

    # Nested function definitions get their own hot/cold decision; do not
    # charge their bodies to the enclosing hot function.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        np_attr = _numpy_attr(node.func)
        kwargs = {kw.arg for kw in node.keywords}
        if np_attr in NUMPY_ALLOCATORS:
            self._emit(
                RULE_ALLOC,
                node,
                f"allocating call np.{np_attr}(...) inside @hot_path function",
                "preallocate through the FitWorkspace arena and write with out=",
                f"np.{np_attr}",
            )
        elif np_attr in NUMPY_UFUNCS and "out" not in kwargs:
            self._emit(
                RULE_UFUNC,
                node,
                f"np.{np_attr}(...) without out= materialises a temporary "
                f"inside @hot_path function",
                f"pass out=<workspace buffer> to np.{np_attr}",
                f"np.{np_attr}",
            )
        elif np_attr is None and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "copy" and not node.args and not node.keywords:
                self._emit(
                    RULE_COPY,
                    node,
                    ".copy() allocates a fresh buffer inside @hot_path function",
                    "reuse a workspace buffer (np.copyto into a preallocated array)",
                    ".copy",
                )
            elif (
                attr == "array"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id not in _NUMPY_NAMES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
                first = self._workspace_names.setdefault(name, node.lineno)
                if first != node.lineno:
                    self._emit(
                        RULE_ALIAS,
                        node,
                        f"workspace buffer '{name}' requested twice (first at line "
                        f"{first}): the second request aliases the first buffer's memory",
                        f"give each logical buffer a distinct name (e.g. '{name}_2')",
                        f"ws:{name}",
                    )
        self.generic_visit(node)


class _ModuleScanner(ast.NodeVisitor):
    """Finds ``@hot_path`` functions and dispatches the body checker."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.scan = HotPathScan()
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qualname = ".".join((*self._class_stack, node.name))
        if any(_is_hot_decorator(d) for d in node.decorator_list):
            self.scan.hot_functions.append(f"{self.module}::{qualname}")
            checker = _HotFunctionChecker(self.module, qualname)
            for stmt in node.body:
                checker.visit(stmt)
            self.scan.findings.extend(checker.findings)
        else:  # still recurse: nested/hot methods inside plain functions
            self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        self._handle_function(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def scan_source(source: str, module: str) -> HotPathScan:
    """Scan one module's source text for hot-path violations."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {module}: {exc}") from None
    scanner = _ModuleScanner(module)
    scanner.visit(tree)
    return scanner.scan


def _module_name(path: Path, root: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    return ".".join(("repro", *rel.parts))


def scan_paths(paths, *, package_root: Path | None = None) -> HotPathScan:
    """Scan ``.py`` files (or directories of them) for hot-path rules.

    ``package_root`` anchors the dotted module names (defaults to the
    installed ``repro`` package directory).
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    scan = HotPathScan()
    for p in paths:
        p = Path(p)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            if not f.exists():
                raise AnalysisError(f"cannot scan missing file {f}")
            module = _module_name(f, package_root) if f.is_relative_to(package_root) else str(f)
            scan.extend(scan_source(f.read_text(), module))
    return scan
