"""Findings model of the portability linter.

A :class:`Finding` is one statically-detected portability defect: a rule
id, a severity, a :class:`Location` (either ``subroutine::kernel`` inside
a directive registry or ``module::qualname`` inside a Python source
file), a human message and a machine-actionable fix hint.  Findings are
identified across runs by a :attr:`~Finding.fingerprint` that is stable
under message rewording and line-number drift — the unit the baseline
file suppresses.

Rule ids are kebab-case and documented in ``docs/ANALYSIS.md``:

=====================  ======================================================
rule id                paper motivation
=====================  ======================================================
``directive-race``     shared arrays written under ``loop gang``/``teams``
                       mappings without ``reduction``/``private``/atomic
                       (the Figures 2/3 scalar-reduction requirement)
``implicit-transfer``  arrays touched by a nest but absent from the
                       enclosing data environment (Section 6.2, Intel PVC)
``excess-traffic``     modeled HBM movement exceeding the streaming-byte
                       bound by a configurable ratio (Figure 5's 3.7x
                       OpenACC-on-AMD excess)
``async-no-wait``      ``async`` clauses with no matching ``!$acc wait``
``missing-data-region``  kernels on explicit-memory sites (Sunspot) with
                       no enclosing ``target data`` region
``hot-alloc``          allocating NumPy constructors inside ``@hot_path``
``hot-copy``           ``.copy()`` inside ``@hot_path``
``hot-ufunc-temp``     ufunc calls without ``out=`` inside ``@hot_path``
``workspace-alias``    one :class:`~repro.batch.workspace.FitWorkspace`
                       buffer name requested for two logical buffers
=====================  ======================================================

The precision-flow and concurrency-lifecycle families (same table
convention; prefixes ``precision-``, ``lifecycle-``):

==============================  =============================================
rule id                         motivation
==============================  =============================================
``precision-mixed-gemm``        fp32/fp64 operands feeding one GEMM or
                                reduction (fp32 bandwidth, fp64 arithmetic)
``precision-silent-upcast``     mixed-width arithmetic outside a declared
                                reduction, or fp32 inputs writing fp64 output
``precision-unsafe-accumulate`` fp32 folded into a fp32 accumulator with no
                                fp64 refinement (the EXL-50U recipe's risk)
``precision-nondet-reduction``  a lowering that combines reduction partials
                                in completion order, breaking the fleet's
                                bit-identical merge
``lifecycle-use-after-unlink``  arena views produced after close/unlink, or
                                release() with the table cache still seeded
                                (the PR 4 segfault)
``lifecycle-attach-before-seed``  worker engine built before the shared
                                view is seeded (silent private O(N^3) rebuild)
``lifecycle-missing-drop``      an arena handle that neither escapes nor is
                                reliably torn down
``fork-unsafe-capture``         lambda / nested function / live arena handle
                                in worker-construction arguments
``lifecycle-exit-before-flush``  ``os._exit`` reachable before queue
                                ``close()`` + ``join_thread()``
==============================  =============================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Location", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is; drives the exit-code policy."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    Directive findings set ``subroutine``/``kernel``; hot-path findings
    set ``module``/``qualname`` (and a display-only ``line``).  The
    :attr:`ident` deliberately omits the line number so fingerprints
    survive unrelated edits above the finding.
    """

    subroutine: str | None = None
    kernel: str | None = None
    module: str | None = None
    qualname: str | None = None
    line: int | None = None

    @property
    def ident(self) -> str:
        """Stable identity string (no line numbers)."""
        if self.subroutine or self.kernel:
            return f"{self.subroutine or '?'}::{self.kernel or '?'}"
        return f"{self.module or '?'}::{self.qualname or '?'}"

    @property
    def label(self) -> str:
        """Display string (includes the line when known)."""
        if self.line is not None:
            return f"{self.ident}:{self.line}"
        return self.ident

    def to_dict(self) -> dict:
        """JSON-ready mapping (``None`` fields omitted)."""
        out: dict = {}
        for key in ("subroutine", "kernel", "module", "qualname", "line"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class Finding:
    """One statically-detected portability defect."""

    rule_id: str
    severity: Severity
    location: Location
    message: str
    fix_hint: str = ""
    #: Short stable token disambiguating same-rule findings at one
    #: location (the offending array, call or ``model@site`` pair).
    detail: str = ""
    #: Free-form numeric payload (predicted bytes, modeled ratios...).
    data: dict = field(default_factory=dict, compare=False)

    @property
    def fingerprint(self) -> str:
        """Baseline-matching identity: rule + location + detail."""
        return f"{self.rule_id}@{self.location.ident}#{self.detail}"

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        out = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "location": self.location.to_dict(),
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        if self.detail:
            out["detail"] = self.detail
        if self.data:
            out["data"] = self.data
        return out

    def render(self) -> str:
        """One- or two-line human rendering."""
        text = f"{self.severity.value:<7} {self.rule_id:<20} {self.location.label}: {self.message}"
        if self.fix_hint:
            text += f"\n        fix: {self.fix_hint}"
        return text
