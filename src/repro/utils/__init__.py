"""Small shared utilities: physical constants, formatting, statistics."""

from repro.utils.constants import MU0, TWO_PI
from repro.utils.tables import Table, format_seconds, format_bytes, format_speedup
from repro.utils.stats import geomean, relative_error, within_factor

__all__ = [
    "MU0",
    "TWO_PI",
    "Table",
    "format_seconds",
    "format_bytes",
    "format_speedup",
    "geomean",
    "relative_error",
    "within_factor",
]
