"""Physical and numeric constants used throughout the library."""

from __future__ import annotations

import math

#: Vacuum permeability [H/m].
MU0: float = 4.0e-7 * math.pi

#: 2*pi, spelled out for readability in flux <-> flux-per-radian conversions.
TWO_PI: float = 2.0 * math.pi

#: Bytes in one FP64 word.
FP64_BYTES: int = 8

#: Conventional SI prefixes for bandwidth/FLOP formatting.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

#: Bytes per KiB/MiB/GiB (binary prefixes used for capacities).
KIB = 1024
MIB = 1024**2
GIB = 1024**3
