"""ASCII table rendering for benchmark harness output.

The benchmark scripts print paper-vs-measured tables; this module provides a
minimal, dependency-free table formatter with column alignment plus helpers
for rendering seconds, bytes and speedup factors the way the paper does
(e.g. ``1.48e-2`` s, ``70x``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["Table", "format_seconds", "format_bytes", "format_speedup"]


def format_seconds(t: float) -> str:
    """Render a time-per-call in the paper's scientific style (``1.48e-2``)."""
    if t == 0.0:
        return "0"
    if 0.1 <= abs(t) < 1000.0:
        return f"{t:.3g}"
    return f"{t:.2e}"


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-free SI suffix (``4.31 GB``)."""
    for suffix, scale in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {suffix}"
    return f"{n:.0f} B"


def format_speedup(s: float) -> str:
    """Render a speedup factor the way the paper prints them (``70x``)."""
    if s >= 9.5:
        return f"{s:.0f}x"
    if s >= 0.95:
        return f"{s:.1f}x"
    return f"{s:.2f}x"


class Table:
    """A simple left-padded ASCII table.

    >>> t = Table(["grid", "time"], title="demo")
    >>> t.add_row(["65x65", "2.4e-3"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        widths = self._widths()
        sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(
            "| " + " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)) + " |"
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
