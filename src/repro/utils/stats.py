"""Statistics helpers used by the study driver and the test suite."""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["geomean", "relative_error", "within_factor"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Used for aggregating speedups across grid sizes, where an arithmetic mean
    would overweight the largest grids.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0.0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (reference must be nonzero)."""
    if reference == 0.0:
        raise ValueError("relative_error with zero reference")
    return abs(measured - reference) / abs(reference)


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when ``measured`` is within a multiplicative ``factor`` of
    ``reference`` (both strictly positive).

    This is the paper-shape acceptance test used throughout EXPERIMENTS.md:
    ``within_factor(x, y, 2.0)`` means ``y/2 <= x <= 2*y``.
    """
    if measured <= 0.0 or reference <= 0.0:
        raise ValueError("within_factor requires positive values")
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    ratio = measured / reference
    # Tiny slack keeps exact-boundary comparisons symmetric under float
    # rounding (x*f/x can land a ulp above f).
    eps = 1e-12
    return 1.0 / factor * (1.0 - eps) <= ratio <= factor * (1.0 + eps)
