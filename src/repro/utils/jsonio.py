"""Shared JSON emission for the ``--json`` CLI flags.

``repro analyze``, ``repro census`` and ``repro sites`` all emit machine
readable output through this one module so the formatting contract
(two-space indent, preserved key order, trailing newline) is identical
across subcommands and stable for CI log diffing.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.utils.tables import Table

__all__ = ["dump_json", "table_to_dict"]


def dump_json(payload: Any, stream: IO[str] | None = None) -> str:
    """Serialise ``payload`` in the repo's canonical JSON style.

    Key order is preserved (not sorted) so payload authors control the
    reading order; a trailing newline keeps shell pipelines tidy.  When
    ``stream`` is given the text is also written there.
    """
    text = json.dumps(payload, indent=2, allow_nan=False) + "\n"
    if stream is not None:
        stream.write(text)
    return text


def table_to_dict(table: Table) -> dict[str, Any]:
    """A :class:`~repro.utils.tables.Table` as a JSON-friendly mapping."""
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
    }
