"""repro — reproduction of the SC-W 2023 EFIT GPU performance-portability study.

Public API overview
-------------------

``repro.efit``
    The Grad-Shafranov equilibrium-reconstruction substrate: grids, Green
    functions, solvers, diagnostics, the ``fit_`` Picard loop and g-file I/O.
``repro.directives``
    OpenACC / OpenMP-target directive objects, pragma parsing and
    cross-model translation.
``repro.hardware`` / ``repro.machines``
    Mechanistic device models (A100, MI250X GCD, PVC stack, host CPUs) and
    the Perlmutter / Frontier / Sunspot node configurations.
``repro.runtime`` / ``repro.compilers``
    The simulated offload runtime (unified memory, kernel launches,
    counters) and the NVHPC / CCE / oneAPI compiler models.
``repro.core``
    The paper's study itself: the GPU-offloaded ``pflux_``, the portability
    sweep and the table/figure generators.
"""

from repro.version import __version__

__all__ = ["__version__"]
