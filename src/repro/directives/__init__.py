"""Directive-based offload DSL: OpenACC and OpenMP-target pragmas as objects.

The paper's entire methodology is "annotate the existing loops with
directives and let the compiler offload them".  This package models that
workflow: loop nests are described by a small IR
(:class:`~repro.directives.ir.LoopNest`), pragmas are first-class objects
that render to — and parse from — the exact strings of the paper's
Figures 2 and 3, and :mod:`~repro.directives.translate` performs the
OpenACC <-> OpenMP mapping of Tables 4 and 5.
"""

from repro.directives.ir import Loop, ArrayRef, LoopNest, AccessMode
from repro.directives.openacc import (
    AccDirective,
    AccKernels,
    AccEndKernels,
    AccParallelLoop,
    AccLoop,
    parse_acc,
)
from repro.directives.openmp import (
    OmpDirective,
    OmpTargetTeamsDistribute,
    OmpParallelDo,
    OmpLoop,
    OmpTargetData,
    OmpEndTargetData,
    parse_omp,
)
from repro.directives.translate import acc_to_omp, omp_to_acc
from repro.directives.registry import KernelRegistry, AnnotatedKernel, directive_census

__all__ = [
    "Loop",
    "ArrayRef",
    "LoopNest",
    "AccessMode",
    "AccDirective",
    "AccKernels",
    "AccEndKernels",
    "AccParallelLoop",
    "AccLoop",
    "parse_acc",
    "OmpDirective",
    "OmpTargetTeamsDistribute",
    "OmpParallelDo",
    "OmpLoop",
    "OmpTargetData",
    "OmpEndTargetData",
    "parse_omp",
    "acc_to_omp",
    "omp_to_acc",
    "KernelRegistry",
    "AnnotatedKernel",
    "directive_census",
]
