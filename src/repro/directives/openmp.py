"""OpenMP-target directive objects and pragma parsing.

Renders and parses the forms of Table 5 and Figure 3 plus the explicit
data-region directives the Intel port needs (Section 6.2)::

    !$omp target teams distribute reduction(+:tempsum1,tempsum2)
    !$omp target teams distribute parallel do collapse(2)
    !$omp parallel do reduction(+:tempsum1,tempsum2) collapse(2)
    !$omp loop
    !$omp target data map(to:gridpc,pcurr) map(from:psi)
    !$omp end target data
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DirectiveParseError

__all__ = [
    "OmpDirective",
    "OmpTargetTeamsDistribute",
    "OmpParallelDo",
    "OmpLoop",
    "OmpTargetData",
    "OmpEndTargetData",
    "parse_omp",
]

_SENTINEL = "!$omp"


@dataclass(frozen=True)
class OmpDirective:
    def to_pragma(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def model(self) -> str:
        return "openmp"


@dataclass(frozen=True)
class OmpTargetTeamsDistribute(OmpDirective):
    """``!$omp target teams distribute [parallel do] [collapse(n)] [reduction]``.

    With ``parallel_do=True`` this is the fused form used on the simple
    O(N^2) loops; without, it distributes the outer loop across teams and
    an inner :class:`OmpParallelDo` handles the thread level (the paper's
    Figure 3 split).
    """

    parallel_do: bool = False
    collapse: int | None = None
    reduction: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.collapse is not None and self.collapse < 2:
            raise DirectiveParseError("collapse requires >= 2 loops")

    def to_pragma(self) -> str:
        parts = [f"{_SENTINEL} target teams distribute"]
        if self.parallel_do:
            parts.append("parallel do")
        if self.reduction:
            parts.append(f"reduction(+:{','.join(self.reduction)})")
        if self.collapse is not None:
            parts.append(f"collapse({self.collapse})")
        return " ".join(parts)


@dataclass(frozen=True)
class OmpParallelDo(OmpDirective):
    """``!$omp parallel do [reduction] [collapse(n)]`` — inner thread level."""

    collapse: int | None = None
    reduction: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.collapse is not None and self.collapse < 2:
            raise DirectiveParseError("collapse requires >= 2 loops")

    def to_pragma(self) -> str:
        parts = [f"{_SENTINEL} parallel do"]
        if self.reduction:
            parts.append(f"reduction(+:{','.join(self.reduction)})")
        if self.collapse is not None:
            parts.append(f"collapse({self.collapse})")
        return " ".join(parts)


@dataclass(frozen=True)
class OmpLoop(OmpDirective):
    """``!$omp loop`` — the descriptive loop directive that unlocks the
    better AMD lowering (Section 6.2)."""

    def to_pragma(self) -> str:
        return f"{_SENTINEL} loop"


@dataclass(frozen=True)
class OmpTargetData(OmpDirective):
    """``!$omp target data map(to:...) map(from:...)`` — the explicit data
    region required for performance on Intel PVC (no unified memory)."""

    map_to: tuple[str, ...] = ()
    map_from: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.map_to and not self.map_from:
            raise DirectiveParseError("target data region with no maps")

    def to_pragma(self) -> str:
        parts = [f"{_SENTINEL} target data"]
        if self.map_to:
            parts.append(f"map(to:{','.join(self.map_to)})")
        if self.map_from:
            parts.append(f"map(from:{','.join(self.map_from)})")
        return " ".join(parts)


@dataclass(frozen=True)
class OmpEndTargetData(OmpDirective):
    def to_pragma(self) -> str:
        return f"{_SENTINEL} end target data"


_COLLAPSE_RE = re.compile(r"collapse\((\d+)\)")
_REDUCTION_RE = re.compile(r"reduction\(\+:([\w,\s]+)\)")
_MAP_RE = re.compile(r"map\((to|from):([\w,\s]+)\)")


def parse_omp(pragma: str) -> OmpDirective:
    """Parse an OpenMP pragma string (round-trips with ``to_pragma``)."""
    text = " ".join(pragma.strip().split())
    low = text.lower()
    if not low.startswith(_SENTINEL):
        raise DirectiveParseError(f"not an OpenMP pragma: {pragma!r}")
    body = low[len(_SENTINEL) :].strip()
    if body == "end target data":
        return OmpEndTargetData()
    if body.startswith("target data"):
        maps = {"to": (), "from": ()}
        for kind, names in _MAP_RE.findall(body):
            maps[kind] = tuple(n.strip() for n in names.split(",") if n.strip())
        return OmpTargetData(map_to=maps["to"], map_from=maps["from"])

    reduction: tuple[str, ...] = ()
    m = _REDUCTION_RE.search(body)
    if m:
        reduction = tuple(v.strip() for v in m.group(1).split(",") if v.strip())
        body = _REDUCTION_RE.sub("", body)
    collapse = None
    m = _COLLAPSE_RE.search(body)
    if m:
        collapse = int(m.group(1))
        body = _COLLAPSE_RE.sub("", body)
    tokens = body.split()
    if tokens == ["loop"]:
        if reduction or collapse:
            raise DirectiveParseError("!$omp loop takes no clauses in this subset")
        return OmpLoop()
    if tokens[:3] == ["target", "teams", "distribute"]:
        rest = tokens[3:]
        if rest == ["parallel", "do"]:
            return OmpTargetTeamsDistribute(
                parallel_do=True, collapse=collapse, reduction=reduction
            )
        if rest == []:
            return OmpTargetTeamsDistribute(
                parallel_do=False, collapse=collapse, reduction=reduction
            )
        raise DirectiveParseError(f"unrecognised clauses {rest} in {pragma!r}")
    if tokens[:2] == ["parallel", "do"]:
        if tokens[2:]:
            raise DirectiveParseError(f"unrecognised clauses {tokens[2:]} in {pragma!r}")
        return OmpParallelDo(collapse=collapse, reduction=reduction)
    raise DirectiveParseError(f"unrecognised OpenMP pragma: {pragma!r}")
