"""Kernel registry and directive census (Tables 4 and 5).

An :class:`AnnotatedKernel` ties together a loop nest, its OpenACC and
OpenMP annotations, and the numeric payload that actually computes it.
:func:`directive_census` counts pragma lines per directive kind — exactly
how the paper reports its "8 lines, ~2 % of the routine" productivity
claim.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.directives.ir import LoopNest
from repro.directives.openacc import AccDirective
from repro.directives.openmp import OmpDirective
from repro.errors import DirectiveError

__all__ = ["AnnotatedKernel", "KernelRegistry", "directive_census"]


@dataclass(frozen=True)
class AnnotatedKernel:
    """One offloadable loop nest with both annotations.

    ``payload`` executes the kernel numerically (NumPy) when the simulated
    device "runs" it; results are identical to the CPU path by
    construction, which the tests verify.
    """

    nest: LoopNest
    acc_directives: tuple[AccDirective, ...]
    omp_directives: tuple[OmpDirective, ...]
    payload: Callable[..., object] | None = None
    #: Coarse complexity class used by reports ("O(N^3)", "O(N^2)", ...).
    complexity: str = "O(N^2)"
    #: Device kernels this region launches (a fused ``kernels`` region
    #: covering several loops emits several launches).
    launches: int = 1

    @property
    def name(self) -> str:
        return self.nest.name


class KernelRegistry:
    """Ordered collection of the kernels forming one offloaded subroutine."""

    def __init__(self, subroutine: str, total_source_lines: int) -> None:
        if total_source_lines < 1:
            raise DirectiveError(
                "subroutine must have at least one source line", subroutine=subroutine
            )
        self.subroutine = subroutine
        #: Source-line count of the routine being annotated; the paper's
        #: pflux_ is ~400 lines (8 directive lines = 2 %).
        self.total_source_lines = total_source_lines
        self._kernels: dict[str, AnnotatedKernel] = {}

    def register(self, kernel: AnnotatedKernel) -> AnnotatedKernel:
        if kernel.name in self._kernels:
            raise DirectiveError(
                "kernel already registered",
                kernel=kernel.name,
                subroutine=self.subroutine,
            )
        self._kernels[kernel.name] = kernel
        return kernel

    def __iter__(self):
        return iter(self._kernels.values())

    def __len__(self) -> int:
        return len(self._kernels)

    def get(self, name: str) -> AnnotatedKernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise DirectiveError(
                "no kernel with this name is registered",
                kernel=name,
                subroutine=self.subroutine,
            ) from None

    # -- census -----------------------------------------------------------------
    def acc_census(self) -> dict[str, int]:
        return directive_census(d for k in self for d in k.acc_directives)

    def omp_census(self) -> dict[str, int]:
        return directive_census(d for k in self for d in k.omp_directives)

    def census_table(self, model: str) -> list[tuple[str, int, float]]:
        """Rows of (pragma form, count, % of routine lines) — Table 4/5."""
        if model == "openacc":
            census = self.acc_census()
        elif model == "openmp":
            census = self.omp_census()
        else:
            raise DirectiveError(
                f"unknown model {model!r}", subroutine=self.subroutine
            )
        return [
            (pragma, count, 100.0 * count / self.total_source_lines)
            for pragma, count in sorted(census.items())
        ]

    def directive_line_count(self, model: str) -> int:
        return sum(count for _, count, _ in self.census_table(model))


def directive_census(directives) -> dict[str, int]:
    """Count directives by their *rendered form without clause values* —
    the granularity of the paper's Tables 4 and 5."""
    counter: Counter[str] = Counter()
    for d in directives:
        counter[_canonical_form(d)] += 1
    return dict(counter)


def _canonical_form(directive) -> str:
    """The pragma with numeric arguments and variable lists stripped."""
    import re

    text = directive.to_pragma()
    text = re.sub(r"\(\+?:?[^)]*\)", "", text)  # drop clause arguments
    # Tuning clauses (accelerator-specific knobs) are not part of the
    # paper's census rows: "!$acc parallel loop gang worker".
    text = re.sub(r"\b(num_workers|vector_length)\b", "", text)
    text = re.sub(r"\s+", " ", text).strip()
    return text
