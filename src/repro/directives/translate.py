"""OpenACC <-> OpenMP directive translation.

Section 5.2 of the paper stresses that its Tables 4 and 5 "map precisely"
so readers can translate between the models.  This module encodes that
mapping:

=====================================  =============================================
OpenACC                                OpenMP
=====================================  =============================================
``!$acc kernel``                       ``!$omp target teams distribute parallel do
                                       collapse(2)``
``!$acc parallel loop gang worker``    ``!$omp target teams distribute reduction``
``!$acc loop vector reduction``        ``!$omp parallel do reduction collapse(2)``
=====================================  =============================================

The inverse direction is defined so that a round trip returns a directive
with the same offload semantics (clause parameters that have no analog —
``num_workers`` / ``vector_length`` — are dropped, as the paper notes these
are accelerator-specific tuning knobs).

The two models place ``reduction`` clauses differently: the paper's
OpenACC declares it only on the inner ``!$acc loop`` while its OpenMP
declares it on *both* the ``teams distribute`` and the ``parallel do``
level (Tables 4/5).  Translating one directive at a time cannot know the
other level's clauses, so :func:`translate_kernel_acc_to_omp` /
:func:`translate_kernel_omp_to_acc` translate a whole
:class:`~repro.directives.registry.AnnotatedKernel` annotation set and
hoist/strip the reduction the way the paper's tables do — those are the
functions whose output censuses reproduce Tables 4 and 5 exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.directives.openacc import (
    AccDirective,
    AccEndKernels,
    AccKernels,
    AccLoop,
    AccParallelLoop,
    AccWait,
)
from repro.directives.openmp import (
    OmpDirective,
    OmpEndTargetData,
    OmpLoop,
    OmpParallelDo,
    OmpTargetData,
    OmpTargetTeamsDistribute,
)
from repro.errors import TranslationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.directives.registry import AnnotatedKernel

__all__ = [
    "acc_to_omp",
    "omp_to_acc",
    "translate_kernel_acc_to_omp",
    "translate_kernel_omp_to_acc",
]


def acc_to_omp(directive: AccDirective) -> OmpDirective | None:
    """Translate one OpenACC directive to its OpenMP-target counterpart.

    ``!$acc end kernel`` has no OpenMP analog (the fused ``parallel do``
    form needs no end marker) and maps to ``None``.
    """
    if isinstance(directive, AccKernels):
        # async is an accelerator-side scheduling knob with no analog in
        # the paper's OpenMP subset; dropped like the tuning clauses.
        return OmpTargetTeamsDistribute(parallel_do=True, collapse=2)
    if isinstance(directive, (AccEndKernels, AccWait)):
        return None
    if isinstance(directive, AccParallelLoop):
        return OmpTargetTeamsDistribute(
            parallel_do=False, reduction=directive.reduction
        )
    if isinstance(directive, AccLoop):
        return OmpParallelDo(reduction=directive.reduction, collapse=2)
    raise TranslationError(f"no OpenMP mapping for {type(directive).__name__}")


def omp_to_acc(directive: OmpDirective) -> AccDirective | None:
    """Translate one OpenMP directive back to OpenACC.

    Data-region directives map to ``None``: the OpenACC ports in the paper
    rely on unified memory and carry no explicit data clauses.
    """
    if isinstance(directive, OmpTargetTeamsDistribute):
        if directive.parallel_do:
            return AccKernels()
        return AccParallelLoop(gang=True, worker=True, reduction=directive.reduction)
    if isinstance(directive, OmpParallelDo):
        return AccLoop(vector=True, reduction=directive.reduction)
    if isinstance(directive, (OmpTargetData, OmpEndTargetData, OmpLoop)):
        return None
    raise TranslationError(f"no OpenACC mapping for {type(directive).__name__}")


def translate_kernel_acc_to_omp(kernel: "AnnotatedKernel") -> tuple[OmpDirective, ...]:
    """Translate a kernel's whole OpenACC annotation set to OpenMP.

    Unlike the per-directive :func:`acc_to_omp`, this sees the full set
    and reproduces the paper's clause placement: the reduction declared
    on the inner ``!$acc loop`` is *also* hoisted onto the translated
    ``teams distribute`` level, exactly as Table 5 writes it.
    """
    inner_reductions: tuple[str, ...] = ()
    for d in kernel.acc_directives:
        if isinstance(d, AccLoop) and d.reduction:
            inner_reductions = d.reduction
            break
    out: list[OmpDirective] = []
    for d in kernel.acc_directives:
        omp = acc_to_omp(d)
        if omp is None:
            continue
        if (
            isinstance(d, AccParallelLoop)
            and isinstance(omp, OmpTargetTeamsDistribute)
            and not omp.reduction
            and inner_reductions
        ):
            omp = OmpTargetTeamsDistribute(
                parallel_do=omp.parallel_do, reduction=inner_reductions
            )
        out.append(omp)
    return tuple(out)


def translate_kernel_omp_to_acc(kernel: "AnnotatedKernel") -> tuple[AccDirective, ...]:
    """Translate a kernel's whole OpenMP annotation set to OpenACC.

    The inverse clause placement of :func:`translate_kernel_acc_to_omp`:
    OpenACC declares the reduction only on the inner loop, so the
    ``teams distribute``-level copy is stripped from the translated
    ``parallel loop`` (Table 4 has no reduction on that row).
    """
    out: list[AccDirective] = []
    for d in kernel.omp_directives:
        acc = omp_to_acc(d)
        if acc is None:
            continue
        if isinstance(d, OmpTargetTeamsDistribute) and isinstance(acc, AccParallelLoop):
            acc = AccParallelLoop(gang=acc.gang, worker=acc.worker)
        out.append(acc)
    return tuple(out)
