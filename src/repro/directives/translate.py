"""OpenACC <-> OpenMP directive translation.

Section 5.2 of the paper stresses that its Tables 4 and 5 "map precisely"
so readers can translate between the models.  This module encodes that
mapping:

=====================================  =============================================
OpenACC                                OpenMP
=====================================  =============================================
``!$acc kernel``                       ``!$omp target teams distribute parallel do
                                       collapse(2)``
``!$acc parallel loop gang worker``    ``!$omp target teams distribute reduction``
``!$acc loop vector reduction``        ``!$omp parallel do reduction collapse(2)``
=====================================  =============================================

The inverse direction is defined so that a round trip returns a directive
with the same offload semantics (clause parameters that have no analog —
``num_workers`` / ``vector_length`` — are dropped, as the paper notes these
are accelerator-specific tuning knobs).
"""

from __future__ import annotations

from repro.directives.openacc import (
    AccDirective,
    AccEndKernels,
    AccKernels,
    AccLoop,
    AccParallelLoop,
)
from repro.directives.openmp import (
    OmpDirective,
    OmpEndTargetData,
    OmpLoop,
    OmpParallelDo,
    OmpTargetData,
    OmpTargetTeamsDistribute,
)
from repro.errors import TranslationError

__all__ = ["acc_to_omp", "omp_to_acc"]


def acc_to_omp(directive: AccDirective) -> OmpDirective | None:
    """Translate one OpenACC directive to its OpenMP-target counterpart.

    ``!$acc end kernel`` has no OpenMP analog (the fused ``parallel do``
    form needs no end marker) and maps to ``None``.
    """
    if isinstance(directive, AccKernels):
        return OmpTargetTeamsDistribute(parallel_do=True, collapse=2)
    if isinstance(directive, AccEndKernels):
        return None
    if isinstance(directive, AccParallelLoop):
        return OmpTargetTeamsDistribute(
            parallel_do=False, reduction=directive.reduction
        )
    if isinstance(directive, AccLoop):
        return OmpParallelDo(reduction=directive.reduction, collapse=2)
    raise TranslationError(f"no OpenMP mapping for {type(directive).__name__}")


def omp_to_acc(directive: OmpDirective) -> AccDirective | None:
    """Translate one OpenMP directive back to OpenACC.

    Data-region directives map to ``None``: the OpenACC ports in the paper
    rely on unified memory and carry no explicit data clauses.
    """
    if isinstance(directive, OmpTargetTeamsDistribute):
        if directive.parallel_do:
            return AccKernels()
        return AccParallelLoop(gang=True, worker=True, reduction=directive.reduction)
    if isinstance(directive, OmpParallelDo):
        return AccLoop(vector=True, reduction=directive.reduction)
    if isinstance(directive, (OmpTargetData, OmpEndTargetData, OmpLoop)):
        return None
    raise TranslationError(f"no OpenACC mapping for {type(directive).__name__}")
