"""OpenACC directive objects and pragma parsing.

Renders and parses the exact pragma forms the paper uses (Table 4 and
Figure 2)::

    !$acc kernel
    !$acc end kernel
    !$acc parallel loop gang worker num_workers(4) vector_length(32)
    !$acc loop vector reduction(+:tempsum1,tempsum2)

plus the ``async(q)`` clause and the ``!$acc wait`` directive, which the
paper's kernels do not use but the portability linter checks for
(``async`` without a matching ``wait`` is a statically detectable
ordering bug).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import DirectiveParseError

__all__ = [
    "AccDirective",
    "AccKernels",
    "AccEndKernels",
    "AccParallelLoop",
    "AccLoop",
    "AccWait",
    "parse_acc",
]

_SENTINEL = "!$acc"


@dataclass(frozen=True)
class AccDirective:
    """Base class; concrete directives render with :meth:`to_pragma`."""

    def to_pragma(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def model(self) -> str:
        return "openacc"


@dataclass(frozen=True)
class AccKernels(AccDirective):
    """``!$acc kernel [async(q)]`` — compiler-auto-parallelised region.

    (The paper spells it without the trailing "s"; we reproduce that.)
    ``async_queue`` detaches the region onto an async queue; the linter's
    ``async-no-wait`` rule requires a matching :class:`AccWait`.
    """

    async_queue: int | None = None

    def __post_init__(self) -> None:
        if self.async_queue is not None and self.async_queue < 0:
            raise DirectiveParseError("async queue must be >= 0")

    def to_pragma(self) -> str:
        text = f"{_SENTINEL} kernel"
        if self.async_queue is not None:
            text += f" async({self.async_queue})"
        return text


@dataclass(frozen=True)
class AccEndKernels(AccDirective):
    def to_pragma(self) -> str:
        return f"{_SENTINEL} end kernel"


@dataclass(frozen=True)
class AccParallelLoop(AccDirective):
    """``!$acc parallel loop [gang] [worker] [num_workers(n)] [vector_length(n)]``."""

    gang: bool = True
    worker: bool = False
    num_workers: int | None = None
    vector_length: int | None = None
    reduction: tuple[str, ...] = ()
    async_queue: int | None = None

    def __post_init__(self) -> None:
        if self.num_workers is not None and self.num_workers < 1:
            raise DirectiveParseError("num_workers must be >= 1")
        if self.vector_length is not None and self.vector_length < 1:
            raise DirectiveParseError("vector_length must be >= 1")
        if self.async_queue is not None and self.async_queue < 0:
            raise DirectiveParseError("async queue must be >= 0")

    def to_pragma(self) -> str:
        parts = [f"{_SENTINEL} parallel loop"]
        if self.gang:
            parts.append("gang")
        if self.worker:
            parts.append("worker")
        if self.num_workers is not None:
            parts.append(f"num_workers({self.num_workers})")
        if self.vector_length is not None:
            parts.append(f"vector_length({self.vector_length})")
        if self.reduction:
            parts.append(f"reduction(+:{','.join(self.reduction)})")
        if self.async_queue is not None:
            parts.append(f"async({self.async_queue})")
        return " ".join(parts)


@dataclass(frozen=True)
class AccLoop(AccDirective):
    """``!$acc loop [vector] [reduction(+:...)]`` — the inner-loop directive."""

    vector: bool = True
    reduction: tuple[str, ...] = ()

    def to_pragma(self) -> str:
        parts = [f"{_SENTINEL} loop"]
        if self.vector:
            parts.append("vector")
        if self.reduction:
            parts.append(f"reduction(+:{','.join(self.reduction)})")
        return " ".join(parts)


@dataclass(frozen=True)
class AccWait(AccDirective):
    """``!$acc wait [(q)]`` — synchronise async work (all queues or one)."""

    queue: int | None = None

    def __post_init__(self) -> None:
        if self.queue is not None and self.queue < 0:
            raise DirectiveParseError("wait queue must be >= 0")

    def to_pragma(self) -> str:
        if self.queue is not None:
            return f"{_SENTINEL} wait({self.queue})"
        return f"{_SENTINEL} wait"


_CLAUSE_RE = re.compile(r"(num_workers|vector_length|async)\((\d+)\)")
_REDUCTION_RE = re.compile(r"reduction\(\+:([\w,\s]+)\)")
_WAIT_RE = re.compile(r"^wait(?:\((\d+)\))?$")


def parse_acc(pragma: str) -> AccDirective:
    """Parse a pragma string back into a directive object.

    Round-trips with ``to_pragma`` (property-tested).  Raises
    :class:`DirectiveParseError` on anything that is not an OpenACC pragma
    of the forms used in the paper.
    """
    text = " ".join(pragma.strip().split())
    low = text.lower()
    if not low.startswith(_SENTINEL):
        raise DirectiveParseError(f"not an OpenACC pragma: {pragma!r}")
    body = low[len(_SENTINEL) :].strip()
    if body in ("end kernel", "end kernels"):
        return AccEndKernels()
    m = _WAIT_RE.match(body)
    if m:
        return AccWait(queue=int(m.group(1)) if m.group(1) else None)
    reduction: tuple[str, ...] = ()
    m = _REDUCTION_RE.search(body)
    if m:
        reduction = tuple(v.strip() for v in m.group(1).split(",") if v.strip())
        body_wo = _REDUCTION_RE.sub("", body)
    else:
        body_wo = body
    clauses = dict((k, int(v)) for k, v in _CLAUSE_RE.findall(body_wo))
    body_wo = _CLAUSE_RE.sub("", body_wo)
    tokens = body_wo.split()
    if tokens in (["kernel"], ["kernels"]):
        return AccKernels(async_queue=clauses.get("async"))
    if tokens[:2] == ["parallel", "loop"]:
        rest = set(tokens[2:])
        unknown = rest - {"gang", "worker", "vector"}
        if unknown:
            raise DirectiveParseError(f"unknown OpenACC clauses {sorted(unknown)} in {pragma!r}")
        return AccParallelLoop(
            gang="gang" in rest,
            worker="worker" in rest,
            num_workers=clauses.get("num_workers"),
            vector_length=clauses.get("vector_length"),
            reduction=reduction,
            async_queue=clauses.get("async"),
        )
    if tokens[:1] == ["loop"]:
        rest = set(tokens[1:])
        unknown = rest - {"vector"}
        if unknown:
            raise DirectiveParseError(f"unknown OpenACC clauses {sorted(unknown)} in {pragma!r}")
        return AccLoop(vector="vector" in rest, reduction=reduction)
    raise DirectiveParseError(f"unrecognised OpenACC pragma: {pragma!r}")
