"""Loop-nest intermediate representation.

A :class:`LoopNest` captures what the cost models need to know about a
Fortran ``do``-loop nest without carrying its source: the iteration space
(outer "distributable" loops vs inner loops), the arithmetic per iteration,
and the arrays it touches with their unique footprints.  From these the IR
derives the quantities the roofline and traffic models consume:

* ``total_flops``          — arithmetic work,
* ``streaming_bytes``      — traffic if every access misses (no reuse),
* ``footprint_bytes``      — traffic if every element is fetched exactly
  once (perfect reuse),
* ``outer_iterations`` / ``inner_iterations`` — exposed parallelism under
  a given directive mapping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from math import prod

from repro.errors import DirectiveError

__all__ = ["AccessMode", "Loop", "ArrayRef", "LoopNest"]


class AccessMode(enum.Enum):
    """How a kernel touches an array (drives the read/write counter split)."""

    READ = "read"
    WRITE = "write"
    READWRITE = "readwrite"


@dataclass(frozen=True)
class Loop:
    """One loop of a nest: an index name and its trip count."""

    index: str
    extent: int

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise DirectiveError(f"loop {self.index} has non-positive extent {self.extent}")


@dataclass(frozen=True)
class ArrayRef:
    """One array referenced by the nest.

    Parameters
    ----------
    elements:
        Unique elements touched over the whole nest execution.
    accesses_per_iteration:
        Reads+writes of this array issued per innermost iteration.
    """

    name: str
    elements: int
    mode: AccessMode = AccessMode.READ
    accesses_per_iteration: float = 1.0
    bytes_per_element: int = 8

    def __post_init__(self) -> None:
        if self.elements < 0:
            raise DirectiveError(f"array {self.name}: negative element count")
        if self.accesses_per_iteration < 0:
            raise DirectiveError(f"array {self.name}: negative access count")
        if self.bytes_per_element < 1:
            raise DirectiveError(f"array {self.name}: non-positive element width")

    @property
    def footprint_bytes(self) -> int:
        return self.elements * self.bytes_per_element

    @property
    def dtype_name(self) -> str:
        """Element type implied by the width (``float32``/``float64``/...),
        the unit the precision-flow rules reason in."""
        return {2: "float16", 4: "float32", 8: "float64"}.get(
            self.bytes_per_element, f"{8 * self.bytes_per_element}-bit"
        )


@dataclass(frozen=True)
class LoopNest:
    """A directive-annotatable loop nest.

    ``n_outer`` marks how many leading loops form the "distribute" level
    (gang/teams); the rest are inner (worker/vector/thread) loops.
    """

    name: str
    loops: tuple[Loop, ...]
    flops_per_iteration: float
    arrays: tuple[ArrayRef, ...] = field(default_factory=tuple)
    n_outer: int = 1
    #: Reduction variables carried across the inner loops (paper kernels
    #: reduce two scalars, tempsum1/tempsum2).
    reductions: tuple[str, ...] = ()
    #: Element width of the reduction accumulators, when the kernel
    #: narrows (or widens) them relative to its operands.  ``None`` means
    #: "the widest read operand" — the Fortran default.  A reduced-precision
    #: kernel that accumulates fp32 operands into fp64 (the
    #: fp32-with-fp64-refinement pattern) declares ``accumulator_bytes=8``
    #: to satisfy the ``precision-unsafe-accumulate`` rule.
    accumulator_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.loops:
            raise DirectiveError("loop nest has no loops", kernel=self.name)
        if not (1 <= self.n_outer <= len(self.loops)):
            raise DirectiveError(
                f"n_outer={self.n_outer} outside 1..{len(self.loops)}",
                kernel=self.name,
            )
        if self.flops_per_iteration < 0:
            raise DirectiveError("negative flops per iteration", kernel=self.name)
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise DirectiveError("duplicate array names in nest", kernel=self.name)
        if self.accumulator_bytes is not None and self.accumulator_bytes < 1:
            raise DirectiveError("non-positive accumulator width", kernel=self.name)

    # -- iteration space -----------------------------------------------------------
    @property
    def total_iterations(self) -> int:
        return prod(loop.extent for loop in self.loops)

    @property
    def outer_iterations(self) -> int:
        return prod(loop.extent for loop in self.loops[: self.n_outer])

    @property
    def inner_iterations(self) -> int:
        return prod(loop.extent for loop in self.loops[self.n_outer :]) if len(self.loops) > self.n_outer else 1

    # -- work ------------------------------------------------------------------------
    @property
    def total_flops(self) -> float:
        return self.flops_per_iteration * self.total_iterations

    @property
    def streaming_bytes(self) -> float:
        """Traffic with zero reuse: every access goes to memory."""
        per_iter = sum(a.accesses_per_iteration * a.bytes_per_element for a in self.arrays)
        return per_iter * self.total_iterations

    @property
    def footprint_bytes(self) -> float:
        """Traffic with perfect reuse: each unique element moves once."""
        return float(sum(a.footprint_bytes for a in self.arrays))

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per *footprint* byte — the roofline upper-bound AI."""
        fb = self.footprint_bytes
        if fb == 0:
            return float("inf")
        return self.total_flops / fb

    def array(self, name: str) -> ArrayRef:
        for a in self.arrays:
            if a.name == name:
                return a
        raise DirectiveError(f"nest has no array {name!r}", kernel=self.name)
