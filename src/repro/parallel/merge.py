"""Merging per-worker observability into one artifact set.

Each scheduler worker records into a private
:class:`~repro.obs.trace.TraceRecorder` and
:class:`~repro.obs.metrics.MetricsRegistry`; after a run the parent
holds one :class:`~repro.parallel.scheduler.WorkerReport` per worker.
This module folds them into:

* :func:`merged_chrome_trace` — a single Chrome-trace payload where the
  parent's scheduling spans occupy pid 0 and every worker gets its own
  pid lane (``worker 0 (pid 4711)``, ...), so ``about:tracing`` /
  Perfetto shows the fleet timeline stacked one lane per process; and
* :func:`merge_metrics` — one aggregated metrics snapshot: scalar
  metrics (counters/gauges) sum across workers, histograms merge
  bucket-wise (identical bounds required, the
  :meth:`~repro.obs.metrics.Histogram.merge` contract).

Both merges are order-independent: reports are keyed by worker id, and
histogram merging is associative/commutative, so the artifacts do not
depend on worker completion order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.errors import ObservabilityError
from repro.obs.export import TRACE_SCHEMA_VERSION
from repro.obs.trace import TraceRecorder
from repro.parallel.scheduler import WorkerReport
from repro.utils.jsonio import dump_json

__all__ = [
    "merged_chrome_trace",
    "write_merged_chrome_trace",
    "merge_metrics",
]

_US = 1e6  # Chrome timestamps are microseconds


def _record_event(record: dict[str, Any], pid: int) -> dict[str, Any] | None:
    """One Chrome event from a ``to_dict()``-shaped trace record."""
    if record.get("kind") == "span":
        if record.get("duration") is None:
            return None  # never closed (worker died mid-span)
        return {
            "ph": "X",
            "pid": pid,
            "tid": int(record.get("thread_id", 0)),
            "name": record["name"],
            "cat": record.get("category", "region"),
            "ts": float(record["start"]) * _US,
            "dur": float(record["duration"]) * _US,
            "args": dict(record.get("attributes", {})),
        }
    if record.get("kind") == "event":
        return {
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": int(record.get("thread_id", 0)),
            "name": record["name"],
            "cat": "event",
            "ts": float(record["timestamp"]) * _US,
            "args": dict(record.get("attributes", {})),
        }
    return None


def merged_chrome_trace(
    reports: Sequence[WorkerReport],
    *,
    parent: TraceRecorder | None = None,
    process_name: str = "repro-pfleet",
) -> dict[str, Any]:
    """One Chrome-trace payload with a pid lane per process.

    The parent recorder (scheduling decisions, per-job events) renders as
    pid 0; worker ``w`` renders as pid ``w + 1`` labelled with its OS
    pid.  Worker clocks are ``time.perf_counter`` readings from separate
    processes — comparable on one machine (CLOCK_MONOTONIC), which is
    the only place a process fleet runs anyway.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"{process_name} parent"},
        }
    ]
    if parent is not None:
        for record in parent.records:
            event = _record_event(record.to_dict(), 0)
            if event is not None:
                events.append(event)
    for report in sorted(reports, key=lambda r: r.worker):
        pid = report.worker + 1
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"worker {report.worker} (pid {report.pid})"},
            }
        )
        for record in report.records:
            event = _record_event(record, pid)
            if event is not None:
                events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "workers": len(reports),
        },
    }


def write_merged_chrome_trace(
    reports: Sequence[WorkerReport],
    path: str | Path,
    *,
    parent: TraceRecorder | None = None,
    process_name: str = "repro-pfleet",
) -> Path:
    """Serialise :func:`merged_chrome_trace` to ``path``."""
    path = Path(path)
    path.write_text(
        dump_json(
            merged_chrome_trace(reports, parent=parent, process_name=process_name)
        )
    )
    return path


def _merge_histogram(into: dict[str, Any], add: dict[str, Any], name: str) -> None:
    if list(into["bounds"]) != list(add["bounds"]):
        raise ObservabilityError(
            f"cannot merge worker histograms {name!r}: bucket bounds differ"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], add["counts"])]
    into["count"] += add["count"]
    into["sum"] += add["sum"]


def merge_metrics(reports: Iterable[WorkerReport]) -> dict[str, Any]:
    """One aggregated snapshot across workers.

    Scalars sum; histograms merge bucket-wise.  The per-worker snapshots
    ride along under ``"per_worker"`` so a fleet-level regression can be
    attributed to the worker that caused it.
    """
    merged: dict[str, Any] = {}
    per_worker: dict[str, dict[str, Any]] = {}
    for report in sorted(reports, key=lambda r: r.worker):
        metrics = report.metrics.get("metrics", {})
        per_worker[str(report.worker)] = metrics
        for name, value in metrics.items():
            if name not in merged:
                merged[name] = (
                    dict(value, counts=list(value["counts"]), bounds=list(value["bounds"]))
                    if isinstance(value, dict)
                    else float(value)
                )
            elif isinstance(value, dict):
                if not isinstance(merged[name], dict):
                    raise ObservabilityError(
                        f"metric {name!r} is a histogram on one worker and a "
                        "scalar on another"
                    )
                _merge_histogram(merged[name], value, name)
            else:
                if isinstance(merged[name], dict):
                    raise ObservabilityError(
                        f"metric {name!r} is a histogram on one worker and a "
                        "scalar on another"
                    )
                merged[name] += float(value)
    return {
        "workers": len(per_worker),
        "metrics": merged,
        "per_worker": per_worker,
    }
