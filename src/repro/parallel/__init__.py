"""Multi-process reconstruction: shared-memory arenas + job scheduler.

The paper accelerates one reconstruction per device; this package scales
*out* instead — many (shot, time-slice) jobs sharded across CPU worker
processes, with the Green-function tables published once per grid in a
``multiprocessing.shared_memory`` arena so worker startup stays O(1) in
grid size.  See ``docs/PARALLEL.md`` for the lifecycle and failure
semantics.
"""

from repro.parallel.arena import (
    ArenaManager,
    ArenaSegment,
    ArenaSpec,
    AttachedArena,
    TableArena,
    arena_manager,
    attach_arena,
)
from repro.parallel.engine import ParallelFitEngine, ParallelFitResult
from repro.parallel.merge import (
    merge_metrics,
    merged_chrome_trace,
    write_merged_chrome_trace,
)
from repro.parallel.scheduler import (
    CRASH_RATE_ENV,
    CRASH_SEED_ENV,
    JobFailure,
    JobOutcome,
    ProcessScheduler,
    ScheduleResult,
    SchedulerConfig,
    WorkerContext,
    WorkerReport,
)

__all__ = [
    "ArenaManager",
    "ArenaSegment",
    "ArenaSpec",
    "AttachedArena",
    "TableArena",
    "arena_manager",
    "attach_arena",
    "ParallelFitEngine",
    "ParallelFitResult",
    "merge_metrics",
    "merged_chrome_trace",
    "write_merged_chrome_trace",
    "CRASH_RATE_ENV",
    "CRASH_SEED_ENV",
    "JobFailure",
    "JobOutcome",
    "ProcessScheduler",
    "ScheduleResult",
    "SchedulerConfig",
    "WorkerContext",
    "WorkerReport",
]
